#include "broker/hash_ring.hpp"

#include "util/hash.hpp"

namespace planetp::broker {

bool HashRing::add(NodeId node, RingPoint point) {
  point %= max_id_;
  if (by_point_.contains(point) || by_node_.contains(node)) return false;
  by_point_.emplace(point, node);
  by_node_.emplace(node, point);
  return true;
}

RingPoint HashRing::add_by_hash(NodeId node) {
  RingPoint point = splitmix64(0x9e3779b9u ^ node) % max_id_;
  while (!add(node, point)) {
    point = (point + 1) % max_id_;  // linear probe on (unlikely) collision
  }
  return point;
}

bool HashRing::remove(NodeId node) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return false;
  by_point_.erase(it->second);
  by_node_.erase(it);
  return true;
}

RingPoint HashRing::key_point(std::string_view key) const {
  return murmur64(key, /*seed=*/0x5eedb10c) % max_id_;
}

std::optional<NodeId> HashRing::responsible_for(std::string_view key) const {
  return successor_of(key_point(key));
}

std::vector<NodeId> HashRing::replicas_for(std::string_view key, std::size_t n) const {
  std::vector<NodeId> out;
  if (by_point_.empty() || n == 0) return out;
  auto it = by_point_.lower_bound(key_point(key));
  if (it == by_point_.end()) it = by_point_.begin();
  const std::size_t limit = std::min(n, by_point_.size());
  while (out.size() < limit) {
    out.push_back(it->second);
    ++it;
    if (it == by_point_.end()) it = by_point_.begin();
  }
  return out;
}

std::optional<NodeId> HashRing::successor_of(RingPoint point) const {
  if (by_point_.empty()) return std::nullopt;
  auto it = by_point_.lower_bound(point % max_id_);
  if (it == by_point_.end()) it = by_point_.begin();  // wrap around
  return it->second;
}

std::optional<NodeId> HashRing::successor_node(NodeId node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end() || by_point_.size() < 2) return std::nullopt;
  auto ring_it = by_point_.find(it->second);
  ++ring_it;
  if (ring_it == by_point_.end()) ring_it = by_point_.begin();
  return ring_it->second;
}

std::optional<RingPoint> HashRing::point_of(NodeId node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<RingPoint, NodeId>> HashRing::entries() const {
  return {by_point_.begin(), by_point_.end()};
}

}  // namespace planetp::broker
