#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

/// \file framing.hpp
/// Wire framing for the live TCP runtime. Each frame is:
///
///   u32 length (little-endian, of everything after this field)
///   u32 sender peer id
///   u8  channel (0 = gossip, 1 = RPC)
///   payload bytes
///
/// FrameDecoder consumes a TCP byte stream incrementally and yields complete
/// frames; partial reads and coalesced frames are handled transparently.

namespace planetp::net {

enum class Channel : std::uint8_t { kGossip = 0, kRpc = 1 };

struct Frame {
  std::uint32_t sender = 0;
  Channel channel = Channel::kGossip;
  std::vector<std::uint8_t> payload;
};

/// Upper bound on a frame body; larger frames indicate stream corruption.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Serialize a frame (length prefix included).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Exact serialized size of \p frame (length prefix included).
std::size_t frame_size(const Frame& frame);

/// Serialize \p frame appending to \p out (caller-owned buffer — e.g. a
/// connection's outbound queue), growing it by exactly frame_size(frame).
/// Skips the intermediate per-frame vector that encode_frame allocates.
void append_frame(std::vector<std::uint8_t>& out, const Frame& frame);

class FrameDecoder {
 public:
  /// Append raw stream bytes.
  void feed(std::span<const std::uint8_t> data);

  /// Pop the next complete frame, if any. Throws std::runtime_error when the
  /// stream is corrupt (oversized frame, per the configured cap).
  std::optional<Frame> next();

  std::size_t buffered() const { return buf_.size() - consumed_; }

  /// Lower the acceptable frame-body bound below the wire-format maximum.
  /// With the default (kMaxFrameBytes) a peer streaming just-under-limit
  /// headers can pin 64MB of undecoded buffer per connection; the reactor
  /// configures a tighter cap (ReactorConfig::max_frame_bytes) so such a
  /// stream is rejected as corrupt instead. Values above kMaxFrameBytes are
  /// clamped to it.
  void set_max_frame_bytes(std::size_t cap);
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
  std::size_t max_frame_bytes_ = kMaxFrameBytes;
};

}  // namespace planetp::net
