#pragma once

#include <cstdint>

#include "util/time.hpp"

/// \file config.hpp
/// Tunables of the gossiping algorithm, with the paper's defaults (§3, §7.2).
/// "The various constants/parameters we use were found to work well in our
/// current simulation but can be tuned as needed for any particular
/// community."

namespace planetp::gossip {

/// How hot rumors travel (docs/PROTOCOL.md "Lazy dissemination").
///  - kEager: push full payloads to every fanout target (the paper's §3
///    rumor mongering, and the historical behavior — byte-identical traces).
///  - kLazy: push only (id, version) digests; targets reply with the ids
///    whose bodies they lack and the bodies are served from the interned
///    SharedRumor store. No payload is ever sent blind.
///  - kHybrid: Plumtree-style split — a rumor is pushed eagerly for its
///    first `eager_fanout` transmissions at each node, lazily thereafter.
///    With bandwidth_aware, slow-link targets always get digests.
enum class RumorMode : std::uint8_t { kEager = 0, kLazy = 1, kHybrid = 2 };

struct GossipConfig {
  /// Base gossiping interval T_g (30 s in §3; Table 2 simulates 30 s).
  Duration base_interval = 30 * kSecond;

  /// Ceiling for the adaptive interval. §3 quotes "a maximum of 2 minutes";
  /// Table 2's simulations cap at 60 s. Default follows Table 2 so the
  /// simulated figures match; live deployments may raise it.
  Duration max_interval = 60 * kSecond;

  /// Slow-down constant added to the interval on each gossip-less streak.
  Duration slow_down = 5 * kSecond;

  /// Gossip-less threshold: identical-directory contacts before slowing down.
  int gossipless_threshold = 2;

  /// Every ae_every-th round performs anti-entropy instead of rumoring.
  int anti_entropy_every = 10;

  /// Demers' n: retire a rumor after this many consecutive targets that
  /// already knew it. Incoming duplicates (receiving a rumor we are already
  /// spreading) also count — Demers' feedback variant — which keeps rumor
  /// storms (e.g. mass joins) from keeping stale rumors hot while acks are
  /// delayed on saturated links.
  int stop_count = 2;

  /// Upper bound on rumor payload *bytes* per message (at least one payload
  /// always goes). Hot rumors beyond the budget rotate through subsequent
  /// rounds. Without a cap, a mass-join event makes every rumor message
  /// carry every joiner's full filter (each 20k-key filter is ~16 KB),
  /// saturating slow links; a count-based cap would instead strangle churny
  /// communities whose rumors are 48-byte rejoin records. 128 KB ≈ 2 s of a
  /// DSL uplink per 30 s round.
  std::size_t max_rumor_bytes_per_message = 128 * 1024;

  /// m: number of recently retired rumor ids piggybacked for partial
  /// anti-entropy ("a small number m of the most recent rumors").
  std::size_t partial_ae_window = 10;

  /// T_dead: a peer continuously believed offline this long is dropped from
  /// the directory (assumed to have left permanently).
  Duration t_dead = 6 * kHour;

  /// false selects the pure anti-entropy baseline (the paper's LAN-AE):
  /// every round pushes a full directory summary instead of rumors.
  bool enable_rumoring = true;

  /// false disables the partial anti-entropy piggyback (the paper's
  /// LAN-NPA ablation in Fig 4a).
  bool enable_partial_ae = true;

  /// false disables the adaptive interval (fixed T_g), used when sweeping
  /// fixed gossip intervals as in Fig 2's DSL-10/30/60 curves.
  bool adaptive_interval = true;

  /// Bandwidth-aware two-class target selection (§7.2, Fig 5).
  bool bandwidth_aware = false;

  /// Probability that a fast peer rumors to a slow peer when bandwidth_aware.
  double fast_to_slow_prob = 0.01;

  /// An anti-entropy pull (summary request) still unanswered after this many
  /// gossip rounds is retried against a fresh target, doubling the wait each
  /// attempt. Lossy links and partitions otherwise leave a catching-up peer
  /// waiting on a reply that will never come. Measured in rounds so the
  /// retry cadence scales with the gossip interval (live tests run 100 ms
  /// rounds; the paper's communities run 30 s ones).
  int ae_retry_rounds = 2;

  /// Bound on consecutive unanswered anti-entropy attempts while catching up
  /// after a rejoin. Once exhausted the peer abandons the catch-up priority
  /// and falls back to the normal round cadence (whose idle-round
  /// anti-entropy still converges it eventually).
  int max_ae_retries = 4;

  /// Probability that an anti-entropy round probes a peer currently believed
  /// offline instead of an online one. Offline beliefs are local and never
  /// gossiped (§3), so after a network partition heals *nobody* selects the
  /// other side and the split would persist until T_dead erased it; the
  /// occasional probe rediscovers reachable peers and re-merges the halves.
  double offline_probe_prob = 0.1;

  /// Dissemination mode for hot rumors. Defaults to kEager so existing
  /// configurations trace byte-identically to prior releases.
  RumorMode rumor_mode = RumorMode::kEager;

  /// kHybrid only: blind payload pushes a rumor gets at this node before it
  /// switches to digests. The first hops seed the body into the community
  /// fast; after that most targets already hold it and ids suffice.
  int eager_fanout = 2;

  /// Delta-compressed anti-entropy replies: a SummaryRequest advertises the
  /// sender's DirectoryBase token, and a replier sharing that base answers
  /// with only its changed-set (O(changed) entries) instead of the full
  /// O(peers) summary. Convergence is unchanged — the omitted entries carry
  /// base versions both sides already hold. Off by default (byte-identical
  /// traces); the lazy/hybrid bench rows enable it.
  bool delta_summaries = false;

  /// Cap on record ids pulled per anti-entropy exchange; 0 = unlimited.
  /// §7.2's future-work item for modem peers: "allow a new modem-connected
  /// peer to acquire the directory in pieces over a much longer period of
  /// time". A small cap turns the join download into incremental chunks
  /// spread over successive anti-entropy rounds.
  std::size_t max_pull_per_exchange = 0;
};

}  // namespace planetp::gossip
