#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "index/document.hpp"
#include "index/epoch_index.hpp"
#include "index/inverted_index.hpp"
#include "text/analyzer.hpp"

/// \file data_store.hpp
/// The per-peer local data store of §2: published XML documents, the local
/// inverted index over them, and the (counting) Bloom filter summarizing the
/// index's term set. The plain projection of that filter is what the peer
/// gossips; a monotonically increasing version number tracks changes so the
/// directory can tell stale summaries from fresh ones.
///
/// Publishing is the store's hot path: text streams through the analyzer's
/// allocation-free pipeline straight into the interned term dictionary, and
/// the counting Bloom filter is fed from the dictionary's pre-computed
/// hashes (each distinct term is hashed exactly once per store lifetime).
/// publish_batch can additionally shard the parse+analyze work across a
/// ThreadPool while committing in document order, so the resulting store is
/// identical to a sequential publish loop. See docs/INDEX.md.
///
/// Mutation stays single-writer, but every commit also publishes an
/// immutable EpochSnapshot (epoch_index.hpp): concurrent readers call
/// snapshot() — thread-safe, a bounded pointer copy — and rank against it while further
/// publishes and removals proceed. See docs/INDEX.md "Epochs & concurrent
/// readers".

namespace planetp {
class ThreadPool;
}

namespace planetp::index {

class DataStore {
 public:
  explicit DataStore(std::uint32_t peer_id, bloom::BloomParams bloom_params = {},
                     text::AnalyzerOptions analyzer_opts = {}, EpochConfig epoch_config = {});

  /// Publish an XML document; indexes its text and updates the Bloom filter.
  /// Returns the new document's id. Throws on malformed XML.
  DocumentId publish(std::string xml_source);

  /// Publish pre-extracted plain text under a title (convenience wrapper
  /// that builds the XML envelope).
  DocumentId publish_text(std::string_view title, std::string_view body);

  /// Publish under a caller-chosen local id (snapshot restore: documents
  /// must keep their community-visible ids). Throws if the id is taken.
  DocumentId publish_as(std::uint32_t local_id, std::string xml_source);

  /// Publish a batch of XML documents. With \p pool, parsing and analysis
  /// run in parallel and results are committed in document order, producing
  /// a store (index, dictionary, filter, versions) identical to publishing
  /// the batch sequentially. On a malformed document the exception
  /// propagates after all earlier documents in the batch were committed —
  /// the same state a sequential loop would leave behind.
  std::vector<DocumentId> publish_batch(std::vector<std::string> xml_sources,
                                        ThreadPool* pool = nullptr);

  /// The next local id publish() would assign (snapshot metadata).
  std::uint32_t next_local_id() const { return next_local_id_; }

  /// Ensure future publishes use ids >= \p next (snapshot restore: ids of
  /// documents unpublished before the snapshot must never be reused).
  void reserve_local_ids(std::uint32_t next) {
    if (next > next_local_id_) next_local_id_ = next;
  }

  /// Remove a published document. Returns false if unknown.
  bool unpublish(DocumentId id);

  /// Replace a published document's content in place (same id, new XML):
  /// reindexes and updates the filter. Returns false if the id is unknown.
  /// Throws on malformed XML, leaving the old version intact.
  bool republish(DocumentId id, std::string xml_source);

  /// The stored document, or nullptr.
  const Document* document(DocumentId id) const;

  /// Documents whose text contains *all* query terms (local exhaustive
  /// search; terms are analyzed with the same pipeline as documents).
  std::vector<DocumentId> search_all_terms(std::string_view query) const;

  /// Current Bloom filter (plain projection of the counting filter).
  bloom::BloomFilter bloom_filter() const { return counting_filter_.to_bloom_filter(); }

  /// Version incremented on every publish/unpublish that changes the term
  /// set summary.
  std::uint64_t filter_version() const { return filter_version_; }

  const InvertedIndex& index() const { return index_; }

  /// The current published index epoch. Thread-safe against concurrent
  /// publishes/removals (the wait is bounded by a pointer copy); the
  /// snapshot is immutable and stays valid for as long as the caller holds
  /// it.
  std::shared_ptr<const EpochSnapshot> snapshot() const { return epochs_->snapshot(); }

  /// The epoch pipeline (stats, merge waits; writer-side configuration).
  EpochIndex& epochs() { return *epochs_; }
  const EpochIndex& epochs() const { return *epochs_; }

  /// Fold all pending segments/tombstones into a fresh read-optimized base
  /// epoch (writer-side, blocking). After compact() the published
  /// snapshot's base carries block-max skip metadata for every stored
  /// document, so ranked queries take the pruned top-k path.
  void compact() { epochs_->compact(); }

  const text::Analyzer& analyzer() const { return analyzer_; }
  std::uint32_t peer_id() const { return peer_id_; }
  std::size_t num_documents() const { return docs_.size(); }

  /// All stored documents (ids ascending).
  std::vector<DocumentId> documents() const { return index_.documents(); }

 private:
  /// Analyzed term counts of one document, pre-aggregated off the store
  /// (used by the parallel batch path; terms are strings because dictionary
  /// interning must stay single-threaded). First-occurrence order, so
  /// committing interns terms in the same order a sequential publish would.
  struct PreparedDoc {
    Document doc;
    std::vector<std::pair<std::string, std::uint32_t>> term_counts;
  };

  PreparedDoc prepare(DocumentId id, std::string xml_source) const;
  void commit_prepared(PreparedDoc&& prepared);
  /// Streaming index+filter update for an already-parsed document.
  void index_document(const Document& doc);

  std::uint32_t peer_id_;
  std::uint32_t next_local_id_ = 0;
  text::Analyzer analyzer_;
  InvertedIndex index_;
  bloom::CountingBloomFilter counting_filter_;
  std::uint64_t filter_version_ = 0;
  std::unordered_map<DocumentId, Document, DocumentIdHash> docs_;
  /// Reusable analysis buffers (single publish is single-threaded; the
  /// parallel batch path uses per-task scratches instead).
  text::AnalyzerScratch scratch_;
  TermCounts counts_;
  /// Epoch pipeline (owns the background merge thread and the published
  /// snapshot). unique_ptr keeps DataStore movable.
  std::unique_ptr<EpochIndex> epochs_;
};

}  // namespace planetp::index
