#include "broker/snippet_store.hpp"

#include <algorithm>
#include <functional>

namespace planetp::broker {

void SnippetStore::put(const std::string& key, const Snippet& snippet) {
  auto& list = by_key_[key];
  for (Snippet& s : list) {
    if (s.publisher == snippet.publisher && s.id == snippet.id) {
      s = snippet;  // refresh
      return;
    }
  }
  list.push_back(snippet);
}

std::vector<Snippet> SnippetStore::get(const std::string& key, TimePoint now) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  auto& list = it->second;
  std::erase_if(list, [now](const Snippet& s) { return s.discard_at <= now; });
  if (list.empty()) {
    by_key_.erase(it);
    return {};
  }
  return list;
}

std::size_t SnippetStore::sweep(TimePoint now) {
  std::size_t dropped = 0;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    auto& list = it->second;
    const std::size_t before = list.size();
    std::erase_if(list, [now](const Snippet& s) { return s.discard_at <= now; });
    dropped += before - list.size();
    it = list.empty() ? by_key_.erase(it) : std::next(it);
  }
  return dropped;
}

std::size_t SnippetStore::erase_snippet(std::uint32_t publisher, std::uint64_t snippet_id) {
  std::size_t dropped = 0;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    auto& list = it->second;
    const std::size_t before = list.size();
    std::erase_if(list, [&](const Snippet& s) {
      return s.publisher == publisher && s.id == snippet_id;
    });
    dropped += before - list.size();
    it = list.empty() ? by_key_.erase(it) : std::next(it);
  }
  return dropped;
}

std::vector<std::pair<std::string, Snippet>> SnippetStore::extract_if(
    const std::function<bool(const std::string&)>& must_move) {
  std::vector<std::pair<std::string, Snippet>> moved;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    if (must_move(it->first)) {
      for (Snippet& s : it->second) moved.emplace_back(it->first, std::move(s));
      it = by_key_.erase(it);
    } else {
      ++it;
    }
  }
  return moved;
}

std::vector<std::pair<std::string, Snippet>> SnippetStore::all() const {
  std::vector<std::pair<std::string, Snippet>> out;
  for (const auto& [key, list] : by_key_) {
    for (const Snippet& s : list) out.emplace_back(key, s);
  }
  return out;
}

std::size_t SnippetStore::snippet_count() const {
  std::size_t n = 0;
  for (const auto& [key, list] : by_key_) n += list.size();
  return n;
}

}  // namespace planetp::broker
