#include "sim/scenarios.hpp"

#include <algorithm>

#include "util/distributions.hpp"

namespace planetp::sim {

using gossip::PeerId;

const char* to_string(BandwidthProfile p) {
  switch (p) {
    case BandwidthProfile::kLan: return "LAN";
    case BandwidthProfile::kDsl: return "DSL";
    case BandwidthProfile::kMix: return "MIX";
  }
  return "?";
}

double profile_bandwidth(BandwidthProfile profile, Rng& rng) {
  switch (profile) {
    case BandwidthProfile::kLan: return link_speed::kLan45M;
    case BandwidthProfile::kDsl: return link_speed::kDsl512k;
    case BandwidthProfile::kMix: return sample_mix_bandwidth(rng);
  }
  return link_speed::kLan45M;
}

CdfResult summarize(const ConvergenceTracker& tracker, std::size_t cdf_points) {
  CdfResult r;
  r.events = tracker.tracked_events();
  r.converged = tracker.converged_events();
  const SampleSet& s = tracker.durations();
  if (!s.empty()) {
    r.cdf = s.cdf(cdf_points);
    r.mean_seconds = s.mean();
    r.p50 = s.percentile(50);
    r.p90 = s.percentile(90);
    r.p99 = s.percentile(99);
  }
  return r;
}

namespace {

/// Run \p community in \p poll chunks until \p done() or \p limit.
/// Returns the time at which done() first held (sampled at poll granularity).
TimePoint run_until_condition(SimCommunity& community, TimePoint limit, Duration poll,
                              const std::function<bool()>& done) {
  while (community.queue().now() < limit) {
    const TimePoint next = std::min<TimePoint>(community.queue().now() + poll, limit);
    community.run_until(next);
    if (done()) return community.queue().now();
  }
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

PropagationResult run_propagation(const PropagationOptions& opts) {
  SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.gossip.base_interval = opts.gossip_interval;
  cfg.gossip.max_interval = std::max(opts.gossip_interval, cfg.gossip.max_interval);
  cfg.gossip.enable_rumoring = opts.rumoring;
  cfg.gossip.enable_partial_ae = opts.partial_ae;
  cfg.gossip.stop_count = opts.stop_count;
  cfg.gossip.partial_ae_window = opts.partial_ae_window;
  cfg.gossip.anti_entropy_every = opts.anti_entropy_every;

  SimCommunity community(cfg);
  Rng rng(opts.seed ^ 0x5eedf00dULL);
  for (std::size_t i = 0; i < opts.community_size; ++i) {
    community.add_peer(SimPeerSpec{profile_bandwidth(opts.profile, rng), opts.base_keys});
  }
  const std::size_t tracker_idx =
      community.add_tracker("all", [](PeerId) { return true; });
  community.start_converged();
  community.run_until(opts.warmup);

  community.stats().reset();
  const TimePoint injected = community.queue().now();
  const PeerId origin = static_cast<PeerId>(rng.below(opts.community_size));
  community.inject_filter_change(origin, opts.new_keys);

  auto& tracker = community.tracker(tracker_idx);
  const TimePoint done =
      run_until_condition(community, injected + opts.timeout, 5 * kSecond,
                          [&] { return tracker.pending_events() == 0; });

  PropagationResult result;
  result.converged = done >= 0;
  result.propagation_seconds =
      tracker.durations().empty() ? to_seconds(opts.timeout) : tracker.durations().max();
  result.total_bytes = community.stats().total_bytes();
  result.event_bytes =
      opts.rumoring ? community.stats().rumor_bytes() : community.stats().total_bytes();
  const double window = std::max(result.propagation_seconds, 1e-9);
  result.per_peer_bandwidth_bps = static_cast<double>(result.event_bytes) /
                                  static_cast<double>(opts.community_size) / window;
  return result;
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

JoinResult run_join(const JoinOptions& opts) {
  SimConfig cfg;
  cfg.seed = opts.seed;

  SimCommunity community(cfg);
  Rng rng(opts.seed ^ 0x10adf00dULL);
  for (std::size_t i = 0; i < opts.existing_members; ++i) {
    community.add_peer(SimPeerSpec{profile_bandwidth(opts.profile, rng), opts.keys_per_peer});
  }
  community.start_converged();
  community.run_until(opts.warmup);
  community.stats().reset();

  // Create and join the newcomers simultaneously, each via a random
  // established introducer.
  const TimePoint join_time = community.queue().now();
  std::vector<PeerId> joiners;
  for (std::size_t i = 0; i < opts.joiners; ++i) {
    joiners.push_back(community.add_peer(
        SimPeerSpec{profile_bandwidth(opts.profile, rng), opts.keys_per_peer}));
  }
  for (PeerId id : joiners) {
    community.join(id, static_cast<PeerId>(rng.below(opts.existing_members)));
  }

  const TimePoint done =
      run_until_condition(community, join_time + opts.timeout, opts.poll,
                          [&] { return community.directories_consistent(); });

  JoinResult result;
  result.converged = done >= 0;
  result.consistency_seconds =
      to_seconds((done >= 0 ? done : join_time + opts.timeout) - join_time);
  result.total_bytes = community.stats().total_bytes();
  return result;
}

// ---------------------------------------------------------------------------
// Figure 4(a)
// ---------------------------------------------------------------------------

CdfResult run_arrivals(const ArrivalOptions& opts) {
  SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.gossip.enable_partial_ae = opts.partial_ae;

  SimCommunity community(cfg);
  Rng rng(opts.seed ^ 0xa11ea5edULL);
  for (std::size_t i = 0; i < opts.stable_members + opts.arrivals; ++i) {
    community.add_peer(SimPeerSpec{profile_bandwidth(opts.profile, rng), opts.keys_per_peer});
  }

  // Only the stable members start as part of the converged community; the
  // rest arrive one by one. SimCommunity::start_converged starts everyone,
  // so instead we start the full set and immediately remove the future
  // arrivals before any gossip runs — they rejoin via join() below.
  const std::size_t tracker_idx = community.add_tracker("all", [](PeerId) { return true; });
  community.start_converged();
  // Not started as members: emulate by... (see note) — we cannot unjoin, so
  // model arrivals as offline members whose rejoin carries fresh keys: the
  // directory already knows them, but the *event* still has to reach
  // everyone, which is what Fig 4a measures (rumor interference).
  std::vector<PeerId> arrivals;
  for (std::size_t i = 0; i < opts.arrivals; ++i) {
    arrivals.push_back(static_cast<PeerId>(opts.stable_members + i));
  }
  for (PeerId id : arrivals) community.go_offline(id);
  community.run_until(opts.warmup);

  // Schedule Poisson arrivals.
  TimePoint at = community.queue().now();
  for (PeerId id : arrivals) {
    at += ExponentialSampler::interval(rng, opts.mean_interarrival);
    community.queue().schedule_at(at, [&community, id, &opts] {
      community.rejoin(id, opts.keys_per_peer);
    });
  }
  const TimePoint last_arrival = at;

  // Run through all arrivals first, then drain until every event converges.
  community.run_until(last_arrival);
  auto& tracker = community.tracker(tracker_idx);
  run_until_condition(community, last_arrival + opts.drain, 10 * kSecond,
                      [&] { return tracker.pending_events() == 0; });
  return summarize(tracker);
}

// ---------------------------------------------------------------------------
// Figures 4(b,c) and 5
// ---------------------------------------------------------------------------

DynamicResult run_dynamic(const DynamicOptions& opts) {
  SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.gossip.bandwidth_aware = opts.bandwidth_aware;

  SimCommunity community(cfg);
  Rng rng(opts.seed ^ 0xd15ea5edULL);

  std::vector<double> bandwidths;
  for (std::size_t i = 0; i < opts.members; ++i) {
    bandwidths.push_back(profile_bandwidth(opts.profile, rng));
    community.add_peer(SimPeerSpec{bandwidths.back(), opts.base_keys});
  }
  auto is_fast = [&community](PeerId id) { return is_fast_link(community.bandwidth(id)); };
  auto is_slow = [&community](PeerId id) { return !is_fast_link(community.bandwidth(id)); };

  const std::size_t all_idx = community.add_tracker("all", [](PeerId) { return true; });
  const std::size_t fast_idx = community.add_tracker("fast-origin/fast-learn", is_fast, is_fast);
  const std::size_t slow_idx = community.add_tracker("slow-origin/fast-learn", is_fast, is_slow);

  community.start_converged();

  // Split membership: the first always_on_fraction stay online forever; the
  // rest cycle through Poisson online/offline periods. Start the cyclers in
  // steady state: online with probability on/(on + off).
  const std::size_t always_on =
      static_cast<std::size_t>(opts.always_on_fraction * static_cast<double>(opts.members));
  const double p_online = static_cast<double>(opts.mean_online) /
                          static_cast<double>(opts.mean_online + opts.mean_offline);

  struct Cycler {
    PeerId id;
  };
  // Recursive lambdas via std::function to schedule alternating transitions.
  std::function<void(PeerId)> schedule_offline_then_rejoin;
  std::function<void(PeerId)> schedule_rejoin_then_offline;

  schedule_offline_then_rejoin = [&](PeerId id) {
    const Duration online_for = ExponentialSampler::interval(rng, opts.mean_online);
    community.queue().schedule(online_for, [&, id] {
      community.go_offline(id);
      schedule_rejoin_then_offline(id);
    });
  };
  schedule_rejoin_then_offline = [&](PeerId id) {
    const Duration offline_for = ExponentialSampler::interval(rng, opts.mean_offline);
    community.queue().schedule(offline_for, [&, id] {
      const std::uint32_t keys =
          rng.chance(opts.rejoin_with_keys_prob) ? opts.new_keys_on_rejoin : 0;
      community.rejoin(id, keys);
      schedule_offline_then_rejoin(id);
    });
  };

  for (std::size_t i = always_on; i < opts.members; ++i) {
    const PeerId id = static_cast<PeerId>(i);
    if (rng.chance(p_online)) {
      schedule_offline_then_rejoin(id);  // currently online
    } else {
      community.go_offline(id);
      schedule_rejoin_then_offline(id);
    }
  }

  community.run_until(opts.warmup);
  community.stats().reset();
  community.run_until(opts.warmup + opts.duration);
  // Freeze the measurement window, then drain so events tracked near the
  // end still get their chance to converge (churn continues meanwhile).
  community.set_tracking(false);
  const std::vector<std::pair<double, std::uint64_t>> window_series =
      community.stats().bytes_over_time();
  const std::uint64_t window_bytes = community.stats().total_bytes();
  community.run_until(opts.warmup + opts.duration + opts.drain);

  DynamicResult result;
  result.all = summarize(community.tracker(all_idx));
  result.fast_only = summarize(community.tracker(fast_idx));
  result.slow_only = summarize(community.tracker(slow_idx));
  result.bandwidth_series = window_series;
  result.total_bytes = window_bytes;
  return result;
}

}  // namespace planetp::sim
