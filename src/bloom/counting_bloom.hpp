#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.hpp"

/// \file counting_bloom.hpp
/// Counting Bloom filter backing each peer's *local* summary. Plain Bloom
/// filters cannot delete, but peers remove documents (and hence terms), so
/// the local data store keeps 8-bit counters and projects them to the plain
/// bit filter that is actually gossiped. Counters saturate at 255 and then
/// never decrement (standard saturating policy: correctness over accuracy).

namespace planetp::bloom {

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParams params = {});

  void insert(std::string_view term);
  void insert(const HashPair& hp);

  /// Remove one occurrence; no-op on saturated counters. Removing a term
  /// never inserted corrupts the filter (standard CBF caveat), so callers
  /// must pair inserts/removes — the inverted index guarantees this.
  void remove(std::string_view term);
  void remove(const HashPair& hp);

  bool contains(std::string_view term) const;
  bool contains(const HashPair& hp) const;

  /// Project to the plain filter whose bit i is set iff counter i > 0.
  /// This is what gets gossiped.
  BloomFilter to_bloom_filter() const;

  const BloomParams& params() const { return params_; }
  std::size_t nonzero_count() const;

 private:
  BloomParams params_;
  std::vector<std::uint8_t> counters_;
};

}  // namespace planetp::bloom
