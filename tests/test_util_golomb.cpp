#include "util/golomb.hpp"

#include <gtest/gtest.h>

#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace planetp {
namespace {

TEST(BitIo, WriteReadBits) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bits(0xff, 8);
  w.write_bits(0, 3);
  w.write_bits(1, 1);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bits(8), 0xffu);
  EXPECT_EQ(r.read_bits(3), 0u);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitIo, UnaryRoundtrip) {
  BitWriter w;
  for (std::uint64_t n : {0u, 1u, 5u, 17u}) w.write_unary(n);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_unary(), 0u);
  EXPECT_EQ(r.read_unary(), 1u);
  EXPECT_EQ(r.read_unary(), 5u);
  EXPECT_EQ(r.read_unary(), 17u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(1, 1);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.read_bits(8);  // padded byte readable
  EXPECT_THROW(r.read_bits(1), std::out_of_range);
}

TEST(BitIo, SixtyFourBitValues) {
  BitWriter w;
  const std::uint64_t big = 0xfedcba9876543210ULL;
  w.write_bits(big, 64);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(64), big);
}

class GolombRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GolombRoundtrip, EncodeDecodeIdentity) {
  const std::uint64_t m = GetParam();
  Rng rng(m);
  std::vector<std::uint64_t> values = {0, 1, m, m + 1, 2 * m, 1000};
  for (int i = 0; i < 50; ++i) values.push_back(rng.below(100000));

  BitWriter w;
  for (std::uint64_t v : values) golomb_encode(w, v, m);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (std::uint64_t v : values) {
    EXPECT_EQ(golomb_decode(r, m), v) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, GolombRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 10, 16, 63, 64, 100, 1000));

TEST(Golomb, ZeroMThrows) {
  BitWriter w;
  EXPECT_THROW(golomb_encode(w, 1, 0), std::invalid_argument);
}

TEST(Golomb, OptimalMGrowsWithSparsity) {
  // Sparser vectors need a larger parameter (longer expected gaps).
  const auto dense = golomb_optimal_m(1000, 2000);
  const auto sparse = golomb_optimal_m(10, 2000);
  EXPECT_LT(dense, sparse);
  EXPECT_GE(dense, 1u);
}

TEST(Golomb, OptimalMDegenerateCases) {
  EXPECT_EQ(golomb_optimal_m(0, 100), 1u);
  EXPECT_EQ(golomb_optimal_m(100, 0), 1u);
  EXPECT_EQ(golomb_optimal_m(100, 100), 1u);
}

class CompressBitsDensity : public ::testing::TestWithParam<double> {};

TEST_P(CompressBitsDensity, Roundtrip) {
  const double density = GetParam();
  Rng rng(static_cast<std::uint64_t>(density * 1000));
  BitVector bits(50'000);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (rng.chance(density)) bits.set(i);
  }
  const CompressedBits c = compress_bits(bits);
  const BitVector back = decompress_bits(c);
  EXPECT_EQ(back, bits);
}

INSTANTIATE_TEST_SUITE_P(Densities, CompressBitsDensity,
                         ::testing::Values(0.0, 0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 0.9));

TEST(CompressBits, SparseVectorsCompressWell) {
  // The wire-cost model in Table 2 prices a 1000-key filter at ~3 KB; with
  // two hashes that is ~2000 set bits in 409,600. Our Golomb coder should be
  // in that ballpark (it is the same scheme the paper used).
  Rng rng(77);
  BitVector bits(409'600);
  for (int i = 0; i < 2000; ++i) bits.set(rng.below(409'600));
  const CompressedBits c = compress_bits(bits);
  EXPECT_LT(c.byte_size(), 4500u);
  EXPECT_GT(c.byte_size(), 1500u);
}

TEST(CompressBits, EmptyVector) {
  const CompressedBits c = compress_bits(BitVector(1000));
  EXPECT_EQ(c.set_bits, 0u);
  EXPECT_EQ(decompress_bits(c), BitVector(1000));
}

TEST(CompressBits, FirstAndLastBits) {
  BitVector bits(1000);
  bits.set(0);
  bits.set(999);
  EXPECT_EQ(decompress_bits(compress_bits(bits)), bits);
}

TEST(CompressBits, CorruptStreamThrows) {
  BitVector bits(100);
  bits.set(50);
  CompressedBits c = compress_bits(bits);
  c.nbits = 40;  // claimed size smaller than encoded position
  EXPECT_THROW(decompress_bits(c), std::out_of_range);
}

}  // namespace
}  // namespace planetp
