/// \file ablation_gossip.cpp
/// Ablations of the gossiping design choices DESIGN.md calls out, on the
/// Fig 2 propagation workload (500 DSL peers, one 1000-key update):
///
///  1. the rumor stop counter n (Demers' "n peers in a row that already
///     know"): small n dies out early and leans on anti-entropy; large n
///     wastes redundant rumor traffic;
///  2. the partial anti-entropy window m (0 disables the piggyback);
///  3. the anti-entropy cadence (every 5th / 10th / 20th round) — the paper
///     rejected "AE more often" as too expensive, which this quantifies.

#include <cstdio>
#include <cstring>

#include "sim/scenarios.hpp"

using namespace planetp;
using namespace planetp::sim;

namespace {

PropagationOptions base_options(std::size_t n) {
  PropagationOptions opts;
  opts.community_size = n;
  opts.profile = BandwidthProfile::kDsl;
  return opts;
}

void report(const char* label, const PropagationResult& r) {
  std::printf("  %-24s time=%7.1fs volume=%7.2fMB perpeer=%6.1fB/s%s\n", label,
              r.propagation_seconds, static_cast<double>(r.event_bytes) / 1e6,
              r.per_peer_bandwidth_bps, r.converged ? "" : " (timeout)");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t n = quick ? 150 : 500;
  std::printf("Gossip ablations — %zu DSL peers, 1000-key update\n\n", n);

  std::puts("# stop counter n (rumor retirement)");
  for (int stop : {1, 2, 3, 4, 6}) {
    auto opts = base_options(n);
    opts.stop_count = stop;
    opts.seed = 100 + stop;
    char label[32];
    std::snprintf(label, sizeof(label), "n=%d%s", stop, stop == 2 ? " (paper)" : "");
    report(label, run_propagation(opts));
  }
  std::puts("");

  std::puts("# partial anti-entropy window m (0 = disabled, the LAN-NPA ablation)");
  for (std::size_t m : {0u, 5u, 10u, 20u}) {
    auto opts = base_options(n);
    opts.partial_ae = m != 0;
    opts.partial_ae_window = m == 0 ? 10 : m;
    opts.seed = 200 + m;
    char label[32];
    std::snprintf(label, sizeof(label), "m=%zu%s", m, m == 10 ? " (paper)" : "");
    report(label, run_propagation(opts));
  }
  std::puts("");

  std::puts("# anti-entropy cadence (every k-th rumoring round)");
  for (int every : {5, 10, 20}) {
    auto opts = base_options(n);
    opts.anti_entropy_every = every;
    opts.seed = 300 + every;
    char label[32];
    std::snprintf(label, sizeof(label), "every %d%s", every, every == 10 ? " (paper)" : "");
    report(label, run_propagation(opts));
  }
  return 0;
}
