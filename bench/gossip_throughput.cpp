/// \file gossip_throughput.cpp
/// Gossip-plane throughput (docs/PROTOCOL.md "The gossip hot path"): a
/// converged community absorbing a stream of filter-change events at 1000 and
/// 5000 peers, comparing
///   uncached — the pre-cache cost model: every summary() call rebuilds the
///              sorted snapshot and newer_in/same_as probe the directory
///              hash map per entry (Directory::set_summary_caching(false)),
///   cached   — the epoch-cached snapshot plus merge-scan comparisons (the
///              shipping configuration),
///   parallel — cached, plus deterministic parallel round stepping
///              (SimConfig::parallel_round_tick; same-tick rounds step on a
///              thread pool and commit in node-id order),
/// and, on the dissemination axis (docs/PROTOCOL.md "Lazy dissemination"),
///   eager    — the cached run, read on this axis as the blind-push baseline,
///   lazy     — digests only (RumorMode::kLazy) + delta anti-entropy replies,
///   hybrid   — Plumtree-style eager-first-hops (RumorMode::kHybrid) + delta
///              anti-entropy replies.
///
/// Reports wall-clock gossip rounds/sec (numerator: SimCommunity::
/// rounds_executed), simulated bytes per round — split per message type —
/// heap allocations per round (counted by this TU's operator new), and the
/// protocol's dissemination counters. Emits BENCH_gossip_throughput.json.
/// Built-in gates:
///   1. cached and uncached runs must be behaviourally identical — same
///      bytes, messages, rounds, and convergence samples for the same seed
///      (the cache must be invisible);
///   2. cached must be >= 3x uncached rounds/sec at 5000 peers;
///   3. hybrid must move < 1/2 the bytes/round of eager at 5000 peers with
///      every event still converging and mean convergence time within 1.5x
///      of eager (the lazy tentpole's in-run acceptance gate);
///   4. lazy mode must push zero blind payloads and see (near-)zero
///      duplicate payload deliveries once converged;
///   5. with --baseline <json>, cached rounds/sec must stay above half the
///      recorded baseline and hybrid bytes/round must stay below twice the
///      recorded hybrid_bytes_per_round figure (scripts/check.sh runs this
///      against bench/baselines/).
/// Usage: gossip_throughput [--quick] [--lazy-smoke] [--baseline <file>]
/// --lazy-smoke runs a small lazy/hybrid-only community and checks gate 4
/// plus convergence — cheap enough for the ASan leg of scripts/check.sh.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "sim/community.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every throwing/sized/array operator new in the process
// funnels through here (this TU's definitions replace the library's), so the
// delta across a timed window counts real heap allocations on the gossip
// path. Aligned variants keep their default definitions; plain delete always
// pairs with plain new, so free() is the right inverse.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace planetp;
using namespace planetp::sim;

namespace {

enum class Mode { kUncached, kCached, kParallel, kLazy, kHybrid };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kUncached: return "uncached";
    case Mode::kCached: return "cached";
    case Mode::kParallel: return "parallel";
    case Mode::kLazy: return "lazy";
    case Mode::kHybrid: return "hybrid";
  }
  return "?";
}

/// Message-type names by gossip::Message variant index (the key of
/// NetworkStats::bytes_by_type).
constexpr std::array<const char*, gossip::kMessageTypeCount> kTypeNames = {
    "Rumor", "RumorAck", "SummaryRequest", "Summary",
    "PullRequest", "PullResponse", "RumorDigest", "RumorWant"};

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t rounds = 0;
  double rounds_per_sec = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t allocs = 0;
  std::uint64_t summary_builds = 0;
  std::vector<double> durations;  ///< convergence samples (seconds)
  bool consistent = false;
  std::size_t events = 0;
  std::array<std::uint64_t, gossip::kMessageTypeCount> bytes_by_type{};
  std::array<std::uint64_t, gossip::kMessageTypeCount> messages_by_type{};
  gossip::GossipStats gossip;  ///< dissemination counters over the window

  double bytes_per_round() const {
    return rounds > 0 ? static_cast<double>(bytes) / static_cast<double>(rounds) : 0.0;
  }
  double mean_convergence_s() const {
    if (durations.empty()) return 0.0;
    double sum = 0.0;
    for (double d : durations) sum += d;
    return sum / static_cast<double>(durations.size());
  }
};

double wall_now_s() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e9;
}

/// One community absorbing `events` filter changes (one every 15 simulated
/// seconds, rotating origins), then draining until quiet. Only the absorb +
/// drain window is timed: community construction and the converged bootstrap
/// are setup, not gossip.
RunResult run_mode(Mode mode, std::size_t peers, std::size_t events) {
  SimConfig cfg;
  cfg.seed = 4242;  // identical for every mode: the equivalence gate needs it
  if (mode == Mode::kParallel) {
    cfg.parallel_round_tick = kSecond;
    cfg.parallel_threads = 0;  // hardware concurrency
  }
  if (mode == Mode::kLazy || mode == Mode::kHybrid) {
    cfg.gossip.rumor_mode =
        mode == Mode::kLazy ? gossip::RumorMode::kLazy : gossip::RumorMode::kHybrid;
    cfg.gossip.delta_summaries = true;
  }
  SimCommunity community(cfg);
  for (std::size_t i = 0; i < peers; ++i) {
    community.add_peer({link_speed::kLan45M, 1000});
  }
  const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  if (mode == Mode::kUncached) {
    for (std::size_t id = 0; id < peers; ++id) {
      community.protocol(static_cast<gossip::PeerId>(id)).directory().set_summary_caching(false);
    }
  }

  const std::uint64_t rounds0 = community.rounds_executed();
  const std::uint64_t bytes0 = community.stats().total_bytes();
  const std::uint64_t msgs0 = community.stats().total_messages();
  const auto types_bytes0 = community.stats().bytes_by_type();
  const auto types_msgs0 = community.stats().messages_by_type();
  const gossip::GossipStats gossip0 = community.stats().gossip_stats();
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const double t0 = wall_now_s();

  TimePoint at = kMinute;
  community.run_until(at);
  for (std::size_t e = 0; e < events; ++e) {
    community.inject_filter_change(static_cast<gossip::PeerId>((e * 997) % peers), 100);
    at += 15 * kSecond;
    community.run_until(at);
  }
  community.set_tracking(false);
  community.run_until(at + 12 * kMinute);

  RunResult r;
  r.wall_s = wall_now_s() - t0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  r.rounds = community.rounds_executed() - rounds0;
  r.rounds_per_sec = r.wall_s > 0.0 ? static_cast<double>(r.rounds) / r.wall_s : 0.0;
  r.bytes = community.stats().total_bytes() - bytes0;
  r.messages = community.stats().total_messages() - msgs0;
  for (std::size_t i = 0; i < gossip::kMessageTypeCount; ++i) {
    r.bytes_by_type[i] = community.stats().bytes_by_type()[i] - types_bytes0[i];
    r.messages_by_type[i] = community.stats().messages_by_type()[i] - types_msgs0[i];
  }
  r.gossip = community.stats().gossip_stats();
  r.gossip -= gossip0;
  r.durations = community.tracker(t).durations().samples();
  r.consistent = community.directories_consistent();
  r.events = events;
  for (std::size_t id = 0; id < peers; ++id) {
    r.summary_builds +=
        community.protocol(static_cast<gossip::PeerId>(id)).directory().summary_builds();
  }
  return r;
}

void print_mode(Mode m, const RunResult& r) {
  std::printf(
      "  %-9s %7.2f s   %8llu rounds   %9.0f rounds/s   %7.1f B/round   %6.1f allocs/round   "
      "%llu summary builds%s\n",
      mode_name(m), r.wall_s, static_cast<unsigned long long>(r.rounds), r.rounds_per_sec,
      r.bytes_per_round(),
      r.rounds > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.rounds) : 0.0,
      static_cast<unsigned long long>(r.summary_builds), r.consistent ? "" : "   (INCONSISTENT)");
}

void print_dissemination(Mode m, const RunResult& r) {
  std::printf(
      "  %-9s payloads %llu (dup %llu)   digests %llu (%llu ids)   wants %llu (%llu ids, "
      "%llu served)   mean convergence %.1f s\n",
      mode_name(m), static_cast<unsigned long long>(r.gossip.payloads_sent),
      static_cast<unsigned long long>(r.gossip.duplicate_payloads),
      static_cast<unsigned long long>(r.gossip.digests_sent),
      static_cast<unsigned long long>(r.gossip.digest_ids_sent),
      static_cast<unsigned long long>(r.gossip.wants_sent),
      static_cast<unsigned long long>(r.gossip.want_ids_sent),
      static_cast<unsigned long long>(r.gossip.wants_served), r.mean_convergence_s());
  std::printf("  %-9s bytes by type:", mode_name(m));
  for (std::size_t i = 0; i < gossip::kMessageTypeCount; ++i) {
    if (r.bytes_by_type[i] == 0) continue;
    std::printf(" %s %.1f B/round", kTypeNames[i],
                r.rounds > 0 ? static_cast<double>(r.bytes_by_type[i]) /
                                   static_cast<double>(r.rounds)
                             : 0.0);
  }
  std::printf("\n");
}

/// The cache must be invisible: same seed, same trace.
bool equivalent(const RunResult& a, const RunResult& b) {
  return a.bytes == b.bytes && a.messages == b.messages && a.rounds == b.rounds &&
         a.durations == b.durations && a.consistent && b.consistent;
}

struct SizeResult {
  std::size_t peers = 0;
  RunResult uncached, cached, parallel, lazy, hybrid;
  double speedup = 0.0;
  double hybrid_byte_reduction = 0.0;  ///< eager bytes/round ÷ hybrid bytes/round
};

SizeResult run_size(std::size_t peers, std::size_t events) {
  SizeResult out;
  out.peers = peers;
  std::printf("%5zu peers, %zu filter-change events:\n", peers, events);
  out.uncached = run_mode(Mode::kUncached, peers, events);
  print_mode(Mode::kUncached, out.uncached);
  out.cached = run_mode(Mode::kCached, peers, events);
  print_mode(Mode::kCached, out.cached);
  out.parallel = run_mode(Mode::kParallel, peers, events);
  print_mode(Mode::kParallel, out.parallel);
  out.lazy = run_mode(Mode::kLazy, peers, events);
  print_mode(Mode::kLazy, out.lazy);
  out.hybrid = run_mode(Mode::kHybrid, peers, events);
  print_mode(Mode::kHybrid, out.hybrid);
  out.speedup =
      out.uncached.rounds_per_sec > 0.0 ? out.cached.rounds_per_sec / out.uncached.rounds_per_sec
                                        : 0.0;
  std::printf("  cached speedup vs uncached: %.1fx\n", out.speedup);
  print_dissemination(Mode::kCached, out.cached);
  print_dissemination(Mode::kLazy, out.lazy);
  print_dissemination(Mode::kHybrid, out.hybrid);
  out.hybrid_byte_reduction = out.hybrid.bytes_per_round() > 0.0
                                  ? out.cached.bytes_per_round() / out.hybrid.bytes_per_round()
                                  : 0.0;
  std::printf("  hybrid byte reduction vs eager: %.2fx\n\n", out.hybrid_byte_reduction);
  return out;
}

void append_mode(std::ostringstream& os, const char* name, const RunResult& r) {
  os << "\"" << name << "\": {\"wall_s\": " << r.wall_s << ", \"rounds\": " << r.rounds
     << ", \"rounds_per_sec\": " << r.rounds_per_sec
     << ", \"bytes_per_round\": " << r.bytes_per_round() << ", \"allocs_per_round\": "
     << (r.rounds > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.rounds) : 0.0)
     << ", \"summary_builds\": " << r.summary_builds
     << ", \"converged_events\": " << r.durations.size()
     << ", \"mean_convergence_s\": " << r.mean_convergence_s() << ", \"bytes_by_type\": {";
  bool first = true;
  for (std::size_t i = 0; i < gossip::kMessageTypeCount; ++i) {
    if (r.bytes_by_type[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << kTypeNames[i] << "\": " << r.bytes_by_type[i];
  }
  os << "}, \"payloads_sent\": " << r.gossip.payloads_sent
     << ", \"duplicate_payloads\": " << r.gossip.duplicate_payloads
     << ", \"digests_sent\": " << r.gossip.digests_sent
     << ", \"wants_served\": " << r.gossip.wants_served << "}";
}

/// Minimal key lookup in the baseline JSON: finds "key" and parses the
/// number after the following ':'.
double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

/// Gate 4: lazy pushes nothing blind and a converged community re-delivers
/// (nearly) nothing. The handful of tolerated duplicates are want/pull races
/// — two peers serving the same id before either delivery lands.
int check_lazy_counters(std::size_t peers, const RunResult& lazy) {
  int rc = 0;
  if (lazy.gossip.payloads_sent != 0) {
    std::fprintf(stderr, "FAIL: lazy mode pushed %llu blind payloads at %zu peers (want 0)\n",
                 static_cast<unsigned long long>(lazy.gossip.payloads_sent), peers);
    rc = 1;
  }
  const std::uint64_t dup_budget = lazy.events * 2 + 8;
  if (lazy.gossip.duplicate_payloads > dup_budget) {
    std::fprintf(stderr,
                 "FAIL: lazy mode saw %llu duplicate payload deliveries at %zu peers "
                 "(budget %llu)\n",
                 static_cast<unsigned long long>(lazy.gossip.duplicate_payloads), peers,
                 static_cast<unsigned long long>(dup_budget));
    rc = 1;
  }
  return rc;
}

/// --lazy-smoke: a small lazy + hybrid community under the sanitizer build.
/// Exercises the digest/want/serve path and the delta-summary path end to
/// end, then applies the convergence and counter gates (not the byte-ratio
/// gate: at smoke scale the full-summary baseline is cheap anyway).
int run_lazy_smoke() {
  constexpr std::size_t kPeers = 300;
  constexpr std::size_t kEvents = 3;
  int rc = 0;
  for (Mode m : {Mode::kLazy, Mode::kHybrid}) {
    const RunResult r = run_mode(m, kPeers, kEvents);
    print_mode(m, r);
    print_dissemination(m, r);
    if (!r.consistent || r.durations.size() != kEvents) {
      std::fprintf(stderr, "FAIL: %s smoke did not converge (%zu/%zu events)\n", mode_name(m),
                   r.durations.size(), kEvents);
      rc = 1;
    }
    if (m == Mode::kLazy) rc |= check_lazy_counters(kPeers, r);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool lazy_smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--lazy-smoke") == 0) {
      lazy_smoke = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }
  if (lazy_smoke) return run_lazy_smoke();

  const std::size_t events = quick ? 4 : 12;
  std::vector<SizeResult> results;
  results.push_back(run_size(1000, events));
  results.push_back(run_size(5000, events));

  std::ostringstream os;
  os << "{\n  \"bench\": \"gossip_throughput\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    os << "    {\"peers\": " << r.peers << ", \"events\": " << r.cached.events << ", ";
    append_mode(os, "uncached", r.uncached);
    os << ", ";
    append_mode(os, "cached", r.cached);
    os << ", ";
    append_mode(os, "parallel", r.parallel);
    os << ", ";
    append_mode(os, "lazy", r.lazy);
    os << ", ";
    append_mode(os, "hybrid", r.hybrid);
    os << ", \"cached_speedup_vs_uncached\": " << r.speedup
       << ", \"hybrid_byte_reduction\": " << r.hybrid_byte_reduction << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (const SizeResult& r : results) {
    os << "  \"cached_rps_" << r.peers << "\": " << r.cached.rounds_per_sec << ",\n";
    os << "  \"hybrid_bytes_per_round_" << r.peers << "\": " << r.hybrid.bytes_per_round()
       << ",\n";
    os << "  \"lazy_bytes_per_round_" << r.peers << "\": " << r.lazy.bytes_per_round() << ",\n";
  }
  os << "  \"cached_speedup_5000\": " << results.back().speedup << ",\n"
     << "  \"hybrid_byte_reduction_5000\": " << results.back().hybrid_byte_reduction << "\n}\n";

  std::ofstream("BENCH_gossip_throughput.json") << os.str();
  std::printf("wrote BENCH_gossip_throughput.json\n");

  int rc = 0;
  for (const SizeResult& r : results) {
    if (!equivalent(r.uncached, r.cached)) {
      std::fprintf(stderr,
                   "FAIL: cached run diverges from uncached at %zu peers "
                   "(bytes %llu vs %llu, msgs %llu vs %llu, rounds %llu vs %llu, "
                   "converged %zu vs %zu)\n",
                   r.peers, static_cast<unsigned long long>(r.uncached.bytes),
                   static_cast<unsigned long long>(r.cached.bytes),
                   static_cast<unsigned long long>(r.uncached.messages),
                   static_cast<unsigned long long>(r.cached.messages),
                   static_cast<unsigned long long>(r.uncached.rounds),
                   static_cast<unsigned long long>(r.cached.rounds),
                   r.uncached.durations.size(), r.cached.durations.size());
      rc = 1;
    }
    if (r.cached.durations.size() != r.cached.events || !r.cached.consistent) {
      std::fprintf(stderr, "FAIL: cached run at %zu peers did not converge (%zu/%zu events)\n",
                   r.peers, r.cached.durations.size(), r.cached.events);
      rc = 1;
    }
    if (!r.parallel.consistent || r.parallel.durations.size() != r.parallel.events) {
      std::fprintf(stderr, "FAIL: parallel run at %zu peers did not converge (%zu/%zu events)\n",
                   r.peers, r.parallel.durations.size(), r.parallel.events);
      rc = 1;
    }
    // The lazy tentpole's convergence gates: every event still converges in
    // both new modes, and every directory ends consistent.
    for (const RunResult* m : {&r.lazy, &r.hybrid}) {
      const char* name = m == &r.lazy ? "lazy" : "hybrid";
      if (!m->consistent || m->durations.size() != m->events) {
        std::fprintf(stderr, "FAIL: %s run at %zu peers did not converge (%zu/%zu events)\n",
                     name, r.peers, m->durations.size(), m->events);
        rc = 1;
      }
    }
    rc |= check_lazy_counters(r.peers, r.lazy);
    // Convergence time must stay in eager's ballpark — the byte savings may
    // not come from propagating slower (gate 3's second half).
    if (r.hybrid.mean_convergence_s() > r.cached.mean_convergence_s() * 1.5) {
      std::fprintf(stderr,
                   "FAIL: hybrid mean convergence %.1f s vs eager %.1f s at %zu peers "
                   "(> 1.5x)\n",
                   r.hybrid.mean_convergence_s(), r.cached.mean_convergence_s(), r.peers);
      rc = 1;
    }
  }
  if (results.back().speedup < 3.0) {
    std::fprintf(stderr, "FAIL: cached only %.1fx vs uncached at 5000 peers (need >= 3x)\n",
                 results.back().speedup);
    rc = 1;
  }
  if (results.back().hybrid_byte_reduction < 2.0) {
    std::fprintf(stderr,
                 "FAIL: hybrid moves only %.2fx fewer bytes/round than eager at 5000 peers "
                 "(need > 2x)\n",
                 results.back().hybrid_byte_reduction);
    rc = 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const SizeResult& r : results) {
      const std::string key = "cached_rps_" + std::to_string(r.peers);
      const double recorded = parse_key(baseline, key);
      if (recorded <= 0.0) continue;
      if (r.cached.rounds_per_sec < recorded / 2.0) {
        std::fprintf(stderr,
                     "FAIL: cached rounds/s at %zu peers regressed: %.0f vs baseline %.0f "
                     "(>2x drop)\n",
                     r.peers, r.cached.rounds_per_sec, recorded);
        rc = 1;
      } else {
        std::printf("baseline check at %zu peers: %.0f rounds/s vs recorded %.0f — ok\n", r.peers,
                    r.cached.rounds_per_sec, recorded);
      }
    }
    for (const SizeResult& r : results) {
      const std::string key = "hybrid_bytes_per_round_" + std::to_string(r.peers);
      const double recorded = parse_key(baseline, key);
      if (recorded <= 0.0) continue;
      if (r.hybrid.bytes_per_round() > recorded * 2.0) {
        std::fprintf(stderr,
                     "FAIL: hybrid bytes/round at %zu peers regressed: %.1f vs baseline %.1f "
                     "(>2x growth)\n",
                     r.peers, r.hybrid.bytes_per_round(), recorded);
        rc = 1;
      } else {
        std::printf("baseline check at %zu peers: %.1f hybrid B/round vs recorded %.1f — ok\n",
                    r.peers, r.hybrid.bytes_per_round(), recorded);
      }
    }
  }
  return rc;
}
