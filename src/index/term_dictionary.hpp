#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

/// \file term_dictionary.hpp
/// Per-store interned term dictionary: term string -> dense TermId. This is
/// the "Managing Gigabytes" style term numbering that lets the rest of the
/// local hot path (inverted index, Bloom filter feed, eq. 2 scoring) work on
/// small integers and pre-computed hashes instead of std::string keys.
///
/// Properties:
///   - ids are dense and append-only: the i-th distinct term interned gets
///     id i, and ids are never reused or freed (a store's term vocabulary
///     only grows; postings for a term may empty out, but the id stays),
///   - term bytes live in append-only arena blocks, so a string_view
///     returned by term() stays valid for the dictionary's lifetime and the
///     hash table needs no per-term allocation,
///   - the double-hashing HashPair of every term is computed once at intern
///     time and reused for both Bloom-filter updates and lookups.
///
/// Term ids are STORE-LOCAL. They must never appear in any wire or on-disk
/// format: two stores (or one store before/after a snapshot restore) may
/// assign different ids to the same term. Everything leaving the process
/// speaks term *strings* (or their hashes); see docs/INDEX.md.
///
/// Concurrency contract: the dictionary is single-writer, writer-side only.
/// Concurrent query threads never touch it — published EpochSnapshots
/// (epoch_index.hpp) carry their own term strings (segment entries and the
/// base CompressedIndex own copies), precisely so that readers need no
/// synchronization with interning.

namespace planetp::index {

/// Dense store-local term number.
using TermId = std::uint32_t;

/// Sentinel for "term not present".
inline constexpr TermId kInvalidTermId = 0xFFFF'FFFFu;

class TermDictionary {
 public:
  TermDictionary() = default;

  /// Id of \p term, interning it if new. Amortized O(1); at most one arena
  /// growth per kBlockBytes of term text.
  TermId intern(std::string_view term);

  /// Id of \p term, or kInvalidTermId when never interned. Never allocates.
  TermId find(std::string_view term) const;

  /// The interned spelling of \p id. Valid for the dictionary's lifetime.
  std::string_view term(TermId id) const {
    const Ref& r = refs_[id];
    return std::string_view(blocks_[r.block].data() + r.offset, r.length);
  }

  /// Double-hashing pair of \p id, computed once at intern time. Feeds the
  /// Bloom filter without re-hashing the term string.
  const HashPair& hash(TermId id) const { return hashes_[id]; }

  /// Number of distinct terms ever interned.
  std::size_t size() const { return refs_.size(); }

  /// Approximate heap footprint (arena + tables), for stats/benchmarks.
  std::size_t memory_bytes() const;

 private:
  struct Ref {
    std::uint32_t block = 0;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  static constexpr std::size_t kBlockBytes = 64 * 1024;

  void grow_table();

  /// Arena blocks. Each block's capacity is fixed at creation, so data()
  /// never moves while terms are appended (copying the dictionary copies the
  /// blocks; Refs are indices, not pointers, so copies stay valid).
  std::vector<std::string> blocks_;
  std::vector<Ref> refs_;        ///< by TermId
  std::vector<HashPair> hashes_; ///< by TermId
  /// Open-addressing table of TermId+1 (0 = empty), probed by HashPair::h1.
  /// Stores only ids, so the default copy/move of the whole dictionary is
  /// correct — nothing points into the arena.
  std::vector<std::uint32_t> table_;
  std::size_t table_mask_ = 0;
};

}  // namespace planetp::index
