#include "net/rpc.hpp"

#include <stdexcept>

namespace planetp::net {

namespace {

enum class Tag : std::uint8_t {
  kRankedRequest = 1,
  kRankedResponse = 2,
  kExhaustiveRequest = 3,
  kExhaustiveResponse = 4,
  kFetchRequest = 5,
  kFetchResponse = 6,
  kStoreSnippet = 7,
  kLookupSnippetRequest = 8,
  kLookupSnippetResponse = 9,
  kErrorResponse = 10,
};

void encode_snippet(ByteWriter& w, const WireSnippet& s) {
  w.u32(s.publisher);
  w.u64(s.snippet_id);
  w.str(s.xml);
  w.varint(s.keys.size());
  for (const auto& k : s.keys) w.str(k);
  w.svarint(s.ttl_us);
}

WireSnippet decode_snippet(ByteReader& r) {
  WireSnippet s;
  s.publisher = r.u32();
  s.snippet_id = r.u64();
  s.xml = r.str();
  const std::size_t n = r.count();
  s.keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.keys.push_back(r.str());
  s.ttl_us = r.svarint();
  return s;
}

void encode_docs(ByteWriter& w, const std::vector<RemoteDoc>& docs) {
  w.varint(docs.size());
  for (const RemoteDoc& d : docs) {
    w.u32(d.peer);
    w.u32(d.local);
    w.f64(d.score);
    w.str(d.title);
  }
}

std::vector<RemoteDoc> decode_docs(ByteReader& r) {
  const std::size_t n = r.count(17);  // u32 + u32 + f64 + 1-byte str prefix
  std::vector<RemoteDoc> docs;
  docs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RemoteDoc d;
    d.peer = r.u32();
    d.local = r.u32();
    d.score = r.f64();
    d.title = r.str();
    docs.push_back(std::move(d));
  }
  return docs;
}

struct Encoder {
  ByteWriter& w;

  void operator()(const RankedRequest& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRankedRequest));
    w.u64(m.request_id);
    w.varint(m.weights.size());
    for (const WeightedTerm& t : m.weights) {
      w.str(t.term);
      w.f64(t.weight);
    }
  }
  void operator()(const RankedResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRankedResponse));
    w.u64(m.request_id);
    encode_docs(w, m.docs);
  }
  void operator()(const ExhaustiveRequest& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kExhaustiveRequest));
    w.u64(m.request_id);
    w.str(m.query);
  }
  void operator()(const ExhaustiveResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kExhaustiveResponse));
    w.u64(m.request_id);
    encode_docs(w, m.docs);
  }
  void operator()(const FetchRequest& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kFetchRequest));
    w.u64(m.request_id);
    w.u32(m.peer);
    w.u32(m.local);
  }
  void operator()(const FetchResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kFetchResponse));
    w.u64(m.request_id);
    w.u8(m.found ? 1 : 0);
    w.str(m.title);
    w.str(m.xml);
  }
  void operator()(const StoreSnippetRequest& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kStoreSnippet));
    w.u64(m.request_id);
    encode_snippet(w, m.snippet);
  }
  void operator()(const LookupSnippetRequest& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kLookupSnippetRequest));
    w.u64(m.request_id);
    w.str(m.key);
  }
  void operator()(const LookupSnippetResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kLookupSnippetResponse));
    w.u64(m.request_id);
    w.varint(m.snippets.size());
    for (const auto& s : m.snippets) encode_snippet(w, s);
  }
  void operator()(const ErrorResponse& m) const {
    w.u8(static_cast<std::uint8_t>(Tag::kErrorResponse));
    w.u64(m.request_id);
    w.u8(static_cast<std::uint8_t>(m.error));
  }
};

}  // namespace

std::vector<std::uint8_t> encode_rpc(const RpcMessage& msg) {
  ByteWriter w;
  std::visit(Encoder{w}, msg);
  return w.take();
}

RpcMessage decode_rpc(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const Tag tag = static_cast<Tag>(r.u8());
  switch (tag) {
    case Tag::kRankedRequest: {
      RankedRequest m;
      m.request_id = r.u64();
      const std::size_t n = r.count(9);  // str + f64
      m.weights.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        WeightedTerm t;
        t.term = r.str();
        t.weight = r.f64();
        m.weights.push_back(std::move(t));
      }
      return m;
    }
    case Tag::kRankedResponse: {
      RankedResponse m;
      m.request_id = r.u64();
      m.docs = decode_docs(r);
      return m;
    }
    case Tag::kExhaustiveRequest: {
      ExhaustiveRequest m;
      m.request_id = r.u64();
      m.query = r.str();
      return m;
    }
    case Tag::kExhaustiveResponse: {
      ExhaustiveResponse m;
      m.request_id = r.u64();
      m.docs = decode_docs(r);
      return m;
    }
    case Tag::kFetchRequest: {
      FetchRequest m;
      m.request_id = r.u64();
      m.peer = r.u32();
      m.local = r.u32();
      return m;
    }
    case Tag::kFetchResponse: {
      FetchResponse m;
      m.request_id = r.u64();
      m.found = r.u8() != 0;
      m.title = r.str();
      m.xml = r.str();
      return m;
    }
    case Tag::kStoreSnippet: {
      StoreSnippetRequest m;
      m.request_id = r.u64();
      m.snippet = decode_snippet(r);
      return m;
    }
    case Tag::kLookupSnippetRequest: {
      LookupSnippetRequest m;
      m.request_id = r.u64();
      m.key = r.str();
      return m;
    }
    case Tag::kLookupSnippetResponse: {
      LookupSnippetResponse m;
      m.request_id = r.u64();
      const std::size_t n = r.count(15);  // minimum encoded WireSnippet
      m.snippets.reserve(n);
      for (std::size_t i = 0; i < n; ++i) m.snippets.push_back(decode_snippet(r));
      return m;
    }
    case Tag::kErrorResponse: {
      ErrorResponse m;
      m.request_id = r.u64();
      m.error = static_cast<RpcError>(r.u8());
      return m;
    }
  }
  throw std::runtime_error("decode_rpc: unknown tag");
}

std::uint64_t rpc_request_id(const RpcMessage& msg) {
  return std::visit([](const auto& m) { return m.request_id; }, msg);
}

}  // namespace planetp::net
