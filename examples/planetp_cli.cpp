/// \file planetp_cli.cpp
/// An interactive PlanetP peer. Runs a live TCP node (real gossip), keeps a
/// durable local data store, and exposes publish/search at a prompt:
///
///   # first member of a community
///   planetp_cli --id 0 --port 9200 --store /tmp/peer0.ppds
///
///   # join through any existing member
///   planetp_cli --id 1 --port 9201 --join 0@127.0.0.1:9200
///
/// Commands: publish <title> <text…> | pubfile <path> | search <terms…> |
///           find <terms…> | fetch <peer> <doc> | peers | save | help | quit

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "index/persistence.hpp"
#include "net/live_node.hpp"

using namespace planetp;

namespace {

struct CliOptions {
  gossip::PeerId id = 0;
  std::uint16_t port = 0;
  gossip::PeerId join_id = gossip::kInvalidPeer;
  std::string join_address;
  std::string store_path;
  Duration gossip_interval = kSecond;
};

void usage() {
  std::puts(
      "usage: planetp_cli --id N [--port P] [--join ID@HOST:PORT] [--store FILE]\n"
      "                   [--interval SECONDS]");
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--id") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.id = static_cast<gossip::PeerId>(std::atoi(v));
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--join") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* at = std::strchr(v, '@');
      if (at == nullptr) return false;
      opts.join_id = static_cast<gossip::PeerId>(std::atoi(std::string(v, at).c_str()));
      opts.join_address = at + 1;
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.store_path = v;
    } else if (arg == "--interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.gossip_interval = seconds(std::atof(v));
    } else {
      return false;
    }
  }
  return true;
}

void print_help() {
  std::puts(
      "  publish <title> <text...>  index and share a document\n"
      "  pubfile <path>             publish a text file's contents\n"
      "  search <terms...>          ranked TFxIPF search (top 10)\n"
      "  find <terms...>            exhaustive conjunctive search\n"
      "  fetch <peer> <doc>         download a document's XML from its owner\n"
      "  peers                      show the replicated directory\n"
      "  save                       snapshot the local store (needs --store)\n"
      "  help                       this text\n"
      "  quit                       save (if --store) and exit");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 2;
  }

  net::LiveNodeConfig cfg;
  cfg.gossip.base_interval = opts.gossip_interval;
  cfg.gossip.max_interval = 4 * opts.gossip_interval;
  cfg.gossip.slow_down = opts.gossip_interval;

  net::LiveNode node(opts.id, cfg, opts.port);

  // Restore the durable store before announcing ourselves so the join rumor
  // advertises the full Bloom filter.
  std::size_t restored = 0;
  if (!opts.store_path.empty()) {
    try {
      index::DataStore snapshot = index::load_data_store(opts.store_path, cfg.bloom);
      for (const index::DocumentId& id : snapshot.documents()) {
        const index::Document* doc = snapshot.document(id);
        if (doc != nullptr) {
          node.publish(doc->xml_source);
          ++restored;
        }
      }
    } catch (const std::exception&) {
      // No snapshot yet: first run.
    }
  }

  node.start();
  std::printf("peer %u listening on %s", opts.id, node.address().c_str());
  if (restored != 0) std::printf(" (%zu documents restored)", restored);
  std::puts("");

  if (opts.join_id != gossip::kInvalidPeer) {
    node.join(opts.join_id, opts.join_address);
    std::printf("joining via peer %u at %s...\n", opts.join_id, opts.join_address.c_str());
  }
  std::puts("type 'help' for commands");

  auto save_snapshot = [&]() -> bool {
    if (opts.store_path.empty()) return false;
    const auto bytes = node.serialize_store();
    const std::string tmp = opts.store_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) return false;
    }
    return std::rename(tmp.c_str(), opts.store_path.c_str()) == 0;
  };

  std::string line;
  while (std::printf("planetp> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
      continue;
    }
    if (cmd == "publish") {
      std::string title, rest;
      in >> title;
      std::getline(in, rest);
      if (title.empty() || rest.empty()) {
        std::puts("usage: publish <title> <text...>");
        continue;
      }
      const auto id = node.publish_text(title, rest);
      std::printf("published %u/%u\n", id.peer, id.local);
      continue;
    }
    if (cmd == "pubfile") {
      std::string path;
      in >> path;
      std::ifstream file(path);
      if (!file) {
        std::printf("cannot open %s\n", path.c_str());
        continue;
      }
      std::stringstream content;
      content << file.rdbuf();
      const auto id = node.publish_text(path, content.str());
      std::printf("published %s as %u/%u\n", path.c_str(), id.peer, id.local);
      continue;
    }
    if (cmd == "search" || cmd == "find") {
      std::string query;
      std::getline(in, query);
      if (query.empty()) {
        std::printf("usage: %s <terms...>\n", cmd.c_str());
        continue;
      }
      const auto hits =
          cmd == "search" ? node.ranked_search(query, 10) : node.exhaustive_search(query);
      if (hits.empty()) std::puts("no matches");
      for (const auto& hit : hits) {
        if (cmd == "search") {
          std::printf("  %.3f  %u/%u  %s\n", hit.score, hit.peer, hit.local,
                      hit.title.c_str());
        } else {
          std::printf("  %u/%u  %s\n", hit.peer, hit.local, hit.title.c_str());
        }
      }
      continue;
    }
    if (cmd == "fetch") {
      std::uint32_t peer = 0, local = 0;
      in >> peer >> local;
      const auto xml = node.fetch_document(peer, local);
      if (xml) {
        std::printf("%s\n", xml->c_str());
      } else {
        std::puts("not found (owner offline or unknown id)");
      }
      continue;
    }
    if (cmd == "peers") {
      const auto snapshot = node.directory_snapshot();
      std::printf("directory (%zu known members):\n", snapshot.size());
      for (const auto& peer : snapshot) {
        std::printf("  %4u  %-22s v%-4llu %-7s %u keys\n", peer.id, peer.address.c_str(),
                    static_cast<unsigned long long>(peer.version),
                    peer.online ? "online" : "offline", peer.key_count);
      }
      continue;
    }
    if (cmd == "save") {
      if (opts.store_path.empty()) {
        std::puts("no --store path configured");
      } else if (save_snapshot()) {
        std::printf("saved store to %s\n", opts.store_path.c_str());
      } else {
        std::puts("save failed");
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }

  if (!opts.store_path.empty() && save_snapshot()) {
    std::printf("saved store to %s\n", opts.store_path.c_str());
  }
  node.stop();
  return 0;
}
