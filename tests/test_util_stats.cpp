#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace planetp {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, PercentileOfEmpty) {
  SampleSet s;
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(SampleSet, MeanMinMax) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, CdfIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add((i * 37) % 500);
  const auto cdf = s.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(4.0 + 0.011 * i + ((i % 2) ? 0.01 : -0.01));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 4.0, 0.05);
  EXPECT_NEAR(fit.slope, 0.011, 0.001);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1}, {2}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1}), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps low
  h.add(100.0);   // clamps high
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);  // 0.5 and the clamped low
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, ToStringHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string s = h.to_string();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

}  // namespace
}  // namespace planetp
