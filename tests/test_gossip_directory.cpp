#include "gossip/directory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace planetp::gossip {
namespace {

PeerRecord record(PeerId id, std::uint64_t version, LinkClass cls = LinkClass::kFast) {
  PeerRecord r;
  r.id = id;
  r.address = "peer://" + std::to_string(id);
  r.version = version;
  r.link_class = cls;
  return r;
}

TEST(Directory, ApplyInsertsUnknownPeer) {
  Directory dir(0);
  EXPECT_TRUE(dir.apply(record(1, 1)));
  EXPECT_EQ(dir.size(), 1u);
  ASSERT_NE(dir.find(1), nullptr);
  EXPECT_EQ(dir.find(1)->version, 1u);
}

TEST(Directory, ApplyRejectsStaleAndEqualVersions) {
  Directory dir(0);
  dir.apply(record(1, 5));
  EXPECT_FALSE(dir.apply(record(1, 5)));
  EXPECT_FALSE(dir.apply(record(1, 4)));
  EXPECT_TRUE(dir.apply(record(1, 6)));
  EXPECT_EQ(dir.find(1)->version, 6u);
}

TEST(Directory, ApplyNewVersionFlipsPeerBackOnline) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 100);
  EXPECT_FALSE(dir.find(1)->online);
  dir.apply(record(1, 2));
  EXPECT_TRUE(dir.find(1)->online);
}

TEST(Directory, MarkOfflineRecordsFirstFailureTime) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 12345);
  EXPECT_EQ(dir.find(1)->offline_since, 12345);
  // Second mark must not reset the clock (T_dead counts from first failure).
  dir.mark_offline(1, 99999);
  EXPECT_EQ(dir.find(1)->offline_since, 12345);
}

TEST(Directory, ExpireDeadDropsLongOfflinePeers) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  dir.mark_offline(1, 0);

  const auto dropped = dir.expire_dead(10 * kHour, 6 * kHour);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 1u);
  EXPECT_EQ(dir.find(1), nullptr);
  EXPECT_NE(dir.find(2), nullptr);
}

TEST(Directory, ExpireDeadSparesRecentlyOffline) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 5 * kHour);
  EXPECT_TRUE(dir.expire_dead(10 * kHour, 6 * kHour).empty());
}

TEST(Directory, ExpireNeverDropsSelf) {
  Directory dir(7);
  dir.put_self(record(7, 1));
  dir.mark_offline(7, 0);
  EXPECT_TRUE(dir.expire_dead(100 * kHour, kHour).empty());
}

TEST(Directory, RandomOnlineExcludesSelfAndOffline) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  dir.mark_offline(2, 0);

  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dir.random_online(rng), 1u);
  }
}

TEST(Directory, RandomOnlineReturnsInvalidWhenAlone) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  Rng rng(2);
  EXPECT_EQ(dir.random_online(rng), kInvalidPeer);
}

TEST(Directory, RandomOnlineOfClass) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1, LinkClass::kFast));
  dir.apply(record(2, 1, LinkClass::kSlow));
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(dir.random_online_of_class(rng, LinkClass::kSlow), 2u);
    EXPECT_EQ(dir.random_online_of_class(rng, LinkClass::kFast), 1u);
  }
}

TEST(Directory, RandomOnlineCoversAllCandidates) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  for (PeerId id = 1; id <= 10; ++id) dir.apply(record(id, 1));
  Rng rng(4);
  std::set<PeerId> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(dir.random_online(rng));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Directory, SummarySortedByPeer) {
  Directory dir(0);
  dir.apply(record(5, 2));
  dir.apply(record(1, 7));
  dir.apply(record(3, 1));
  const auto summary = dir.summary();
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].id, 1u);
  EXPECT_EQ(summary[0].version, 7u);
  EXPECT_EQ(summary[2].id, 5u);
}

TEST(Directory, NewerInFindsMissingAndStale) {
  Directory dir(0);
  dir.apply(record(1, 3));
  dir.apply(record(2, 1));

  const std::vector<PeerSummary> remote = {{1, 3}, {2, 5}, {9, 1}};
  const auto missing = dir.newer_in(remote);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].origin, 2u);
  EXPECT_EQ(missing[0].version, 5u);
  EXPECT_EQ(missing[1].origin, 9u);
}

TEST(Directory, SameAsExactMatchOnly) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.apply(record(2, 2));
  EXPECT_TRUE(dir.same_as({{1, 1}, {2, 2}}));
  EXPECT_FALSE(dir.same_as({{1, 1}}));
  EXPECT_FALSE(dir.same_as({{1, 1}, {2, 3}}));
  EXPECT_FALSE(dir.same_as({{1, 1}, {2, 2}, {3, 1}}));
}

TEST(Directory, OnlineCount) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  EXPECT_EQ(dir.online_count(), 3u);
  dir.mark_offline(1, 0);
  EXPECT_EQ(dir.online_count(), 2u);
  dir.mark_online(1);
  EXPECT_EQ(dir.online_count(), 3u);
}

TEST(Directory, QueryFailuresAccumulateIntoSuspectOffline) {
  // Repeated query-time failures raise the local SUSPECT level; at the
  // threshold the peer is demoted to offline exactly as a failed gossip
  // contact would demote it (docs/SEARCH.md).
  Directory dir(0);
  dir.apply(record(1, 1));
  EXPECT_EQ(dir.suspicion(1), 0u);

  for (std::uint32_t i = 1; i < Directory::kSuspectThreshold; ++i) {
    EXPECT_EQ(dir.record_query_failure(1, 100), i);
    EXPECT_TRUE(dir.find(1)->online) << "below threshold must not demote";
  }
  EXPECT_EQ(dir.record_query_failure(1, 100), Directory::kSuspectThreshold);
  EXPECT_FALSE(dir.find(1)->online);
  EXPECT_EQ(dir.suspicion(1), Directory::kSuspectThreshold);
}

TEST(Directory, QuerySuccessClearsSuspicion) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.record_query_failure(1, 100);
  dir.record_query_failure(1, 100);
  EXPECT_EQ(dir.suspicion(1), 2u);
  dir.record_query_success(1);
  EXPECT_EQ(dir.suspicion(1), 0u);
  EXPECT_TRUE(dir.find(1)->online);
}

TEST(Directory, SuspicionIsLocalAndResetByNewerGossip) {
  // A newer gossiped version is fresh evidence the peer lives: it resets the
  // local SUSPECT level (which is never serialized in the first place).
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.record_query_failure(1, 100);
  dir.record_query_failure(1, 100);
  EXPECT_TRUE(dir.apply(record(1, 2)));
  EXPECT_EQ(dir.suspicion(1), 0u);

  // mark_online (anti-entropy contact, rejoin) clears it too.
  dir.record_query_failure(1, 100);
  dir.mark_online(1);
  EXPECT_EQ(dir.suspicion(1), 0u);
}

TEST(Directory, QueryFailureIgnoresSelfAndUnknownPeers) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  EXPECT_EQ(dir.record_query_failure(0, 100), 0u);   // never suspect yourself
  EXPECT_EQ(dir.record_query_failure(42, 100), 0u);  // unknown peer: no-op
  EXPECT_EQ(dir.suspicion(0), 0u);
  EXPECT_EQ(dir.suspicion(42), 0u);
  EXPECT_TRUE(dir.find(0)->online);
}

TEST(Directory, ForEachVisitsEveryRecord) {
  Directory dir(0);
  for (PeerId id = 1; id <= 5; ++id) dir.apply(record(id, id));
  std::set<PeerId> seen;
  dir.for_each([&](const PeerRecord& r) { seen.insert(r.id); });
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace planetp::gossip
