#include "index/persistence.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/byte_buffer.hpp"
#include "util/varint.hpp"

namespace planetp::index {

namespace {
constexpr char kMagic[4] = {'P', 'P', 'D', 'S'};
constexpr char kIndexMagic[4] = {'P', 'P', 'C', 'I'};

[[noreturn]] void bad_index(const char* what) {
  throw std::runtime_error(std::string("compressed index snapshot: ") + what);
}
}

std::vector<std::uint8_t> serialize_data_store(const DataStore& store) {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.u32(kDataStoreFormatVersion);
  w.u32(store.peer_id());
  w.u32(store.next_local_id());

  const auto docs = store.documents();
  w.varint(docs.size());
  for (const DocumentId& id : docs) {
    const Document* doc = store.document(id);
    if (doc == nullptr) continue;  // defensive; documents() is authoritative
    w.u32(id.local);
    w.str(doc->xml_source);
  }
  return w.take();
}

DataStore deserialize_data_store(std::span<const std::uint8_t> bytes,
                                 bloom::BloomParams bloom_params,
                                 text::AnalyzerOptions analyzer_opts) {
  ByteReader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("data store snapshot: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kDataStoreFormatVersion) {
    throw std::runtime_error("data store snapshot: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t peer_id = r.u32();
  const std::uint32_t next_local = r.u32();

  DataStore store(peer_id, bloom_params, analyzer_opts);
  const std::size_t count = static_cast<std::size_t>(r.varint());
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t local = r.u32();
    store.publish_as(local, r.str());
  }
  // Restore the id counter even past gaps left by unpublished documents so
  // post-restore publishes never reuse a previously seen id.
  store.reserve_local_ids(next_local);
  return store;
}

std::vector<std::uint8_t> serialize_compressed_index(const CompressedIndex& ci) {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(kIndexMagic), 4));
  w.u32(kCompressedIndexFormatVersion);

  const auto& docs = ci.documents();
  w.varint(docs.size());
  for (std::uint32_t d = 0; d < docs.size(); ++d) {
    w.u32(docs[d].peer);
    w.u32(docs[d].local);
    w.varint(ci.doc_length_at(d));
  }

  // Canonical term order: lexicographic. Equal logical content serializes
  // to equal bytes no matter how the in-memory hash tables iterate — the
  // deserializer leans on this to verify stored block metadata by
  // re-encoding what it decoded.
  std::vector<CompressedIndex::TermView> terms;
  terms.reserve(ci.num_terms());
  ci.for_each_term_entry([&terms](const CompressedIndex::TermView& v) { terms.push_back(v); });
  std::sort(terms.begin(), terms.end(),
            [](const CompressedIndex::TermView& a, const CompressedIndex::TermView& b) {
              return a.term < b.term;
            });

  w.varint(terms.size());
  for (const CompressedIndex::TermView& v : terms) {
    w.str(v.term);
    w.varint(v.doc_freq);
    w.varint(v.collection_freq);
    w.bytes(std::span<const std::uint8_t>(v.run, v.run_bytes));
    w.varint(v.num_blocks);
    for (std::uint32_t b = 0; b < v.num_blocks; ++b) {
      const CompressedIndex::SkipEntry& sk = v.skips[b];
      w.varint(sk.offset);
      w.varint(sk.last_dense);
      w.varint(sk.base_dense);
      w.f64(sk.max_contrib);
      w.varint(sk.max_freq);
    }
    w.f64(v.max_contrib);
    w.varint(v.max_freq);
  }
  return w.take();
}

namespace {

CompressedIndex deserialize_compressed_index_impl(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kIndexMagic, 4) != 0) bad_index("bad magic");
  const std::uint32_t version = r.u32();
  if (version != kCompressedIndexFormatVersion) bad_index("unsupported version");

  // Document table: each entry costs at least 9 bytes (two u32 + a varint),
  // so count() rejects hostile lengths before any reserve.
  const std::size_t ndocs = r.count(9);
  std::vector<DocumentId> docs;
  std::vector<std::uint32_t> lengths;
  docs.reserve(ndocs);
  lengths.reserve(ndocs);
  for (std::size_t i = 0; i < ndocs; ++i) {
    DocumentId id;
    id.peer = r.u32();
    id.local = r.u32();
    const std::uint64_t len = r.varint();
    if (len > std::numeric_limits<std::uint32_t>::max()) bad_index("document length out of range");
    if (!docs.empty() && !(docs.back() < id)) bad_index("document table not ascending");
    docs.push_back(id);
    lengths.push_back(static_cast<std::uint32_t>(len));
  }
  CompressedIndex::Builder builder(std::move(docs), std::move(lengths));

  // A minimal well-formed term record is 28 bytes (empty-term prefix, df,
  // cf, a 2-byte single-posting run, one 12-byte skip entry, the term
  // bounds); the count discipline again bounds the reserve.
  const std::size_t nterms = r.count(28);
  std::string prev_term;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> postings;
  for (std::size_t t = 0; t < nterms; ++t) {
    std::string term = r.str();
    if (t > 0 && term <= prev_term) bad_index("terms not sorted");
    const std::uint64_t df = r.varint();
    if (df == 0 || df > ndocs) bad_index("bad document frequency");
    const std::uint64_t cf = r.varint();
    const std::vector<std::uint8_t> run = r.bytes();
    if (run.size() < df * 2) bad_index("posting run too short");  // >= 2 bytes per posting

    // Full decode of the run — every dense id bounds-checked against the
    // document table and required strictly ascending — before anything is
    // handed to a PostingCursor.
    postings.clear();
    postings.reserve(static_cast<std::size_t>(df));
    std::size_t pos = 0;
    std::uint32_t dense = 0;
    std::uint64_t freq_sum = 0;
    for (std::uint64_t j = 0; j < df; ++j) {
      const std::uint64_t gap = get_varint(run.data(), run.size(), pos);
      const std::uint64_t freq = get_varint(run.data(), run.size(), pos);
      const std::uint64_t next = j == 0 ? gap : static_cast<std::uint64_t>(dense) + gap + 1;
      if (next >= ndocs) bad_index("dense id out of range");
      if (freq == 0 || freq > std::numeric_limits<std::uint32_t>::max()) {
        bad_index("bad term frequency");
      }
      dense = static_cast<std::uint32_t>(next);
      freq_sum += freq;
      postings.emplace_back(dense, static_cast<std::uint32_t>(freq));
    }
    if (pos != run.size()) bad_index("posting run has trailing bytes");
    if (freq_sum != cf) bad_index("collection frequency mismatch");

    const std::size_t nblocks = r.count(12);  // 4 varints + f64 per entry
    const std::size_t expect_blocks =
        (static_cast<std::size_t>(df) + CompressedIndex::kBlockPostings - 1) /
        CompressedIndex::kBlockPostings;
    if (nblocks != expect_blocks) bad_index("bad block count");
    for (std::size_t b = 0; b < nblocks; ++b) {
      r.varint();  // offset      — verified below by canonical re-encode
      r.varint();  // last_dense
      r.varint();  // base_dense
      r.f64();     // max_contrib
      r.varint();  // max_freq
    }
    r.f64();     // term max_contrib — verified below
    r.varint();  // term max_freq    — verified below

    builder.add_term(term, postings);
    prev_term = std::move(term);
  }
  if (!r.done()) bad_index("trailing bytes");

  // The rebuilt index recomputed all block metadata from the decoded
  // postings. Serialization is canonical, so the input is well-formed iff
  // re-encoding reproduces it bit for bit — this verifies every stored
  // skip offset, dense bound, and score bound without trusting any of them.
  CompressedIndex out = builder.take();
  const std::vector<std::uint8_t> reencoded = serialize_compressed_index(out);
  if (reencoded.size() != bytes.size() ||
      std::memcmp(reencoded.data(), bytes.data(), bytes.size()) != 0) {
    bad_index("block metadata mismatch");
  }
  return out;
}

}  // namespace

CompressedIndex deserialize_compressed_index(std::span<const std::uint8_t> bytes) {
  try {
    return deserialize_compressed_index_impl(bytes);
  } catch (const std::out_of_range&) {
    bad_index("truncated");
  } catch (const std::overflow_error&) {
    bad_index("varint overflow");
  }
}

bool save_data_store(const DataStore& store, const std::string& path) {
  const auto bytes = serialize_data_store(store);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

DataStore load_data_store(const std::string& path, bloom::BloomParams bloom_params,
                          text::AnalyzerOptions analyzer_opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("data store snapshot: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize_data_store(bytes, bloom_params, analyzer_opts);
}

}  // namespace planetp::index
