#include "index/data_store.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace planetp::index {

DataStore::DataStore(std::uint32_t peer_id, bloom::BloomParams bloom_params,
                     text::AnalyzerOptions analyzer_opts, EpochConfig epoch_config)
    : peer_id_(peer_id),
      analyzer_(analyzer_opts),
      counting_filter_(bloom_params),
      epochs_(std::make_unique<EpochIndex>(epoch_config)) {}

void DataStore::index_document(const Document& doc) {
  counts_.clear();
  analyzer_.for_each_term(doc.text, scratch_, [&](std::string_view term) {
    counts_.add(index_.intern_term(term));
  });
  index_.add_document_counts(doc.id, counts_);
  // Feed the counting filter from the dictionary's pre-computed hashes: one
  // hash per distinct term per store lifetime, shared with index lookups.
  const TermDictionary& dict = index_.dictionary();
  for (const TermId term : counts_.terms()) {
    counting_filter_.insert(dict.hash(term));
  }
  epochs_->commit_publish(doc.id, dict, counts_);
}

DocumentId DataStore::publish(std::string xml_source) {
  return publish_as(next_local_id_, std::move(xml_source));
}

DocumentId DataStore::publish_as(std::uint32_t local_id, std::string xml_source) {
  const DocumentId id{peer_id_, local_id};
  if (docs_.contains(id)) {
    throw std::invalid_argument("DataStore::publish_as: local id already in use");
  }
  // Parse before burning the id: a malformed document leaves the store (and
  // the id counter) untouched, whether published directly or via a batch.
  Document doc = make_document(id, std::move(xml_source));
  if (local_id >= next_local_id_) next_local_id_ = local_id + 1;

  index_document(doc);
  docs_[id] = std::move(doc);
  ++filter_version_;
  return id;
}

DataStore::PreparedDoc DataStore::prepare(DocumentId id, std::string xml_source) const {
  PreparedDoc out;
  out.doc = make_document(id, std::move(xml_source));
  // Aggregate term counts in first-occurrence order so the commit interns
  // terms exactly as the streaming (sequential) path would. The scratch and
  // the position map are per-worker-thread (one task runs at a time on a
  // thread), so their buffers and the analyzer memo survive across tasks.
  static thread_local text::AnalyzerScratch scratch;
  static thread_local std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>
      position;
  position.clear();
  analyzer_.for_each_term(out.doc.text, scratch, [&](std::string_view term) {
    auto it = position.find(term);
    if (it == position.end()) {
      position.emplace(std::string(term), out.term_counts.size());
      out.term_counts.emplace_back(std::string(term), 1);
    } else {
      ++out.term_counts[it->second].second;
    }
  });
  return out;
}

void DataStore::commit_prepared(PreparedDoc&& prepared) {
  const DocumentId id = prepared.doc.id;
  if (docs_.contains(id)) {
    throw std::invalid_argument("DataStore::publish_batch: local id already in use");
  }
  if (id.local >= next_local_id_) next_local_id_ = id.local + 1;

  counts_.clear();
  for (const auto& [term, freq] : prepared.term_counts) {
    counts_.add(index_.intern_term(term), freq);
  }
  index_.add_document_counts(id, counts_);
  const TermDictionary& dict = index_.dictionary();
  for (const TermId term : counts_.terms()) {
    counting_filter_.insert(dict.hash(term));
  }
  epochs_->commit_publish(id, dict, counts_);
  docs_[id] = std::move(prepared.doc);
  ++filter_version_;
}

std::vector<DocumentId> DataStore::publish_batch(std::vector<std::string> xml_sources,
                                                 ThreadPool* pool) {
  std::vector<DocumentId> ids;
  ids.reserve(xml_sources.size());
  if (pool == nullptr || xml_sources.size() < 2) {
    for (std::string& xml : xml_sources) {
      ids.push_back(publish(std::move(xml)));
    }
    return ids;
  }

  // Parse + analyze in parallel; commit strictly in document order below, so
  // the resulting dictionary/index/filter are identical to a sequential
  // publish loop regardless of worker count or completion order.
  const std::uint32_t base = next_local_id_;
  std::vector<std::future<PreparedDoc>> prepared;
  prepared.reserve(xml_sources.size());
  for (std::size_t i = 0; i < xml_sources.size(); ++i) {
    const DocumentId id{peer_id_, base + static_cast<std::uint32_t>(i)};
    prepared.push_back(pool->submit(
        [this, id, xml = std::move(xml_sources[i])]() mutable {
          return prepare(id, std::move(xml));
        }));
  }
  for (std::future<PreparedDoc>& fut : prepared) {
    // get() rethrows a malformed-XML error after all earlier documents were
    // committed — the same state a sequential loop leaves behind.
    PreparedDoc doc = fut.get();
    const DocumentId id = doc.doc.id;
    commit_prepared(std::move(doc));
    ids.push_back(id);
  }
  return ids;
}

DocumentId DataStore::publish_text(std::string_view title, std::string_view body) {
  return publish(wrap_text_as_xml(title, body));
}

bool DataStore::unpublish(DocumentId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  docs_.erase(it);
  // Capture the document's exact postings before the index forgets them:
  // the epoch tombstone needs them so snapshot-wide collection statistics
  // keep matching a store that never indexed the document. The counting
  // filter is fed from the same pass (hashes pre-computed by the
  // dictionary).
  const TermDictionary& dict = index_.dictionary();
  const std::uint32_t doc_length = index_.document_length(id);
  std::vector<std::pair<std::string, std::uint32_t>> term_freqs;
  const std::vector<TermId>& term_ids = index_.document_term_ids(id);
  term_freqs.reserve(term_ids.size());
  for (const TermId term : term_ids) {
    counting_filter_.remove(dict.hash(term));
    term_freqs.emplace_back(std::string(dict.term(term)), index_.term_frequency_by_id(term, id));
  }
  index_.remove_document(id);
  epochs_->commit_remove(id, doc_length, std::move(term_freqs));
  ++filter_version_;
  return true;
}

bool DataStore::republish(DocumentId id, std::string xml_source) {
  if (!docs_.contains(id)) return false;
  // Validate the new content before tearing the old version down.
  Document replacement = make_document(id, std::move(xml_source));

  unpublish(id);
  index_document(replacement);
  docs_[id] = std::move(replacement);
  ++filter_version_;
  return true;
}

const Document* DataStore::document(DocumentId id) const {
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

std::vector<DocumentId> DataStore::search_all_terms(std::string_view query) const {
  const auto terms = analyzer_.analyze(query);
  if (terms.empty()) return {};

  // Intersect postings, starting with the rarest term.
  std::vector<std::string> unique(terms.begin(), terms.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  std::sort(unique.begin(), unique.end(), [&](const std::string& a, const std::string& b) {
    return index_.document_frequency(a) < index_.document_frequency(b);
  });

  std::vector<DocumentId> result;
  bool first = true;
  for (const auto& term : unique) {
    const auto& plist = index_.postings(term);
    if (plist.empty()) return {};
    std::vector<DocumentId> docs_with_term;
    docs_with_term.reserve(plist.size());
    for (const Posting& p : plist) docs_with_term.push_back(p.doc);
    std::sort(docs_with_term.begin(), docs_with_term.end());
    if (first) {
      result = std::move(docs_with_term);
      first = false;
    } else {
      std::vector<DocumentId> merged;
      std::set_intersection(result.begin(), result.end(), docs_with_term.begin(),
                            docs_with_term.end(), std::back_inserter(merged));
      result = std::move(merged);
      if (result.empty()) return {};
    }
  }
  return result;
}

}  // namespace planetp::index
