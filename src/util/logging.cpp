#include "util/logging.hpp"

#include <cstdio>

namespace planetp {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  static constexpr const char* kTags[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  const char* tag = kTags[static_cast<int>(level)];
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", tag, static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace planetp
