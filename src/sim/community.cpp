#include "sim/community.hpp"

#include <algorithm>
#include <stdexcept>

namespace planetp::sim {

using gossip::kInvalidPeer;
using gossip::LinkClass;
using gossip::Message;
using gossip::PeerId;
using gossip::PeerRecord;
using gossip::Protocol;
using gossip::RumorId;
using gossip::RumorPayload;

// ---------------------------------------------------------------------------
// ConvergenceTracker
// ---------------------------------------------------------------------------

void ConvergenceTracker::track(const RumorId& id, TimePoint start,
                               const std::vector<PeerId>& online_peers, PeerId origin) {
  if (origin_filter_ && !origin_filter_(origin)) return;
  Active a;
  a.start = start;
  for (PeerId p : online_peers) {
    if (p != origin && counts_(p)) a.unknown_online.insert(p);
  }
  a.known.insert(origin);
  ++total_events_;
  if (a.unknown_online.empty()) {
    durations_.add(0.0);
    return;
  }
  active_.emplace(id, std::move(a));
}

void ConvergenceTracker::learned(const RumorId& id, PeerId peer, TimePoint now) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second.known.insert(peer);
  it->second.unknown_online.erase(peer);
  maybe_converge(id, it->second, now);
}

void ConvergenceTracker::peer_offline(PeerId peer, TimePoint now) {
  // An offline peer no longer gates convergence.
  for (auto it = active_.begin(); it != active_.end();) {
    Active& a = it->second;
    a.unknown_online.erase(peer);
    if (a.unknown_online.empty()) {
      durations_.add(to_seconds(now - a.start));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConvergenceTracker::maybe_converge(const RumorId& id, Active& a, TimePoint now) {
  if (!a.unknown_online.empty()) return;
  durations_.add(to_seconds(now - a.start));
  active_.erase(id);
}

// ---------------------------------------------------------------------------
// SimCommunity
// ---------------------------------------------------------------------------

namespace {
/// The plan actually injected: the configured one plus the legacy
/// message_drop_prob knob mapped onto a uniform-drop rule.
FaultPlan effective_fault_plan(const SimConfig& config) {
  FaultPlan plan = config.faults;
  if (config.message_drop_prob > 0.0) {
    plan.drop(FaultScope::any(), TimeWindow::always(), config.message_drop_prob);
  }
  return plan;
}
}  // namespace

SimCommunity::SimCommunity(SimConfig config)
    : config_(config),
      rng_(config.seed),
      faults_(effective_fault_plan(config), splitmix64(config.seed ^ 0xfa017u)),
      links_(std::make_unique<LinkModel>(config.network)),
      stats_(std::make_unique<NetworkStats>(0, config.network.bandwidth_bucket)) {
  if (config_.parallel_round_tick > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.parallel_threads);
  }
}

PeerId SimCommunity::add_peer(const SimPeerSpec& spec) {
  const PeerId id = static_cast<PeerId>(peers_.size());
  SimPeer peer;
  peer.protocol = std::make_unique<Protocol>(id, config_.gossip, rng_.fork(id));
  peer.bandwidth = spec.bandwidth_bps;
  peer.key_count = spec.key_count;
  peer.protocol->hooks().on_apply = [this, id](const RumorPayload& p, TimePoint now) {
    on_peer_applied(id, p, now);
  };
  peer.protocol->hooks().on_expire = [this, id](PeerId expired) {
    if (auto it = searcher_caches_.find(id); it != searcher_caches_.end()) {
      it->second->remove_peer(expired);
    }
  };
  peers_.push_back(std::move(peer));
  links_->add_peer(spec.bandwidth_bps);
  return id;
}

PeerRecord SimCommunity::record_of(PeerId id) const {
  const SimPeer& peer = peers_[id];
  PeerRecord r;
  r.id = id;
  r.address = "sim://" + std::to_string(id);
  r.link_class = is_fast_link(peer.bandwidth) ? LinkClass::kFast : LinkClass::kSlow;
  r.version = 1;
  r.key_count = peer.key_count;
  return r;
}

void SimCommunity::start_converged() {
  if (started_) throw std::logic_error("SimCommunity: already started");
  started_ = true;

  // Every member starts from one immutable shared snapshot instead of N
  // private copies of N records: directory memory is O(N) community-wide and
  // steady-state summary exchanges compare O(changed) deltas.
  std::vector<PeerRecord> records;
  records.reserve(peers_.size());
  for (PeerId id = 0; id < peers_.size(); ++id) records.push_back(record_of(id));
  const gossip::DirectoryBasePtr base = gossip::make_directory_base(std::move(records));

  for (PeerId id = 0; id < peers_.size(); ++id) {
    SimPeer& peer = peers_[id];
    peer.protocol->bootstrap_converged(base);
    peer.online = true;
    peer.member = true;
    // Random phase so rounds do not synchronize.
    schedule_round(id, static_cast<Duration>(
                           rng_.below(static_cast<std::uint64_t>(config_.gossip.base_interval))));
  }
  schedule_crash_events();
}

void SimCommunity::schedule_crash_events() {
  for (const CrashEvent& c : faults_.plan().crashes()) {
    if (c.peer >= peers_.size()) continue;
    queue_.schedule_at(c.at, [this, c] { crash(c.peer, c.lose_directory); });
    if (c.restart_at > 0) {
      queue_.schedule_at(c.restart_at, [this, peer = c.peer] { restart(peer); });
    }
  }
}

void SimCommunity::join(PeerId id, PeerId introducer) {
  SimPeer& peer = peers_[id];
  if (peer.member) throw std::logic_error("SimCommunity::join: already a member");
  const PeerRecord self = record_of(id);
  peer.protocol->local_join(self.address, self.link_class, self.key_count, {}, queue_.now());
  peer.online = true;
  peer.member = true;
  track_event(RumorId{id, 1}, id);
  dispatch(id, peer.protocol->join_via(introducer, queue_.now()));
  schedule_round(id, static_cast<Duration>(
                         rng_.below(static_cast<std::uint64_t>(config_.gossip.base_interval))));
}

RumorId SimCommunity::inject_filter_change(PeerId id, std::uint32_t new_keys) {
  SimPeer& peer = peers_[id];
  peer.key_count += new_keys;
  peer.protocol->local_filter_change(peer.key_count, new_keys, {}, {}, queue_.now());
  const RumorId rumor{id, peer.protocol->own_version()};
  track_event(rumor, id);
  maybe_pull_round_forward(id);
  return rumor;
}

void SimCommunity::go_offline(PeerId id) {
  SimPeer& peer = peers_[id];
  if (!peer.online) return;
  peer.online = false;
  ++peer.round_epoch;  // cancel pending rounds
  for (auto& t : trackers_) t->peer_offline(id, queue_.now());
}

void SimCommunity::crash(PeerId id, bool lose_directory) {
  go_offline(id);
  if (!lose_directory) return;
  // Process crash without persistence: all protocol state is gone. The peer
  // must re-enter like a newcomer (restart() routes it through join()) and
  // recover its version counter from the community's memory of it.
  SimPeer& peer = peers_[id];
  peer.protocol = std::make_unique<Protocol>(id, config_.gossip, rng_.fork(id ^ 0x9e3779b9u));
  peer.protocol->hooks().on_apply = [this, id](const RumorPayload& p, TimePoint now) {
    on_peer_applied(id, p, now);
  };
  peer.protocol->hooks().on_expire = [this, id](PeerId expired) {
    if (auto it = searcher_caches_.find(id); it != searcher_caches_.end()) {
      it->second->remove_peer(expired);
    }
  };
  peer.member = false;
}

gossip::RumorId SimCommunity::restart(PeerId id, PeerId introducer) {
  SimPeer& peer = peers_[id];
  if (peer.member) return rejoin(id, 0);  // directory survived the crash

  if (introducer == kInvalidPeer) {
    for (PeerId p = 0; p < peers_.size(); ++p) {
      if (p != id && peers_[p].online && peers_[p].member) {
        introducer = p;
        break;
      }
    }
  }
  if (introducer == kInvalidPeer) {
    throw std::logic_error("SimCommunity::restart: no online introducer");
  }
  // Like join(), but untracked: the join rumor carries version 1, which the
  // community (still holding this peer's pre-crash record) will ignore; the
  // peer converges by adopting its remembered version and re-rumoring.
  const PeerRecord self = record_of(id);
  peer.protocol->local_join(self.address, self.link_class, peer.key_count, {}, queue_.now());
  peer.online = true;
  peer.member = true;
  dispatch(id, peer.protocol->join_via(introducer, queue_.now()));
  schedule_round(id, static_cast<Duration>(
                         rng_.below(static_cast<std::uint64_t>(config_.gossip.base_interval))));
  return RumorId{id, 1};
}

RumorId SimCommunity::rejoin(PeerId id, std::uint32_t new_keys) {
  SimPeer& peer = peers_[id];
  if (!peer.member) throw std::logic_error("SimCommunity::rejoin: never joined");
  peer.online = true;
  if (new_keys > 0) {
    peer.key_count += new_keys;
    peer.protocol->local_filter_change(peer.key_count, new_keys, {}, {}, queue_.now());
  } else {
    peer.protocol->local_rejoin(queue_.now());
  }
  const RumorId rumor{id, peer.protocol->own_version()};
  track_event(rumor, id);
  // Catch-up anti-entropy: a returning peer immediately pulls a directory
  // summary from someone it believes online, so the events it slept through
  // reach it right away (its own rounds will be busy rumoring its rejoin for
  // the next several rounds and would defer anti-entropy — §3's join flow
  // pulls the directory first for exactly this reason).
  Rng& rng = rng_;
  const PeerId target = peer.protocol->directory().random_online(rng);
  if (target != gossip::kInvalidPeer) {
    dispatch(id, peer.protocol->join_via(target, queue_.now()));
  }
  schedule_round(id, static_cast<Duration>(rng_.below(
                         static_cast<std::uint64_t>(config_.gossip.base_interval))));
  return rumor;
}

std::size_t SimCommunity::online_count() const {
  std::size_t n = 0;
  for (const SimPeer& p : peers_) n += p.online ? 1 : 0;
  return n;
}

std::vector<PeerId> SimCommunity::online_peers() const {
  std::vector<PeerId> out;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    if (peers_[id].online && peers_[id].member) out.push_back(id);
  }
  return out;
}

bool SimCommunity::directories_consistent() const {
  // Authoritative versions: each member's own record.
  std::vector<std::pair<PeerId, std::uint64_t>> expected;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    if (peers_[id].member) expected.emplace_back(id, peers_[id].protocol->own_version());
  }
  for (PeerId id = 0; id < peers_.size(); ++id) {
    const SimPeer& peer = peers_[id];
    if (!peer.online || !peer.member) continue;
    const auto& dir = peer.protocol->directory();
    for (const auto& [pid, version] : expected) {
      const PeerRecord* r = dir.find(pid);
      if (r == nullptr || r->version < version) return false;
    }
  }
  return true;
}

std::size_t SimCommunity::add_tracker(std::string name, ConvergenceTracker::PeerPredicate counts,
                                      ConvergenceTracker::PeerPredicate origin_filter) {
  trackers_.push_back(std::make_unique<ConvergenceTracker>(std::move(name), std::move(counts),
                                                           std::move(origin_filter)));
  return trackers_.size() - 1;
}

void SimCommunity::track_event(const RumorId& id, PeerId origin) {
  if (trackers_.empty() || !tracking_enabled_) return;
  const auto online = online_peers();
  for (auto& t : trackers_) t->track(id, queue_.now(), online, origin);
}

void SimCommunity::on_peer_applied(PeerId peer, const RumorPayload& payload, TimePoint now) {
  for (auto& t : trackers_) t->learned(payload.id(), peer, now);
  // Candidate-cache invalidation contract: simulated rumors carry no filter
  // bits (sizes are modeled), so a filter change cannot be applied
  // surgically — drop the origin's filter from this searcher's cache and let
  // the harness re-prime it. Joins/rejoins leave the cached content valid.
  if (payload.origin == peer || payload.kind != gossip::EventKind::kFilterChange) return;
  if (auto it = searcher_caches_.find(peer); it != searcher_caches_.end()) {
    it->second->remove_peer(payload.origin);
  }
}

search::CandidateCache& SimCommunity::searcher_cache(PeerId searcher) {
  auto it = searcher_caches_.find(searcher);
  if (it == searcher_caches_.end()) {
    it = searcher_caches_
             .emplace(searcher,
                      std::make_unique<search::CandidateCache>(config_.candidate_cache))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Round and message plumbing
// ---------------------------------------------------------------------------

void SimCommunity::schedule_round(PeerId id, Duration delay) {
  SimPeer& peer = peers_[id];
  const std::uint64_t epoch = ++peer.round_epoch;
  if (config_.parallel_round_tick > 0) {
    // Quantize the firing time up to the tick grid and batch every round
    // landing on the same tick behind one queue event, so they can step
    // concurrently in run_tick.
    const Duration tick = config_.parallel_round_tick;
    TimePoint at = queue_.now() + delay;
    at = ((at + tick - 1) / tick) * tick;
    if (at <= queue_.now()) at += tick;
    peer.next_round_at = at;
    auto [it, inserted] = pending_rounds_.try_emplace(at);
    it->second.emplace_back(id, epoch);
    if (inserted) queue_.schedule_at(at, [this, at] { run_tick(at); });
    return;
  }
  peer.next_round_at = queue_.now() + delay;
  queue_.schedule(delay, [this, id, epoch] { run_round(id, epoch); });
}

void SimCommunity::run_round(PeerId id, std::uint64_t epoch) {
  SimPeer& peer = peers_[id];
  if (peer.round_epoch != epoch || !peer.online) return;
  ++rounds_executed_;
  for (const auto& out : peer.protocol->on_round(queue_.now())) dispatch(id, out);
  schedule_round(id, peer.protocol->current_interval());
}

void SimCommunity::run_tick(TimePoint at) {
  auto pending = pending_rounds_.extract(at);
  if (pending.empty()) return;
  std::vector<std::pair<PeerId, std::uint64_t>> batch = std::move(pending.mapped());
  // Deterministic regardless of insertion order: sort, then drop entries
  // whose round was cancelled (epoch bumped) or whose peer went offline.
  std::sort(batch.begin(), batch.end());
  std::vector<PeerId> eligible;
  eligible.reserve(batch.size());
  for (const auto& [id, epoch] : batch) {
    if (peers_[id].round_epoch == epoch && peers_[id].online) eligible.push_back(id);
  }
  if (eligible.empty()) return;

  const TimePoint now = queue_.now();
  std::vector<std::vector<Protocol::Outgoing>> outs(eligible.size());
  if (pool_ != nullptr && eligible.size() > 1) {
    // Step all same-tick nodes concurrently. Safe because on_round touches
    // only that node's protocol (its directory, hot set, and forked RNG
    // stream) — never the queue, links, stats, or another node. Peers are
    // sharded into contiguous chunks (a handful per worker) so a 100k-peer
    // tick costs dozens of pool submissions, not 100k futures.
    const std::size_t max_shards = pool_->size() * 4;
    const std::size_t chunk =
        std::max<std::size_t>(1, (eligible.size() + max_shards - 1) / max_shards);
    std::vector<std::future<void>> done;
    done.reserve((eligible.size() + chunk - 1) / chunk);
    for (std::size_t begin = 0; begin < eligible.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, eligible.size());
      done.push_back(pool_->submit([this, &outs, &eligible, begin, end, now] {
        for (std::size_t i = begin; i < end; ++i) {
          outs[i] = peers_[eligible[i]].protocol->on_round(now);
        }
      }));
    }
    for (auto& f : done) f.get();
  } else {
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      outs[i] = peers_[eligible[i]].protocol->on_round(now);
    }
  }
  rounds_executed_ += eligible.size();

  // Commit in node-id order: dispatches (link-model busy horizons, fault
  // decisions, stats) and next-round scheduling happen exactly as if the
  // nodes had stepped sequentially — traces are identical across thread
  // counts.
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const PeerId id = eligible[i];
    for (const auto& out : outs[i]) dispatch(id, out);
    schedule_round(id, peers_[id].protocol->current_interval());
  }
}

NetworkStats& SimCommunity::stats() {
  gossip::GossipStats agg;
  for (const SimPeer& p : peers_) {
    if (p.protocol != nullptr) agg += p.protocol->stats();
  }
  stats_->set_gossip_stats(agg);
  return *stats_;
}

void SimCommunity::maybe_pull_round_forward(PeerId id) {
  // After news arrives the protocol may have reset its interval to base;
  // honor that by moving the pending round earlier if it is too far out.
  SimPeer& peer = peers_[id];
  if (!peer.online) return;
  const TimePoint desired = queue_.now() + peer.protocol->current_interval();
  if (peer.next_round_at > desired) schedule_round(id, peer.protocol->current_interval());
}

void SimCommunity::dispatch(PeerId from, const Protocol::Outgoing& out) {
  if (out.to == kInvalidPeer || out.to >= peers_.size()) return;
  const std::size_t bytes = wire_size(out.msg, config_.sizes);
  const bool is_ae = std::holds_alternative<gossip::SummaryRequestMsg>(out.msg) ||
                     std::holds_alternative<gossip::SummaryMsg>(out.msg);
  stats_->record(from, bytes, queue_.now(),
                 is_ae ? TrafficKind::kAntiEntropy : TrafficKind::kRumor);
  stats_->record_typed(out.msg.index(), bytes);

  FaultDecision fault = faults_.decide(from, out.to, queue_.now(), msg_class_of(out.msg));
  if (fault.drop) {
    stats_->record_dropped(fault.partition_drop);
    if (fault.notify_sender && peers_[from].online) {
      // TCP-like refusal (partitioned links, not lossy ones): the sender
      // discovers the peer is unreachable and marks it offline.
      peers_[from].protocol->on_send_failed(out.to, queue_.now());
    }
    return;  // otherwise silently lost; sender learns nothing (UDP-like loss)
  }
  if (fault.delayed) stats_->record_delayed();
  if (fault.reordered) stats_->record_reordered();
  if (!fault.duplicate_lags.empty()) stats_->record_duplicated(fault.duplicate_lags.size());

  const TimePoint arrival = links_->transfer(from, out.to, bytes, queue_.now());
  const TimePoint processed = arrival + config_.network.cpu_gossip_time + fault.extra_delay;
  // Share rather than copy: summary messages are O(community) in size and
  // thousands can be in flight at once.
  auto msg = std::make_shared<Message>(out.msg);
  queue_.schedule_at(processed, [this, from, to = out.to, msg]() {
    deliver(from, to, *msg);
  });
  // Duplicate copies trail the primary; the receiver must treat them as the
  // no-ops the protocol's versioning makes them.
  for (const Duration lag : fault.duplicate_lags) {
    queue_.schedule_at(processed + std::max<Duration>(lag, 1),
                       [this, from, to = out.to, msg]() { deliver(from, to, *msg); });
  }
}

void SimCommunity::deliver(PeerId from, PeerId to, const Message& msg) {
  SimPeer& receiver = peers_[to];
  if (!receiver.online) {
    // Delivery failure: the *sender* discovers the peer is unreachable.
    if (peers_[from].online) {
      peers_[from].protocol->on_send_failed(to, queue_.now());
    }
    return;
  }
  for (const auto& reply : receiver.protocol->on_message(queue_.now(), from, msg)) {
    dispatch(to, reply);
  }
  maybe_pull_round_forward(to);
}

// ---------------------------------------------------------------------------
// Query-time RPCs
// ---------------------------------------------------------------------------

search::PeerSearchResult SimCommunity::query_rpc(PeerId from, PeerId to) {
  using search::ContactStatus;
  using search::PeerSearchResult;

  stats_->record_query_sent();
  auto fail = [&](ContactStatus status, Duration latency = 0) {
    stats_->record_query_failed();
    return PeerSearchResult::failure(status, latency);
  };

  if (to >= peers_.size() || !peers_[to].online) {
    return fail(ContactStatus::kUnreachable);
  }

  // Request leg. A notified/partition drop is a refused connection, so the
  // searcher learns the peer is unreachable; a silent drop looks like a
  // timeout from the searcher's side.
  FaultDecision request = faults_.decide(from, to, queue_.now());
  if (request.drop) {
    stats_->record_dropped(request.partition_drop);
    return fail((request.notify_sender || request.partition_drop)
                    ? ContactStatus::kUnreachable
                    : ContactStatus::kTimeout);
  }
  // Response leg: a lost answer is always a timeout — the request was
  // delivered, so the searcher has no way to tell loss from slowness.
  FaultDecision response = faults_.decide(to, from, queue_.now());
  if (response.drop) {
    stats_->record_dropped(response.partition_drop);
    return fail(ContactStatus::kTimeout, request.extra_delay);
  }

  PeerSearchResult ok;
  ok.latency = request.extra_delay + response.extra_delay;
  return ok;
}

search::PeerSearchFn SimCommunity::search_contact(PeerId searcher, LocalEvalFn local_eval) {
  return [this, searcher, local_eval = std::move(local_eval)](
             std::uint32_t peer, const std::unordered_map<std::string, double>& weights)
             -> search::PeerSearchResult {
    if (peer == searcher) {
      // Local evaluation: no network involved, cannot fail.
      return search::PeerSearchResult::ok(local_eval(peer, weights));
    }
    search::PeerSearchResult probe = query_rpc(searcher, peer);
    if (!probe.is_ok()) return probe;
    probe.docs = local_eval(peer, weights);
    return probe;
  };
}

void SimCommunity::note_search(const search::DistributedSearchResult& result) {
  if (result.retries > 0) stats_->record_query_retried(result.retries);
  if (result.hedged_contacts > 0) stats_->record_query_hedged(result.hedged_contacts);
}

}  // namespace planetp::sim
