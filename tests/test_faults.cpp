#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/community.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace planetp::sim {
namespace {

// ---------------------------------------------------------------------------
// TimeWindow / FaultScope primitives
// ---------------------------------------------------------------------------

TEST(TimeWindow, HalfOpenBoundaries) {
  const TimeWindow w{10 * kSecond, 20 * kSecond};
  EXPECT_FALSE(w.contains(10 * kSecond - 1));
  EXPECT_TRUE(w.contains(10 * kSecond));  // inclusive start
  EXPECT_TRUE(w.contains(15 * kSecond));
  EXPECT_TRUE(w.contains(20 * kSecond - 1));
  EXPECT_FALSE(w.contains(20 * kSecond));  // exclusive end
}

TEST(TimeWindow, AlwaysCoversEverything) {
  const TimeWindow w = TimeWindow::always();
  EXPECT_TRUE(w.contains(0));
  EXPECT_TRUE(w.contains(std::numeric_limits<TimePoint>::max() - 1));
}

TEST(FaultScope, LinkMatchesOneDirectionOnly) {
  const FaultScope s = FaultScope::link(0, 1);
  EXPECT_TRUE(s.matches(0, 1));
  EXPECT_FALSE(s.matches(1, 0));  // reverse direction is a different link
  EXPECT_FALSE(s.matches(0, 2));
  EXPECT_FALSE(s.matches(2, 1));
}

TEST(FaultScope, PeerMatchesEitherEndpoint) {
  const FaultScope s = FaultScope::of_peer(3);
  EXPECT_TRUE(s.matches(3, 7));
  EXPECT_TRUE(s.matches(7, 3));
  EXPECT_FALSE(s.matches(1, 2));
}

TEST(FaultScope, AnyMatchesEverything) {
  const FaultScope s = FaultScope::any();
  EXPECT_TRUE(s.matches(0, 1));
  EXPECT_TRUE(s.matches(99, 5));
}

TEST(FaultScope, FieldsComposeConjunctively) {
  FaultScope s = FaultScope::link(0, 1);
  s.peer = 1;
  EXPECT_TRUE(s.matches(0, 1));
  s.peer = 2;  // link matches but the peer constraint now fails
  EXPECT_FALSE(s.matches(0, 1));
}

// ---------------------------------------------------------------------------
// FaultInjector: rules, windows, scoping
// ---------------------------------------------------------------------------

TEST(FaultInjector, DropRuleRespectsWindowBoundaries) {
  FaultPlan plan;
  plan.drop(FaultScope::any(), {10 * kSecond, 20 * kSecond}, 1.0);
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.decide(0, 1, 10 * kSecond - 1).drop);
  EXPECT_TRUE(inj.decide(0, 1, 10 * kSecond).drop);
  EXPECT_TRUE(inj.decide(0, 1, 20 * kSecond - 1).drop);
  EXPECT_FALSE(inj.decide(0, 1, 20 * kSecond).drop);
  EXPECT_EQ(inj.counters().dropped, 2u);
}

TEST(FaultInjector, PerLinkVersusPerPeerScoping) {
  FaultPlan plan;
  plan.drop(FaultScope::link(0, 1), TimeWindow::always(), 1.0);
  plan.drop(FaultScope::of_peer(5), TimeWindow::always(), 1.0);
  FaultInjector inj(plan, 2);

  EXPECT_TRUE(inj.decide(0, 1, 0).drop);   // the scoped link
  EXPECT_FALSE(inj.decide(1, 0, 0).drop);  // reverse direction unaffected
  EXPECT_FALSE(inj.decide(0, 2, 0).drop);  // other destinations unaffected

  EXPECT_TRUE(inj.decide(5, 3, 0).drop);  // peer scope hits both directions
  EXPECT_TRUE(inj.decide(3, 5, 0).drop);
  EXPECT_FALSE(inj.decide(3, 4, 0).drop);
}

TEST(FaultInjector, SilentDropVersusNotifiedDrop) {
  FaultPlan plan;
  plan.drop(FaultScope::link(0, 1), TimeWindow::always(), 1.0, /*notify_sender=*/false);
  plan.drop(FaultScope::link(2, 3), TimeWindow::always(), 1.0, /*notify_sender=*/true);
  FaultInjector inj(plan, 3);
  const FaultDecision silent = inj.decide(0, 1, 0);
  EXPECT_TRUE(silent.drop);
  EXPECT_FALSE(silent.notify_sender);
  const FaultDecision refused = inj.decide(2, 3, 0);
  EXPECT_TRUE(refused.drop);
  EXPECT_TRUE(refused.notify_sender);
}

TEST(FaultInjector, DuplicateDelayReorderDecisions) {
  FaultPlan plan;
  plan.duplicate(FaultScope::link(0, 1), TimeWindow::always(), 1.0,
                 /*min_lag=*/2 * kSecond, /*jitter=*/kSecond);
  plan.delay(FaultScope::link(0, 2), TimeWindow::always(), /*extra=*/3 * kSecond,
             /*jitter=*/0);
  plan.reorder(FaultScope::link(0, 3), TimeWindow::always(), 1.0,
               /*min_hold=*/4 * kSecond, /*jitter=*/kSecond);
  FaultInjector inj(plan, 4);

  const FaultDecision dup = inj.decide(0, 1, 0);
  EXPECT_FALSE(dup.drop);
  ASSERT_EQ(dup.duplicate_lags.size(), 1u);
  EXPECT_GE(dup.duplicate_lags[0], 2 * kSecond);
  EXPECT_LT(dup.duplicate_lags[0], 3 * kSecond);

  const FaultDecision del = inj.decide(0, 2, 0);
  EXPECT_TRUE(del.delayed);
  EXPECT_EQ(del.extra_delay, 3 * kSecond);

  const FaultDecision reo = inj.decide(0, 3, 0);
  EXPECT_TRUE(reo.reordered);
  EXPECT_GE(reo.extra_delay, 4 * kSecond);
  EXPECT_LT(reo.extra_delay, 5 * kSecond);

  const FaultCounters c = inj.counters();
  EXPECT_EQ(c.duplicated, 1u);
  EXPECT_EQ(c.delayed, 1u);
  EXPECT_EQ(c.reordered, 1u);
  EXPECT_EQ(c.dropped, 0u);
}

TEST(FaultInjector, PartitionCutsCrossGroupTrafficUntilHeal) {
  FaultPlan plan;
  plan.partition({0, 100 * kSecond}, {{0, 1}, {2, 3}});
  FaultInjector inj(plan, 5);

  const FaultDecision cut = inj.decide(0, 2, 50 * kSecond);
  EXPECT_TRUE(cut.drop);
  EXPECT_TRUE(cut.partition_drop);
  EXPECT_TRUE(cut.notify_sender);  // a partitioned link refuses, not eats

  EXPECT_FALSE(inj.decide(0, 1, 50 * kSecond).drop);  // same group
  EXPECT_FALSE(inj.decide(2, 3, 50 * kSecond).drop);
  EXPECT_FALSE(inj.decide(4, 0, 50 * kSecond).drop);  // unlisted peer unaffected
  EXPECT_FALSE(inj.decide(0, 2, 100 * kSecond).drop);  // healed at window end

  const FaultCounters c = inj.counters();
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.partition_dropped, 1u);
}

TEST(FaultInjector, CountersResetButPlanRemains) {
  FaultPlan plan;
  plan.drop(FaultScope::any(), TimeWindow::always(), 1.0);
  FaultInjector inj(plan, 6);
  (void)inj.decide(0, 1, 0);
  EXPECT_EQ(inj.counters().dropped, 1u);
  inj.reset_counters();
  EXPECT_EQ(inj.counters().dropped, 0u);
  EXPECT_TRUE(inj.decide(0, 1, 0).drop);  // rules still active
}

TEST(FaultPlan, CrashEventsAreRecorded) {
  FaultPlan plan;
  plan.crash(3, 10 * kMinute, 20 * kMinute, /*lose_directory=*/true);
  plan.crash(4, 5 * kMinute);  // never restarts
  ASSERT_EQ(plan.crashes().size(), 2u);
  EXPECT_EQ(plan.crashes()[0].peer, 3u);
  EXPECT_EQ(plan.crashes()[0].restart_at, 20 * kMinute);
  EXPECT_TRUE(plan.crashes()[0].lose_directory);
  EXPECT_EQ(plan.crashes()[1].restart_at, 0);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

// ---------------------------------------------------------------------------
// Determinism: same (plan, seed) => identical injected-fault sequence
// ---------------------------------------------------------------------------

std::vector<FaultDecision> decision_trace(std::uint64_t seed) {
  FaultPlan plan;
  plan.drop(FaultScope::any(), TimeWindow::always(), 0.3)
      .duplicate(FaultScope::any(), TimeWindow::always(), 0.3, kSecond, 2 * kSecond)
      .delay(FaultScope::any(), TimeWindow::always(), kSecond, kSecond, 0.5);
  FaultInjector inj(plan, seed);
  std::vector<FaultDecision> trace;
  for (int i = 0; i < 200; ++i) {
    trace.push_back(inj.decide(static_cast<gossip::PeerId>(i % 7),
                               static_cast<gossip::PeerId>((i + 1) % 7),
                               static_cast<TimePoint>(i) * kSecond));
  }
  return trace;
}

bool traces_equal(const std::vector<FaultDecision>& a, const std::vector<FaultDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drop != b[i].drop || a[i].partition_drop != b[i].partition_drop ||
        a[i].notify_sender != b[i].notify_sender || a[i].delayed != b[i].delayed ||
        a[i].reordered != b[i].reordered || a[i].extra_delay != b[i].extra_delay ||
        a[i].duplicate_lags != b[i].duplicate_lags) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjector, SameSeedYieldsIdenticalFaultSequence) {
  EXPECT_TRUE(traces_equal(decision_trace(7), decision_trace(7)));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  EXPECT_FALSE(traces_equal(decision_trace(7), decision_trace(8)));
}

// ---------------------------------------------------------------------------
// message_drop_prob compatibility shim
// ---------------------------------------------------------------------------

TEST(FaultPlan, UniformDropIsASingleSilentAnyRule) {
  const FaultPlan plan = FaultPlan::uniform_drop(0.25);
  ASSERT_EQ(plan.rules().size(), 1u);
  const FaultRule& r = plan.rules()[0];
  EXPECT_EQ(r.action, FaultAction::kDrop);
  EXPECT_EQ(r.scope.from, kAnyPeer);
  EXPECT_EQ(r.scope.to, kAnyPeer);
  EXPECT_EQ(r.scope.peer, kAnyPeer);
  EXPECT_TRUE(r.window.contains(0));
  EXPECT_EQ(r.window.end, std::numeric_limits<TimePoint>::max());
  EXPECT_DOUBLE_EQ(r.probability, 0.25);
  EXPECT_FALSE(r.notify_sender);  // UDP-like silent loss, the old behavior
}

TEST(FaultInjector, UniformDropRateMatchesProbability) {
  FaultInjector inj(FaultPlan::uniform_drop(0.2), 9);
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (inj.decide(0, 1, 0).drop) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.2, 0.01);
}

TEST(SimCommunity, MessageDropProbShimMapsOntoUniformDropPlan) {
  SimConfig cfg;
  cfg.seed = 11;
  cfg.message_drop_prob = 0.15;
  SimCommunity community(cfg);
  const auto& rules = community.faults().plan().rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].action, FaultAction::kDrop);
  EXPECT_DOUBLE_EQ(rules[0].probability, 0.15);
}

TEST(SimCommunity, ShimDropsAreCountedInNetworkStats) {
  // The old rng-inline drop path never told NetworkStats; the shim routes
  // through the injector, so loss experiments now account every drop.
  SimConfig cfg;
  cfg.seed = 12;
  cfg.message_drop_prob = 0.20;
  SimCommunity community(cfg);
  for (int i = 0; i < 10; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();
  community.inject_filter_change(0, 100);
  community.run_until(30 * kMinute);
  EXPECT_GT(community.stats().dropped_messages(), 0u);
  EXPECT_EQ(community.stats().dropped_messages(), community.faults().counters().dropped);
  EXPECT_EQ(community.stats().partition_dropped_messages(), 0u);
}

TEST(SimCommunity, ZeroDropProbInstallsNoRules) {
  SimConfig cfg;
  cfg.seed = 13;
  SimCommunity community(cfg);
  EXPECT_TRUE(community.faults().plan().empty());
}

}  // namespace
}  // namespace planetp::sim
