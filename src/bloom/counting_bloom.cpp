#include "bloom/counting_bloom.hpp"

#include <stdexcept>

namespace planetp::bloom {

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_(params.bits, 0) {
  if (params_.bits == 0 || params_.num_hashes == 0) {
    throw std::invalid_argument("CountingBloomFilter: bits and num_hashes must be > 0");
  }
}

void CountingBloomFilter::insert(std::string_view term) { insert(hash_pair(term)); }

void CountingBloomFilter::insert(const HashPair& hp) {
  for (std::uint32_t i = 0; i < params_.num_hashes; ++i) {
    auto& c = counters_[static_cast<std::size_t>(hp.ith(i) % counters_.size())];
    if (c != 0xff) ++c;  // saturate
  }
}

void CountingBloomFilter::remove(std::string_view term) { remove(hash_pair(term)); }

void CountingBloomFilter::remove(const HashPair& hp) {
  for (std::uint32_t i = 0; i < params_.num_hashes; ++i) {
    auto& c = counters_[static_cast<std::size_t>(hp.ith(i) % counters_.size())];
    if (c != 0 && c != 0xff) --c;  // saturated counters stay pinned
  }
}

bool CountingBloomFilter::contains(std::string_view term) const {
  return contains(hash_pair(term));
}

bool CountingBloomFilter::contains(const HashPair& hp) const {
  for (std::uint32_t i = 0; i < params_.num_hashes; ++i) {
    if (counters_[static_cast<std::size_t>(hp.ith(i) % counters_.size())] == 0) return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::to_bloom_filter() const {
  BloomFilter bf(params_);
  auto& bits = bf.mutable_bits();
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] != 0) bits.set(i);
  }
  return bf;
}

std::size_t CountingBloomFilter::nonzero_count() const {
  std::size_t n = 0;
  for (auto c : counters_) n += (c != 0);
  return n;
}

}  // namespace planetp::bloom
