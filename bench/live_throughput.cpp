/// \file live_throughput.cpp
/// Live TCP runtime throughput (docs/NET.md): an in-process loopback
/// LiveCluster at 100, 500 and 1000 nodes gossiping at a fixed interval,
/// measured over a steady-state wall-clock window. Reports frames/sec and
/// bytes/sec over the wire, gossip rounds/sec, the steady-state open-fd
/// count, and the p99 gossip-round jitter (|actual - scheduled| per round).
/// Emits BENCH_live_throughput.json. Built-in gates:
///   1. every size must actually gossip (rounds and frames advance) and keep
///      queued bytes under the configured global outbound cap;
///   2. no descriptor may leak across a full cluster lifecycle;
///   3. with --baseline <json>, frames/sec per size must stay above half the
///      recorded baseline (scripts/check.sh runs this against
///      bench/baselines/).
/// Usage: live_throughput [--quick] [--baseline <file>]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/mem_sampler.hpp"
#include "net/cluster.hpp"
#include "util/stats.hpp"

using namespace planetp;
using namespace planetp::net;

namespace {

struct RunResult {
  std::size_t nodes = 0;
  double wall_s = 0.0;
  double rounds_per_sec = 0.0;
  double msgs_per_sec = 0.0;   ///< frames received across all reactors
  double bytes_per_sec = 0.0;  ///< payload + framing bytes on the wire
  std::size_t fd_count = 0;    ///< open descriptors at steady state
  double p99_jitter_ms = 0.0;  ///< round scheduling error, 99th percentile
  std::uint64_t peak_queued = 0;
  std::uint64_t global_cap = 0;
  std::uint64_t rounds = 0;
  std::uint64_t frames = 0;
  bool fd_clean = false;  ///< descriptors returned to pre-cluster count
  double rss_mb = 0.0;    ///< VmRSS at steady state, whole process
  double hwm_mb = 0.0;    ///< VmHWM (peak; sizes run ascending)
};

double wall_now_s() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e9;
}

LiveNodeConfig bench_config() {
  LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip.base_interval = 300 * kMillisecond;
  cfg.gossip.max_interval = 300 * kMillisecond;  // fixed: jitter is measurable
  cfg.gossip.slow_down = 0;
  cfg.reactor.per_connection_outbound_cap = 256 * 1024;
  cfg.reactor.global_outbound_cap = 16u << 20;
  cfg.reactor.idle_timeout = 750 * kMillisecond;
  cfg.reactor.maintenance_interval = 200 * kMillisecond;
  return cfg;
}

RunResult run_size(std::size_t nodes, double window_s) {
  const LiveNodeConfig cfg = bench_config();
  const std::size_t fds_before = LiveCluster::open_fd_count();
  RunResult r;
  r.nodes = nodes;
  r.global_cap = cfg.reactor.global_outbound_cap;
  {
    LiveCluster cluster(nodes, cfg);
    cluster.start();

    // Let rounds and connections reach steady state before measuring.
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const NetStats s0 = cluster.total_net_stats();
    const std::uint64_t rounds0 = cluster.total_rounds();
    const double t0 = wall_now_s();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(window_s * 500)));
    r.fd_count = LiveCluster::open_fd_count();  // mid-window steady state
    const benchutil::MemSample mem = benchutil::sample_memory();
    r.rss_mb = benchutil::to_mb(mem.vm_rss_kb);
    r.hwm_mb = benchutil::to_mb(mem.vm_hwm_kb);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(window_s * 500)));
    const double wall = wall_now_s() - t0;
    const NetStats s1 = cluster.total_net_stats();
    const std::uint64_t rounds1 = cluster.total_rounds();

    r.wall_s = wall;
    r.rounds = rounds1 - rounds0;
    r.frames = s1.frames_in - s0.frames_in;
    r.rounds_per_sec = static_cast<double>(r.rounds) / wall;
    r.msgs_per_sec = static_cast<double>(r.frames) / wall;
    r.bytes_per_sec = static_cast<double>(s1.bytes_in - s0.bytes_in) / wall;
    r.peak_queued = s1.peak_queued_bytes;

    SampleSet jitter;
    for (const Duration d : cluster.merged_round_jitter()) {
      jitter.add(static_cast<double>(d) / static_cast<double>(kMillisecond));
    }
    r.p99_jitter_ms = jitter.empty() ? 0.0 : jitter.percentile(99.0);
    cluster.stop();
  }
  r.fd_clean = LiveCluster::open_fd_count() == fds_before;
  return r;
}

void print_result(const RunResult& r) {
  std::printf(
      "%5zu nodes   %7.0f rounds/s   %8.0f msgs/s   %10.0f bytes/s   %5zu fds   "
      "p99 jitter %7.1f ms   RSS %.0f MB%s\n",
      r.nodes, r.rounds_per_sec, r.msgs_per_sec, r.bytes_per_sec, r.fd_count, r.p99_jitter_ms,
      r.rss_mb, r.fd_clean ? "" : "   (FD LEAK)");
}

/// Minimal key lookup in the baseline JSON: finds "key" and parses the
/// number after the following ':'.
double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  // Same sizes either way (the baseline keys must match); --quick only
  // shortens the measured window.
  const double window_s = quick ? 3.0 : 6.0;
  std::vector<RunResult> results;
  for (const std::size_t nodes : {std::size_t{100}, std::size_t{500}, std::size_t{1000}}) {
    results.push_back(run_size(nodes, window_s));
    print_result(results.back());
  }

  std::ostringstream os;
  os << "{\n  \"bench\": \"live_throughput\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << "    {\"nodes\": " << r.nodes << ", \"wall_s\": " << r.wall_s
       << ", \"rounds_per_sec\": " << r.rounds_per_sec
       << ", \"msgs_per_sec\": " << r.msgs_per_sec << ", \"bytes_per_sec\": " << r.bytes_per_sec
       << ", \"fd_count\": " << r.fd_count << ", \"p99_round_jitter_ms\": " << r.p99_jitter_ms
       << ", \"peak_queued_bytes\": " << r.peak_queued << ", \"rss_mb\": " << r.rss_mb
       << ", \"hwm_mb\": " << r.hwm_mb << ", \"fd_clean\": "
       << (r.fd_clean ? "true" : "false") << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << "  \"msgs_per_sec_" << r.nodes << "\": " << r.msgs_per_sec
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "}\n";

  std::ofstream("BENCH_live_throughput.json") << os.str();
  std::printf("wrote BENCH_live_throughput.json\n");

  int rc = 0;
  for (const RunResult& r : results) {
    if (r.rounds == 0 || r.frames == 0) {
      std::fprintf(stderr, "FAIL: %zu nodes exchanged no gossip (%llu rounds, %llu frames)\n",
                   r.nodes, static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.frames));
      rc = 1;
    }
    if (r.peak_queued > r.global_cap) {
      std::fprintf(stderr, "FAIL: %zu nodes peak queued %llu exceeds global cap %llu\n", r.nodes,
                   static_cast<unsigned long long>(r.peak_queued),
                   static_cast<unsigned long long>(r.global_cap));
      rc = 1;
    }
    if (!r.fd_clean) {
      std::fprintf(stderr, "FAIL: %zu nodes leaked descriptors across the cluster lifecycle\n",
                   r.nodes);
      rc = 1;
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const RunResult& r : results) {
      const std::string key = "msgs_per_sec_" + std::to_string(r.nodes);
      const double recorded = parse_key(baseline, key);
      if (recorded <= 0.0) continue;
      if (r.msgs_per_sec < recorded / 2.0) {
        std::fprintf(stderr,
                     "FAIL: msgs/s at %zu nodes regressed: %.0f vs baseline %.0f (>2x drop)\n",
                     r.nodes, r.msgs_per_sec, recorded);
        rc = 1;
      } else {
        std::printf("baseline check at %zu nodes: %.0f msgs/s vs recorded %.0f — ok\n", r.nodes,
                    r.msgs_per_sec, recorded);
      }
    }
  }
  return rc;
}
