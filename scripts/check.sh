#!/usr/bin/env bash
# Full verification: configure, build, test (plain, under ASan/UBSan, and the
# concurrent search tests under TSan), and run every benchmark.
# Usage: scripts/check.sh [--quick]   (--quick shrinks the benchmark sweeps)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Tier-1 tests again under the sanitizer preset (-DPLANETP_SANITIZE accepts a
# -fsanitize list). A separate build dir keeps instrumented objects apart.
cmake -B build-asan -S . -DPLANETP_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

# The concurrent hedged-search tests, the parallel gossip stepping, the
# parallel batch publish and the epoch-snapshot mixed-workload stress (8
# readers ranking live snapshots while a writer publishes/merges) again under
# ThreadSanitizer (the `tsan` preset uses the same build dir). TSan and ASan
# cannot share a build, hence the third tree; the -R scope keeps the (slow)
# TSan pass to the tests that actually exercise cross-thread code.
# test_reactor and test_net ride along: the reactor's cross-thread surface
# (send/post/schedule vs the loop thread, LiveNode RPC wakeups, cluster churn)
# is exactly the kind of code TSan exists for. test_pruned_topk covers the
# block-max pruned readers racing a live writer (shared compressed base,
# epoch swaps) — the PrunedTopK scope picks up its concurrent test.
cmake -B build-tsan -S . -DPLANETP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
  --target test_search test_search_faults test_sim test_data_store test_epoch_snapshot \
           test_reactor test_net test_compact_directory test_compressed_at_rest \
           test_lazy_gossip test_pruned_topk
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'DistributedSearchConcurrent|ParallelStepping|ParallelPublish|MixedWorkload|Reactor|LiveNode.RpcFailsFastWhenPeerCrashes|CompactDirectory|CompressedAtRest|LazyGossip|PrunedTopK'

# Query hot-path smoke run + perf-regression guard: search_throughput exits
# non-zero when the warm CandidateCache is not >=5x the uncached scan at 5000
# peers, or when warm qps falls below half the committed baseline.
echo "=== search_throughput ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/search_throughput --quick --baseline bench/baselines/search_throughput.json
else
  build/bench/search_throughput --baseline bench/baselines/search_throughput.json
fi

# Lazy-dissemination smoke under ASan: a small lazy + hybrid community
# exercising the digest/want/serve and delta-summary paths end to end under
# the sanitizer, with the zero-blind-payload counter gates applied.
echo "=== gossip_throughput --lazy-smoke (ASan) ==="
build-asan/bench/gossip_throughput --lazy-smoke

# Gossip-plane smoke run + perf-regression guard: gossip_throughput exits
# non-zero when the epoch-cached summary path is not >=3x the uncached cost
# model at 5000 peers, when cached/uncached traces diverge (the cache must be
# behaviourally invisible), when hybrid fails the >2x bytes/round reduction
# (with unchanged convergence) over eager at 5000 peers, when lazy mode
# pushes any blind payload, or when cached rounds/sec falls below half — or
# hybrid bytes/round rises above twice — the committed baseline.
echo "=== gossip_throughput ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/gossip_throughput --quick --baseline bench/baselines/gossip_throughput.json
else
  build/bench/gossip_throughput --baseline bench/baselines/gossip_throughput.json
fi

# Live TCP runtime smoke run + perf-regression guard: live_throughput exits
# non-zero when a 100/500/1000-node loopback cluster fails to gossip, leaks
# descriptors across a cluster lifecycle, exceeds the global outbound byte
# cap, or when msgs/sec falls below half the committed baseline.
echo "=== live_throughput ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/live_throughput --quick --baseline bench/baselines/live_throughput.json
else
  build/bench/live_throughput --baseline bench/baselines/live_throughput.json
fi

# Indexing/ranking hot-path smoke run + perf-regression guard:
# index_throughput exits non-zero when the interned pipeline's combined
# (publish x eval) speedup over the legacy string-keyed cost model drops
# below 3x at 10k docs, when the two paths rank different documents, when
# the block-max pruned top-k diverges bitwise from the exhaustive ranking,
# skips no blocks, or misses the >=3x pruned-vs-exhaustive gate at 10k docs
# (k=10), or when publish docs/sec, eval qps, or pruned eval qps falls below
# half the committed baseline.
echo "=== index_throughput ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/index_throughput --quick --baseline bench/baselines/index_throughput.json
else
  build/bench/index_throughput --baseline bench/baselines/index_throughput.json
fi

# Community-scale smoke run + memory/scan-regression guard: community_scale
# exits non-zero when filter changes fail to converge or sampled directories
# disagree, when peak RSS exceeds 10% of the fully-decoded O(N^2) cost model
# (docs/SCALE.md), when summary-merge scans grow with community size instead
# of the changed set, or when rounds/sec or RSS regresses 2x against the
# committed baseline. --quick stops at 5000 peers; the full run goes to 100k.
echo "=== community_scale ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/community_scale --quick --baseline bench/baselines/community_scale.json
else
  build/bench/community_scale --baseline bench/baselines/community_scale.json
fi

# Concurrent-serving smoke run + perf-regression guard: mixed_workload exits
# non-zero when any published epoch ranks differently from a sequential
# single-threaded oracle, when 1->8 reader qps misses the hardware-adaptive
# scaling gate, when the timed-phase readers never take the pruned scan
# (pruned_queries or blocks_skipped zero), or when 1-/8-reader qps falls
# below half the committed baseline.
echo "=== mixed_workload ==="
if [ "$QUICK" = "--quick" ]; then
  build/bench/mixed_workload --quick --baseline bench/baselines/mixed_workload.json
else
  build/bench/mixed_workload --baseline bench/baselines/mixed_workload.json
fi

for b in build/bench/*; do
  # Skip build-system files (Makefiles generator) and BENCH_*.json emissions;
  # only regular executables are benchmarks.
  { [ -f "$b" ] && [ -x "$b" ]; } || continue
  [ "$(basename "$b")" = "search_throughput" ] && continue
  [ "$(basename "$b")" = "gossip_throughput" ] && continue
  [ "$(basename "$b")" = "live_throughput" ] && continue
  [ "$(basename "$b")" = "index_throughput" ] && continue
  [ "$(basename "$b")" = "mixed_workload" ] && continue
  [ "$(basename "$b")" = "community_scale" ] && continue
  echo "=== $(basename "$b") ==="
  if [ "$QUICK" = "--quick" ]; then
    "$b" --quick
  else
    "$b"
  fi
done
