#include "search/experiment.hpp"

#include <gtest/gtest.h>

namespace planetp::search {
namespace {

class ExperimentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    collection_ = corpus::generate(corpus::preset_tiny());
    setup_ = distribute_collection(collection_, 20, corpus::PlacementOptions{});
  }

  corpus::SynthCollection collection_;
  RetrievalSetup setup_;
};

TEST_F(ExperimentFixture, SetupIndexesEveryDocumentOnce) {
  std::size_t indexed = 0;
  for (const auto& idx : setup_.peer_indexes) indexed += idx.num_documents();
  EXPECT_EQ(indexed, collection_.docs.size());
  EXPECT_EQ(setup_.global_index.num_documents(), collection_.docs.size());
  EXPECT_EQ(setup_.owner_of.size(), collection_.docs.size());
}

TEST_F(ExperimentFixture, FiltersCoverPeerTerms) {
  // Every term of every document must hit its owner's Bloom filter (no
  // false negatives anywhere in the pipeline).
  for (const auto& doc : collection_.docs) {
    const std::uint32_t peer = setup_.owner_of.at(index::DocumentId{0, doc.id});
    for (const auto& [term, freq] : doc.terms) {
      EXPECT_TRUE(setup_.peer_filters[peer].contains(
          corpus::SynthCollection::term_string(term)));
    }
  }
}

TEST_F(ExperimentFixture, IpfTracksIdfRecall) {
  // The paper's headline claim (Fig 6a): TFxIPF with adaptive stopping
  // tracks centralized TFxIDF closely.
  RetrievalOptions opts;
  const auto p = evaluate_at_k(collection_, setup_, 20, opts);
  EXPECT_GT(p.idf_recall, 0.1);
  EXPECT_NEAR(p.ipf_recall, p.idf_recall, 0.08);
  EXPECT_NEAR(p.ipf_precision, p.idf_precision, 0.08);
}

TEST_F(ExperimentFixture, RecallGrowsWithK) {
  RetrievalOptions opts;
  const auto p10 = evaluate_at_k(collection_, setup_, 10, opts);
  const auto p40 = evaluate_at_k(collection_, setup_, 40, opts);
  EXPECT_GE(p40.idf_recall, p10.idf_recall);
  EXPECT_GE(p40.ipf_recall, p10.ipf_recall);
  // Precision typically decreases (or stays) as k grows.
  EXPECT_LE(p40.ipf_precision, p10.ipf_precision + 0.05);
}

TEST_F(ExperimentFixture, BestIsLowerBoundOnPeersContacted) {
  RetrievalOptions opts;
  for (std::size_t k : {10u, 20u, 40u}) {
    const auto p = evaluate_at_k(collection_, setup_, k, opts);
    EXPECT_LE(p.best_peers, p.ipf_peers + 1e-9) << k;
  }
}

TEST_F(ExperimentFixture, KSweepReturnsAllPoints) {
  RetrievalOptions opts;
  opts.ks = {5, 10, 20};
  const auto points = run_k_sweep(collection_, setup_, opts);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].k, 5u);
  EXPECT_EQ(points[2].k, 20u);
}

TEST(Experiment, CommunitySweepRecallIsStable) {
  // Fig 6b: recall at fixed k should be roughly flat across community sizes.
  const auto collection = corpus::generate(corpus::preset_tiny());
  RetrievalOptions opts;
  const auto points = run_community_sweep(collection, {5, 10, 20, 40}, 20,
                                          corpus::PlacementOptions{}, opts);
  ASSERT_EQ(points.size(), 4u);
  double min_recall = 1.0, max_recall = 0.0;
  for (const auto& p : points) {
    min_recall = std::min(min_recall, p.ipf_recall);
    max_recall = std::max(max_recall, p.ipf_recall);
  }
  EXPECT_GT(min_recall, 0.0);
  EXPECT_LT(max_recall - min_recall, 0.15);
}

TEST(Experiment, UniformPlacementAlsoWorks) {
  const auto collection = corpus::generate(corpus::preset_tiny());
  corpus::PlacementOptions uniform;
  uniform.kind = corpus::PlacementKind::kUniform;
  const auto setup = distribute_collection(collection, 20, uniform);
  RetrievalOptions opts;
  const auto p = evaluate_at_k(collection, setup, 20, opts);
  EXPECT_NEAR(p.ipf_recall, p.idf_recall, 0.1);
}

TEST(Experiment, QueryHelpers) {
  corpus::SynthQuery q;
  q.terms = {1, 2};
  q.relevant_docs = {10, 20};
  const auto terms = query_term_strings(q);
  EXPECT_EQ(terms, (std::vector<std::string>{"t000001", "t000002"}));
  const auto rel = judgment_set(q);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.contains(index::DocumentId{0, 10}));
}

}  // namespace
}  // namespace planetp::search
