#include "gossip/types.hpp"

#include <algorithm>

namespace planetp::gossip {

DirectoryBasePtr make_directory_base(std::vector<PeerRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const PeerRecord& a, const PeerRecord& b) { return a.id < b.id; });
  for (PeerRecord& r : records) {
    r.online = true;
    r.offline_since = 0;
    r.suspicion = 0;
  }
  auto summary = std::make_shared<std::vector<PeerSummary>>();
  summary->reserve(records.size());
  for (const PeerRecord& r : records) summary->push_back(PeerSummary{r.id, r.version});
  auto base = std::make_shared<DirectoryBase>();
  base->records = std::move(records);
  base->summary = std::move(summary);
  return base;
}

RumorPayload payload_from_record(const PeerRecord& record, EventKind kind,
                                 std::optional<FilterUpdate> filter) {
  RumorPayload p;
  p.origin = record.id;
  p.version = record.version;
  p.address = record.address;
  p.link_class = record.link_class;
  p.kind = kind;
  p.key_count = record.key_count;
  p.filter = std::move(filter);
  return p;
}

}  // namespace planetp::gossip
