#include "core/node.hpp"

#include <algorithm>

#include "bloom/wire.hpp"
#include "core/community.hpp"
#include "index/xml.hpp"

namespace planetp::core {

Node::Node(PeerId id, NodeConfig config, Community* community)
    : id_(id),
      config_(std::move(config)),
      community_(community),
      store_(id, config_.bloom, config_.analyzer),
      protocol_(id, config_.gossip, Rng(0xbadc0ffeULL ^ id)),
      last_announced_(config_.bloom),
      filter_cache_(config_.candidate_cache) {}

std::vector<std::uint8_t> Node::encoded_filter() const {
  ByteWriter w;
  bloom::encode_filter(w, store_.bloom_filter());
  return w.take();
}

void Node::announce_filter_change(std::uint32_t new_keys) {
  const bloom::BloomFilter current = store_.bloom_filter();
  ByteWriter diff_writer;
  bloom::encode_diff(diff_writer, current.diff_from(last_announced_));
  protocol_.local_filter_change(static_cast<std::uint32_t>(store_.index().num_terms()),
                                new_keys, diff_writer.take(), encoded_filter(),
                                community_ != nullptr ? community_->now() : 0);
  last_announced_ = current;
  if (community_ != nullptr) community_->record_changed(id_);
}

DocumentId Node::publish(std::string xml) {
  const std::size_t terms_before = store_.index().num_terms();
  const DocumentId doc_id = store_.publish(std::move(xml));
  const std::size_t terms_after = store_.index().num_terms();
  announce_filter_change(static_cast<std::uint32_t>(terms_after - terms_before));

  if (config_.publish_to_brokers && community_ != nullptr) {
    const index::Document* doc = store_.document(doc_id);
    if (doc != nullptr) {
      // §6: publish the snippet under the top fraction of the document's
      // most frequent terms so it is findable before gossip converges.
      auto freqs = store_.analyzer().term_frequencies(doc->text);
      std::vector<std::pair<std::string, std::uint32_t>> sorted(freqs.begin(), freqs.end());
      std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
      });
      const std::size_t take = std::max<std::size_t>(
          1, static_cast<std::size_t>(config_.broker_top_fraction *
                                      static_cast<double>(sorted.size())));
      broker::Snippet snippet;
      snippet.id = next_snippet_id_++;
      snippet.publisher = id_;
      snippet.xml = doc->xml_source;
      snippet.discard_at = community_->now() + config_.broker_discard_time;
      for (std::size_t i = 0; i < take && i < sorted.size(); ++i) {
        snippet.keys.push_back(sorted[i].first);
      }
      doc_snippets_[doc_id] = snippet.id;
      community_->snippet_published(snippet);
    }
  }
  return doc_id;
}

DocumentId Node::publish_text(std::string_view title, std::string_view body) {
  return publish(index::wrap_text_as_xml(title, body));
}

bool Node::unpublish(DocumentId doc) {
  if (!store_.unpublish(doc)) return false;
  announce_filter_change(0);
  // Withdraw the document's broker snippet early rather than letting it
  // linger until its discard time.
  if (auto it = doc_snippets_.find(doc); it != doc_snippets_.end()) {
    if (community_ != nullptr) community_->brokers().withdraw(id_, it->second);
    doc_snippets_.erase(it);
  }
  return true;
}

bool Node::republish(DocumentId doc, std::string xml) {
  const std::size_t terms_before = store_.index().num_terms();
  if (!store_.republish(doc, std::move(xml))) return false;
  const std::size_t terms_after = store_.index().num_terms();
  announce_filter_change(static_cast<std::uint32_t>(
      terms_after > terms_before ? terms_after - terms_before : 0));
  return true;
}

std::shared_ptr<const bloom::BloomFilter> Node::filter_of(PeerId peer) const {
  if (peer == id_) {
    own_filter();
    return filter_cache_.filter_of(id_);
  }
  const gossip::PeerRecord* record = protocol_.directory().find(peer);
  if (record == nullptr || record->filter_wire.empty()) return nullptr;
  if (auto cached = filter_cache_.version_of(peer);
      !cached.has_value() || *cached != record->version) {
    // Hand the cache the record's compressed wire verbatim; it stays at rest
    // until the resident_filter call below decodes it (and the decoded
    // working set is LRU-bounded when the config asks for it).
    filter_cache_.update_peer_wire(peer, record->filter_wire, record->version);
  }
  return filter_cache_.resident_filter(peer);
}

const bloom::BloomFilter* Node::own_filter() const {
  // Cache versions are non-zero; the store's version starts at 0.
  const std::uint64_t version = store_.filter_version() + 1;
  if (auto cached = filter_cache_.version_of(id_); !cached.has_value() || *cached != version) {
    filter_cache_.update_peer(id_, std::make_shared<bloom::BloomFilter>(store_.bloom_filter()),
                              version);
  }
  return filter_cache_.filter_ptr(id_);
}

void Node::on_rumor_applied(const gossip::RumorPayload& payload) {
  if (payload.origin == id_) return;
  if (!payload.filter.has_value() || payload.kind == gossip::EventKind::kRejoin) {
    // Version bump with unchanged content: keep the filter and entries warm.
    filter_cache_.touch_peer(payload.origin, payload.version);
    return;
  }
  const gossip::FilterUpdate& fu = *payload.filter;
  if (fu.base_version != 0 && !fu.bits.empty()) {
    // Wire-backed peers merge the diff in the Golomb gap domain — the
    // at-rest bytes absorb it and, if decoded-resident, the cached terms the
    // diff touches are fixed surgically.
    if (filter_cache_.apply_peer_diff_wire(payload.origin, fu.bits, fu.base_version,
                                           payload.version)) {
      return;
    }
    try {
      ByteReader reader(fu.bits);
      const BitVector diff = bloom::decode_diff(reader);
      if (filter_cache_.apply_peer_diff(payload.origin, diff, fu.base_version,
                                        payload.version)) {
        return;  // surgical: untouched cached terms stayed warm
      }
    } catch (const std::exception&) {
      // Corrupt diff: fall through and drop the stale filter.
    }
  }
  // Full update, or a diff whose base we do not hold: drop the stale filter;
  // the next filter_of re-decodes the record's full wire and re-warms.
  filter_cache_.remove_peer(payload.origin);
}

void Node::on_peer_expired(PeerId peer) { filter_cache_.remove_peer(peer); }

std::vector<PeerId> Node::candidates_for(const std::vector<std::string>& terms) const {
  std::vector<PeerId> out;
  if (terms.empty()) return out;  // a term-less conjunction matches nothing
  // Hash once, not once per (peer, term).
  std::vector<HashPair> hashes;
  hashes.reserve(terms.size());
  for (const std::string& t : terms) hashes.push_back(hash_pair(t));
  protocol_.directory().for_each([&](const gossip::PeerRecord& record) {
    if (record.id == id_) return;
    const auto filter = filter_of(record.id);
    if (filter == nullptr) return;
    for (const HashPair& hp : hashes) {
      if (!filter->contains(hp)) return;
    }
    out.push_back(record.id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

ExhaustiveResult Node::exhaustive_search(std::string_view query) {
  ExhaustiveResult result;
  const auto terms = store_.analyzer().analyze(query);
  if (terms.empty()) return result;

  // Local matches first.
  for (const DocumentId& doc : store_.search_all_terms(query)) {
    const index::Document* d = store_.document(doc);
    if (d != nullptr) result.hits.push_back(SearchHit{doc, 0.0, d->title, d->xml_source});
  }

  // Remote candidates via Bloom filters.
  for (PeerId peer : candidates_for(terms)) {
    const gossip::PeerRecord* record = protocol_.directory().find(peer);
    if (record != nullptr && !record->online) {
      result.offline_candidates.push_back(peer);
      continue;
    }
    if (community_ == nullptr) continue;
    auto remote = community_->contact_exhaustive(id_, peer, query);
    if (remote.empty() && record != nullptr && !record->online) {
      result.offline_candidates.push_back(peer);
    }
    result.hits.insert(result.hits.end(), remote.begin(), remote.end());
  }

  // Brokers: snippets whose keys cover every query term.
  if (community_ != nullptr) {
    std::unordered_set<std::uint64_t> seen;
    for (const broker::Snippet& s : community_->brokers().lookup(terms.front(),
                                                                 community_->now())) {
      if (!seen.insert((static_cast<std::uint64_t>(s.publisher) << 32) ^ s.id).second) {
        continue;
      }
      const bool covers = std::all_of(terms.begin(), terms.end(), [&](const std::string& t) {
        return std::find(s.keys.begin(), s.keys.end(), t) != s.keys.end();
      });
      if (covers) {
        result.broker_hits.push_back(
            SearchHit{DocumentId{s.publisher, 0}, 0.0, "", s.xml});
      }
    }
  }
  return result;
}

std::vector<SearchHit> Node::ranked_search(std::string_view query, std::size_t k) {
  const auto terms = store_.analyzer().analyze(query);
  if (terms.empty() || community_ == nullptr) return {};

  // Assemble the searcher's view: one filter per directory record (self
  // included — our own documents compete in the ranking too). Filters come
  // from the candidate cache's store, so the hot-path lookup below resolves
  // them through warm term entries instead of probing each one.
  std::vector<search::PeerFilter> views;
  std::vector<std::shared_ptr<const bloom::BloomFilter>> pins;  // outlive the lookup
  protocol_.directory().for_each([&](const gossip::PeerRecord& record) {
    if (record.id == id_) return;
    auto f = filter_of(record.id);
    if (f != nullptr && record.online) {
      views.push_back(search::PeerFilter{record.id, f.get(), record.suspicion});
      pins.push_back(std::move(f));
    }
  });
  views.push_back(search::PeerFilter{id_, own_filter()});

  search::DistributedSearchOptions opts;
  opts.k = k;
  opts.group_size = config_.search_group_size;
  opts.stopping = config_.stopping;
  opts.retry = config_.search_retry;
  opts.deadline = config_.search_deadline;
  opts.hedge_threshold = config_.search_hedge_threshold;
  opts.seed = static_cast<std::uint64_t>(id_) << 32 | protocol_.directory().size();
  opts.cache = &filter_cache_;

  const auto contact = [this](std::uint32_t peer,
                              const std::unordered_map<std::string, double>& weights)
      -> search::PeerSearchResult {
    if (peer == id_) return handle_ranked_query(weights);
    return community_->contact_ranked(id_, peer, weights);
  };

  const auto result = search::tfipf_search(terms, views, contact, opts);

  // Feed contact outcomes back into the directory: repeated query failures
  // make a peer SUSPECT (demoted in future rankings, eventually marked
  // offline); any success clears the suspicion.
  for (const search::PeerOutcome& outcome : result.outcomes) {
    if (outcome.peer == id_) continue;
    if (outcome.status == search::ContactStatus::kOk) {
      protocol_.directory().record_query_success(outcome.peer);
    } else {
      protocol_.directory().record_query_failure(outcome.peer, community_->now());
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(result.docs.size());
  for (const search::ScoredDoc& d : result.docs) {
    SearchHit hit;
    hit.doc = d.doc;
    hit.score = d.score;
    const index::Document* doc =
        d.doc.peer == id_ ? store_.document(d.doc) : community_->fetch_document(d.doc);
    if (doc != nullptr) {
      hit.title = doc->title;
      hit.xml = doc->xml_source;
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<SearchHit> Node::proxy_ranked_search(std::string_view query, std::size_t k,
                                                 PeerId proxy) {
  if (community_ == nullptr) return {};
  if (proxy == gossip::kInvalidPeer) {
    // Choose a random online fast peer from our directory.
    Rng rng(0x9e3779b9ULL ^ id_ ^ static_cast<std::uint64_t>(community_->now()));
    proxy = protocol_.directory().random_online_of_class(rng, gossip::LinkClass::kFast);
  }
  if (proxy == gossip::kInvalidPeer || proxy == id_) {
    return ranked_search(query, k);  // no proxy available: do it ourselves
  }
  auto hits = community_->contact_proxy_search(id_, proxy, query, k);
  if (hits.empty()) {
    // Proxy unreachable or knew nothing; degrade to a local search.
    return ranked_search(query, k);
  }
  return hits;
}

std::vector<search::ScoredDoc> Node::handle_ranked_query(
    const std::unordered_map<std::string, double>& term_weights) const {
  // Rank against the published epoch snapshot — byte-identical to scoring
  // the live index, and safe against concurrent publishes on this store.
  return search::score_snapshot(*store_.snapshot(), term_weights);
}

std::vector<SearchHit> Node::handle_exhaustive_query(std::string_view query) const {
  std::vector<SearchHit> hits;
  for (const DocumentId& doc : store_.search_all_terms(query)) {
    const index::Document* d = store_.document(doc);
    if (d != nullptr) hits.push_back(SearchHit{doc, 0.0, d->title, d->xml_source});
  }
  return hits;
}

std::uint64_t Node::add_persistent_query(std::string query, QueryCallback cb) {
  PersistentQuery pq;
  pq.raw = query;
  pq.terms = store_.analyzer().analyze(query);
  pq.term_hashes.reserve(pq.terms.size());
  for (const std::string& t : pq.terms) pq.term_hashes.push_back(hash_pair(t));
  pq.callback = std::move(cb);
  const std::uint64_t handle = next_query_handle_++;

  // Immediately evaluate against the current community view.
  auto [it, inserted] = persistent_queries_.emplace(handle, std::move(pq));
  PersistentQuery& stored = it->second;
  for (const DocumentId& doc : store_.search_all_terms(stored.raw)) {
    if (stored.seen.insert(doc).second) {
      const index::Document* d = store_.document(doc);
      if (d != nullptr) stored.callback(SearchHit{doc, 0.0, d->title, d->xml_source});
    }
  }
  for (PeerId peer : candidates_for(stored.terms)) {
    run_persistent_query_against(stored, peer);
  }
  return handle;
}

bool Node::remove_persistent_query(std::uint64_t handle) {
  return persistent_queries_.erase(handle) > 0;
}

void Node::run_persistent_query_against(PersistentQuery& q, PeerId target) {
  if (community_ == nullptr) return;
  for (const SearchHit& hit : community_->contact_exhaustive(id_, target, q.raw)) {
    if (q.seen.insert(hit.doc).second) q.callback(hit);
  }
}

void Node::on_directory_update(PeerId origin) {
  if (origin == id_) return;
  const auto filter = filter_of(origin);
  if (filter != nullptr) {
    for (auto& [handle, q] : persistent_queries_) {
      if (q.terms.empty()) continue;  // no effective terms: matches nothing
      const bool candidate =
          std::all_of(q.term_hashes.begin(), q.term_hashes.end(),
                      [&](const HashPair& hp) { return filter->contains(hp); });
      if (candidate) run_persistent_query_against(q, origin);
    }
  }

  // Rendezvous: a peer we were waiting on announced itself again.
  for (auto it = rendezvous_.begin(); it != rendezvous_.end();) {
    Rendezvous& rv = it->second;
    if (rv.waiting_on.erase(origin) > 0 && community_ != nullptr) {
      for (const SearchHit& hit : community_->contact_exhaustive(id_, origin, rv.raw)) {
        if (rv.seen.insert(hit.doc).second) rv.callback(hit);
      }
    }
    it = rv.waiting_on.empty() ? rendezvous_.erase(it) : std::next(it);
  }
}

std::pair<ExhaustiveResult, std::uint64_t> Node::rendezvous_search(std::string query,
                                                                   QueryCallback cb) {
  ExhaustiveResult result = exhaustive_search(query);
  if (result.offline_candidates.empty()) {
    return {std::move(result), 0};  // nothing to wait for
  }
  Rendezvous rv;
  rv.raw = std::move(query);
  rv.callback = std::move(cb);
  rv.waiting_on.insert(result.offline_candidates.begin(), result.offline_candidates.end());
  for (const SearchHit& hit : result.hits) rv.seen.insert(hit.doc);
  const std::uint64_t handle = next_query_handle_++;
  rendezvous_.emplace(handle, std::move(rv));
  return {std::move(result), handle};
}

bool Node::cancel_rendezvous(std::uint64_t handle) { return rendezvous_.erase(handle) > 0; }

std::size_t Node::pending_rendezvous_peers(std::uint64_t handle) const {
  auto it = rendezvous_.find(handle);
  return it == rendezvous_.end() ? 0 : it->second.waiting_on.size();
}

void Node::on_broker_snippet(const broker::Snippet& snippet) {
  if (snippet.publisher == id_) return;
  for (auto& [handle, q] : persistent_queries_) {
    if (q.terms.empty()) continue;  // no effective terms: matches nothing
    const bool covers = std::all_of(q.terms.begin(), q.terms.end(), [&](const std::string& t) {
      return std::find(snippet.keys.begin(), snippet.keys.end(), t) != snippet.keys.end();
    });
    if (!covers) continue;
    // Broker hits are keyed by publisher + snippet id (no document id yet).
    const DocumentId pseudo{snippet.publisher, static_cast<std::uint32_t>(snippet.id)};
    if (q.seen.insert(pseudo).second) {
      q.callback(SearchHit{pseudo, 0.0, "", snippet.xml});
    }
  }
}

}  // namespace planetp::core
