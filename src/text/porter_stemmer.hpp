#pragma once

#include <string>
#include <string_view>

/// \file porter_stemmer.hpp
/// Porter's suffix-stripping algorithm (M.F. Porter, "An algorithm for suffix
/// stripping", Program 14(3), 1980). The paper's pre-processing "tries to
/// conflate words to their root (e.g. running becomes run)"; this is the
/// standard algorithm used by the Smart system whose collections it evaluates.

namespace planetp::text {

/// Stem \p word in place; the word must already be lower-case ASCII.
/// Returns the stemmed length (the string is truncated to it).
void porter_stem(std::string& word);

/// Convenience copy form.
std::string porter_stem_copy(std::string_view word);

}  // namespace planetp::text
