#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "search/vector_model.hpp"
#include "util/hash.hpp"

/// \file ipf.hpp
/// Inverse Peer Frequency over a collection of gossiped Bloom filters (§5.2):
/// "IPF can conveniently be computed using the Bloom filters collected at
/// each peer: N is the number of Bloom filters, N_t is the number of hits
/// for term t against these Bloom filters."

namespace planetp::search {

class CandidateCache;

/// A peer's filter as seen in the searcher's directory.
struct PeerFilter {
  std::uint32_t peer = 0;
  const bloom::BloomFilter* filter = nullptr;
  /// Local SUSPECT level (consecutive query-time failures recorded against
  /// this peer). Carried into rank_peers to demote flaky peers.
  std::uint32_t suspicion = 0;
};

/// A query's term set prepared once: deduplicated, sorted, and double-hashed.
/// Every stage that probes Bloom filters — the eq. 3 ranking, the candidate
/// cache, retry/substitution re-walks — reuses these HashPairs instead of
/// re-hashing the terms.
struct HashedTerms {
  std::vector<std::string> terms;   ///< sorted, unique
  std::vector<HashPair> hashes;     ///< hashes[i] = hash_pair(terms[i])

  static HashedTerms from(const std::vector<std::string>& raw);
};

/// Per-query IPF table: for each query term, which peers hit and the IPF
/// weight. Computed once per query by scanning the filter set — or assembled
/// from warm CandidateCache entries on the query hot path (byte-identical
/// results either way; candidate lists are sets, their order carries no
/// meaning).
class IpfTable {
 public:
  /// Scan \p filters for each term of \p terms.
  IpfTable(const std::vector<std::string>& terms, const std::vector<PeerFilter>& filters);

  /// Same scan with the terms already deduplicated/sorted/hashed.
  IpfTable(const HashedTerms& terms, const std::vector<PeerFilter>& filters);

  /// IPF weight of a query term (0 when no peer has it).
  double weight(std::string_view term) const;

  /// Peers whose filter claims the term (possible false positives included).
  const std::vector<std::uint32_t>& peers_with(std::string_view term) const;

  std::size_t num_peers() const { return num_peers_; }
  const std::vector<std::string>& terms() const { return terms_; }

  /// SUSPECT level the searcher recorded against \p peer (0 = trusted).
  std::uint32_t suspicion_of(std::uint32_t peer) const;

  /// Term -> weight map (for shipping with a remote query).
  std::unordered_map<std::string, double> weights() const;

 private:
  friend class CandidateCache;  ///< assembles tables from cached candidate sets

  struct Entry {
    double ipf = 0.0;
    std::vector<std::uint32_t> peers;
  };

  IpfTable() = default;

  std::vector<std::string> terms_;
  /// Transparent hashing: weight()/peers_with() look up by string_view
  /// without allocating a temporary key.
  std::unordered_map<std::string, Entry, StringHash, std::equal_to<>> entries_;
  std::unordered_map<std::uint32_t, std::uint32_t> suspicion_;  ///< non-zero levels only
  std::size_t num_peers_ = 0;
};

}  // namespace planetp::search
