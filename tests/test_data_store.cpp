#include "index/data_store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace planetp::index {
namespace {

/// Synthetic corpus with heavy vocabulary overlap across documents, so the
/// dictionary intern order is sensitive to commit order.
std::vector<std::string> batch_corpus(std::size_t n) {
  std::vector<std::string> xml;
  xml.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string body = "gossip replication epidemic ";
    body += "topic" + std::to_string(i % 7) + " ";
    body += "entity" + std::to_string(i % 13) + " ";
    body += "unique" + std::to_string(i);
    xml.push_back(wrap_text_as_xml("doc" + std::to_string(i), body));
  }
  return xml;
}

/// Assert two stores are identical down to the store-local term ids: same
/// dictionary intern order, same postings per id, same filter and versions.
void expect_identical_stores(const DataStore& a, const DataStore& b) {
  ASSERT_EQ(a.documents(), b.documents());
  EXPECT_EQ(a.next_local_id(), b.next_local_id());
  EXPECT_EQ(a.filter_version(), b.filter_version());
  EXPECT_EQ(a.bloom_filter(), b.bloom_filter());

  const TermDictionary& da = a.index().dictionary();
  const TermDictionary& db = b.index().dictionary();
  ASSERT_EQ(da.size(), db.size());
  for (TermId id = 0; id < da.size(); ++id) {
    EXPECT_EQ(da.term(id), db.term(id)) << "id " << id;
    EXPECT_EQ(a.index().postings_by_id(id), b.index().postings_by_id(id))
        << da.term(id);
    EXPECT_EQ(a.index().posting_slots(id), b.index().posting_slots(id))
        << da.term(id);
    EXPECT_EQ(a.index().collection_frequency_by_id(id),
              b.index().collection_frequency_by_id(id))
        << da.term(id);
  }
  for (const DocumentId& id : a.documents()) {
    EXPECT_EQ(a.index().document_length(id), b.index().document_length(id));
    ASSERT_NE(b.document(id), nullptr);
    EXPECT_EQ(a.document(id)->title, b.document(id)->title);
  }
}

TEST(DataStore, PublishIndexesText) {
  DataStore store(1);
  const DocumentId id = store.publish_text("Doc One", "gossip protocols spread rumors");
  EXPECT_EQ(id.peer, 1u);
  EXPECT_EQ(store.num_documents(), 1u);

  const Document* doc = store.document(id);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->title, "Doc One");

  // Terms are analyzed (stemmed): "protocols" -> "protocol".
  EXPECT_TRUE(store.index().contains_term("gossip"));
  EXPECT_TRUE(store.index().contains_term("protocol"));
  EXPECT_FALSE(store.index().contains_term("the"));
}

TEST(DataStore, BloomFilterCoversTerms) {
  DataStore store(1);
  store.publish_text("t", "epidemic algorithms for replicated databases");
  const auto filter = store.bloom_filter();
  EXPECT_TRUE(filter.contains("epidem"));  // stem of "epidemic"
  EXPECT_TRUE(filter.contains("algorithm"));
  EXPECT_FALSE(filter.contains("unrelated_term_xyz"));
}

TEST(DataStore, SearchAllTermsIsConjunctive) {
  DataStore store(1);
  const auto d1 = store.publish_text("a", "distributed gossip search");
  const auto d2 = store.publish_text("b", "distributed hash tables");
  store.publish_text("c", "centralized search engines");

  const auto both = store.search_all_terms("distributed search");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0], d1);

  const auto one = store.search_all_terms("distributed");
  EXPECT_EQ(one.size(), 2u);
  EXPECT_NE(std::find(one.begin(), one.end(), d2), one.end());

  EXPECT_TRUE(store.search_all_terms("distributed nonexistent").empty());
  EXPECT_TRUE(store.search_all_terms("").empty());
}

TEST(DataStore, UnpublishRemovesEverywhere) {
  DataStore store(1);
  const auto id = store.publish_text("doomed", "unique zanzibar marker");
  EXPECT_TRUE(store.index().contains_term("zanzibar"));
  EXPECT_TRUE(store.bloom_filter().contains("zanzibar"));

  EXPECT_TRUE(store.unpublish(id));
  EXPECT_FALSE(store.unpublish(id));
  EXPECT_EQ(store.document(id), nullptr);
  EXPECT_FALSE(store.index().contains_term("zanzibar"));
  EXPECT_FALSE(store.bloom_filter().contains("zanzibar"));
}

TEST(DataStore, SharedTermsSurviveUnpublish) {
  DataStore store(1);
  const auto d1 = store.publish_text("a", "shared quokka term");
  store.publish_text("b", "shared quokka elsewhere");
  store.unpublish(d1);
  EXPECT_TRUE(store.bloom_filter().contains("quokka"));
  EXPECT_TRUE(store.index().contains_term("quokka"));
}

TEST(DataStore, FilterVersionIncrements) {
  DataStore store(1);
  const auto v0 = store.filter_version();
  const auto id = store.publish_text("x", "content");
  EXPECT_GT(store.filter_version(), v0);
  const auto v1 = store.filter_version();
  store.unpublish(id);
  EXPECT_GT(store.filter_version(), v1);
}

TEST(DataStore, PublishRawXmlWithLinks) {
  DataStore store(2);
  const auto id = store.publish(
      R"(<document title="Linked"><link href="notes.txt" type="text">searchable note body</link></document>)");
  const Document* doc = store.document(id);
  ASSERT_NE(doc, nullptr);
  ASSERT_EQ(doc->links.size(), 1u);
  // Linked text content is indexed.
  EXPECT_FALSE(store.search_all_terms("searchable note").empty());
}

TEST(DataStore, MalformedXmlRejected) {
  DataStore store(1);
  EXPECT_THROW(store.publish("<broken"), std::runtime_error);
  EXPECT_EQ(store.num_documents(), 0u);
}

TEST(DataStore, LocalIdsIncrease) {
  DataStore store(9);
  const auto a = store.publish_text("a", "one");
  const auto b = store.publish_text("b", "two");
  EXPECT_EQ(a.peer, 9u);
  EXPECT_LT(a.local, b.local);
}

TEST(DataStore, DocumentsListing) {
  DataStore store(1);
  store.publish_text("a", "alpha");
  store.publish_text("b", "beta");
  EXPECT_EQ(store.documents().size(), 2u);
}


TEST(DataStore, RepublishReplacesContent) {
  DataStore store(1);
  const auto id = store.publish_text("v1", "original ocelot content");
  ASSERT_TRUE(store.republish(id, wrap_text_as_xml("v2", "updated lynx content")));

  EXPECT_TRUE(store.search_all_terms("original ocelot").empty());
  ASSERT_EQ(store.search_all_terms("updated lynx").size(), 1u);
  EXPECT_EQ(store.document(id)->title, "v2");
  EXPECT_FALSE(store.bloom_filter().contains("ocelot"));
  EXPECT_TRUE(store.bloom_filter().contains("lynx"));
  EXPECT_EQ(store.num_documents(), 1u);
}

TEST(DataStore, RepublishUnknownIdFails) {
  DataStore store(1);
  EXPECT_FALSE(store.republish(DocumentId{1, 99}, wrap_text_as_xml("x", "y")));
}

TEST(DataStore, RepublishMalformedXmlLeavesOldVersion) {
  DataStore store(1);
  const auto id = store.publish_text("keep", "surviving capybara content");
  EXPECT_THROW(store.republish(id, "<broken"), std::runtime_error);
  EXPECT_EQ(store.search_all_terms("surviving capybara").size(), 1u);
  EXPECT_EQ(store.document(id)->title, "keep");
}

TEST(DataStore, BatchPublishSequentialFallbackMatchesLoop) {
  // publish_batch with no pool must behave exactly like a publish() loop.
  const auto corpus = batch_corpus(24);
  DataStore loop(4);
  for (const std::string& xml : corpus) loop.publish(xml);
  DataStore batch(4);
  const auto ids = batch.publish_batch(corpus, nullptr);
  ASSERT_EQ(ids.size(), corpus.size());
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1].local, ids[i].local);
  expect_identical_stores(loop, batch);
}

TEST(DataStore, ParallelPublishMatchesSequential) {
  // The tentpole determinism guarantee: sharding parse+analyze across a pool
  // while committing in document order yields a store identical to the
  // sequential path — including the dictionary's intern order, the posting
  // slots and the filter version. Runs under TSan via scripts/check.sh.
  const auto corpus = batch_corpus(64);
  DataStore seq(4);
  seq.publish_batch(corpus, nullptr);

  ThreadPool pool(4);
  DataStore par(4);
  const auto ids = par.publish_batch(corpus, &pool);
  ASSERT_EQ(ids.size(), corpus.size());
  expect_identical_stores(seq, par);

  // A second batch through the same pool keeps extending both identically.
  const auto more = batch_corpus(16);
  seq.publish_batch(more, nullptr);
  par.publish_batch(more, &pool);
  expect_identical_stores(seq, par);
}

TEST(DataStore, ParallelPublishMalformedDocKeepsEarlierCommits) {
  // A malformed document aborts the batch exactly where a sequential loop
  // would: everything before it is committed, nothing after it is.
  auto corpus = batch_corpus(10);
  corpus[6] = "<broken";
  ThreadPool pool(3);
  DataStore store(4);
  EXPECT_THROW(store.publish_batch(corpus, &pool), std::runtime_error);
  EXPECT_EQ(store.num_documents(), 6u);

  DataStore sequential(4);
  EXPECT_THROW(sequential.publish_batch(corpus, nullptr), std::runtime_error);
  expect_identical_stores(sequential, store);
}

TEST(DataStore, ParallelPublishEmptyAndTinyBatches) {
  ThreadPool pool(2);
  DataStore store(4);
  EXPECT_TRUE(store.publish_batch({}, &pool).empty());
  const auto one = store.publish_batch({wrap_text_as_xml("solo", "lone wolverine")}, &pool);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(store.num_documents(), 1u);
  EXPECT_TRUE(store.index().contains_term("wolverin"));
}

}  // namespace
}  // namespace planetp::index
