#include "sim/faults.hpp"

namespace planetp::sim {

FaultPlan& FaultPlan::drop(FaultScope scope, TimeWindow window, double probability,
                           bool notify_sender, MsgClass msg) {
  FaultRule r;
  r.action = FaultAction::kDrop;
  r.scope = scope;
  r.window = window;
  r.probability = probability;
  r.notify_sender = notify_sender;
  r.msg = msg;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::duplicate(FaultScope scope, TimeWindow window, double probability,
                                Duration min_lag, Duration jitter, MsgClass msg) {
  FaultRule r;
  r.action = FaultAction::kDuplicate;
  r.scope = scope;
  r.window = window;
  r.probability = probability;
  r.delay = min_lag;
  r.jitter = jitter;
  r.msg = msg;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::delay(FaultScope scope, TimeWindow window, Duration extra, Duration jitter,
                            double probability, MsgClass msg) {
  FaultRule r;
  r.action = FaultAction::kDelay;
  r.scope = scope;
  r.window = window;
  r.probability = probability;
  r.delay = extra;
  r.jitter = jitter;
  r.msg = msg;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::reorder(FaultScope scope, TimeWindow window, double probability,
                              Duration min_hold, Duration jitter, MsgClass msg) {
  FaultRule r;
  r.action = FaultAction::kReorder;
  r.scope = scope;
  r.window = window;
  r.probability = probability;
  r.delay = min_hold;
  r.jitter = jitter;
  r.msg = msg;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::partition(TimeWindow window,
                                const std::vector<std::vector<gossip::PeerId>>& groups) {
  PartitionSpec spec;
  spec.window = window;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (gossip::PeerId id : groups[g]) spec.group_of[id] = static_cast<int>(g);
  }
  partitions_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::crash(gossip::PeerId peer, TimePoint at, TimePoint restart_at,
                            bool lose_directory) {
  crashes_.push_back(CrashEvent{peer, at, restart_at, lose_directory});
  return *this;
}

FaultPlan FaultPlan::uniform_drop(double p) {
  FaultPlan plan;
  plan.drop(FaultScope::any(), TimeWindow::always(), p);
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {}

FaultDecision FaultInjector::decide(gossip::PeerId from, gossip::PeerId to, TimePoint now,
                                    MsgClass msg) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultDecision d;

  // Partitions first: a cut link refuses everything regardless of rules.
  for (const PartitionSpec& p : plan_.partitions()) {
    if (!p.window.contains(now)) continue;
    const auto fg = p.group_of.find(from);
    const auto tg = p.group_of.find(to);
    if (fg != p.group_of.end() && tg != p.group_of.end() && fg->second != tg->second) {
      d.drop = true;
      d.partition_drop = true;
      d.notify_sender = true;
      ++counters_.dropped;
      ++counters_.partition_dropped;
      return d;
    }
  }

  for (const FaultRule& r : plan_.rules()) {
    if (!r.window.contains(now) || !r.scope.matches(from, to)) continue;
    if (r.msg != MsgClass::kAny && r.msg != msg) continue;
    if (r.probability < 1.0 && !rng_.chance(r.probability)) continue;
    const Duration spread =
        r.delay + (r.jitter > 0 ? static_cast<Duration>(rng_.below(
                                      static_cast<std::uint64_t>(r.jitter)))
                                : 0);
    switch (r.action) {
      case FaultAction::kDrop:
        d.drop = true;
        d.notify_sender = r.notify_sender;
        ++counters_.dropped;
        return d;
      case FaultAction::kDuplicate:
        d.duplicate_lags.push_back(spread);
        ++counters_.duplicated;
        break;
      case FaultAction::kDelay:
        d.delayed = true;
        d.extra_delay += spread;
        ++counters_.delayed;
        break;
      case FaultAction::kReorder:
        d.reordered = true;
        d.extra_delay += spread;
        ++counters_.reordered;
        break;
    }
  }
  return d;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultInjector::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = FaultCounters{};
}

}  // namespace planetp::sim
