#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

/// \file synthetic.hpp
/// Synthetic document collections with queries and relevance judgments.
///
/// The paper evaluates retrieval on CACM, MED, CRAN, CISI (Smart) and TREC
/// AP89 — licensed corpora with human judgments that are not redistributable.
/// We substitute a topic-model generator: a Zipf-distributed vocabulary, T
/// latent topics each owning a set of characteristic terms, documents drawn
/// as mixtures of a primary topic and background noise, queries drawn from a
/// topic's characteristic terms, and judgments defined by topical affinity.
/// Both TFxIDF and TFxIPF are evaluated against the *same* judgments, so the
/// comparison the paper makes (relative recall/precision, peers contacted)
/// is preserved; absolute values depend on the generator, not on PlanetP.

namespace planetp::corpus {

using TermId = std::uint32_t;

/// A generated document: distinct terms with frequencies.
struct SynthDoc {
  std::uint32_t id = 0;
  std::uint32_t primary_topic = 0;
  std::vector<std::pair<TermId, std::uint32_t>> terms;  ///< (term, frequency)

  /// |D|: total term occurrences.
  std::uint32_t length() const;
};

/// A generated query with its relevance judgments.
struct SynthQuery {
  std::uint32_t id = 0;
  std::uint32_t topic = 0;
  std::vector<TermId> terms;
  std::unordered_set<std::uint32_t> relevant_docs;  ///< SynthDoc::id values
};

/// Shape parameters. Defaults approximate a mid-sized Smart collection; the
/// named presets below mirror Table 3.
struct CollectionSpec {
  std::string name = "SYNTH";
  std::size_t num_docs = 3000;
  std::size_t vocab_size = 80'000;
  std::size_t num_queries = 50;
  std::size_t num_topics = 120;

  double zipf_s = 1.07;               ///< background term popularity skew
  std::size_t topic_terms = 150;      ///< characteristic terms per topic
  double topical_fraction = 0.45;     ///< fraction of doc tokens from its topic
  double secondary_topic_prob = 0.6;  ///< docs also touching a second topic
  double secondary_fraction = 0.18;   ///< tokens drawn from the secondary topic;
                                      ///< these documents are partial matches for
                                      ///< that topic's queries but judged irrelevant,
                                      ///< which is what keeps precision < 1
  std::size_t mean_doc_tokens = 180;  ///< mean tokens per document
  std::size_t min_doc_tokens = 30;
  std::size_t query_terms_min = 2;
  std::size_t query_terms_max = 6;
  std::size_t max_relevant_per_query = 60;  ///< cap judgments like small TREC topics
  std::uint64_t seed = 1234;
};

struct SynthCollection {
  CollectionSpec spec;
  std::vector<SynthDoc> docs;
  std::vector<SynthQuery> queries;
  std::size_t distinct_terms = 0;  ///< vocabulary actually used

  /// Render a TermId as the indexable token ("t000042").
  static std::string term_string(TermId t);

  /// Total size in "bytes" if each token averaged 6 characters (Table 3's
  /// collection-size column analog).
  std::size_t approx_bytes() const;
};

/// Generate a collection from its spec (deterministic in spec.seed).
SynthCollection generate(const CollectionSpec& spec);

/// Presets shaped after Table 3 (docs / vocabulary / queries).
CollectionSpec preset_cacm();
CollectionSpec preset_med();
CollectionSpec preset_cran();
CollectionSpec preset_cisi();
CollectionSpec preset_ap89(std::size_t scale_divisor = 8);
/// A small preset for unit tests.
CollectionSpec preset_tiny();

}  // namespace planetp::corpus
