#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file stats.hpp
/// Summary statistics, percentiles, CDFs and least-squares fits used by the
/// benchmark harnesses to report experiment results in the paper's terms.

namespace planetp {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects raw samples for percentile queries and CDF export.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Percentile in [0, 100], linear interpolation between order statistics.
  double percentile(double pct) const;

  double mean() const;
  double min() const;
  double max() const;

  /// Return (value, cumulative fraction) pairs at \p points evenly spaced
  /// quantiles — the series plotted by the paper's CDF figures.
  std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

/// Least-squares fit y = a + b*x; reproduces Table 1's "fixed overhead plus
/// marginal per-key cost" models.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fixed-width histogram over [lo, hi) with \p buckets buckets; out-of-range
/// samples clamp to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }
  double bucket_low(std::size_t i) const;

  /// Render as "low..high: count" lines for reports.
  std::string to_string() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace planetp
