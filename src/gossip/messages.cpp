#include "gossip/messages.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace planetp::gossip {

std::size_t SizeModel::filter_bytes(std::uint64_t keys) const {
  if (keys == 0) return 0;
  return static_cast<std::size_t>(filter_fixed_bytes +
                                  filter_per_key_bytes * static_cast<double>(keys));
}

namespace {

std::size_t payload_size(const RumorPayload& p, const SizeModel& m) {
  std::size_t s = m.record_base_bytes;
  if (p.filter) {
    if (!p.filter->bits.empty()) {
      s += p.filter->bits.size();
    } else if (p.filter->base_version != 0) {
      // Diff: cost scales with the number of new keys it encodes.
      s += m.filter_bytes(p.filter->new_keys);
    } else {
      // Full filter: cost scales with the total key count.
      s += m.filter_bytes(p.filter->key_count);
    }
  }
  return s;
}

/// Delta-only SummaryMsg: which changed entries / removed ids travel. In
/// simulation the message still holds the full shared view (receivers compare
/// deltas via pointer identity) and the wire-equivalent delta lives behind
/// it; in the decoded form the message carries exactly the delta.
struct DeltaLists {
  const std::vector<PeerSummary>* entries;
  const std::vector<PeerId>* removed;
};

DeltaLists delta_lists(const SummaryMsg& msg) {
  if (const auto& view = msg.entries.view(); view != nullptr) {
    return {&view->delta->entries, &view->delta->removed};
  }
  return {&msg.entries.list(), &msg.removed};  // decoded delta form
}

struct SizeVisitor {
  const SizeModel& m;

  std::size_t operator()(const RumorMsg& msg) const {
    std::size_t s = m.header_bytes + msg.recent_ids.size() * m.rumor_id_bytes;
    for (const auto& p : msg.rumors) s += payload_size(p, m);
    return s;
  }
  std::size_t operator()(const RumorAckMsg& msg) const {
    return m.header_bytes + (msg.already_knew.size() + msg.recent_ids.size() +
                             msg.pull_ids.size()) * m.rumor_id_bytes;
  }
  std::size_t operator()(const SummaryRequestMsg& msg) const {
    return m.header_bytes + (msg.base_token != 0 ? m.base_token_bytes : 0);
  }
  std::size_t operator()(const SummaryMsg& msg) const {
    if (msg.base_token != 0) {
      const DeltaLists d = delta_lists(msg);
      return m.header_bytes + m.base_token_bytes + d.entries->size() * m.summary_entry_bytes +
             d.removed->size() * m.removed_id_bytes;
    }
    return m.header_bytes + msg.entries.size() * m.summary_entry_bytes;
  }
  std::size_t operator()(const PullRequestMsg& msg) const {
    return m.header_bytes + msg.ids.size() * m.rumor_id_bytes;
  }
  std::size_t operator()(const PullResponseMsg& msg) const {
    std::size_t s = m.header_bytes;
    for (const auto& p : msg.rumors) s += payload_size(p, m);
    return s;
  }
  std::size_t operator()(const RumorDigestMsg& msg) const {
    return m.header_bytes + (msg.ids.size() + msg.recent_ids.size()) * m.rumor_id_bytes;
  }
  std::size_t operator()(const RumorWantMsg& msg) const {
    return m.header_bytes + (msg.want.size() + msg.already_knew.size() +
                             msg.recent_ids.size() + msg.pull_ids.size()) * m.rumor_id_bytes;
  }
};

enum class Tag : std::uint8_t {
  kRumor = 1,
  kRumorAck = 2,
  kSummaryRequest = 3,
  kSummary = 4,
  kPullRequest = 5,
  kPullResponse = 6,
  kRumorDigest = 7,
  kRumorWant = 8,
};

void encode_rumor_id(ByteWriter& w, const RumorId& id) {
  w.u32(id.origin);
  w.varint(id.version);
}

RumorId decode_rumor_id(ByteReader& r) {
  RumorId id;
  id.origin = r.u32();
  id.version = r.varint();
  return id;
}

void encode_rumor_ids(ByteWriter& w, const std::vector<RumorId>& ids) {
  w.varint(ids.size());
  for (const auto& id : ids) encode_rumor_id(w, id);
}

std::vector<RumorId> decode_rumor_ids(ByteReader& r) {
  const std::size_t n = r.count(5);  // u32 + varint
  std::vector<RumorId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(decode_rumor_id(r));
  return ids;
}

void encode_payload(ByteWriter& w, const RumorPayload& p) {
  w.u32(p.origin);
  w.varint(p.version);
  w.str(p.address);
  w.u8(static_cast<std::uint8_t>(p.link_class));
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.varint(p.key_count);
  w.u8(p.filter.has_value() ? 1 : 0);
  if (p.filter) {
    w.varint(p.filter->base_version);
    w.bytes(p.filter->bits);
    w.varint(p.filter->key_count);
    w.varint(p.filter->new_keys);
  }
}

RumorPayload decode_payload(ByteReader& r) {
  RumorPayload p;
  p.origin = r.u32();
  p.version = r.varint();
  p.address = r.str();
  p.link_class = static_cast<LinkClass>(r.u8());
  p.kind = static_cast<EventKind>(r.u8());
  p.key_count = static_cast<std::uint32_t>(r.varint());
  if (r.u8() != 0) {
    FilterUpdate f;
    f.base_version = r.varint();
    f.bits = r.bytes();
    f.key_count = static_cast<std::uint32_t>(r.varint());
    f.new_keys = static_cast<std::uint32_t>(r.varint());
    p.filter = std::move(f);
  }
  return p;
}

void encode_payloads(ByteWriter& w, const RumorList& ps) {
  w.varint(ps.size());
  // Splice each rumor's cached encoding: byte-identical to encode_payload,
  // but serialized once per rumor lifetime instead of once per send.
  for (const RumorPtr& p : ps.shared()) w.raw(p->wire());
}

RumorList decode_payloads(ByteReader& r) {
  const std::size_t n = r.count(10);  // minimum encoded RumorPayload
  RumorList ps;
  ps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ps.push_back(decode_payload(r));
  return ps;
}

std::size_t rumor_id_list_size(const std::vector<RumorId>& ids) {
  std::size_t s = varint_size(ids.size());
  for (const RumorId& id : ids) s += 4 + varint_size(id.version);
  return s;
}

std::size_t rumor_list_size(const RumorList& ps) {
  std::size_t s = varint_size(ps.size());
  for (const RumorPtr& p : ps.shared()) s += p->wire().size();
  return s;
}

struct EncodedSizeVisitor {
  std::size_t operator()(const RumorMsg& msg) const {
    return 1 + rumor_list_size(msg.rumors) + rumor_id_list_size(msg.recent_ids);
  }
  std::size_t operator()(const RumorAckMsg& msg) const {
    return 1 + rumor_id_list_size(msg.already_knew) + rumor_id_list_size(msg.recent_ids) +
           rumor_id_list_size(msg.pull_ids);
  }
  std::size_t operator()(const SummaryRequestMsg& msg) const {
    return 1 + varint_size(msg.base_token);
  }
  std::size_t operator()(const SummaryMsg& msg) const {
    std::size_t s = 1 + 1 + varint_size(msg.base_token) + varint_size(msg.rejoin_floor);
    if (msg.base_token != 0) {
      const DeltaLists d = delta_lists(msg);
      s += varint_size(d.entries->size());
      for (const PeerSummary& e : *d.entries) s += 4 + varint_size(e.version);
      s += varint_size(d.removed->size()) + 4 * d.removed->size();
      return s;
    }
    s += varint_size(msg.entries.size());
    for (const PeerSummary& e : msg.entries) s += 4 + varint_size(e.version);
    return s;
  }
  std::size_t operator()(const PullRequestMsg& msg) const {
    return 1 + rumor_id_list_size(msg.ids);
  }
  std::size_t operator()(const PullResponseMsg& msg) const {
    return 1 + rumor_list_size(msg.rumors);
  }
  std::size_t operator()(const RumorDigestMsg& msg) const {
    return 1 + rumor_id_list_size(msg.ids) + rumor_id_list_size(msg.recent_ids);
  }
  std::size_t operator()(const RumorWantMsg& msg) const {
    return 1 + rumor_id_list_size(msg.want) + rumor_id_list_size(msg.already_knew) +
           rumor_id_list_size(msg.recent_ids) + rumor_id_list_size(msg.pull_ids);
  }
};

struct EncodeVisitor {
  ByteWriter& w;

  void operator()(const RumorMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRumor));
    encode_payloads(w, msg.rumors);
    encode_rumor_ids(w, msg.recent_ids);
  }
  void operator()(const RumorAckMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRumorAck));
    encode_rumor_ids(w, msg.already_knew);
    encode_rumor_ids(w, msg.recent_ids);
    encode_rumor_ids(w, msg.pull_ids);
  }
  void operator()(const SummaryRequestMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kSummaryRequest));
    w.varint(msg.base_token);
  }
  void operator()(const SummaryMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kSummary));
    w.u8(msg.push ? 1 : 0);
    w.varint(msg.base_token);
    if (msg.base_token != 0) {
      // Delta form: only the changed-set relative to the shared base travels.
      const DeltaLists d = delta_lists(msg);
      w.varint(d.entries->size());
      for (const PeerSummary& e : *d.entries) {
        w.u32(e.id);
        w.varint(e.version);
      }
      w.varint(d.removed->size());
      for (const PeerId id : *d.removed) w.u32(id);
    } else {
      w.varint(msg.entries.size());
      for (const auto& e : msg.entries) {
        w.u32(e.id);
        w.varint(e.version);
      }
    }
    w.varint(msg.rejoin_floor);
  }
  void operator()(const PullRequestMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPullRequest));
    encode_rumor_ids(w, msg.ids);
  }
  void operator()(const PullResponseMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kPullResponse));
    encode_payloads(w, msg.rumors);
  }
  void operator()(const RumorDigestMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRumorDigest));
    encode_rumor_ids(w, msg.ids);
    encode_rumor_ids(w, msg.recent_ids);
  }
  void operator()(const RumorWantMsg& msg) const {
    w.u8(static_cast<std::uint8_t>(Tag::kRumorWant));
    encode_rumor_ids(w, msg.want);
    encode_rumor_ids(w, msg.already_knew);
    encode_rumor_ids(w, msg.recent_ids);
    encode_rumor_ids(w, msg.pull_ids);
  }
};

}  // namespace

std::span<const std::uint8_t> SharedRumor::wire() const {
  std::call_once(wire_once_, [this] {
    ByteWriter w;
    encode_payload(w, payload_);
    wire_ = w.take();
  });
  return wire_;
}

const std::vector<PeerSummary>& SummaryView::flat_list() const {
  // Same idiom as SharedRumor::wire(): many receivers may share this view
  // (one SummaryMsg fanned out to several simulated deliveries), so the
  // merge runs at most once, thread-safely.
  std::call_once(flat_once_, [this] {
    const std::vector<PeerSummary>& b = *base;
    const SummaryDelta& d = *delta;
    flat_.reserve(merged_size);
    std::size_t di = 0;
    std::size_t ri = 0;
    for (const PeerSummary& s : b) {
      while (di < d.entries.size() && d.entries[di].id < s.id) flat_.push_back(d.entries[di++]);
      while (ri < d.removed.size() && d.removed[ri] < s.id) ++ri;
      if (ri < d.removed.size() && d.removed[ri] == s.id) {
        ++ri;
        if (di < d.entries.size() && d.entries[di].id == s.id) ++di;  // defensive
        continue;
      }
      if (di < d.entries.size() && d.entries[di].id == s.id) {
        flat_.push_back(d.entries[di++]);  // overlay version overrides base
      } else {
        flat_.push_back(s);
      }
    }
    while (di < d.entries.size()) flat_.push_back(d.entries[di++]);
  });
  return flat_;
}

std::optional<std::uint64_t> SummaryEntries::version_of(PeerId id) const {
  const auto by_id = [](const PeerSummary& s, PeerId want) { return s.id < want; };
  if (view_ != nullptr) {
    const SummaryDelta& d = *view_->delta;
    if (auto it = std::lower_bound(d.entries.begin(), d.entries.end(), id, by_id);
        it != d.entries.end() && it->id == id) {
      return it->version;
    }
    if (std::binary_search(d.removed.begin(), d.removed.end(), id)) return std::nullopt;
    const std::vector<PeerSummary>& b = *view_->base;
    if (auto it = std::lower_bound(b.begin(), b.end(), id, by_id);
        it != b.end() && it->id == id) {
      return it->version;
    }
    return std::nullopt;
  }
  // Hand-built lists (tests, hostile decode) are not guaranteed sorted.
  for (const PeerSummary& s : list()) {
    if (s.id == id) return s.version;
  }
  return std::nullopt;
}

std::size_t wire_size(const Message& msg, const SizeModel& model) {
  return std::visit(SizeVisitor{model}, msg);
}

std::size_t payload_wire_size(const RumorPayload& payload, const SizeModel& model) {
  return payload_size(payload, model);
}

std::size_t encoded_size(const Message& msg) { return std::visit(EncodedSizeVisitor{}, msg); }

std::vector<std::uint8_t> encode_message(const Message& msg) {
  ByteWriter w;
  encode_message_into(w, msg);
  return w.take();
}

void encode_message_into(ByteWriter& w, const Message& msg) {
  w.clear();
  const std::size_t predicted = encoded_size(msg);
  w.reserve(predicted);
#ifndef NDEBUG
  const std::size_t cap_before = w.capacity();
#endif
  std::visit(EncodeVisitor{w}, msg);
  // The reservation above must have been exact: a mismatch means an encoder
  // and its EncodedSizeVisitor entry drifted apart (and the write path
  // reallocated mid-message).
  assert(w.size() == predicted && "encoded_size out of sync with encoder");
#ifndef NDEBUG
  assert(w.capacity() == cap_before && "encode_message reallocated despite pre-sizing");
#endif
}

Message decode_message(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const Tag tag = static_cast<Tag>(r.u8());
  switch (tag) {
    case Tag::kRumor: {
      RumorMsg m;
      m.rumors = decode_payloads(r);
      m.recent_ids = decode_rumor_ids(r);
      return m;
    }
    case Tag::kRumorAck: {
      RumorAckMsg m;
      m.already_knew = decode_rumor_ids(r);
      m.recent_ids = decode_rumor_ids(r);
      m.pull_ids = decode_rumor_ids(r);
      return m;
    }
    case Tag::kSummaryRequest: {
      SummaryRequestMsg m;
      m.base_token = r.varint();
      return m;
    }
    case Tag::kSummary: {
      SummaryMsg m;
      m.push = r.u8() != 0;
      m.base_token = r.varint();
      const std::size_t n = r.count(5);  // u32 + varint
      std::vector<PeerSummary> entries;
      entries.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        PeerSummary s;
        s.id = r.u32();
        s.version = r.varint();
        entries.push_back(s);
      }
      m.entries = SummaryEntries::adopt(std::move(entries));
      if (m.base_token != 0) {
        const std::size_t nr = r.count(4);  // u32 per removed id
        m.removed.reserve(nr);
        for (std::size_t i = 0; i < nr; ++i) m.removed.push_back(r.u32());
      }
      m.rejoin_floor = r.varint();
      return m;
    }
    case Tag::kPullRequest: {
      PullRequestMsg m;
      m.ids = decode_rumor_ids(r);
      return m;
    }
    case Tag::kPullResponse: {
      PullResponseMsg m;
      m.rumors = decode_payloads(r);
      return m;
    }
    case Tag::kRumorDigest: {
      RumorDigestMsg m;
      m.ids = decode_rumor_ids(r);
      m.recent_ids = decode_rumor_ids(r);
      return m;
    }
    case Tag::kRumorWant: {
      RumorWantMsg m;
      m.want = decode_rumor_ids(r);
      m.already_knew = decode_rumor_ids(r);
      m.recent_ids = decode_rumor_ids(r);
      m.pull_ids = decode_rumor_ids(r);
      return m;
    }
  }
  throw std::runtime_error("decode_message: unknown tag");
}

const char* message_name(const Message& msg) {
  struct Visitor {
    const char* operator()(const RumorMsg&) const { return "Rumor"; }
    const char* operator()(const RumorAckMsg&) const { return "RumorAck"; }
    const char* operator()(const SummaryRequestMsg&) const { return "SummaryRequest"; }
    const char* operator()(const SummaryMsg&) const { return "Summary"; }
    const char* operator()(const PullRequestMsg&) const { return "PullRequest"; }
    const char* operator()(const PullResponseMsg&) const { return "PullResponse"; }
    const char* operator()(const RumorDigestMsg&) const { return "RumorDigest"; }
    const char* operator()(const RumorWantMsg&) const { return "RumorWant"; }
  };
  return std::visit(Visitor{}, msg);
}

}  // namespace planetp::gossip
