/// \file fig5_dynamic2000.cpp
/// Figure 5: convergence-time CDF for a dynamic community of 2000 members.
///   LAN    — all 45 Mb/s, flat selection
///   MIX    — Saroiu mixture with the bandwidth-aware two-class algorithm
///   MIX-F  — events originating at fast peers; convergence = all fast
///            peers know (the fast tier barely notices the slow one)
///   MIX-S  — events originating at slow peers, same fast-only condition

#include <cstdio>
#include <cstring>

#include "sim/scenarios.hpp"

using namespace planetp;
using namespace planetp::sim;

namespace {

void print_cdf(const char* name, const CdfResult& r) {
  std::printf("# cdf %s  (events=%zu converged=%zu mean=%.1fs p50=%.1fs p90=%.1fs "
              "p99=%.1fs)\n",
              name, r.events, r.converged, r.mean_seconds, r.p50, r.p90, r.p99);
  std::printf("%-12s %10s\n", "time(s)", "fraction");
  for (std::size_t i = 0; i < r.cdf.size(); i += 5) {
    std::printf("%-12.1f %10.2f\n", r.cdf[i].first, r.cdf[i].second);
  }
  if (!r.cdf.empty()) {
    std::printf("%-12.1f %10.2f\n", r.cdf.back().first, r.cdf.back().second);
  }
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t members = quick ? 300 : 2000;
  const Duration duration = quick ? kHour : 4 * kHour;

  std::printf("Figure 5 — dynamic community of %zu members\n\n", members);

  DynamicOptions lan;
  lan.members = members;
  lan.duration = duration;
  lan.seed = 21;
  const DynamicResult lan_result = run_dynamic(lan);
  print_cdf("LAN", lan_result.all);

  DynamicOptions mix = lan;
  mix.profile = BandwidthProfile::kMix;
  mix.bandwidth_aware = true;
  const DynamicResult mix_result = run_dynamic(mix);
  print_cdf("MIX (all events, all online peers)", mix_result.all);
  print_cdf("MIX-F (fast-origin events, fast peers converge)", mix_result.fast_only);
  print_cdf("MIX-S (slow-origin events, fast peers converge)", mix_result.slow_only);
  return 0;
}
