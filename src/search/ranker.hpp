#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/epoch_index.hpp"
#include "index/inverted_index.hpp"

/// \file ranker.hpp
/// Document scoring (eq. 2). The same accumulation serves the centralized
/// TFxIDF baseline (term weights = IDF over the global index) and PlanetP's
/// local evaluation of a remote query (term weights = IPF shipped by the
/// searcher).
///
/// Scoring follows Witten, Moffat & Bell's accumulator-array organization:
/// postings carry dense document slots, so per-query work is additions into
/// a flat double array (no string- or id-keyed hash map), and the top-k path
/// selects results with a bounded min-heap instead of sorting every matched
/// document. The heap's tie-break (equal scores -> ascending DocumentId) is
/// pinned to be byte-identical to the full-sort path.
///
/// On top of that sits the *pruned* top-k driver (docs/INDEX.md "Block-max
/// pruning"): when a query runs against a block-structured CompressedIndex
/// (directly, through a TfIdfRanker accelerator, or as the base of an epoch
/// snapshot), terms are ordered by score upper bound, a bounded min-heap
/// maintains the entry threshold, and blocks whose maxima cannot beat the
/// threshold are skipped outright (MaxScore / Block-Max-WAND). The driver
/// is rank-safe: its output is byte-identical — scores, documents,
/// tie-breaks — to exhaustive scoring for every k. Pending epoch segments
/// and tombstones are handled exactly (segments scored unpruned, tombstoned
/// documents dropped per candidate), and correctness-critical corner cases
/// fall back to the exhaustive path.

namespace planetp::search {

struct ScoredDoc {
  index::DocumentId doc;
  double score = 0.0;
};

/// Strict ranking order: descending score, ties by ascending DocumentId.
inline bool ranks_before(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Counters from the pruned top-k driver (monotone; callers zero them).
/// blocks_skipped > 0 proves the pruning actually fired.
struct PruneStats {
  std::uint64_t pruned_queries = 0;    ///< queries served by the pruned driver
  std::uint64_t prune_fallbacks = 0;   ///< queries served exhaustively instead
  std::uint64_t blocks_skipped = 0;    ///< blocks jumped over or refused by block-max
  std::uint64_t postings_decoded = 0;  ///< postings decoded on the pruned path
  std::uint64_t docs_evaluated = 0;    ///< candidates fully scored
  std::uint64_t docs_abandoned = 0;    ///< candidates dropped by a bound mid-score

  PruneStats& operator+=(const PruneStats& o) {
    pruned_queries += o.pruned_queries;
    prune_fallbacks += o.prune_fallbacks;
    blocks_skipped += o.blocks_skipped;
    postings_decoded += o.postings_decoded;
    docs_evaluated += o.docs_evaluated;
    docs_abandoned += o.docs_abandoned;
    return *this;
  }
};

/// Score all documents of \p idx against the weighted query terms:
///   score(D) = sum_t w_{D,t} * weight_t / sqrt(|D|)
/// Documents matching no term are omitted. Results are sorted by descending
/// score (ties broken by DocumentId for determinism).
std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights);

/// Score all live documents of an immutable epoch snapshot — the lock-free
/// concurrent-reader path (DataStore::snapshot()). Byte-identical to
/// score_documents over a sequential store holding the same documents: both
/// accumulate score_contribution in lexicographic term order and tie-break
/// with ranks_before.
std::vector<ScoredDoc> score_snapshot(
    const index::EpochSnapshot& snap,
    const std::unordered_map<std::string, double>& term_weights);

/// Top-k over a CompressedIndex through the pruned driver. Byte-identical
/// to `ci.score(term_weights)` + truncate_top_k for every k (the property
/// test pins this); falls back to exhaustive cursor scoring when pruning
/// cannot pay off (tiny k·postings, k >= corpus).
std::vector<ScoredDoc> compressed_top_k(
    const index::CompressedIndex& ci,
    const std::unordered_map<std::string, double>& term_weights, std::size_t k,
    PruneStats* stats = nullptr);

/// The centralized TFxIDF baseline of §7.3: assumes full knowledge of the
/// community's merged index, scores with IDF weights and returns the top-k.
class TfIdfRanker {
 public:
  explicit TfIdfRanker(const index::InvertedIndex& global_index)
      : index_(&global_index) {}

  /// With \p accel — a CompressedIndex snapshot of the same logical content
  /// (CompressedIndex::build over \p global_index) — top_k runs the pruned
  /// block-max driver against it. The caller owns keeping the accelerator
  /// in sync; results stay byte-identical to the exhaustive path.
  TfIdfRanker(const index::InvertedIndex& global_index, const index::CompressedIndex* accel)
      : index_(&global_index), accel_(accel) {}

  /// IDF weights for the query terms over the global collection.
  std::unordered_map<std::string, double> idf_weights(
      const std::vector<std::string>& terms) const;
  /// Allocation-free variant for query loops: fills \p out (cleared, bucket
  /// capacity reused across calls).
  void idf_weights(const std::vector<std::string>& terms,
                   std::unordered_map<std::string, double>& out) const;

  /// Top-k documents by eq. 2. Uses the dense accumulator plus a bounded
  /// min-heap (or the pruned driver when an accelerator is attached); the
  /// result is identical to full scoring + truncate_top_k either way.
  std::vector<ScoredDoc> top_k(const std::vector<std::string>& terms, std::size_t k,
                               PruneStats* stats = nullptr) const;

 private:
  const index::InvertedIndex* index_;
  const index::CompressedIndex* accel_ = nullptr;
};

/// TFxIDF ranking over an immutable epoch snapshot: the concurrent-reader
/// analogue of TfIdfRanker. IDF inputs come from the snapshot's exact live
/// statistics, so results are byte-identical (scores, documents, tie-breaks)
/// to TfIdfRanker over a sequential store with the same documents.
class SnapshotRanker {
 public:
  explicit SnapshotRanker(const index::EpochSnapshot& snap) : snap_(&snap) {}

  /// IDF weights for the query terms over the snapshot's live collection.
  std::unordered_map<std::string, double> idf_weights(
      const std::vector<std::string>& terms) const;
  /// Allocation-free variant for query loops (see TfIdfRanker).
  void idf_weights(const std::vector<std::string>& terms,
                   std::unordered_map<std::string, double>& out) const;

  /// Top-k documents by eq. 2; bounded min-heap, identical result to full
  /// scoring + truncate_top_k. When the snapshot has a block-structured
  /// base, the base is scanned through the pruned block-max driver while
  /// pending segments are scored exhaustively and tombstoned documents are
  /// dropped per candidate — rank-safe under live publishes and removals.
  std::vector<ScoredDoc> top_k(const std::vector<std::string>& terms, std::size_t k,
                               PruneStats* stats = nullptr) const;

 private:
  const index::EpochSnapshot* snap_;
};

/// Keep the top-k of a scored list (already sorted descending).
void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k);

}  // namespace planetp::search
