#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace planetp {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = pct / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> SampleSet::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const std::size_t idx =
        std::min(samples_.size() - 1,
                 static_cast<std::size_t>(frac * static_cast<double>(samples_.size())) -
                     (i == points ? 1 : 0));
    const std::size_t safe_idx = std::min(idx, samples_.size() - 1);
    out.emplace_back(samples_[safe_idx], frac);
  }
  return out;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 matching samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bucket_low(i) << ".." << bucket_low(i + 1) << ": " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace planetp
