#pragma once

#include <span>
#include <string>
#include <vector>

#include "index/data_store.hpp"

/// \file persistence.hpp
/// Durable storage for a peer's local data store. A PlanetP peer that goes
/// offline keeps its published documents; on restart it reloads them,
/// rebuilds its inverted index and Bloom filter, and rejoins the community
/// with the same content (its rejoin rumor re-advertises the filter).
///
/// Format (versioned, little-endian, ByteWriter framing):
///   magic "PPDS" | u32 format version | u32 peer id | u32 next local id |
///   varint doc count | per doc: u32 local id, length-prefixed XML source
///
/// Only the XML sources are stored; the index, filter and extracted text are
/// derived state and are rebuilt on load (publish() is the single code path
/// that constructs them, so stored and freshly published documents can never
/// disagree).

namespace planetp::index {

/// Current snapshot format version.
inline constexpr std::uint32_t kDataStoreFormatVersion = 1;

/// Current compressed-index snapshot format version. v2 added per-block and
/// per-term max_freq (norm-aware pruning bounds).
inline constexpr std::uint32_t kCompressedIndexFormatVersion = 2;

/// Serialize a read-optimized CompressedIndex — including the block skip
/// entries and score upper bounds the pruned top-k driver needs — so a
/// restarting peer can serve pruned queries without re-deriving the block
/// metadata. Canonical: terms are written in lexicographic order and all
/// offsets are relative to each term's byte run, so equal logical content
/// always serializes to equal bytes.
///
/// Format (versioned, little-endian, ByteWriter framing):
///   magic "PPCI" | u32 format version |
///   varint doc count | per doc: u32 peer, u32 local, varint doc length |
///   varint term count | per term (lex order):
///     length-prefixed term | varint doc_freq | varint collection_freq |
///     length-prefixed posting run (delta-coded varint (gap, freq) pairs) |
///     varint block count | per block:
///       varint offset, varint last_dense, varint base_dense,
///       f64 max_contrib, varint max_freq |
///     f64 term max_contrib | varint term max_freq
std::vector<std::uint8_t> serialize_compressed_index(const CompressedIndex& ci);

/// Reconstruct a CompressedIndex from serialize_compressed_index output.
/// Hostile-input hardened (the same count discipline as ByteReader::count):
/// every posting run is decoded and bounds-checked against the document
/// table, and the stored skip entries, block counts and score bounds are
/// verified against a canonical re-encode of the decoded postings — any
/// tampered offset, dense id, count or bound throws std::runtime_error
/// before a PostingCursor ever walks the data.
CompressedIndex deserialize_compressed_index(std::span<const std::uint8_t> bytes);

/// Serialize \p store into a byte buffer.
std::vector<std::uint8_t> serialize_data_store(const DataStore& store);

/// Reconstruct a data store from serialize_data_store output. Documents keep
/// their original local ids. Throws std::runtime_error on a bad snapshot.
DataStore deserialize_data_store(std::span<const std::uint8_t> bytes,
                                 bloom::BloomParams bloom_params = {},
                                 text::AnalyzerOptions analyzer_opts = {});

/// Write a snapshot to \p path (atomically: temp file + rename).
/// Returns false on I/O failure.
bool save_data_store(const DataStore& store, const std::string& path);

/// Load a snapshot from \p path. Throws std::runtime_error when the file is
/// missing or corrupt.
DataStore load_data_store(const std::string& path, bloom::BloomParams bloom_params = {},
                          text::AnalyzerOptions analyzer_opts = {});

}  // namespace planetp::index
