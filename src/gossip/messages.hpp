#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <variant>
#include <vector>

#include "gossip/types.hpp"
#include "util/byte_buffer.hpp"

/// \file messages.hpp
/// Gossip wire messages. One encode/decode path serves the live TCP runtime;
/// the simulator prices the same messages with the Table 2 size model (3-byte
/// header, 48-byte peer summaries, 6-byte rumor-id/BF summaries, and a
/// linear-in-keys Bloom filter cost anchored at 1000 keys = 3000 B and
/// 20000 keys = 16000 B).
///
/// Rumor payloads are *interned*: a RumorPayload entering the hot set is
/// wrapped once in an immutable SharedRumor and every message that carries it
/// — across fanout targets, rounds, and re-gossip hops — holds the same
/// shared_ptr. The wire encoding is computed lazily, once per SharedRumor,
/// and spliced into each message verbatim, so a rumor's address string and
/// filter bytes are serialized exactly once no matter how often it is sent.

namespace planetp::gossip {

/// An immutable rumor payload plus its lazily-computed wire encoding.
/// Thread-safe: the live runtime encodes outside the node lock, so the wire
/// cache is guarded by a once_flag. The payload itself never changes after
/// construction.
class SharedRumor {
 public:
  explicit SharedRumor(RumorPayload payload) : payload_(std::move(payload)) {}

  const RumorPayload& payload() const { return payload_; }
  RumorId id() const { return payload_.id(); }

  /// The payload's binary encoding (exactly what encode_payload emits),
  /// produced on first use and reused for every subsequent send.
  std::span<const std::uint8_t> wire() const;

 private:
  RumorPayload payload_;
  mutable std::once_flag wire_once_;
  mutable std::vector<std::uint8_t> wire_;
};

using RumorPtr = std::shared_ptr<const SharedRumor>;

/// Wrap a payload for sharing.
inline RumorPtr intern_rumor(RumorPayload payload) {
  return std::make_shared<SharedRumor>(std::move(payload));
}

/// An ordered list of shared rumors. Iteration and operator[] yield the
/// payloads (what protocol logic and tests read); ptr()/shared() expose the
/// interned handles for zero-copy forwarding.
class RumorList {
 public:
  RumorList() = default;

  void push_back(RumorPayload p) { items_.push_back(intern_rumor(std::move(p))); }
  void push_back(RumorPtr p) { items_.push_back(std::move(p)); }
  void reserve(std::size_t n) { items_.reserve(n); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const RumorPayload& operator[](std::size_t i) const { return items_[i]->payload(); }
  const RumorPayload& back() const { return items_.back()->payload(); }
  const RumorPtr& ptr(std::size_t i) const { return items_[i]; }
  const std::vector<RumorPtr>& shared() const { return items_; }

  /// Payload-view iterator, so `for (const RumorPayload& p : msg.rumors)`
  /// reads naturally at every consumer.
  class const_iterator {
   public:
    explicit const_iterator(std::vector<RumorPtr>::const_iterator it) : it_(it) {}
    const RumorPayload& operator*() const { return (*it_)->payload(); }
    const RumorPayload* operator->() const { return &(*it_)->payload(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const const_iterator&) const = default;

   private:
    std::vector<RumorPtr>::const_iterator it_;
  };
  const_iterator begin() const { return const_iterator(items_.begin()); }
  const_iterator end() const { return const_iterator(items_.end()); }

 private:
  std::vector<RumorPtr> items_;
};

/// Push rumoring: the sender's currently-hot rumors, plus the partial
/// anti-entropy piggyback — ids of the most recent rumors the sender learned
/// but is no longer actively spreading (§3).
struct RumorMsg {
  RumorList rumors;
  std::vector<RumorId> recent_ids;
};

/// Reply to RumorMsg: which of the pushed rumors the receiver already knew
/// (drives the sender's stop-counter), the receiver's own piggyback, and the
/// ids the receiver wants pulled (it was missing them from the sender's
/// piggyback).
struct RumorAckMsg {
  std::vector<RumorId> already_knew;
  std::vector<RumorId> recent_ids;
  std::vector<RumorId> pull_ids;
};

/// Lazy rumor mongering (docs/PROTOCOL.md "Lazy dissemination"): instead of
/// full payloads, push only the (id, version) digests of the sender's hot
/// rumors. Receivers diff against their directory and reply with a
/// RumorWantMsg naming the ids whose bodies they lack. `recent_ids` is the
/// same partial anti-entropy piggyback RumorMsg carries.
struct RumorDigestMsg {
  std::vector<RumorId> ids;
  std::vector<RumorId> recent_ids;
};

/// Reply to RumorDigestMsg. Every digest id is echoed into exactly one of
/// `want` / `already_knew`, so the sender's per-rumor stop counters advance
/// on precise evidence (unlike RumorAck, whose "absence means news" rule
/// assumes one message carried the whole hot set). `recent_ids` / `pull_ids`
/// are the partial anti-entropy legs, as in RumorAckMsg.
struct RumorWantMsg {
  std::vector<RumorId> want;          ///< bodies the receiver lacks
  std::vector<RumorId> already_knew;  ///< digest ids already at or past this version
  std::vector<RumorId> recent_ids;
  std::vector<RumorId> pull_ids;
};

/// Pull anti-entropy step 1: ask the target for its directory summary.
/// `base_token` (0 = none) advertises the asker's shared DirectoryBase; a
/// replier holding the same base may answer with a delta-only SummaryMsg.
struct SummaryRequestMsg {
  std::uint64_t base_token = 0;
};

/// A based Directory's summary expressed as (shared base snapshot, shared
/// changed-set): the logical entry list is the base with delta entries merged
/// over it and removed ids dropped. Building one is two pointer copies no
/// matter the community size, and a receiver sharing the same base compares
/// deltas instead of full lists (Directory::newer_in/same_as fast paths).
/// The merged flat list is materialized lazily, at most once, only when a
/// consumer genuinely needs per-entry iteration (live-mode encode, or a
/// receiver that does not share the base).
struct SummaryView {
  SummaryView(SummarySnapshot b, std::shared_ptr<const SummaryDelta> d, std::size_t merged)
      : base(std::move(b)), delta(std::move(d)), merged_size(merged) {}

  SummarySnapshot base;
  std::shared_ptr<const SummaryDelta> delta;
  std::size_t merged_size = 0;

  const std::vector<PeerSummary>& flat_list() const;

 private:
  mutable std::once_flag flat_once_;
  mutable std::vector<PeerSummary> flat_;
};

/// Directory summary entries: a Directory snapshot shared as-is, a shared
/// base+delta view (based directories), or a locally built list (decode,
/// tests). Reads see one id-sorted vector either way.
class SummaryEntries {
 public:
  SummaryEntries() = default;
  SummaryEntries(SummarySnapshot snap) : snap_(std::move(snap)) {}
  SummaryEntries(std::shared_ptr<const SummaryView> view) : view_(std::move(view)) {}
  SummaryEntries(std::initializer_list<PeerSummary> init) : own_(init) {}

  static SummaryEntries adopt(std::vector<PeerSummary> v) {
    SummaryEntries e;
    e.own_ = std::move(v);
    return e;
  }

  /// Builder-path append (decode, tests). Detaches from a shared snapshot.
  void push_back(const PeerSummary& s) {
    if (snap_ != nullptr || view_ != nullptr) {
      own_ = list();
      snap_.reset();
      view_.reset();
    }
    own_.push_back(s);
  }
  void reserve(std::size_t n) {
    if (snap_ == nullptr && view_ == nullptr) own_.reserve(n);
  }

  const std::vector<PeerSummary>& list() const {
    if (view_ != nullptr) return view_->flat_list();
    return snap_ != nullptr ? *snap_ : own_;
  }
  /// O(1) in every mode — the SizeModel path must never force a view to
  /// materialize its merged list.
  std::size_t size() const { return view_ != nullptr ? view_->merged_size : list().size(); }
  bool empty() const { return size() == 0; }
  const PeerSummary& operator[](std::size_t i) const { return list()[i]; }
  std::vector<PeerSummary>::const_iterator begin() const { return list().begin(); }
  std::vector<PeerSummary>::const_iterator end() const { return list().end(); }

  /// The version this summary advertises for \p id, if present. O(log n) for
  /// shared views (no materialization), linear otherwise. Replaces the O(n)
  /// own-id scan every summary receipt used to pay.
  std::optional<std::uint64_t> version_of(PeerId id) const;

  /// Non-null when this summary is a shared base+delta view (the receiver
  /// checks base pointer identity for the O(changed) compare fast path).
  const std::shared_ptr<const SummaryView>& view() const { return view_; }

 private:
  SummarySnapshot snap_;
  std::shared_ptr<const SummaryView> view_;
  std::vector<PeerSummary> own_;
};

/// Directory summary: one PeerSummary per known record. Sent as the reply in
/// pull anti-entropy, or unsolicited in push-anti-entropy-only mode (the
/// paper's LAN-AE baseline). `push` distinguishes the two on receipt.
struct SummaryMsg {
  SummaryEntries entries;
  bool push = false;
  /// Non-zero when the replier holds a T_dead tombstone for the *asker*: the
  /// version the asker's record was expired at. The asker restarted below it
  /// (lost its version counter in a crash), so every update it gossips at or
  /// below this version will be refused as stale — it must jump past it.
  std::uint64_t rejoin_floor = 0;
  /// Non-zero: this summary is *delta-only* against the shared DirectoryBase
  /// `base_token` (which the asker advertised and the replier verified it
  /// holds). Only the replier's changed-set travels: in simulation `entries`
  /// stays the full shared view and the size model prices the delta; on the
  /// live wire only the delta entries plus `removed` are encoded, and the
  /// decoded form carries exactly those.
  std::uint64_t base_token = 0;
  /// Delta-only decoded form: base ids the replier expired locally.
  std::vector<PeerId> removed;
};

/// Ask the target for full records of these rumor ids (anti-entropy pull, or
/// partial-anti-entropy pull after a piggyback hit).
struct PullRequestMsg {
  std::vector<RumorId> ids;
};

/// Full records answering a PullRequestMsg. Filters are sent whole here
/// (base_version == 0), since the requester may hold no usable base.
struct PullResponseMsg {
  RumorList rumors;
};

using Message = std::variant<RumorMsg, RumorAckMsg, SummaryRequestMsg, SummaryMsg,
                             PullRequestMsg, PullResponseMsg, RumorDigestMsg, RumorWantMsg>;

/// Number of alternatives in Message; per-type traffic accounting (sim
/// NetworkStats) indexes by variant index.
inline constexpr std::size_t kMessageTypeCount = std::variant_size_v<Message>;

/// Table 2 wire-cost model. Changing these constants re-prices every
/// simulated experiment without touching protocol logic.
struct SizeModel {
  std::size_t header_bytes = 3;
  std::size_t summary_entry_bytes = 6;  ///< Table 2 "BF summary": (id, version) digest
  std::size_t rumor_id_bytes = 6;
  std::size_t base_token_bytes = 8;  ///< shared-base token on delta summaries
  std::size_t removed_id_bytes = 4;  ///< one removed PeerId on delta summaries
  std::size_t record_base_bytes = 48;  ///< Table 2 "peer summary": full record sans filter
  // Linear Bloom-filter cost through Table 2's anchors
  // (1000, 3000) and (20000, 16000).
  double filter_fixed_bytes = 2315.8;
  double filter_per_key_bytes = 0.6842;

  /// Modeled compressed size of a filter payload covering \p keys keys.
  std::size_t filter_bytes(std::uint64_t keys) const;
};

/// Modeled wire size of \p msg under \p model. When a payload carries real
/// filter bytes (live mode) those dominate the model's estimate.
std::size_t wire_size(const Message& msg, const SizeModel& model);

/// Modeled wire size of one rumor payload (record base + filter cost).
std::size_t payload_wire_size(const RumorPayload& payload, const SizeModel& model);

/// Exact binary encoding size of \p msg (tag byte included). encode_message
/// pre-sizes its output from this, so encoding never reallocates.
std::size_t encoded_size(const Message& msg);

/// Binary encoding (live runtime). The first byte is the variant tag.
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Encode into a caller-owned writer (cleared first), reserving exactly
/// encoded_size(msg) so the write path performs at most one allocation —
/// zero when the writer's buffer is reused and already large enough.
void encode_message_into(ByteWriter& w, const Message& msg);

/// Inverse of encode_message; throws on malformed input.
Message decode_message(std::span<const std::uint8_t> data);

/// Human-readable tag for logs.
const char* message_name(const Message& msg);

}  // namespace planetp::gossip
