#include <gtest/gtest.h>

#include "broker/broker_network.hpp"
#include "broker/hash_ring.hpp"
#include "broker/snippet_store.hpp"

namespace planetp::broker {
namespace {

TEST(HashRing, EmptyRingHasNoOwner) {
  HashRing ring;
  EXPECT_FALSE(ring.responsible_for("key").has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(HashRing, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add(7, 1000);
  for (const char* key : {"a", "b", "zzz", "gossip"}) {
    EXPECT_EQ(ring.responsible_for(key), 7u);
  }
}

TEST(HashRing, SuccessorSemantics) {
  HashRing ring(1000);
  ring.add(1, 100);
  ring.add(2, 500);
  ring.add(3, 900);
  EXPECT_EQ(ring.successor_of(50), 1u);
  EXPECT_EQ(ring.successor_of(100), 1u);   // least successor includes equality
  EXPECT_EQ(ring.successor_of(101), 2u);
  EXPECT_EQ(ring.successor_of(501), 3u);
  EXPECT_EQ(ring.successor_of(950), 1u);   // wraps around
}

TEST(HashRing, DuplicatePositionRejected) {
  HashRing ring;
  EXPECT_TRUE(ring.add(1, 42));
  EXPECT_FALSE(ring.add(2, 42));
  EXPECT_FALSE(ring.add(1, 43));  // node already present
}

TEST(HashRing, RemoveTransfersOwnership) {
  HashRing ring(1000);
  ring.add(1, 100);
  ring.add(2, 500);
  EXPECT_EQ(ring.successor_of(300), 2u);
  ring.remove(2);
  EXPECT_EQ(ring.successor_of(300), 1u);  // wraps to the only node
}

TEST(HashRing, SuccessorNode) {
  HashRing ring(1000);
  ring.add(1, 100);
  ring.add(2, 500);
  ring.add(3, 900);
  EXPECT_EQ(ring.successor_node(1), 2u);
  EXPECT_EQ(ring.successor_node(3), 1u);  // wrap
  ring.remove(2);
  ring.remove(3);
  EXPECT_FALSE(ring.successor_node(1).has_value());  // alone
}

TEST(HashRing, AddByHashBalancesKeys) {
  HashRing ring;
  const std::size_t nodes = 50;
  for (NodeId n = 0; n < nodes; ++n) ring.add_by_hash(n);

  std::unordered_map<NodeId, std::size_t> load;
  const std::size_t keys = 20000;
  for (std::size_t i = 0; i < keys; ++i) {
    const auto owner = ring.responsible_for("key" + std::to_string(i));
    ASSERT_TRUE(owner.has_value());
    ++load[*owner];
  }
  // Plain consistent hashing without virtual nodes is unbalanced but every
  // node should own a nonempty, non-majority share in aggregate terms.
  std::size_t max_load = 0;
  for (const auto& [node, count] : load) max_load = std::max(max_load, count);
  EXPECT_GT(load.size(), nodes / 2);      // most nodes own something
  EXPECT_LT(max_load, keys / 2);          // nobody owns half the space
}

TEST(SnippetStore, PutGetAndExpiry) {
  SnippetStore store;
  Snippet s{1, 10, "<x/>", {"key"}, 100 * kSecond};
  store.put("key", s);
  EXPECT_EQ(store.get("key", 50 * kSecond).size(), 1u);
  EXPECT_TRUE(store.get("key", 100 * kSecond).empty());  // discard time hit
  EXPECT_EQ(store.key_count(), 0u);                      // pruned
}

TEST(SnippetStore, RefreshUpdatesExpiry) {
  SnippetStore store;
  Snippet s{1, 10, "<x/>", {"k"}, 100};
  store.put("k", s);
  s.discard_at = 500;
  store.put("k", s);  // same (publisher, id): refresh
  EXPECT_EQ(store.snippet_count(), 1u);
  EXPECT_EQ(store.get("k", 200).size(), 1u);
}

TEST(SnippetStore, SweepDropsExpired) {
  SnippetStore store;
  store.put("a", Snippet{1, 1, "<a/>", {"a"}, 10});
  store.put("b", Snippet{2, 1, "<b/>", {"b"}, 1000});
  EXPECT_EQ(store.sweep(100), 1u);
  EXPECT_EQ(store.snippet_count(), 1u);
}

TEST(SnippetStore, EraseSnippetRemovesAllKeys) {
  SnippetStore store;
  Snippet s{5, 3, "<x/>", {"k1", "k2"}, 1000};
  store.put("k1", s);
  store.put("k2", s);
  EXPECT_EQ(store.erase_snippet(3, 5), 2u);
  EXPECT_TRUE(store.get("k1", 0).empty());
}

TEST(BrokerNetwork, PublishAndLookup) {
  BrokerNetwork net;
  net.join(1);
  net.join(2);
  net.join(3);

  Snippet s{1, 9, "<doc>hello</doc>", {"alpha", "beta"}, 10 * kMinute};
  net.publish(s);
  EXPECT_EQ(net.lookup("alpha", 0).size(), 1u);
  EXPECT_EQ(net.lookup("beta", 0).size(), 1u);
  EXPECT_TRUE(net.lookup("gamma", 0).empty());
}

TEST(BrokerNetwork, ExpiryAcrossBrokers) {
  BrokerNetwork net;
  net.join(1);
  net.publish(Snippet{1, 9, "<x/>", {"k"}, 60 * kSecond});
  EXPECT_FALSE(net.lookup("k", 30 * kSecond).empty());
  EXPECT_TRUE(net.lookup("k", 61 * kSecond).empty());
}

TEST(BrokerNetwork, JoinHandoffPreservesLookups) {
  BrokerNetwork net;
  net.join(1);
  // Publish many keys while only broker 1 exists.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  // New brokers join; their key ranges must move, and every key must still
  // resolve.
  net.join(2);
  net.join(3);
  net.join(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(net.lookup("key" + std::to_string(i), 0).size(), 1u) << i;
  }
  // And the load actually spread.
  const auto load = net.load();
  EXPECT_GT(load.size(), 1u);
}

TEST(BrokerNetwork, GracefulLeavePreservesData) {
  BrokerNetwork net;
  net.join(1);
  net.join(2);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "g" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  net.leave_gracefully(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(net.lookup("g" + std::to_string(i), 0).size(), 1u) << i;
  }
}

TEST(BrokerNetwork, AbruptLeaveLosesItsShare) {
  // §4: "If a member leaves abruptly without passing on its portion of the
  // published data, that data will be lost."
  BrokerNetwork net;
  net.join(1);
  net.join(2);
  std::size_t before = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "a" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  before = net.total_snippets();
  ASSERT_GT(before, 0u);

  net.leave_abruptly(1);
  std::size_t reachable = 0;
  for (int i = 0; i < 100; ++i) {
    reachable += net.lookup("a" + std::to_string(i), 0).size();
  }
  EXPECT_LT(reachable, 100u);  // some data is gone
  EXPECT_GT(reachable, 0u);    // but broker 2's share survives
}

TEST(BrokerNetwork, WithdrawRemovesEverywhere) {
  BrokerNetwork net;
  net.join(1);
  net.join(2);
  net.publish(Snippet{7, 1, "<x/>", {"k1", "k2", "k3"}, kHour});
  net.withdraw(1, 7);
  EXPECT_TRUE(net.lookup("k1", 0).empty());
  EXPECT_TRUE(net.lookup("k2", 0).empty());
  EXPECT_EQ(net.total_snippets(), 0u);
}

TEST(BrokerNetwork, PublishToEmptyRingIsNoop) {
  BrokerNetwork net;
  net.publish(Snippet{1, 1, "<x/>", {"k"}, kHour});
  EXPECT_TRUE(net.lookup("k", 0).empty());
}

TEST(BrokerNetwork, SweepReturnsDropCount) {
  BrokerNetwork net;
  net.join(1);
  net.publish(Snippet{1, 1, "<x/>", {"a", "b"}, 10});
  net.publish(Snippet{2, 1, "<y/>", {"c"}, 1000});
  EXPECT_EQ(net.sweep(100), 2u);  // both keys of the first snippet
  EXPECT_EQ(net.total_snippets(), 1u);
}


TEST(HashRing, ReplicasAreDistinctAndOrdered) {
  HashRing ring(1000);
  ring.add(1, 100);
  ring.add(2, 500);
  ring.add(3, 900);
  const auto replicas = ring.replicas_for("anything", 2);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_NE(replicas[0], replicas[1]);
  EXPECT_EQ(replicas[0], *ring.responsible_for("anything"));
  // Asking for more replicas than nodes returns all nodes.
  EXPECT_EQ(ring.replicas_for("anything", 10).size(), 3u);
  EXPECT_TRUE(HashRing(1000).replicas_for("x", 2).empty());
}

TEST(BrokerNetwork, ReplicationSurvivesAbruptLeave) {
  // With replication 2, one abrupt departure loses nothing.
  BrokerNetwork net(RingPoint{1} << 32, /*replication=*/2);
  net.join(1);
  net.join(2);
  net.join(3);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "r" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  net.leave_abruptly(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(net.lookup("r" + std::to_string(i), 0).size(), 1u) << i;
  }
}

TEST(BrokerNetwork, ReplicatedJoinKeepsLookupsWorking) {
  BrokerNetwork net(RingPoint{1} << 32, /*replication=*/2);
  net.join(1);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "j" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  net.join(2);
  net.join(3);
  net.join(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(net.lookup("j" + std::to_string(i), 0).size(), 1u) << i;
  }
  // And a post-join abrupt departure still loses nothing.
  net.leave_abruptly(1);
  std::size_t reachable = 0;
  for (int i = 0; i < 50; ++i) {
    reachable += net.lookup("j" + std::to_string(i), 0).empty() ? 0 : 1;
  }
  EXPECT_EQ(reachable, 50u);
}

TEST(BrokerNetwork, AbruptLeaveHealRestoresReplicationFactor) {
  // After an abrupt departure the surviving copies are re-replicated to each
  // key's new replica set, so a *second* abrupt departure loses nothing
  // either. Without the heal the keys whose two replicas were exactly the
  // two departed brokers would vanish.
  BrokerNetwork net(RingPoint{1} << 32, /*replication=*/2);
  net.join(1);
  net.join(2);
  net.join(3);
  net.join(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "h" + std::to_string(i);
    net.publish(Snippet{static_cast<std::uint64_t>(i), 1, "<x/>", {key}, kHour});
  }
  net.leave_abruptly(2);
  // Replication factor restored: every key is back to 2 copies.
  EXPECT_EQ(net.total_snippets(), 200u);
  net.leave_abruptly(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(net.lookup("h" + std::to_string(i), 0).size(), 1u) << i;
  }
}

TEST(BrokerNetwork, UnreplicatedDefaultUnchanged) {
  BrokerNetwork net;
  EXPECT_EQ(net.replication(), 1u);
}

}  // namespace
}  // namespace planetp::broker
