#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file hash.hpp
/// Hash primitives used across PlanetP: FNV-1a and MurmurHash3-style 64-bit
/// hashing for strings, splitmix64 for integer mixing, and the double-hashing
/// scheme (Kirsch & Mitzenmacher) used by the Bloom filter to derive k
/// indices from two base hashes.

namespace planetp {

/// 64-bit FNV-1a over an arbitrary byte string.
std::uint64_t fnv1a64(std::string_view data);

/// 64-bit MurmurHash3 finalizer-based hash over an arbitrary byte string.
/// Independent from fnv1a64 so the pair can seed double hashing.
std::uint64_t murmur64(std::string_view data, std::uint64_t seed = 0x9747b28c);

/// splitmix64 integer mixer; good avalanche, used for seeding RNG streams
/// and mixing integer keys.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Pair of independent 64-bit hashes of one key; the basis for simulating
/// any number of hash functions via double hashing:
///   g_i(x) = h1(x) + i * h2(x)   (Kirsch & Mitzenmacher, 2006)
struct HashPair {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;

  /// i-th derived hash value.
  constexpr std::uint64_t ith(std::uint32_t i) const { return h1 + static_cast<std::uint64_t>(i) * h2; }
};

/// Compute the double-hashing pair for a term.
HashPair hash_pair(std::string_view term);

/// Transparent (heterogeneous) string hasher for unordered containers keyed
/// by std::string: lets find()/contains() take a string_view without
/// materializing a temporary std::string per lookup. Pair with
/// std::equal_to<> as the key-equality functor.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return static_cast<std::size_t>(fnv1a64(s));
  }
};

}  // namespace planetp
