/// \file news_feed.cpp
/// Persistent queries as publish/subscribe (§5.1: they provide "a way for
/// applications to implement traditional distributed mechanisms like
/// condition variables, publish/subscribe communication, tuple spaces").
///
/// A newsroom community: reporters publish wire stories; subscribers hold
/// standing queries ("topics") and receive upcalls the moment matching
/// stories appear — without polling, and regardless of which peer published.

#include <cstdio>
#include <string>
#include <vector>

#include "core/community.hpp"

using namespace planetp;
using namespace planetp::core;

namespace {

struct Subscription {
  std::string topic;
  std::vector<std::string> received;
};

}  // namespace

int main() {
  Community community;
  Node& reuters = community.create_node();
  Node& ap = community.create_node();
  Node& reader_science = community.create_node();
  Node& reader_markets = community.create_node();

  // Standing subscriptions: upcalls fire on every new matching story.
  Subscription science{"telescope discovery", {}};
  reader_science.add_persistent_query(science.topic, [&](const SearchHit& hit) {
    science.received.push_back(hit.title);
    std::printf("[science reader] new story: %s (from peer %u)\n", hit.title.c_str(),
                hit.doc.peer);
  });

  Subscription markets{"market rally", {}};
  reader_markets.add_persistent_query(markets.topic, [&](const SearchHit& hit) {
    markets.received.push_back(hit.title);
    std::printf("[markets reader] new story: %s (from peer %u)\n", hit.title.c_str(),
                hit.doc.peer);
  });

  std::puts("-- wire opens --");
  reuters.publish_text("Tails of Andromeda",
                       "space telescope discovery reveals new dwarf galaxy");
  ap.publish_text("Stocks Climb", "global market rally extends to a third week");
  reuters.publish_text("Local Weather", "rain expected thursday");  // matches nobody
  ap.publish_text("Exoplanet Found",
                  "another telescope discovery: an earth-size exoplanet");

  std::printf("\nscience reader got %zu stories, markets reader got %zu\n",
              science.received.size(), markets.received.size());

  // Subscriptions also catch stories that existed before the subscription.
  Node& late_reader = community.create_node();
  std::size_t backfill = 0;
  late_reader.add_persistent_query("telescope discovery",
                                   [&](const SearchHit&) { ++backfill; });
  std::printf("late subscriber backfilled %zu existing stories\n", backfill);

  // And deduplicate: republishing unrelated content fires nothing new.
  const std::size_t before = science.received.size();
  ap.publish_text("Sports", "cup final goes to penalties");
  std::printf("unrelated publish fired %zu new science upcalls\n",
              science.received.size() - before);
  return 0;
}
