#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.hpp"
#include "util/hash.hpp"

/// \file compressed_postings.hpp
/// Compressed, immutable posting lists in the style of Witten, Moffat &
/// Bell's "Managing Gigabytes" — the same reference the paper takes its
/// ranking equations from. The mutable InvertedIndex is the write path; a
/// CompressedIndex is a compact read-optimized snapshot of it:
///
///   - documents are numbered densely; ids are delta-coded varints,
///   - term frequencies are varints,
///   - each term's postings live in one contiguous byte run.
///
/// Peers with large, slowly changing stores (the common case per §2's file
/// system citations) can serve queries from a snapshot several times
/// smaller than the hash-map index, rebuilding it only when enough changes
/// accumulate.
///
/// A CompressedIndex is also the read-optimized *base* of the epoch
/// snapshots in epoch_index.hpp: the background segment merge folds pending
/// in-memory segments into a fresh CompressedIndex via Builder, and readers
/// walk base postings through PostingCursor (dense() doubles as the
/// snapshot's accumulator slot).

namespace planetp::index {

class CompressedIndex {
 public:
  CompressedIndex() = default;

  /// Snapshot \p source. Document ids are remapped densely; the mapping is
  /// kept for translating results back.
  static CompressedIndex build(const InvertedIndex& source);

  /// Iterate a term's postings without materializing them.
  class PostingCursor {
   public:
    bool done() const { return remaining_ == 0; }
    /// Advance to the next posting; must not be called when done().
    void next();
    DocumentId doc() const { return doc_; }
    std::uint32_t term_freq() const { return freq_; }
    /// Dense id of doc() (ascending along the cursor; the epoch snapshot's
    /// accumulator slot for base documents).
    std::uint32_t dense() const { return dense_; }

   private:
    friend class CompressedIndex;
    PostingCursor(const CompressedIndex* owner, const std::uint8_t* data, std::size_t size,
                  std::uint32_t count);

    const CompressedIndex* owner_ = nullptr;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t pos_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t dense_ = 0;  ///< running dense doc id
    DocumentId doc_;
    std::uint32_t freq_ = 0;
  };

  /// Cursor over \p term's postings (empty cursor when absent).
  PostingCursor postings(std::string_view term) const;

  /// Decode a full posting list (convenience for tests and scoring).
  std::vector<Posting> decode(std::string_view term) const;

  std::uint32_t document_frequency(std::string_view term) const;
  std::uint64_t collection_frequency(std::string_view term) const;
  std::uint32_t document_length(DocumentId doc) const;
  std::size_t num_documents() const { return docs_.size(); }
  std::size_t num_terms() const { return terms_.size(); }

  /// Dense-id accessors (the epoch snapshot's slot domain for base docs).
  const std::vector<DocumentId>& documents() const { return docs_; }
  DocumentId doc_at(std::uint32_t dense) const { return docs_[dense]; }
  std::uint32_t doc_length_at(std::uint32_t dense) const { return doc_lengths_[dense]; }

  /// Visit every term once (unspecified order; used by the segment merge to
  /// build the term-set union).
  void for_each_term(const std::function<void(std::string_view)>& fn) const;

  /// Assemble a CompressedIndex directly from merge output (dense postings
  /// per term), bypassing an intermediate InvertedIndex. Produces exactly
  /// the layout build() would for the same logical content. Defined after
  /// the class (it holds a CompressedIndex by value).
  class Builder;

  /// Total bytes of the compressed structure (postings + dictionaries).
  std::size_t memory_bytes() const;

  /// Score documents against weighted query terms, identical semantics to
  /// search::score_documents over the source index.
  std::vector<std::pair<DocumentId, double>> score(
      const std::unordered_map<std::string, double>& term_weights) const;

 private:
  struct TermEntry {
    std::uint32_t offset = 0;    ///< into blob_
    std::uint32_t length = 0;    ///< bytes
    std::uint32_t doc_freq = 0;  ///< postings count
    std::uint64_t collection_freq = 0;
  };

  /// Transparent hashing: the epoch read path looks terms up by
  /// string_view, so find() must not materialize a std::string per probe.
  std::unordered_map<std::string, TermEntry, StringHash, std::equal_to<>> terms_;
  std::vector<std::uint8_t> blob_;         ///< all posting runs, concatenated
  std::vector<DocumentId> docs_;           ///< dense id -> original id
  std::vector<std::uint32_t> doc_lengths_; ///< by dense id
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> dense_of_;
};

class CompressedIndex::Builder {
 public:
  /// \p docs ascending by DocumentId, \p lengths parallel.
  Builder(std::vector<DocumentId> docs, std::vector<std::uint32_t> lengths);

  /// Add one term's postings as (dense id, freq), sorted ascending by
  /// dense id. Must be called at most once per term.
  void add_term(std::string_view term,
                const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings);

  CompressedIndex take() { return std::move(out_); }

 private:
  CompressedIndex out_;
};

}  // namespace planetp::index
