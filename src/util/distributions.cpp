#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace planetp {

// ---------------------------------------------------------------------------
// ZipfSampler — rejection-inversion (Hormann & Derflinger 1996), as used by
// Apache Commons Math. Exact for all s > 0, O(1) expected time per sample.
// ---------------------------------------------------------------------------

namespace {

/// Helper: (exp(x) - 1) / x, numerically stable near zero.
double expm1_over_x(double x) {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 * (1.0 + x / 3.0);
}

/// Helper: log1p(x)/x, numerically stable near zero.
double log1p_over_x(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s <= 0.0) throw std::invalid_argument("ZipfSampler: s must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  sval_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  return expm1_over_x((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard rounding
  return std::exp(log1p_over_x(t) * x);
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  while (true) {
    const double u = h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::size_t k = static_cast<std::size_t>(x + 0.5);
    k = std::clamp<std::size_t>(k, 1, n_);
    const double kd = static_cast<double>(k);
    if (kd - x <= sval_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

// ---------------------------------------------------------------------------
// Exponential / Weibull / Poisson
// ---------------------------------------------------------------------------

double ExponentialSampler::sample(Rng& rng) const {
  // Inversion; 1 - uniform() avoids log(0).
  return -mean_ * std::log(1.0 - rng.uniform());
}

Duration ExponentialSampler::interval(Rng& rng, Duration mean) {
  const double d = -static_cast<double>(mean) * std::log(1.0 - rng.uniform());
  return static_cast<Duration>(d);
}

double WeibullSampler::sample(Rng& rng) const {
  const double u = 1.0 - rng.uniform();
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

std::uint64_t poisson_sample(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-lambda);
    double product = rng.uniform();
    std::uint64_t k = 0;
    while (product > limit) {
      ++k;
      product *= rng.uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = lambda + z * std::sqrt(lambda) + 0.5;
  return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::vector<std::size_t> weibull_partition(Rng& rng, std::size_t total, std::size_t bins,
                                           double shape, double scale,
                                           std::size_t min_per_bin) {
  if (bins == 0) return {};
  WeibullSampler w(shape, scale);
  std::vector<double> weights(bins);
  double sum = 0.0;
  for (auto& wt : weights) {
    wt = w.sample(rng) + 1e-12;
    sum += wt;
  }

  const std::size_t reserved = std::min(total, min_per_bin * bins);
  const std::size_t distributable = total - reserved;

  std::vector<std::size_t> counts(bins, reserved / bins >= min_per_bin ? min_per_bin : reserved / bins);
  // Largest-remainder apportionment of the distributable mass.
  std::vector<double> exact(bins);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    exact[i] = static_cast<double>(distributable) * weights[i] / sum;
    counts[i] += static_cast<std::size_t>(exact[i]);
    assigned += static_cast<std::size_t>(exact[i]);
  }
  std::vector<std::size_t> order(bins);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double fa = exact[a] - std::floor(exact[a]);
    const double fb = exact[b] - std::floor(exact[b]);
    return fa > fb;
  });
  for (std::size_t i = 0; assigned < distributable && i < bins; ++i, ++assigned) {
    ++counts[order[i]];
  }
  return counts;
}

}  // namespace planetp
