#include "broker/broker_network.hpp"

namespace planetp::broker {

void BrokerNetwork::join(NodeId node) {
  if (stores_.contains(node)) return;
  ring_.add_by_hash(node);
  stores_.emplace(node, SnippetStore{});

  // Join handoff: the newcomer displaces some brokers from some keys'
  // replica sets. Extract every entry whose holder is no longer a replica
  // and re-publish it to the key's (new) replica set — which includes the
  // newcomer where appropriate.
  std::vector<std::pair<std::string, Snippet>> displaced;
  for (auto& [owner, store] : stores_) {
    if (owner == node) continue;
    const NodeId holder = owner;
    auto moved = store.extract_if([&](const std::string& key) {
      const auto replicas = ring_.replicas_for(key, replication_);
      return std::find(replicas.begin(), replicas.end(), holder) == replicas.end();
    });
    for (auto& entry : moved) displaced.push_back(std::move(entry));
  }
  for (const auto& [key, snippet] : displaced) {
    for (NodeId owner : ring_.replicas_for(key, replication_)) {
      stores_[owner].put(key, snippet);
    }
  }
  // With replication > 1 the newcomer may also join replica sets without
  // displacing anyone's copy (ring smaller than r before). Top up from the
  // current holders.
  if (replication_ > 1) {
    for (auto& [owner, store] : stores_) {
      if (owner == node) continue;
      for (const auto& [key, snippet] : store.all()) {
        const auto replicas = ring_.replicas_for(key, replication_);
        if (std::find(replicas.begin(), replicas.end(), node) != replicas.end()) {
          stores_[node].put(key, snippet);
        }
      }
    }
  }
}

void BrokerNetwork::leave_gracefully(NodeId node) {
  auto it = stores_.find(node);
  if (it == stores_.end()) return;
  const auto payload = it->second.all();
  ring_.remove(node);
  stores_.erase(it);
  // Re-publish the handed-off entries to their (new) replica sets.
  for (const auto& [key, snippet] : payload) {
    for (NodeId owner : ring_.replicas_for(key, replication_)) {
      stores_[owner].put(key, snippet);
    }
  }
}

void BrokerNetwork::leave_abruptly(NodeId node) {
  // Data on the departed broker is simply lost.
  ring_.remove(node);
  stores_.erase(node);
  // Re-replication heal: surviving copies are re-published to each key's
  // (new) replica set, restoring the replication factor so a *second* abrupt
  // departure loses nothing either. With the paper's unreplicated service
  // (replication == 1) there are no surviving copies to heal from and the
  // departed broker's data stays lost, as §4 documents.
  if (replication_ > 1 && !stores_.empty()) {
    std::vector<std::pair<std::string, Snippet>> survivors;
    for (const auto& [owner, store] : stores_) {
      for (const auto& [key, snippet] : store.all()) survivors.emplace_back(key, snippet);
    }
    for (const auto& [key, snippet] : survivors) {
      for (NodeId owner : ring_.replicas_for(key, replication_)) {
        stores_[owner].put(key, snippet);
      }
    }
  }
}

void BrokerNetwork::publish(const Snippet& snippet) {
  for (const std::string& key : snippet.keys) {
    for (NodeId owner : ring_.replicas_for(key, replication_)) {
      stores_[owner].put(key, snippet);
    }
  }
}

std::vector<Snippet> BrokerNetwork::lookup(const std::string& key, TimePoint now) {
  // Ask the owner first; with replication, fall through the replica set
  // when earlier members are gone or empty.
  for (NodeId owner : ring_.replicas_for(key, replication_)) {
    auto it = stores_.find(owner);
    if (it == stores_.end()) continue;
    auto result = it->second.get(key, now);
    if (!result.empty()) return result;
  }
  return {};
}

void BrokerNetwork::withdraw(NodeId publisher, std::uint64_t snippet_id) {
  for (auto& [node, store] : stores_) store.erase_snippet(publisher, snippet_id);
}

std::size_t BrokerNetwork::sweep(TimePoint now) {
  std::size_t dropped = 0;
  for (auto& [node, store] : stores_) dropped += store.sweep(now);
  return dropped;
}

std::size_t BrokerNetwork::total_snippets() const {
  std::size_t n = 0;
  for (const auto& [node, store] : stores_) n += store.snippet_count();
  return n;
}

std::unordered_map<NodeId, std::size_t> BrokerNetwork::load() const {
  std::unordered_map<NodeId, std::size_t> out;
  for (const auto& [node, store] : stores_) out.emplace(node, store.snippet_count());
  return out;
}

}  // namespace planetp::broker
