#include "gossip/directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace planetp::gossip {
namespace {

PeerRecord record(PeerId id, std::uint64_t version, LinkClass cls = LinkClass::kFast) {
  PeerRecord r;
  r.id = id;
  r.address = "peer://" + std::to_string(id);
  r.version = version;
  r.link_class = cls;
  return r;
}

TEST(Directory, ApplyInsertsUnknownPeer) {
  Directory dir(0);
  EXPECT_TRUE(dir.apply(record(1, 1)));
  EXPECT_EQ(dir.size(), 1u);
  ASSERT_NE(dir.find(1), nullptr);
  EXPECT_EQ(dir.find(1)->version, 1u);
}

TEST(Directory, ApplyRejectsStaleAndEqualVersions) {
  Directory dir(0);
  dir.apply(record(1, 5));
  EXPECT_FALSE(dir.apply(record(1, 5)));
  EXPECT_FALSE(dir.apply(record(1, 4)));
  EXPECT_TRUE(dir.apply(record(1, 6)));
  EXPECT_EQ(dir.find(1)->version, 6u);
}

TEST(Directory, ApplyNewVersionFlipsPeerBackOnline) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 100);
  EXPECT_FALSE(dir.find(1)->online);
  dir.apply(record(1, 2));
  EXPECT_TRUE(dir.find(1)->online);
}

TEST(Directory, MarkOfflineRecordsFirstFailureTime) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 12345);
  EXPECT_EQ(dir.find(1)->offline_since, 12345);
  // Second mark must not reset the clock (T_dead counts from first failure).
  dir.mark_offline(1, 99999);
  EXPECT_EQ(dir.find(1)->offline_since, 12345);
}

TEST(Directory, ExpireDeadDropsLongOfflinePeers) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  dir.mark_offline(1, 0);

  const auto dropped = dir.expire_dead(10 * kHour, 6 * kHour);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 1u);
  EXPECT_EQ(dir.find(1), nullptr);
  EXPECT_NE(dir.find(2), nullptr);
}

TEST(Directory, ExpireDeadSparesRecentlyOffline) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.mark_offline(1, 5 * kHour);
  EXPECT_TRUE(dir.expire_dead(10 * kHour, 6 * kHour).empty());
}

TEST(Directory, ExpireNeverDropsSelf) {
  Directory dir(7);
  dir.put_self(record(7, 1));
  dir.mark_offline(7, 0);
  EXPECT_TRUE(dir.expire_dead(100 * kHour, kHour).empty());
}

TEST(Directory, RandomOnlineExcludesSelfAndOffline) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  dir.mark_offline(2, 0);

  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dir.random_online(rng), 1u);
  }
}

TEST(Directory, RandomOnlineReturnsInvalidWhenAlone) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  Rng rng(2);
  EXPECT_EQ(dir.random_online(rng), kInvalidPeer);
}

TEST(Directory, RandomOnlineOfClass) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1, LinkClass::kFast));
  dir.apply(record(2, 1, LinkClass::kSlow));
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(dir.random_online_of_class(rng, LinkClass::kSlow), 2u);
    EXPECT_EQ(dir.random_online_of_class(rng, LinkClass::kFast), 1u);
  }
}

TEST(Directory, RandomOnlineCoversAllCandidates) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  for (PeerId id = 1; id <= 10; ++id) dir.apply(record(id, 1));
  Rng rng(4);
  std::set<PeerId> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(dir.random_online(rng));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Directory, SummarySortedByPeer) {
  Directory dir(0);
  dir.apply(record(5, 2));
  dir.apply(record(1, 7));
  dir.apply(record(3, 1));
  const auto& summary = *dir.summary();
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].id, 1u);
  EXPECT_EQ(summary[0].version, 7u);
  EXPECT_EQ(summary[2].id, 5u);
}

TEST(Directory, NewerInFindsMissingAndStale) {
  Directory dir(0);
  dir.apply(record(1, 3));
  dir.apply(record(2, 1));

  const std::vector<PeerSummary> remote = {{1, 3}, {2, 5}, {9, 1}};
  const auto missing = dir.newer_in(remote);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].origin, 2u);
  EXPECT_EQ(missing[0].version, 5u);
  EXPECT_EQ(missing[1].origin, 9u);
}

TEST(Directory, SameAsExactMatchOnly) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.apply(record(2, 2));
  EXPECT_TRUE(dir.same_as(std::vector<PeerSummary>{{1, 1}, {2, 2}}));
  EXPECT_FALSE(dir.same_as(std::vector<PeerSummary>{{1, 1}}));
  EXPECT_FALSE(dir.same_as(std::vector<PeerSummary>{{1, 1}, {2, 3}}));
  EXPECT_FALSE(dir.same_as(std::vector<PeerSummary>{{1, 1}, {2, 2}, {3, 1}}));
}

TEST(Directory, SummarySnapshotSharedUntilMutation) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));

  const SummarySnapshot a = dir.summary();
  const SummarySnapshot b = dir.summary();
  EXPECT_EQ(a.get(), b.get()) << "no mutation: same cached snapshot";
  EXPECT_EQ(dir.summary_builds(), 1u);

  // Local-only belief updates are invisible in summaries: no invalidation.
  dir.mark_offline(1, 100);
  dir.record_query_failure(2, 100);
  EXPECT_EQ(dir.summary().get(), a.get());
  EXPECT_EQ(dir.summary_builds(), 1u);

  // A version change invalidates; the old snapshot is untouched.
  dir.apply(record(1, 9));
  const SummarySnapshot c = dir.summary();
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(dir.summary_builds(), 2u);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ((*a)[0].version, 1u) << "held snapshots are immutable";
  EXPECT_EQ((*c)[0].version, 9u);
}

TEST(Directory, EpochBumpsOnMembershipChangesOnly) {
  Directory dir(0);
  const std::uint64_t e0 = dir.epoch();
  dir.apply(record(1, 1));
  EXPECT_GT(dir.epoch(), e0);

  const std::uint64_t e1 = dir.epoch();
  EXPECT_FALSE(dir.apply(record(1, 1)));  // stale: no change
  dir.mark_offline(1, 0);
  dir.mark_online(1);
  EXPECT_EQ(dir.epoch(), e1);

  dir.expire_dead(0, kHour);  // nothing expires: no bump
  EXPECT_EQ(dir.epoch(), e1);

  dir.mark_offline(1, 0);
  const auto dropped = dir.expire_dead(10 * kHour, kHour);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_GT(dir.epoch(), e1);
}

TEST(Directory, CachedSummaryMatchesFreshBuildUnderRandomOps) {
  // Property test: after any interleaving of apply / mark_offline /
  // expire_dead / rejoin / put_self / find_mutable, the epoch-cached
  // snapshot is element-identical to a summary built from scratch, and the
  // merge-scan newer_in/same_as agree with the probe reference.
  Directory dir(0);
  dir.put_self(record(0, 1));
  Rng rng(0xD1CE);
  std::uint64_t next_version = 2;

  const auto fresh_summary = [&] {
    std::vector<PeerSummary> out;
    dir.for_each([&](const PeerRecord& r) { out.push_back(PeerSummary{r.id, r.version}); });
    std::sort(out.begin(), out.end(),
              [](const PeerSummary& a, const PeerSummary& b) { return a.id < b.id; });
    return out;
  };

  const auto random_remote = [&] {
    std::vector<PeerSummary> remote;
    for (PeerId id = 1; id <= 24; ++id) {
      if (rng.below(3) == 0) continue;  // remote doesn't know this peer
      remote.push_back(PeerSummary{id, rng.below(8) + 1});
    }
    return remote;
  };

  for (int step = 0; step < 500; ++step) {
    const PeerId id = static_cast<PeerId>(1 + rng.below(24));
    switch (rng.below(6)) {
      case 0:
      case 1:
        dir.apply(record(id, next_version++));  // insert or update
        break;
      case 2:
        dir.apply(record(id, 1 + rng.below(4)));  // often stale
        break;
      case 3:
        dir.mark_offline(id, 0);
        break;
      case 4:
        dir.expire_dead(10 * kHour, kHour);
        break;
      case 5:
        if (PeerRecord* r = dir.find_mutable(id); r != nullptr) {
          r->version = next_version++;  // local version jump (rejoin path)
        }
        break;
    }

    const std::vector<PeerSummary> expect = fresh_summary();
    EXPECT_EQ(*dir.summary(), expect) << "step " << step;
    EXPECT_EQ(dir.summary().get(), dir.summary().get()) << "cache must hold";

    std::size_t online = 0;
    dir.for_each([&](const PeerRecord& r) { online += r.online ? 1 : 0; });
    EXPECT_EQ(dir.online_count(), online) << "step " << step;

    const std::vector<PeerSummary> remote = random_remote();
    const auto lt = [](const RumorId& a, const RumorId& b) {
      return a.origin != b.origin ? a.origin < b.origin : a.version < b.version;
    };
    auto merged = dir.newer_in(remote);
    auto probed = dir.newer_in_probe(remote);
    std::sort(merged.begin(), merged.end(), lt);
    std::sort(probed.begin(), probed.end(), lt);
    EXPECT_EQ(merged, probed) << "step " << step;
    EXPECT_EQ(dir.same_as(remote), dir.same_as_probe(remote)) << "step " << step;
    EXPECT_TRUE(dir.same_as(expect)) << "step " << step;
  }
}

TEST(Directory, OnlineCount) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  dir.apply(record(1, 1));
  dir.apply(record(2, 1));
  EXPECT_EQ(dir.online_count(), 3u);
  dir.mark_offline(1, 0);
  EXPECT_EQ(dir.online_count(), 2u);
  dir.mark_online(1);
  EXPECT_EQ(dir.online_count(), 3u);
}

TEST(Directory, QueryFailuresAccumulateIntoSuspectOffline) {
  // Repeated query-time failures raise the local SUSPECT level; at the
  // threshold the peer is demoted to offline exactly as a failed gossip
  // contact would demote it (docs/SEARCH.md).
  Directory dir(0);
  dir.apply(record(1, 1));
  EXPECT_EQ(dir.suspicion(1), 0u);

  for (std::uint32_t i = 1; i < Directory::kSuspectThreshold; ++i) {
    EXPECT_EQ(dir.record_query_failure(1, 100), i);
    EXPECT_TRUE(dir.find(1)->online) << "below threshold must not demote";
  }
  EXPECT_EQ(dir.record_query_failure(1, 100), Directory::kSuspectThreshold);
  EXPECT_FALSE(dir.find(1)->online);
  EXPECT_EQ(dir.suspicion(1), Directory::kSuspectThreshold);
}

TEST(Directory, QuerySuccessClearsSuspicion) {
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.record_query_failure(1, 100);
  dir.record_query_failure(1, 100);
  EXPECT_EQ(dir.suspicion(1), 2u);
  dir.record_query_success(1);
  EXPECT_EQ(dir.suspicion(1), 0u);
  EXPECT_TRUE(dir.find(1)->online);
}

TEST(Directory, SuspicionIsLocalAndResetByNewerGossip) {
  // A newer gossiped version is fresh evidence the peer lives: it resets the
  // local SUSPECT level (which is never serialized in the first place).
  Directory dir(0);
  dir.apply(record(1, 1));
  dir.record_query_failure(1, 100);
  dir.record_query_failure(1, 100);
  EXPECT_TRUE(dir.apply(record(1, 2)));
  EXPECT_EQ(dir.suspicion(1), 0u);

  // mark_online (anti-entropy contact, rejoin) clears it too.
  dir.record_query_failure(1, 100);
  dir.mark_online(1);
  EXPECT_EQ(dir.suspicion(1), 0u);
}

TEST(Directory, QueryFailureIgnoresSelfAndUnknownPeers) {
  Directory dir(0);
  dir.put_self(record(0, 1));
  EXPECT_EQ(dir.record_query_failure(0, 100), 0u);   // never suspect yourself
  EXPECT_EQ(dir.record_query_failure(42, 100), 0u);  // unknown peer: no-op
  EXPECT_EQ(dir.suspicion(0), 0u);
  EXPECT_EQ(dir.suspicion(42), 0u);
  EXPECT_TRUE(dir.find(0)->online);
}

TEST(Directory, ForEachVisitsEveryRecord) {
  Directory dir(0);
  for (PeerId id = 1; id <= 5; ++id) dir.apply(record(id, id));
  std::set<PeerId> seen;
  dir.for_each([&](const PeerRecord& r) { seen.insert(r.id); });
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace planetp::gossip
