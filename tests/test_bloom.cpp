#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "util/rng.hpp"

namespace planetp::bloom {
namespace {

std::vector<std::string> make_terms(std::size_t n, std::uint64_t seed) {
  std::vector<std::string> terms;
  terms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    terms.push_back("term_" + std::to_string(seed) + "_" + std::to_string(i));
  }
  return terms;
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter;
  const auto terms = make_terms(5000, 1);
  for (const auto& t : terms) filter.insert(t);
  for (const auto& t : terms) EXPECT_TRUE(filter.contains(t)) << t;
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter filter;
  for (const auto& t : make_terms(100, 2)) EXPECT_FALSE(filter.contains(t));
}

class BloomFprSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BloomFprSweep, FalsePositiveRateNearTheory) {
  const std::size_t n = GetParam();
  BloomFilter filter;  // the paper's 50 KB / 2 hash geometry
  for (const auto& t : make_terms(n, 3)) filter.insert(t);

  const auto probes = make_terms(20000, 999);  // disjoint from inserted set
  std::size_t hits = 0;
  for (const auto& t : probes) hits += filter.contains(t) ? 1 : 0;
  const double measured = static_cast<double>(hits) / static_cast<double>(probes.size());
  const double predicted = filter.params().false_positive_rate(n);
  EXPECT_NEAR(measured, predicted, std::max(0.01, predicted * 0.5))
      << "n=" << n << " predicted=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomFprSweep,
                         ::testing::Values(1000, 10000, 25000, 50000));

TEST(BloomFilter, PaperGeometryMeetsFivePercentAt50kTerms) {
  // §7.1: "The chosen size let us summarize up to 50,000 terms with less
  // than 5% error."
  BloomParams params;  // 50 KB, 2 hashes
  EXPECT_LT(params.false_positive_rate(50'000), 0.05);
}

TEST(BloomFilter, ForCapacityMeetsTarget) {
  const BloomParams p = BloomParams::for_capacity(10'000, 0.01, 2);
  EXPECT_LE(p.false_positive_rate(10'000), 0.0101);
  // And is not grossly oversized: 2x fewer bits must violate the target.
  BloomParams half = p;
  half.bits /= 2;
  EXPECT_GT(half.false_positive_rate(10'000), 0.01);
}

TEST(BloomFilter, ForCapacityRejectsBadFpr) {
  EXPECT_THROW(BloomParams::for_capacity(10, 0.0), std::invalid_argument);
  EXPECT_THROW(BloomParams::for_capacity(10, 1.0), std::invalid_argument);
}

TEST(BloomFilter, EstimatedCardinality) {
  BloomFilter filter;
  const std::size_t n = 10'000;
  for (const auto& t : make_terms(n, 4)) filter.insert(t);
  const double est = filter.estimated_cardinality();
  EXPECT_NEAR(est, static_cast<double>(n), static_cast<double>(n) * 0.05);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a, b;
  const auto ta = make_terms(500, 5);
  const auto tb = make_terms(500, 6);
  for (const auto& t : ta) a.insert(t);
  for (const auto& t : tb) b.insert(t);
  a.merge(b);
  for (const auto& t : ta) EXPECT_TRUE(a.contains(t));
  for (const auto& t : tb) EXPECT_TRUE(a.contains(t));
}

TEST(BloomFilter, MergeGeometryMismatchThrows) {
  BloomFilter a(BloomParams{1024, 2});
  BloomFilter b(BloomParams{2048, 2});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(BloomFilter, DiffAndApplyRestoresExactly) {
  BloomFilter base, updated;
  for (const auto& t : make_terms(1000, 7)) {
    base.insert(t);
    updated.insert(t);
  }
  for (const auto& t : make_terms(200, 8)) updated.insert(t);

  const BitVector diff = updated.diff_from(base);
  BloomFilter restored = base;
  restored.apply_diff(diff);
  EXPECT_EQ(restored, updated);
}

TEST(BloomFilter, DiffOfIdenticalFiltersIsEmpty) {
  BloomFilter a, b;
  for (const auto& t : make_terms(100, 9)) {
    a.insert(t);
    b.insert(t);
  }
  EXPECT_EQ(a.diff_from(b).count(), 0u);
}

TEST(BloomFilter, DiffSizeScalesWithChange) {
  BloomFilter base;
  for (const auto& t : make_terms(10'000, 10)) base.insert(t);
  BloomFilter updated = base;
  for (const auto& t : make_terms(100, 11)) updated.insert(t);
  // ~100 new terms with 2 hashes: at most 200 changed bits.
  EXPECT_LE(updated.diff_from(base).count(), 200u);
}

TEST(BloomFilter, ZeroGeometryThrows) {
  EXPECT_THROW(BloomFilter(BloomParams{0, 2}), std::invalid_argument);
  EXPECT_THROW(BloomFilter(BloomParams{100, 0}), std::invalid_argument);
}

TEST(CountingBloom, InsertRemoveRoundtrip) {
  CountingBloomFilter cbf(BloomParams{65536, 2});
  cbf.insert("alpha");
  cbf.insert("beta");
  EXPECT_TRUE(cbf.contains("alpha"));
  cbf.remove("alpha");
  EXPECT_FALSE(cbf.contains("alpha"));
  EXPECT_TRUE(cbf.contains("beta"));
}

TEST(CountingBloom, MultiplicityRespected) {
  CountingBloomFilter cbf(BloomParams{65536, 2});
  cbf.insert("x");
  cbf.insert("x");
  cbf.remove("x");
  EXPECT_TRUE(cbf.contains("x"));  // one reference left
  cbf.remove("x");
  EXPECT_FALSE(cbf.contains("x"));
}

TEST(CountingBloom, ProjectionMatchesMembership) {
  CountingBloomFilter cbf;
  const auto terms = make_terms(2000, 12);
  for (const auto& t : terms) cbf.insert(t);
  const BloomFilter bf = cbf.to_bloom_filter();
  for (const auto& t : terms) EXPECT_TRUE(bf.contains(t));
  // Remove half; the projection must forget them (no other term shares
  // their slots with overwhelming probability at this density).
  for (std::size_t i = 0; i < 1000; ++i) cbf.remove(terms[i]);
  const BloomFilter after = cbf.to_bloom_filter();
  std::size_t still = 0;
  for (std::size_t i = 0; i < 1000; ++i) still += after.contains(terms[i]) ? 1 : 0;
  EXPECT_LT(still, 50u);  // a few slot collisions are acceptable
  for (std::size_t i = 1000; i < 2000; ++i) EXPECT_TRUE(after.contains(terms[i]));
}

TEST(CountingBloom, SaturationNeverUnderflows) {
  CountingBloomFilter cbf(BloomParams{1024, 2});
  // Saturate a term's counters.
  for (int i = 0; i < 300; ++i) cbf.insert("hot");
  // Removing more times than the (saturated) counter can track must keep the
  // term present: saturated counters are pinned.
  for (int i = 0; i < 1000; ++i) cbf.remove("hot");
  EXPECT_TRUE(cbf.contains("hot"));
}

TEST(CountingBloom, NonzeroCount) {
  CountingBloomFilter cbf(BloomParams{65536, 2});
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  cbf.insert("one");
  EXPECT_GT(cbf.nonzero_count(), 0u);
  EXPECT_LE(cbf.nonzero_count(), 2u);
}

}  // namespace
}  // namespace planetp::bloom
