#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file bitvector.hpp
/// Fixed/dynamically sized packed bit vector; the storage behind Bloom
/// filters and the run-length coder. Unlike std::vector<bool> it exposes the
/// word array for fast popcount, bulk boolean ops and serialization.

namespace planetp {

class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;

  /// Create a vector of \p nbits bits, all zero.
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  /// Number of set bits.
  std::size_t count() const;

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) { words_[i / kWordBits] |= Word{1} << (i % kWordBits); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits)); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  /// Set all bits to zero without changing the size.
  void clear();

  /// Resize to \p nbits; new bits are zero, excess bits are dropped.
  void resize(std::size_t nbits);

  /// Bulk boolean operations; both operands must have equal size.
  BitVector& operator|=(const BitVector& o);
  BitVector& operator&=(const BitVector& o);
  BitVector& operator^=(const BitVector& o);

  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& o) const = default;

  /// True if every set bit of \p o is also set here (superset test).
  bool contains_all(const BitVector& o) const;

  /// Invoke \p fn(index) for each set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Raw word access for serialization / hashing.
  const std::vector<Word>& words() const { return words_; }
  std::vector<Word>& mutable_words() { return words_; }

 private:
  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

}  // namespace planetp
