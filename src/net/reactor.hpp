#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "util/time.hpp"

/// \file reactor.hpp
/// Single-threaded poll(2) event loop for the live runtime: one listening
/// socket, connect-on-demand outbound connections keyed by "host:port"
/// address, buffered non-blocking writes, incremental frame decoding, a
/// timer heap, and a self-pipe for cross-thread task injection.
///
/// All callbacks run on the reactor thread. Other threads interact only via
/// send() / post() / schedule(), which are thread-safe.

namespace planetp::net {

class Reactor {
 public:
  using FrameHandler = std::function<void(const Frame&)>;
  using FailureHandler = std::function<void(const std::string& address)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Bind and listen on 127.0.0.1:\p port (0 = ephemeral). Must be called
  /// before start(). Returns the bound port.
  std::uint16_t listen(std::uint16_t port);

  /// Start the loop on its own thread. \p on_frame receives every inbound
  /// frame; \p on_failure fires when a send to an address definitively
  /// failed (connect refused or connection reset with data pending).
  void start(FrameHandler on_frame, FailureHandler on_failure);

  /// Stop the loop and join the thread. Idempotent.
  void stop();

  /// Queue a frame to \p address ("host:port"), connecting if needed.
  /// Thread-safe; returns immediately.
  void send(const std::string& address, Frame frame);

  /// Run \p fn on the reactor thread as soon as possible. Thread-safe.
  void post(std::function<void()> fn);

  /// Run \p fn on the reactor thread after \p delay. Thread-safe. Returns a
  /// token that cancel_timer() accepts.
  std::uint64_t schedule(Duration delay, std::function<void()> fn);
  void cancel_timer(std::uint64_t token);

  std::uint16_t port() const { return port_; }
  std::string address() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  struct Connection {
    int fd = -1;
    std::string address;      ///< outbound target, empty for inbound
    bool connecting = false;  ///< non-blocking connect in flight
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    FrameDecoder decoder;
  };

  void loop();
  void handle_readable(int fd);
  void handle_writable(int fd);
  void close_connection(int fd, bool notify_failure);
  Connection* connection_to(const std::string& address);
  void flush(Connection& conn);
  void drain_tasks();
  void fire_timers();
  TimePoint steady_now() const;

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;

  FrameHandler on_frame_;
  FailureHandler on_failure_;

  std::unordered_map<int, Connection> conns_;
  std::unordered_map<std::string, int> outbound_;  ///< address -> fd

  std::mutex mu_;
  std::deque<std::function<void()>> tasks_;

  struct Timer {
    TimePoint at;
    std::uint64_t token;
    std::function<void()> fn;
  };
  std::multimap<TimePoint, Timer> timers_;  // reactor thread only
  std::atomic<std::uint64_t> next_timer_token_{1};
  std::mutex timer_mu_;
  std::vector<Timer> pending_timers_;        // injected from other threads
  std::vector<std::uint64_t> cancelled_timers_;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace planetp::net
