#include "util/hash.hpp"

#include <cstring>

namespace planetp {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t murmur64(std::string_view data, std::uint64_t seed) {
  // MurmurHash64A (Austin Appleby), public domain.
  const std::uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  std::uint64_t h = seed ^ (data.size() * m);

  const char* p = data.data();
  const char* end = p + (data.size() / 8) * 8;
  while (p != end) {
    std::uint64_t k = load64(p);
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  const unsigned char* tail = reinterpret_cast<const unsigned char*>(p);
  switch (data.size() & 7) {
    case 7: h ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: h ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: h ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: h ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: h ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: h ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: h ^= static_cast<std::uint64_t>(tail[0]); h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

HashPair hash_pair(std::string_view term) {
  HashPair hp;
  hp.h1 = fnv1a64(term);
  hp.h2 = murmur64(term);
  // h2 must be odd so that double-hashed probe sequences cover power-of-two
  // tables; harmless for other moduli.
  hp.h2 |= 1;
  return hp;
}

}  // namespace planetp
