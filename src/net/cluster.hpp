#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/live_node.hpp"
#include "sim/faults.hpp"

/// \file cluster.hpp
/// In-process loopback community of LiveNodes — the harness behind the
/// sim-vs-live cross-validation (docs/NET.md): converged bootstrap of N
/// nodes, a wall-clock churn driver replaying a FaultPlan's crash/restart
/// events against real sockets, and aggregate NetStats / round-jitter /
/// fd accounting that survives node crashes (a crashed node's totals are
/// retired into the aggregate, not lost).

namespace planetp::net {

class LiveCluster {
 public:
  /// Construct \p n nodes with ids 1..n, each listening on an ephemeral
  /// loopback port. Nothing gossips until start(). Publish documents on
  /// individual nodes before start() to have their filters in everyone's
  /// bootstrap directory.
  LiveCluster(std::size_t n, LiveNodeConfig config);
  ~LiveCluster();

  LiveCluster(const LiveCluster&) = delete;
  LiveCluster& operator=(const LiveCluster&) = delete;

  std::size_t size() const { return slots_.size(); }

  /// The node at \p index (id = index + 1). The caller must not race this
  /// against churn crashing the same node.
  LiveNode& node(std::size_t index);
  bool is_up(std::size_t index) const;
  std::size_t up_count() const;

  /// Start every node with the full membership pre-seeded (the live
  /// counterpart of SimCommunity::start_converged — no join storm).
  void start();

  /// Stop everything (idempotent); joins the churn driver first.
  void stop();

  /// Crash node \p index now: its reactor stops, every fd closes, its
  /// counters/jitter/rounds are retired into the aggregate. Its directory
  /// self-version is remembered for a directory-keeping restart.
  void crash(std::size_t index);

  /// Restart a crashed node on its original port. Keeps the directory
  /// (bootstrap + rejoin rumor resuming past the pre-crash version) unless
  /// \p lose_directory, which rejoins empty through the lowest live node.
  void restart(std::size_t index, bool lose_directory);

  /// Replay \p events (node-relative microseconds, as built by
  /// FaultPlan::crash) against wall-clock time on a background driver
  /// thread. Returns immediately; join_churn() blocks until done.
  void run_churn(std::vector<sim::CrashEvent> events);
  void join_churn();

  /// Aggregate transport counters: every live node plus everything retired
  /// by crashes and stop().
  NetStats total_net_stats() const;
  std::uint64_t total_rounds() const;
  std::vector<Duration> merged_round_jitter() const;

  /// True once every currently-up node sees \p peer at >= \p version.
  bool wait_for_version_all(gossip::PeerId peer, std::uint64_t version, Duration timeout);

  /// Open descriptors of this process (via /proc/self/fd) — the fd-hygiene
  /// ground truth for leak tests.
  static std::size_t open_fd_count();

 private:
  struct Slot {
    std::unique_ptr<LiveNode> node;
    std::uint16_t port = 0;           ///< pinned across restarts
    std::uint64_t crash_version = 0;  ///< self directory version at crash
  };

  void retire_locked(Slot& slot);
  static std::uint16_t port_of(const std::string& address);

  LiveNodeConfig config_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<gossip::PeerRecord> initial_records_;

  // Retired accounting from crashed/stopped nodes.
  NetStats retired_;
  std::uint64_t retired_rounds_ = 0;
  std::vector<Duration> retired_jitter_;

  std::thread churn_;
  bool started_ = false;
};

}  // namespace planetp::net
