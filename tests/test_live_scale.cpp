#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/cluster.hpp"
#include "sim/community.hpp"

/// \file test_live_scale.cpp
/// The cross-validation run of docs/NET.md: a 1000-node LiveCluster on
/// loopback, crash/restart churn included, must reproduce the simulator's
/// convergence behaviour — same scenario, same gossip configuration, results
/// compared in *ticks* (multiples of the fixed gossip interval) so the two
/// time bases are commensurable. This closes the loop between the paper's
/// simulated §7 results and the live TCP runtime.

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PLANETP_SANITIZED 1
#endif
#endif
#if !defined(PLANETP_SANITIZED) && (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define PLANETP_SANITIZED 1
#endif
#ifndef PLANETP_SANITIZED
#define PLANETP_SANITIZED 0
#endif

namespace planetp::net {
namespace {

// Sanitizers multiply CPU cost 5-20x on this single-threaded-hardware
// machine; the sanitized run keeps the same scenario shape at reduced scale.
constexpr std::size_t kNodes = PLANETP_SANITIZED ? 128 : 1000;
constexpr std::size_t kPublishers = 10;
constexpr std::size_t kChurned = PLANETP_SANITIZED ? 8 : 20;
constexpr Duration kInterval = 300 * kMillisecond;

TimePoint steady_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Node-index layout (live id = index + 1, sim id = index):
///   index 0                      — introducer-ish bystander, never touched
///   1 .. kPublishers             — publishers of the shared rare term
///   kPublishers+1 .. +kChurned   — crash/restart victims
///   kNodes-1                     — the far searcher
constexpr std::size_t kFirstPublisher = 1;
constexpr std::size_t kFirstChurned = kPublishers + 1;
constexpr std::size_t kSearcher = kNodes - 1;

gossip::GossipConfig fixed_interval_gossip() {
  gossip::GossipConfig g;
  g.base_interval = kInterval;
  g.max_interval = kInterval;  // adaptive slow-down off: ticks stay comparable
  g.slow_down = 0;
  return g;
}

TEST(LiveScale, ThousandNodeChurnMatchesSimulator) {
  static_assert(kFirstChurned + kChurned < kNodes - 1, "index layout overlaps");

  LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip = fixed_interval_gossip();
  cfg.rpc_timeout = 2 * kSecond;
  cfg.search_retry.max_attempts = 2;
  cfg.search_group_size = 16;
  // Transport sized for a 1000-node single-process soak: small per-conn
  // budgets, a global cap the test asserts against, and aggressive idle
  // reaping to stay far below the process fd ceiling.
  cfg.reactor.per_connection_outbound_cap = 256 * 1024;
  cfg.reactor.global_outbound_cap = 16u << 20;
  cfg.reactor.idle_timeout = 750 * kMillisecond;
  cfg.reactor.maintenance_interval = 200 * kMillisecond;

  // Warm up lazily-created process state so fd accounting is exact.
  {
    LiveCluster warmup(2, cfg);
    warmup.start();
    warmup.stop();
  }
  const std::size_t fds_before = LiveCluster::open_fd_count();

  double ticks_live = 0.0;
  double recall_live = 0.0;
  NetStats stats;
  std::uint64_t total_rounds = 0;
  std::size_t jitter_samples = 0;
  {
    LiveCluster cluster(kNodes, cfg);

    // Publishers share one rare term before start(), so their filters ride
    // in everyone's converged bootstrap directory.
    for (std::size_t i = 0; i < kPublishers; ++i) {
      cluster.node(kFirstPublisher + i)
          .publish_text("rare " + std::to_string(i),
                        "shared zyzzyva observations from node " + std::to_string(i));
    }
    cluster.start();

    // Crash/restart churn: victims go down at t=1 s and rejoin (directory
    // kept) at t=3 s, exactly the scenario replayed in the simulator below.
    std::vector<sim::CrashEvent> events;
    for (std::size_t i = 0; i < kChurned; ++i) {
      sim::CrashEvent ev;
      ev.peer = static_cast<gossip::PeerId>(kFirstChurned + i + 1);  // live id
      ev.at = 1 * kSecond;
      ev.restart_at = 3 * kSecond;
      ev.lose_directory = false;
      events.push_back(ev);
    }
    cluster.run_churn(std::move(events));
    cluster.join_churn();
    ASSERT_EQ(cluster.up_count(), kNodes);

    // The measured event: one publisher's filter change after the churn has
    // settled, timed until *every* node has its new version.
    const auto publisher_id = static_cast<gossip::PeerId>(kFirstPublisher + 1);
    const TimePoint t0 = steady_micros();
    cluster.node(kFirstPublisher).publish_text("bump", "fresh zyzzyva bump content");
    ASSERT_TRUE(cluster.wait_for_version_all(publisher_id, 2, 180 * kSecond));
    ticks_live = static_cast<double>(steady_micros() - t0) / static_cast<double>(kInterval);

    // Recall from the far searcher: what fraction of the publishers does a
    // ranked query for the shared term actually reach?
    const auto hits = cluster.node(kSearcher).ranked_search("zyzzyva", 2 * kPublishers);
    std::unordered_set<std::uint32_t> found;
    for (const LiveHit& hit : hits) found.insert(hit.peer);
    recall_live = static_cast<double>(found.size()) / static_cast<double>(kPublishers);

    stats = cluster.total_net_stats();
    total_rounds = cluster.total_rounds();
    jitter_samples = cluster.merged_round_jitter().size();
    cluster.stop();
  }
  const std::size_t fds_after = LiveCluster::open_fd_count();

  // ------------------------------------------------------------------
  // The same scenario through the simulator (same protocol, same gossip
  // config, modeled network), measured by its convergence tracker.
  // ------------------------------------------------------------------
  sim::SimConfig scfg;
  scfg.gossip = fixed_interval_gossip();
  for (std::size_t i = 0; i < kChurned; ++i) {
    scfg.faults.crash(static_cast<gossip::PeerId>(kFirstChurned + i),  // sim id
                      1 * kSecond, 3 * kSecond, /*lose_directory=*/false);
  }
  sim::SimCommunity community(scfg);
  for (std::size_t i = 0; i < kNodes; ++i) community.add_peer({});
  const std::size_t tracker =
      community.add_tracker("bump", [](gossip::PeerId) { return true; });
  community.set_tracking(false);  // churn rejoin rumors are not the measurement
  community.start_converged();
  community.run_until(4 * kSecond);
  community.set_tracking(true);
  community.inject_filter_change(static_cast<gossip::PeerId>(kFirstPublisher), 100);
  TimePoint limit = 4 * kSecond;
  while (community.tracker(tracker).converged_events() == 0 && limit < 600 * kSecond) {
    limit += 2 * kSecond;
    community.run_until(limit);
  }
  ASSERT_EQ(community.tracker(tracker).converged_events(), 1u);
  const double ticks_sim = community.tracker(tracker).durations().max() /
                           (static_cast<double>(kInterval) / kSecond);

  // Sim-side recall analogue: the fraction of publishers a far peer's
  // replicated directory knows and believes online once converged.
  std::size_t known = 0;
  for (std::size_t i = 0; i < kPublishers; ++i) {
    const gossip::PeerRecord* r =
        community.protocol(kSearcher).directory().find(
            static_cast<gossip::PeerId>(kFirstPublisher + i));
    if (r != nullptr && r->online) ++known;
  }
  const double recall_sim = static_cast<double>(known) / static_cast<double>(kPublishers);

  // ------------------------------------------------------------------
  // Cross-validation: live must land in the simulator's ballpark.
  // ------------------------------------------------------------------
  EXPECT_GE(ticks_sim, 1.0);
  EXPECT_LE(ticks_live, ticks_sim * 3.0 + 15.0)
      << "live converged in " << ticks_live << " ticks vs sim " << ticks_sim;
  EXPECT_NEAR(recall_live, recall_sim, 0.2)
      << "live recall " << recall_live << " vs sim " << recall_sim;

  // Transport invariants of the soak.
  EXPECT_EQ(fds_before, fds_after) << "reactor leaked descriptors";
  EXPECT_LE(stats.peak_queued_bytes, cfg.reactor.global_outbound_cap);
  EXPECT_GT(stats.connects_failed, 0u);   // crashed peers refused connects
  EXPECT_GT(stats.backoffs_engaged, 0u);  // which armed reconnect backoff
  EXPECT_GT(total_rounds, static_cast<std::uint64_t>(kNodes));
  EXPECT_GT(jitter_samples, 0u);
}

}  // namespace
}  // namespace planetp::net
