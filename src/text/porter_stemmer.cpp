#include "text/porter_stemmer.hpp"

#include <cstring>

namespace planetp::text {

namespace {

/// Implements the original algorithm over a char buffer [0, k]. The member
/// names (k, j, m(), cons(), etc.) deliberately follow Porter's published
/// reference implementation so the steps can be checked against the paper.
/// Indices are signed because Porter's j can legitimately become -1 (empty
/// stem candidate).
class PorterContext {
 public:
  explicit PorterContext(std::string& word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  void run() {
    if (k_ <= 1) return;  // words of length 1-2 are left unchanged
    step1ab();
    step1c();
    step2();
    step3();
    step4();
    step5();
    b_.resize(static_cast<std::size_t>(k_ + 1));
  }

 private:
  std::string& b_;
  int k_;      ///< index of last char of the current word
  int j_ = 0;  ///< index of last char of the stem candidate

  char at(int i) const { return b_[static_cast<std::size_t>(i)]; }

  bool cons(int i) const {
    switch (at(i)) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !cons(i - 1);
      default:
        return true;
    }
  }

  /// m(): number of consonant-vowel sequences in [0, j].
  int m() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  /// *v*: the stem [0, j] contains a vowel.
  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!cons(i)) return true;
    }
    return false;
  }

  /// *d: [j-1, j] is a double consonant.
  bool double_cons(int j) const {
    if (j < 1) return false;
    if (at(j) != at(j - 1)) return false;
    return cons(j);
  }

  /// *o: [i-2, i] is consonant-vowel-consonant with final != w, x, y.
  bool cvc(int i) const {
    if (i < 2 || !cons(i) || cons(i - 1) || !cons(i - 2)) return false;
    const char ch = at(i);
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool ends(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + (k_ + 1 - len), s, static_cast<std::size_t>(len)) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void setto(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    b_.replace(static_cast<std::size_t>(j_ + 1), static_cast<std::size_t>(k_ - j_), s,
               static_cast<std::size_t>(len));
    k_ = j_ + len;
  }

  void replace_if_m_gt_0(const char* s) {
    if (m() > 0) setto(s);
  }

  /// Step 1a: plurals. SSES -> SS, IES -> I, SS -> SS, S -> "".
  /// Step 1b: -ED and -ING, with cleanup (AT->ATE, BL->BLE, IZ->IZE,
  /// undoubling, or adding E after a short stem).
  void step1ab() {
    if (at(k_) == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        setto("i");
      } else if (at(k_ - 1) != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (m() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        setto("ate");
      } else if (ends("bl")) {
        setto("ble");
      } else if (ends("iz")) {
        setto("ize");
      } else if (double_cons(k_)) {
        --k_;
        const char ch = at(k_);
        if (ch == 'l' || ch == 's' || ch == 'z') ++k_;
      } else if (m() == 1 && cvc(k_)) {
        setto("e");
      }
    }
  }

  /// Step 1c: Y -> I when there is another vowel in the stem.
  void step1c() {
    if (ends("y") && vowel_in_stem()) b_[static_cast<std::size_t>(k_)] = 'i';
  }

  /// Step 2: double/triple suffixes mapped to single ones when m(stem) > 0.
  void step2() {
    if (k_ < 1) return;
    switch (at(k_ - 1)) {
      case 'a':
        if (ends("ational")) { replace_if_m_gt_0("ate"); break; }
        if (ends("tional")) { replace_if_m_gt_0("tion"); break; }
        break;
      case 'c':
        if (ends("enci")) { replace_if_m_gt_0("ence"); break; }
        if (ends("anci")) { replace_if_m_gt_0("ance"); break; }
        break;
      case 'e':
        if (ends("izer")) { replace_if_m_gt_0("ize"); break; }
        break;
      case 'l':
        if (ends("bli")) { replace_if_m_gt_0("ble"); break; }  // DEPARTURE: -abli in the 1980 paper
        if (ends("alli")) { replace_if_m_gt_0("al"); break; }
        if (ends("entli")) { replace_if_m_gt_0("ent"); break; }
        if (ends("eli")) { replace_if_m_gt_0("e"); break; }
        if (ends("ousli")) { replace_if_m_gt_0("ous"); break; }
        break;
      case 'o':
        if (ends("ization")) { replace_if_m_gt_0("ize"); break; }
        if (ends("ation")) { replace_if_m_gt_0("ate"); break; }
        if (ends("ator")) { replace_if_m_gt_0("ate"); break; }
        break;
      case 's':
        if (ends("alism")) { replace_if_m_gt_0("al"); break; }
        if (ends("iveness")) { replace_if_m_gt_0("ive"); break; }
        if (ends("fulness")) { replace_if_m_gt_0("ful"); break; }
        if (ends("ousness")) { replace_if_m_gt_0("ous"); break; }
        break;
      case 't':
        if (ends("aliti")) { replace_if_m_gt_0("al"); break; }
        if (ends("iviti")) { replace_if_m_gt_0("ive"); break; }
        if (ends("biliti")) { replace_if_m_gt_0("ble"); break; }
        break;
      case 'g':
        if (ends("logi")) { replace_if_m_gt_0("log"); break; }  // DEPARTURE
        break;
      default:
        break;
    }
  }

  /// Step 3: -ICATE, -ATIVE, -ALIZE, -ICITI, -ICAL, -FUL, -NESS.
  void step3() {
    switch (at(k_)) {
      case 'e':
        if (ends("icate")) { replace_if_m_gt_0("ic"); break; }
        if (ends("ative")) { replace_if_m_gt_0(""); break; }
        if (ends("alize")) { replace_if_m_gt_0("al"); break; }
        break;
      case 'i':
        if (ends("iciti")) { replace_if_m_gt_0("ic"); break; }
        break;
      case 'l':
        if (ends("ical")) { replace_if_m_gt_0("ic"); break; }
        if (ends("ful")) { replace_if_m_gt_0(""); break; }
        break;
      case 's':
        if (ends("ness")) { replace_if_m_gt_0(""); break; }
        break;
      default:
        break;
    }
  }

  /// Step 4: strip residual suffixes when m(stem) > 1.
  void step4() {
    if (k_ < 1) return;
    switch (at(k_ - 1)) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 && (at(j_) == 's' || at(j_) == 't')) break;
        if (ends("ou")) break;  // takes care of -ous
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (m() > 1) k_ = j_;
  }

  /// Step 5a: remove a final -E if m > 1, or if m == 1 and not *o.
  /// Step 5b: -LL -> -L if m > 1.
  void step5() {
    j_ = k_;
    if (at(k_) == 'e') {
      const int a = m();
      if (a > 1 || (a == 1 && !cvc(k_ - 1))) --k_;
    }
    if (at(k_) == 'l' && double_cons(k_) && m() > 1) --k_;
  }
};

}  // namespace

void porter_stem(std::string& word) {
  if (word.size() < 3) return;
  PorterContext ctx(word);
  ctx.run();
}

std::string porter_stem_copy(std::string_view word) {
  std::string w(word);
  porter_stem(w);
  return w;
}

}  // namespace planetp::text
