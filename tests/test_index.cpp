#include "index/inverted_index.hpp"

#include <gtest/gtest.h>

#include "index/document.hpp"
#include "index/term_dictionary.hpp"

namespace planetp::index {
namespace {

using Freqs = std::unordered_map<std::string, std::uint32_t>;

TEST(TermDictionary, InternAssignsDenseStableIds) {
  TermDictionary dict;
  const TermId a = dict.intern("alpha");
  const TermId b = dict.intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.intern("alpha"), a);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.term(a), "alpha");
  EXPECT_EQ(dict.term(b), "beta");
  EXPECT_EQ(dict.find("alpha"), a);
  EXPECT_EQ(dict.find("missing"), kInvalidTermId);
}

TEST(TermDictionary, HashMatchesHashPair) {
  TermDictionary dict;
  const TermId id = dict.intern("gossip");
  const HashPair expected = hash_pair("gossip");
  EXPECT_EQ(dict.hash(id).h1, expected.h1);
  EXPECT_EQ(dict.hash(id).h2, expected.h2);
}

TEST(TermDictionary, SurvivesTableGrowthAndLargeVocabulary) {
  TermDictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(dict.intern("term" + std::to_string(i)));
  }
  EXPECT_EQ(dict.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string term = "term" + std::to_string(i);
    EXPECT_EQ(dict.find(term), ids[static_cast<std::size_t>(i)]) << term;
    EXPECT_EQ(dict.term(ids[static_cast<std::size_t>(i)]), term);
  }
}

TEST(TermDictionary, CopyIsIndependentAndValid) {
  TermDictionary dict;
  for (int i = 0; i < 300; ++i) dict.intern("w" + std::to_string(i));
  TermDictionary copy = dict;
  dict.intern("only-in-original");
  EXPECT_EQ(copy.find("only-in-original"), kInvalidTermId);
  for (int i = 0; i < 300; ++i) {
    const std::string term = "w" + std::to_string(i);
    EXPECT_EQ(copy.find(term), dict.find(term)) << term;
    EXPECT_EQ(copy.term(copy.find(term)), term);
  }
}

TEST(TermDictionary, OverlongTermGetsDedicatedBlock) {
  TermDictionary dict;
  const std::string huge(200 * 1024, 'x');
  const TermId small1 = dict.intern("small");
  const TermId big = dict.intern(huge);
  const TermId small2 = dict.intern("after");
  EXPECT_EQ(dict.term(big), huge);
  EXPECT_EQ(dict.term(small1), "small");
  EXPECT_EQ(dict.term(small2), "after");
}

TEST(TermCounts, AggregatesInFirstOccurrenceOrder) {
  TermCounts counts;
  counts.add(7);
  counts.add(3);
  counts.add(7);
  counts.add(3, 4);
  EXPECT_EQ(counts.terms(), (std::vector<TermId>{7, 3}));
  EXPECT_EQ(counts.count(7), 2u);
  EXPECT_EQ(counts.count(3), 5u);
  EXPECT_EQ(counts.count(99), 0u);
  counts.clear();
  EXPECT_TRUE(counts.empty());
  EXPECT_EQ(counts.count(7), 0u);
}

TEST(InvertedIndex, TermIdApiMirrorsStringApi) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"apple", 3}, {"banana", 1}});
  idx.add_document({0, 2}, Freqs{{"apple", 1}});

  const TermId apple = idx.term_id("apple");
  ASSERT_NE(apple, kInvalidTermId);
  EXPECT_EQ(idx.term_id("durian"), kInvalidTermId);
  EXPECT_EQ(&idx.postings_by_id(apple), &idx.postings("apple"));
  EXPECT_EQ(idx.collection_frequency_by_id(apple), idx.collection_frequency("apple"));
  EXPECT_EQ(idx.document_frequency_by_id(apple), idx.document_frequency("apple"));
  EXPECT_EQ(idx.dictionary().term(apple), "apple");
  EXPECT_TRUE(idx.postings_by_id(kInvalidTermId).empty());
}

TEST(InvertedIndex, PostingSlotsParallelPostings) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"x", 1}, {"y", 2}});
  idx.add_document({0, 2}, Freqs{{"x", 3}});

  const TermId x = idx.term_id("x");
  const auto& postings = idx.postings_by_id(x);
  const auto& slots = idx.posting_slots(x);
  ASSERT_EQ(postings.size(), slots.size());
  for (std::size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(idx.doc_at_slot(slots[i]), postings[i].doc);
    EXPECT_EQ(idx.doc_length_at_slot(slots[i]), idx.document_length(postings[i].doc));
  }
  EXPECT_EQ(idx.doc_slot(DocumentId{9, 9}), InvertedIndex::kNoSlot);
}

TEST(InvertedIndex, SlotsReusedAfterRemoval) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}});
  idx.add_document({0, 2}, Freqs{{"a", 1}});
  const std::size_t slots_before = idx.doc_slot_count();
  idx.remove_document({0, 1});
  idx.add_document({0, 3}, Freqs{{"a", 1}, {"b", 2}});
  // The freed slot is reused: the accumulator domain stays compact.
  EXPECT_EQ(idx.doc_slot_count(), slots_before);
  EXPECT_EQ(idx.document_length({0, 3}), 3u);
  EXPECT_EQ(idx.document_frequency("a"), 2u);
}

TEST(InvertedIndex, DocumentTermIdsTrackInsertionOrder) {
  InvertedIndex idx;
  TermCounts counts;
  counts.add(idx.intern_term("zebra"));
  counts.add(idx.intern_term("apple"), 2);
  idx.add_document_counts({0, 1}, counts);

  const auto& ids = idx.document_term_ids({0, 1});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(idx.dictionary().term(ids[0]), "zebra");
  EXPECT_EQ(idx.dictionary().term(ids[1]), "apple");
  EXPECT_TRUE(idx.document_term_ids({5, 5}).empty());
}

TEST(InvertedIndex, TermIdStaysAfterPostingsEmptyOut) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"ephemeral", 1}});
  const TermId id = idx.term_id("ephemeral");
  idx.remove_document({0, 1});
  // The dictionary never forgets a term; only the postings empty out.
  EXPECT_EQ(idx.term_id("ephemeral"), id);
  EXPECT_FALSE(idx.contains_term("ephemeral"));
  EXPECT_EQ(idx.num_terms(), 0u);
  EXPECT_TRUE(idx.postings_by_id(id).empty());
  // Re-adding reuses the same id.
  idx.add_document({0, 2}, Freqs{{"ephemeral", 2}});
  EXPECT_EQ(idx.term_id("ephemeral"), id);
  EXPECT_EQ(idx.collection_frequency_by_id(id), 2u);
}

TEST(InvertedIndex, AddAndQuery) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"apple", 3}, {"banana", 1}});
  idx.add_document({0, 2}, Freqs{{"apple", 1}, {"cherry", 2}});

  EXPECT_EQ(idx.num_documents(), 2u);
  EXPECT_EQ(idx.num_terms(), 3u);
  EXPECT_EQ(idx.document_frequency("apple"), 2u);
  EXPECT_EQ(idx.document_frequency("banana"), 1u);
  EXPECT_EQ(idx.document_frequency("durian"), 0u);
  EXPECT_EQ(idx.collection_frequency("apple"), 4u);
  EXPECT_EQ(idx.term_frequency("apple", {0, 1}), 3u);
  EXPECT_EQ(idx.term_frequency("apple", {0, 2}), 1u);
  EXPECT_EQ(idx.term_frequency("cherry", {0, 1}), 0u);
}

TEST(InvertedIndex, DocumentLengths) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 2}, {"b", 3}});
  EXPECT_EQ(idx.document_length({0, 1}), 5u);
  EXPECT_EQ(idx.document_length({0, 9}), 0u);
}

TEST(InvertedIndex, DuplicateAddThrows) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}});
  EXPECT_THROW(idx.add_document({0, 1}, Freqs{{"b", 1}}), std::invalid_argument);
}

TEST(InvertedIndex, RemoveDocument) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"shared", 1}, {"only1", 1}});
  idx.add_document({0, 2}, Freqs{{"shared", 2}});

  EXPECT_TRUE(idx.remove_document({0, 1}));
  EXPECT_FALSE(idx.remove_document({0, 1}));  // already gone
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_FALSE(idx.contains_term("only1"));
  EXPECT_EQ(idx.collection_frequency("shared"), 2u);
  EXPECT_EQ(idx.document_frequency("shared"), 1u);
}

TEST(InvertedIndex, PostingsContent) {
  InvertedIndex idx;
  idx.add_document({1, 5}, Freqs{{"x", 7}});
  const auto& plist = idx.postings("x");
  ASSERT_EQ(plist.size(), 1u);
  EXPECT_EQ(plist[0].doc, (DocumentId{1, 5}));
  EXPECT_EQ(plist[0].term_freq, 7u);
  EXPECT_TRUE(idx.postings("absent").empty());
}

TEST(InvertedIndex, ForEachTermVisitsAll) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}, {"b", 1}, {"c", 1}});
  std::size_t count = 0;
  idx.for_each_term([&](const std::string&) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST(InvertedIndex, DocumentsSorted) {
  InvertedIndex idx;
  idx.add_document({0, 3}, Freqs{{"a", 1}});
  idx.add_document({0, 1}, Freqs{{"a", 1}});
  idx.add_document({0, 2}, Freqs{{"a", 1}});
  const auto docs = idx.documents();
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].local, 1u);
  EXPECT_EQ(docs[2].local, 3u);
}

TEST(Document, MakeDocumentExtractsEverything) {
  const std::string xml = R"(<document title="Gossip Paper">
      <abstract>We present PlanetP.</abstract>
      <link href="paper.ps" type="postscript">full postscript text here</link>
    </document>)";
  const Document doc = make_document({3, 7}, xml);
  EXPECT_EQ(doc.id, (DocumentId{3, 7}));
  EXPECT_EQ(doc.title, "Gossip Paper");
  EXPECT_NE(doc.text.find("PlanetP"), std::string::npos);
  EXPECT_NE(doc.text.find("postscript text"), std::string::npos);
  ASSERT_EQ(doc.links.size(), 1u);
  EXPECT_EQ(doc.links[0].href, "paper.ps");
  EXPECT_EQ(doc.links[0].content_type, "postscript");
  EXPECT_FALSE(doc.links[0].content.empty());
}

TEST(Document, TitleFromChildElement) {
  const Document doc = make_document({0, 0}, "<doc><title>Child Title</title>body</doc>");
  EXPECT_EQ(doc.title, "Child Title");
}

TEST(Document, UnknownLinkTypeNotExtracted) {
  const Document doc = make_document(
      {0, 0}, R"(<doc><link href="img.png" type="image">alt text</link></doc>)");
  ASSERT_EQ(doc.links.size(), 1u);
  EXPECT_TRUE(doc.links[0].content.empty());
}

TEST(Document, MalformedXmlThrows) {
  EXPECT_THROW(make_document({0, 0}, "<doc>unclosed"), std::runtime_error);
}

TEST(Document, WrapTextEscapes) {
  const std::string xml = wrap_text_as_xml("A & B", "body with <angle>");
  const Document doc = make_document({0, 0}, xml);
  EXPECT_EQ(doc.title, "A & B");
  EXPECT_NE(doc.text.find("<angle>"), std::string::npos);
}

TEST(DocumentId, OrderingAndHash) {
  const DocumentId a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(DocumentIdHash{}(a), DocumentIdHash{}(b));
}

}  // namespace
}  // namespace planetp::index
