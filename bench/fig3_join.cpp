/// \file fig3_join.cpp
/// Figure 3: time for (x - 1000) new peers to simultaneously join a stable
/// community of 1000 members, each member sharing 20,000 keys. The paper
/// reports ~600 s for LAN even at +25% growth, ~2x that for DSL, and
/// "unacceptable" times (50 min to 2 h+) for MIX.

#include <cstdio>
#include <cstring>
#include <vector>

#include "sim/scenarios.hpp"

using namespace planetp;
using namespace planetp::sim;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t base = quick ? 200 : 1000;
  std::vector<std::size_t> joiners = {25, 50, 100, 150, 200, 250};
  if (quick) joiners = {10, 25, 50};

  std::printf("Figure 3 — x peers joining %zu stable members (20000 keys each)\n\n", base);

  const struct {
    const char* name;
    BandwidthProfile profile;
  } curves[] = {
      {"LAN", BandwidthProfile::kLan},
      {"DSL", BandwidthProfile::kDsl},
      {"MIX", BandwidthProfile::kMix},
  };

  for (const auto& curve : curves) {
    std::printf("# curve %s\n", curve.name);
    std::printf("%-10s %16s %12s\n", "joiners", "consistency(s)", "volume(MB)");
    for (std::size_t m : joiners) {
      JoinOptions opts;
      opts.existing_members = base;
      opts.joiners = m;
      opts.profile = curve.profile;
      opts.seed = 7 + m;
      const JoinResult r = run_join(opts);
      std::printf("%-10zu %16.1f %12.1f%s\n", m, r.consistency_seconds,
                  static_cast<double>(r.total_bytes) / 1e6,
                  r.converged ? "" : "  (timeout)");
    }
    std::puts("");
  }
  return 0;
}
