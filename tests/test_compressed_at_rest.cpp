#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/wire.hpp"
#include "gossip/directory.hpp"
#include "gossip/types.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"

/// \file test_compressed_at_rest.cpp
/// The compressed-at-rest directory contract (docs/SCALE.md): a community
/// member holding peers' Bloom filters as Golomb wire bytes — decoding on
/// demand under an LRU byte bound, merging gossiped XOR diffs in the gap
/// domain — must answer every query byte-identically to a member that keeps
/// every filter fully decoded. Plus the O(changed) summary-compare pin for
/// shared-base directories.

using namespace planetp;
using namespace planetp::search;

namespace {

bloom::BloomParams small_params() { return bloom::BloomParams{65536, 2}; }

std::string term_name(std::size_t i) { return "term" + std::to_string(i); }

bloom::BloomFilter make_filter(const std::vector<std::size_t>& term_ids) {
  bloom::BloomFilter f(small_params());
  for (std::size_t t : term_ids) f.insert(term_name(t));
  return f;
}

std::vector<std::uint8_t> wire_of(const bloom::BloomFilter& f) {
  ByteWriter w;
  bloom::encode_filter(w, f);
  return w.take();
}

std::vector<std::uint8_t> diff_wire_of(const BitVector& diff) {
  ByteWriter w;
  bloom::encode_diff(w, diff);
  return w.take();
}

void expect_identical(const IpfTable& a, const IpfTable& b) {
  EXPECT_EQ(a.num_peers(), b.num_peers());
  ASSERT_EQ(a.terms(), b.terms());
  for (const std::string& t : a.terms()) {
    EXPECT_EQ(a.weight(t), b.weight(t)) << "term " << t;
    std::vector<std::uint32_t> pa = a.peers_with(t);
    std::vector<std::uint32_t> pb = b.peers_with(t);
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    EXPECT_EQ(pa, pb) << "term " << t;
  }
  const auto ra = rank_peers(a);
  const auto rb = rank_peers(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].peer, rb[i].peer) << "rank position " << i;
    EXPECT_EQ(ra[i].rank, rb[i].rank) << "rank position " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire-backed cache vs fully-decoded oracle
// ---------------------------------------------------------------------------

TEST(CompressedAtRest, RandomizedLifecycleMatchesDecodedOracle) {
  // Oracle: every filter decoded, never evicted. Subject: filters at rest as
  // wire bytes with a decoded working set of only ~6 filters (65536 bits =
  // 8 KB decoded each), so lookups constantly decode in and evict.
  CandidateCacheConfig bounded;
  bounded.max_decoded_bytes = 48 * 1024;
  CandidateCache oracle;
  CandidateCache subject(bounded);

  std::mt19937_64 rng(20030611);
  constexpr std::size_t kPeers = 24;
  constexpr std::size_t kTermUniverse = 120;

  std::vector<bloom::BloomFilter> truth(kPeers, bloom::BloomFilter(small_params()));
  std::vector<std::uint64_t> version(kPeers, 0);
  std::vector<bool> known(kPeers, false);

  auto install = [&](std::size_t p) {
    std::vector<std::size_t> terms;
    for (std::size_t t = 0; t < kTermUniverse; ++t) {
      if (rng() % 3 == 0) terms.push_back(t);
    }
    truth[p] = make_filter(terms);
    version[p] += 1;
    oracle.update_peer(p, std::make_shared<bloom::BloomFilter>(truth[p]), version[p]);
    subject.update_peer_wire(p, wire_of(truth[p]), version[p]);
    known[p] = true;
  };
  for (std::size_t p = 0; p < kPeers; ++p) install(p);

  auto query = [&] {
    std::vector<std::string> terms;
    for (int i = 0; i < 6; ++i) {
      terms.push_back(term_name(rng() % (kTermUniverse + 10)));  // some unknown
    }
    std::vector<PeerFilter> oracle_view, subject_view, truth_view;
    std::vector<std::shared_ptr<const bloom::BloomFilter>> pins;
    for (std::size_t p = 0; p < kPeers; ++p) {
      if (!known[p]) continue;
      auto of = oracle.filter_of(static_cast<std::uint32_t>(p));
      auto sf = subject.resident_filter(static_cast<std::uint32_t>(p));
      ASSERT_NE(of, nullptr);
      ASSERT_NE(sf, nullptr);
      oracle_view.push_back(PeerFilter{static_cast<std::uint32_t>(p), of.get(), 0});
      subject_view.push_back(PeerFilter{static_cast<std::uint32_t>(p), sf.get(), 0});
      truth_view.push_back(PeerFilter{static_cast<std::uint32_t>(p), &truth[p], 0});
      pins.push_back(std::move(of));
      pins.push_back(std::move(sf));
    }
    const HashedTerms hashed = HashedTerms::from(terms);
    const IpfTable want(hashed, truth_view);
    expect_identical(oracle.lookup(hashed, oracle_view), want);
    expect_identical(subject.lookup(hashed, subject_view), want);
  };

  for (int round = 0; round < 60; ++round) {
    const std::size_t p = rng() % kPeers;
    switch (rng() % 5) {
      case 0: {  // XOR diff: a few new terms gossiped incrementally
        if (!known[p]) break;
        bloom::BloomFilter next = truth[p];
        for (int i = 0; i < 3; ++i) next.insert(term_name(rng() % kTermUniverse));
        const BitVector diff = next.diff_from(truth[p]);
        ASSERT_TRUE(oracle.apply_peer_diff(static_cast<std::uint32_t>(p), diff, version[p],
                                           version[p] + 1));
        ASSERT_TRUE(subject.apply_peer_diff_wire(static_cast<std::uint32_t>(p),
                                                 diff_wire_of(diff), version[p],
                                                 version[p] + 1));
        truth[p] = std::move(next);
        version[p] += 1;
        break;
      }
      case 1:  // rejoin: version bump, unchanged content
        if (!known[p]) break;
        version[p] += 1;
        EXPECT_TRUE(oracle.touch_peer(static_cast<std::uint32_t>(p), version[p]));
        EXPECT_TRUE(subject.touch_peer(static_cast<std::uint32_t>(p), version[p]));
        break;
      case 2:  // expiry (T_dead): both caches forget the peer
        oracle.remove_peer(static_cast<std::uint32_t>(p));
        subject.remove_peer(static_cast<std::uint32_t>(p));
        known[p] = false;
        break;
      case 3:  // (re)join with a fresh filter
        install(p);
        break;
      default:
        query();
        break;
    }
  }
  query();

  // The bound must have had teeth: at-rest peers were decoded on demand and
  // decoded filters were dropped back to wire form along the way.
  EXPECT_GT(subject.stats().wire_decodes, 0u);
  EXPECT_GT(subject.stats().decoded_evictions, 0u);
  EXPECT_LE(subject.decoded_bytes(), bounded.max_decoded_bytes);
}

TEST(CompressedAtRest, DiffOnAtRestPeerNeverMaterializes) {
  // A diff arriving for a peer whose filter is at rest merges into the wire
  // bytes without decoding anything; the next decode sees the merged filter.
  CandidateCache cache({.max_decoded_bytes = 1});  // evict everything eagerly
  bloom::BloomFilter f = make_filter({1, 2, 3});
  cache.update_peer_wire(7, wire_of(f), 1);
  EXPECT_EQ(cache.resident_peers(), 0u);

  bloom::BloomFilter next = f;
  next.insert(term_name(4));
  ASSERT_TRUE(cache.apply_peer_diff_wire(7, diff_wire_of(next.diff_from(f)), 1, 2));
  EXPECT_EQ(cache.stats().wire_decodes, 0u);  // still at rest

  auto resident = cache.resident_filter(7);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(*resident, next);
  EXPECT_EQ(cache.version_of(7), 2u);
}

TEST(CompressedAtRest, WireDiffRefusedOnVersionOrGeometryMismatch) {
  CandidateCache cache;
  bloom::BloomFilter f = make_filter({1, 2});
  cache.update_peer_wire(1, wire_of(f), 3);

  bloom::BloomFilter next = f;
  next.insert(term_name(9));
  const auto diff = diff_wire_of(next.diff_from(f));
  EXPECT_FALSE(cache.apply_peer_diff_wire(1, diff, 2, 4));  // wrong base version
  EXPECT_FALSE(cache.apply_peer_diff_wire(2, diff, 3, 4));  // unknown peer

  BitVector wrong_geometry(128);
  wrong_geometry.set(5);
  EXPECT_FALSE(cache.apply_peer_diff_wire(1, diff_wire_of(wrong_geometry), 3, 4));
  EXPECT_EQ(cache.version_of(1), 3u);  // refused updates leave state alone

  // Decoded-only peers refuse the wire path (and vice versa): the two
  // stores never desynchronize.
  cache.update_peer(5, std::make_shared<bloom::BloomFilter>(f), 3);
  EXPECT_FALSE(cache.apply_peer_diff_wire(5, diff, 3, 4));
  EXPECT_TRUE(cache.apply_peer_diff(5, next.diff_from(f), 3, 4));
  EXPECT_FALSE(cache.apply_peer_diff(1, next.diff_from(f), 3, 4));  // wire-backed
}

TEST(CompressedAtRest, SurgicalFixesApplyToResidentWireBackedPeers) {
  // A resident wire-backed peer gets the same surgical treatment as the
  // decoded path: untouched cached terms stay warm, touched ones are fixed.
  CandidateCache cache;
  bloom::BloomFilter f = make_filter({1});
  cache.update_peer_wire(0, wire_of(f), 1);
  auto pin = cache.resident_filter(0);
  ASSERT_NE(pin, nullptr);

  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  const std::vector<std::string> terms = {term_name(1), term_name(2)};
  const HashedTerms hashed = HashedTerms::from(terms);
  cache.lookup(hashed, view);
  ASSERT_EQ(cache.cached_terms(), 2u);

  bloom::BloomFilter next = f;
  next.insert(term_name(2));
  ASSERT_TRUE(cache.apply_peer_diff_wire(0, diff_wire_of(next.diff_from(f)), 1, 2));
  EXPECT_GT(cache.stats().surgical_fixes, 0u);

  auto resident = cache.resident_filter(0);
  const std::vector<PeerFilter> after = {{0, resident.get(), 0}};
  expect_identical(cache.lookup(hashed, after), IpfTable(hashed, after));
  EXPECT_EQ(*resident, next);
}

TEST(CompressedAtRest, ConcurrentDecodeEvictAndLookupAreSafe) {
  // Thread-safety under residency churn: concurrent decode-ins, evictions,
  // wire merges, and lookups on one shared cache (run under TSan in check.sh).
  CandidateCacheConfig cfg;
  cfg.max_decoded_bytes = 24 * 1024;  // ~3 resident filters
  CandidateCache cache(cfg);
  constexpr std::size_t kPeers = 8;
  std::vector<bloom::BloomFilter> filters;
  for (std::size_t p = 0; p < kPeers; ++p) {
    filters.push_back(make_filter({p, p + 1, p + 2}));
    cache.update_peer_wire(static_cast<std::uint32_t>(p), wire_of(filters[p]), 1);
  }

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&cache, &filters, w] {
      std::mt19937_64 rng(1000 + w);
      for (int i = 0; i < 200; ++i) {
        const auto p = static_cast<std::uint32_t>(rng() % kPeers);
        switch (rng() % 3) {
          case 0:
            cache.resident_filter(p);
            break;
          case 1:
            cache.update_peer_wire(p, wire_of(filters[p]), 1);
            break;
          default: {
            std::vector<PeerFilter> view;
            std::vector<std::shared_ptr<const bloom::BloomFilter>> pins;
            for (std::size_t q = 0; q < kPeers; ++q) {
              if (auto f = cache.resident_filter(static_cast<std::uint32_t>(q))) {
                view.push_back(PeerFilter{static_cast<std::uint32_t>(q), f.get(), 0});
                pins.push_back(std::move(f));
              }
            }
            const std::vector<std::string> terms = {term_name(rng() % 12)};
            const HashedTerms hashed = HashedTerms::from(terms);
            const IpfTable got = cache.lookup(hashed, view);
            expect_identical(got, IpfTable(hashed, view));
            break;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_LE(cache.decoded_bytes(), cfg.max_decoded_bytes);
}

// ---------------------------------------------------------------------------
// O(changed) summary compares between shared-base directories
// ---------------------------------------------------------------------------

TEST(ODeltaSummaries, MergeScanTouchesOnlyChangedRecords) {
  using namespace planetp::gossip;
  constexpr std::size_t kPeers = 400;
  std::vector<PeerRecord> records;
  for (PeerId id = 0; id < kPeers; ++id) {
    PeerRecord r;
    r.id = id;
    r.address = "sim://" + std::to_string(id);
    r.version = 1;
    r.key_count = 100;
    records.push_back(std::move(r));
  }
  const DirectoryBasePtr base = make_directory_base(std::move(records));

  Directory a(0), b(1);
  a.adopt_base(base);
  b.adopt_base(base);

  // Converged: the compare must scan zero entries, not 400.
  EXPECT_TRUE(b.same_as(a.summary_entries()));
  EXPECT_EQ(b.merge_scan_entries(), 0u);

  // Three records move forward on a; b's compare and merge scan exactly the
  // changed set.
  for (PeerId id : {7u, 123u, 398u}) {
    PeerRecord updated = *a.find(id);
    updated.version = 2;
    EXPECT_TRUE(a.apply(updated));
  }
  const auto summary = a.summary_entries();
  EXPECT_FALSE(b.same_as(summary));
  EXPECT_LE(b.merge_scan_entries(), 6u);  // both deltas, never O(peers)

  const auto newer = b.newer_in(summary);
  EXPECT_EQ(newer.size(), 3u);
  EXPECT_LE(b.merge_scan_entries(), 9u);
}
