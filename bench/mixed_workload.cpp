/// \file mixed_workload.cpp
/// Snapshot-isolated concurrent query serving under live publishes
/// (docs/INDEX.md "Epochs & concurrent readers"): N reader threads rank
/// TFxIDF queries against DataStore::snapshot() while one writer publishes
/// and removes documents continuously, with the background segment merge
/// folding pending epochs into the compressed base.
///
/// Two phases:
///   identity — a sequential oracle DataStore replays the writer's exact
///              op-log; after EVERY commit the published epoch is ranked
///              against the oracle and must match byte-for-byte (score bits
///              and DocumentId tie-breaks). This is the headline contract of
///              the epoch design, gated, not just reported.
///   timed    — for 1, 2, 4 and 8 reader threads: aggregate queries/sec,
///              p50/p99 query latency, and epochs published by the live
///              writer during the window. Readers rank through the pruned
///              SnapshotRanker path (docs/INDEX.md "Block-max pruning"):
///              the store is warmed past kMinPrunedDocs so the merged base
///              carries block metadata, and per-reader PruneStats are
///              aggregated into the report.
///
/// Emits BENCH_mixed_workload.json. Gates:
///   1. every epoch of the identity phase ranks byte-identically to the
///      sequential oracle;
///   2. reader scaling 1 -> 8 threads, adapted to the host: with >= 8
///      hardware threads the aggregate qps must scale >= 3x; with 2-7 it
///      must reach >= 0.4x per hardware thread; on a single core (where
///      parallel speedup is physically impossible) 8-reader qps must stay
///      >= 0.4x of 1-reader qps — snapshot serving must not collapse under
///      contention;
///   3. the timed phase must actually prune: across all reader
///      configurations, pruned_queries and blocks_skipped must both be
///      nonzero (live publishes must not silently push every query onto the
///      exhaustive fallback);
///   4. with --baseline <json>, 1- and 8-reader qps must stay above half the
///      recorded baseline (scripts/check.sh wires this to
///      bench/baselines/mixed_workload.json).
/// Usage: mixed_workload [--quick] [--baseline <file>]

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/data_store.hpp"
#include "search/ranker.hpp"
#include "text/porter_stemmer.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

using namespace planetp;
using namespace planetp::index;
using planetp::search::ScoredDoc;

namespace {

double wall_now_s() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e9;
}

// ---------------------------------------------------------------------------
// Synthetic corpus (same shape as index_throughput: Zipf popularity over a
// generated vocabulary).
// ---------------------------------------------------------------------------

std::vector<std::string> make_vocabulary(std::size_t size, Rng& rng) {
  static const char* const kSuffixes[] = {"", "", "", "s", "ing", "ed", "ation", "ly"};
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::string w;
    const std::size_t stem_len = 4 + rng.below(6);
    for (std::size_t c = 0; c < stem_len; ++c) {
      w.push_back(static_cast<char>('a' + rng.below(26)));
    }
    w += kSuffixes[rng.below(sizeof(kSuffixes) / sizeof(kSuffixes[0]))];
    vocab.push_back(std::move(w));
  }
  return vocab;
}

std::vector<std::string> make_corpus(std::size_t docs, const std::vector<std::string>& vocab,
                                     const ZipfSampler& zipf, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(docs);
  for (std::size_t d = 0; d < docs; ++d) {
    const std::size_t words = 30 + rng.below(70);
    std::string text;
    text.reserve(words * 10);
    for (std::size_t w = 0; w < words; ++w) {
      text += vocab[zipf.sample(rng) - 1];
      text.push_back(' ');
    }
    out.push_back(wrap_text_as_xml("doc" + std::to_string(d), text));
  }
  return out;
}

/// Pre-stemmed query term lists (rankers expect analyzed terms).
std::vector<std::vector<std::string>> make_queries(std::size_t count,
                                                   const std::vector<std::string>& vocab,
                                                   const ZipfSampler& zipf, Rng& rng) {
  std::vector<std::vector<std::string>> out;
  out.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const std::size_t n = 2 + rng.below(3);
    for (std::size_t t = 0; t < n; ++t) {
      std::string term = vocab[zipf.sample(rng) - 1];
      text::porter_stem(term);
      terms.push_back(std::move(term));
    }
    out.push_back(std::move(terms));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Identity phase: oracle replay of the writer's op-log, every epoch checked.
// ---------------------------------------------------------------------------

bool rankings_identical(const std::vector<ScoredDoc>& a, const std::vector<ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc ||
        std::bit_cast<std::uint64_t>(a[i].score) != std::bit_cast<std::uint64_t>(b[i].score)) {
      return false;
    }
  }
  return true;
}

/// Publish/remove ops against `store` with 8 reader threads live, replaying
/// every op into a sequential oracle and ranking the published epoch against
/// it. Returns the number of mismatched epochs (0 = contract holds).
std::size_t identity_phase(std::size_t num_docs, const std::vector<std::string>& corpus,
                           const std::vector<std::vector<std::string>>& queries) {
  EpochConfig cfg;  // background merges on, small enough to fold many times in-run
  cfg.merge_min_docs = 128;
  cfg.merge_tombstone_threshold = 16;
  DataStore store(1, {}, {}, cfg);
  DataStore oracle(1);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 8; ++r) {
    readers.emplace_back([&store, &queries, &done, r] {
      Rng rng(0xAB5EED00ULL + r);
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = store.snapshot();
        const auto& q = queries[rng.below(queries.size())];
        (void)search::SnapshotRanker(*snap).top_k(q, 10);
      }
    });
  }

  Rng rng(0x1DE47171ULL);
  std::size_t mismatches = 0;
  std::vector<std::uint32_t> live;
  std::uint64_t epochs = 0;
  for (std::size_t i = 0; i < num_docs; ++i) {
    const std::string& xml = corpus[i % corpus.size()];
    const DocumentId id = store.publish(std::string(xml));
    oracle.publish_as(id.local, std::string(xml));
    live.push_back(id.local);
    ++epochs;
    if (i % 8 == 7) {
      const std::size_t pick = rng.below(live.size());
      const std::uint32_t victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      store.unpublish(DocumentId{1, victim});
      oracle.unpublish(DocumentId{1, victim});
      ++epochs;
    }
    // Rank the epoch just published against the oracle — the oracle *is* the
    // "sequential single-threaded store over the same documents".
    const auto snap = store.snapshot();
    const auto& q = queries[i % queries.size()];
    if (!rankings_identical(search::SnapshotRanker(*snap).top_k(q, 10),
                            search::TfIdfRanker(oracle.index()).top_k(q, 10))) {
      ++mismatches;
      std::fprintf(stderr, "  epoch %llu diverged from the sequential oracle\n",
                   static_cast<unsigned long long>(snap->epoch()));
    }
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  store.epochs().wait_for_merges();

  const EpochStats stats = store.epochs().stats();
  std::printf(
      "identity phase: %llu epochs checked against the oracle under 8 live readers — %zu "
      "mismatches (%llu coalesces, %llu merges)\n",
      static_cast<unsigned long long>(epochs), mismatches,
      static_cast<unsigned long long>(stats.coalesces),
      static_cast<unsigned long long>(stats.merges_completed));
  return mismatches;
}

// ---------------------------------------------------------------------------
// Timed phase: N readers + 1 live writer.
// ---------------------------------------------------------------------------

struct MixedResult {
  std::size_t readers = 0;
  double wall_s = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t epochs = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  search::PruneStats prune;  ///< aggregated across the reader threads

  double qps() const { return wall_s > 0.0 ? static_cast<double>(queries) / wall_s : 0.0; }
  double eps() const { return wall_s > 0.0 ? static_cast<double>(epochs) / wall_s : 0.0; }
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t at = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[at];
}

MixedResult run_mixed(std::size_t num_readers, double seconds,
                      const std::vector<std::string>& corpus,
                      const std::vector<std::vector<std::string>>& queries) {
  EpochConfig cfg;
  cfg.merge_min_docs = 256;
  cfg.merge_tombstone_threshold = 64;
  DataStore store(1, {}, {}, cfg);
  // Warm store: a base worth of documents before the clock starts. Sized
  // past the ranker's kMinPrunedDocs floor so the merged base qualifies for
  // the pruned scan — the point of the timed phase is the pruned reader
  // path racing live publishes, not the exhaustive fallback.
  for (std::size_t i = 0; i < 1400; ++i) store.publish(std::string(corpus[i % corpus.size()]));
  store.epochs().wait_for_merges();

  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(num_readers);
  std::vector<std::uint64_t> counts(num_readers, 0);
  std::vector<search::PruneStats> reader_stats(num_readers);

  const std::uint64_t epochs0 = store.epochs().stats().epochs_published;
  const double t0 = wall_now_s();

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xFEED0000ULL + r);
      std::vector<double>& lat = latencies[r];
      lat.reserve(1 << 16);
      search::PruneStats& ps = reader_stats[r];
      while (!done.load(std::memory_order_relaxed)) {
        const auto& q = queries[rng.below(queries.size())];
        const double s = wall_now_s();
        const auto snap = store.snapshot();
        const auto top = search::SnapshotRanker(*snap).top_k(q, 10, &ps);
        lat.push_back((wall_now_s() - s) * 1e6);
        (void)top;
        ++counts[r];
      }
    });
  }

  // The live writer: publish continuously, removing an old document every
  // few publishes to keep the store bounded and tombstones flowing.
  std::thread writer([&] {
    Rng rng(0x57A7E000ULL);
    std::vector<std::uint32_t> live;
    for (const DocumentId d : store.documents()) live.push_back(d.local);
    std::size_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const DocumentId id = store.publish(std::string(corpus[i % corpus.size()]));
      live.push_back(id.local);
      if (live.size() > 900) {
        const std::size_t pick = rng.below(live.size());
        store.unpublish(DocumentId{1, live[pick]});
        live[pick] = live.back();
        live.pop_back();
      }
      ++i;
    }
  });

  while (wall_now_s() - t0 < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  writer.join();

  MixedResult out;
  out.readers = num_readers;
  out.wall_s = wall_now_s() - t0;
  out.epochs = store.epochs().stats().epochs_published - epochs0;
  std::vector<double> all;
  for (std::size_t r = 0; r < num_readers; ++r) {
    out.queries += counts[r];
    out.prune += reader_stats[r];
    all.insert(all.end(), latencies[r].begin(), latencies[r].end());
  }
  std::sort(all.begin(), all.end());
  out.p50_us = percentile(all, 0.50);
  out.p99_us = percentile(all, 0.99);
  std::printf(
      "  %zu reader%s + 1 writer: %8.0f qps   p50 %7.1f us   p99 %8.1f us   %6.0f epochs/s   "
      "(%llu pruned, %llu fallbacks, %llu blocks skipped)\n",
      num_readers, num_readers == 1 ? " " : "s", out.qps(), out.p50_us, out.p99_us, out.eps(),
      static_cast<unsigned long long>(out.prune.pruned_queries),
      static_cast<unsigned long long>(out.prune.prune_fallbacks),
      static_cast<unsigned long long>(out.prune.blocks_skipped));
  return out;
}

/// Minimal key lookup in the baseline JSON: finds "key" and parses the
/// number after the following ':'.
double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  Rng rng(20260808);
  const std::size_t vocab_size = 8000;
  const std::vector<std::string> vocab = make_vocabulary(vocab_size, rng);
  const ZipfSampler zipf(vocab_size, 1.05);
  const std::vector<std::string> corpus = make_corpus(1200, vocab, zipf, rng);
  const auto queries = make_queries(400, vocab, zipf, rng);

  const std::size_t identity_docs = quick ? 300 : 800;
  const std::size_t identity_mismatches = identity_phase(identity_docs, corpus, queries);

  const double window_s = quick ? 0.4 : 1.2;
  std::printf("timed phase (%.1f s per configuration):\n", window_s);
  std::vector<MixedResult> results;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    results.push_back(run_mixed(n, window_s, corpus, queries));
  }
  const MixedResult& r1 = results.front();
  const MixedResult& r8 = results.back();
  const double scaling = r1.qps() > 0.0 ? r8.qps() / r1.qps() : 0.0;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Hardware-adaptive scaling gate: parallel speedup needs parallel
  // hardware. With one core the readers timeslice it, so the gate degrades
  // to an anti-collapse check (same policy as index_throughput's pooled
  // publish, which reports worker count for the same reason).
  double required = 0.4;
  const char* regime = "single core: anti-collapse only";
  if (hw >= 8) {
    required = 3.0;
    regime = ">=8 hardware threads: full 3x gate";
  } else if (hw >= 2) {
    required = 0.4 * static_cast<double>(hw);
    regime = "2-7 hardware threads: 0.4x per thread";
  }
  std::printf("scaling 1 -> 8 readers: %.2fx (hw threads %u, %s, need >= %.2fx)\n", scaling, hw,
              regime, required);

  std::ostringstream os;
  os << "{\n  \"bench\": \"mixed_workload\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"hardware_threads\": " << hw
     << ",\n  \"identity_epochs_checked\": " << (identity_docs + identity_docs / 8)
     << ",\n  \"identity_mismatches\": " << identity_mismatches << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixedResult& r = results[i];
    os << "    {\"readers\": " << r.readers << ", \"wall_s\": " << r.wall_s
       << ", \"queries\": " << r.queries << ", \"qps\": " << r.qps()
       << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
       << ", \"epochs\": " << r.epochs << ", \"epochs_per_sec\": " << r.eps()
       << ", \"pruned_queries\": " << r.prune.pruned_queries
       << ", \"prune_fallbacks\": " << r.prune.prune_fallbacks
       << ", \"blocks_skipped\": " << r.prune.blocks_skipped << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (const MixedResult& r : results) {
    os << "  \"reader_qps_" << r.readers << "\": " << r.qps() << ",\n";
  }
  search::PruneStats prune_total;
  for (const MixedResult& r : results) prune_total += r.prune;
  os << "  \"pruned_queries_total\": " << prune_total.pruned_queries
     << ",\n  \"blocks_skipped_total\": " << prune_total.blocks_skipped << ",\n";
  os << "  \"writer_epochs_per_sec_8\": " << r8.eps() << ",\n  \"scaling_1_to_8\": " << scaling
     << "\n}\n";

  std::ofstream("BENCH_mixed_workload.json") << os.str();
  std::printf("wrote BENCH_mixed_workload.json\n");

  int rc = 0;
  if (identity_mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu epochs ranked differently from the sequential oracle\n",
                 identity_mismatches);
    rc = 1;
  }
  if (scaling < required) {
    std::fprintf(stderr, "FAIL: 1 -> 8 reader scaling %.2fx below the %.2fx gate (%s)\n",
                 scaling, required, regime);
    rc = 1;
  }
  if (prune_total.pruned_queries == 0 || prune_total.blocks_skipped == 0) {
    std::fprintf(stderr,
                 "FAIL: timed-phase readers never pruned (%llu pruned queries, %llu blocks "
                 "skipped) — every query fell back to the exhaustive scan\n",
                 static_cast<unsigned long long>(prune_total.pruned_queries),
                 static_cast<unsigned long long>(prune_total.blocks_skipped));
    rc = 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    const struct {
      const char* what;
      const char* key;
      double measured;
    } checks[] = {
        {"1-reader qps", "reader_qps_1", r1.qps()},
        {"8-reader qps", "reader_qps_8", r8.qps()},
    };
    for (const auto& c : checks) {
      const double recorded = parse_key(baseline, c.key);
      if (recorded <= 0.0) continue;
      if (c.measured < recorded / 2.0) {
        std::fprintf(stderr, "FAIL: %s regressed: %.0f vs baseline %.0f (>2x drop)\n", c.what,
                     c.measured, recorded);
        rc = 1;
      } else {
        std::printf("baseline check %s: %.0f vs recorded %.0f — ok\n", c.what, c.measured,
                    recorded);
      }
    }
  }
  return rc;
}
