#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file xml.hpp
/// Minimal XML document model and parser. PlanetP's unit of storage is an
/// XML document (§2): text content is indexed, and XPointer/href links to
/// external files are followed for indexing when the type is known. This
/// parser supports the subset needed for that: elements, attributes,
/// character data, CDATA, comments, and self-closing tags. It is not a
/// validating parser.

namespace planetp::xml {

struct Element {
  std::string tag;
  std::map<std::string, std::string> attributes;
  std::string text;  ///< concatenated character data directly inside this element
  std::vector<std::unique_ptr<Element>> children;

  /// First child with the given tag, or nullptr.
  const Element* child(std::string_view tag_name) const;

  /// Attribute value, or empty string when absent.
  std::string_view attr(std::string_view name) const;

  /// All text in this subtree, children included, space-joined.
  std::string all_text() const;
};

/// Parse error with byte offset for diagnostics.
struct ParseError {
  std::string message;
  std::size_t offset = 0;
};

/// Parse a full document; returns the root element or throws
/// std::runtime_error with position info on malformed input.
std::unique_ptr<Element> parse(std::string_view input);

/// Escape &, <, >, ", ' for embedding text in XML.
std::string escape(std::string_view text);

/// Serialize an element tree back to XML text (used by snippets and tests).
std::string serialize(const Element& root);

}  // namespace planetp::xml
