#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/community.hpp"

/// \file scenarios.hpp
/// The §7.2 experiments, packaged as reusable drivers so the bench binaries
/// stay thin and the integration tests can validate the same code paths.

namespace planetp::sim {

/// How per-peer access bandwidths are assigned.
enum class BandwidthProfile {
  kLan,   ///< every peer at 45 Mb/s
  kDsl,   ///< every peer at 512 Kb/s
  kMix,   ///< Saroiu et al. mixture (see sample_mix_bandwidth)
};

const char* to_string(BandwidthProfile p);

/// Assign a bandwidth for peer creation under \p profile.
double profile_bandwidth(BandwidthProfile profile, Rng& rng);

// ---------------------------------------------------------------------------
// Figure 2: propagate one Bloom filter update through a stable community
// ---------------------------------------------------------------------------

struct PropagationOptions {
  std::size_t community_size = 1000;
  BandwidthProfile profile = BandwidthProfile::kDsl;
  Duration gossip_interval = 30 * kSecond;  ///< DSL-10/30/60 sweeps this
  bool rumoring = true;                     ///< false = pure anti-entropy (LAN-AE)
  bool partial_ae = true;
  std::uint32_t new_keys = 1000;            ///< the paper's 1000-key diff
  std::uint32_t base_keys = 1000;           ///< keys each peer already shares
  Duration warmup = 5 * kMinute;            ///< settle the converged community
  Duration timeout = 4 * kHour;
  std::uint64_t seed = 42;
  // Ablation knobs (defaults = the paper's constants).
  int stop_count = 2;                  ///< Demers' n: consecutive known before retiring
  std::size_t partial_ae_window = 10;  ///< m: piggybacked recent rumor ids
  int anti_entropy_every = 10;         ///< AE cadence among rumoring rounds
};

struct PropagationResult {
  double propagation_seconds = 0.0;  ///< time to reach every online peer
  std::uint64_t total_bytes = 0;     ///< all traffic during propagation
  std::uint64_t event_bytes = 0;     ///< rumor/ack/pull traffic only (Fig 2b's
                                     ///< "volume to propagate"); for the pure
                                     ///< anti-entropy baseline propagation IS
                                     ///< the summary traffic, so use total.
  double per_peer_bandwidth_bps = 0; ///< avg event bytes/s per peer (Fig 2c)
  bool converged = false;
};

PropagationResult run_propagation(const PropagationOptions& opts);

// ---------------------------------------------------------------------------
// Figure 3: m new members join an established community simultaneously
// ---------------------------------------------------------------------------

struct JoinOptions {
  std::size_t existing_members = 1000;
  std::size_t joiners = 100;
  BandwidthProfile profile = BandwidthProfile::kLan;
  std::uint32_t keys_per_peer = 20'000;  ///< "each peer was set to share 20,000 keys"
  Duration warmup = 5 * kMinute;
  Duration timeout = 12 * kHour;
  Duration poll = 10 * kSecond;  ///< consistency check cadence
  std::uint64_t seed = 42;
};

struct JoinResult {
  double consistency_seconds = 0.0;  ///< until all views are consistent again
  std::uint64_t total_bytes = 0;
  bool converged = false;
};

JoinResult run_join(const JoinOptions& opts);

// ---------------------------------------------------------------------------
// Figure 4(a): Poisson arrivals into a stable community — rumor interference
// ---------------------------------------------------------------------------

struct ArrivalOptions {
  std::size_t stable_members = 1000;
  std::size_t arrivals = 100;
  Duration mean_interarrival = 90 * kSecond;
  BandwidthProfile profile = BandwidthProfile::kLan;
  bool partial_ae = true;  ///< false = the paper's LAN-NPA ablation
  std::uint32_t keys_per_peer = 1000;
  Duration warmup = 5 * kMinute;
  Duration drain = 2 * kHour;  ///< time after last arrival to finish converging
  std::uint64_t seed = 42;
};

struct CdfResult {
  /// Sorted (convergence seconds, cumulative fraction) series.
  std::vector<std::pair<double, double>> cdf;
  std::size_t events = 0;
  std::size_t converged = 0;
  double mean_seconds = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

CdfResult run_arrivals(const ArrivalOptions& opts);

// ---------------------------------------------------------------------------
// Figures 4(b,c) and 5: dynamic community with churn
// ---------------------------------------------------------------------------

struct DynamicOptions {
  std::size_t members = 1000;
  double always_on_fraction = 0.4;
  Duration mean_online = 60 * kMinute;
  Duration mean_offline = 140 * kMinute;
  double rejoin_with_keys_prob = 0.05;
  std::uint32_t new_keys_on_rejoin = 1000;
  std::uint32_t base_keys = 1000;
  BandwidthProfile profile = BandwidthProfile::kLan;
  bool bandwidth_aware = false;  ///< §7.2's two-class algorithm (used for MIX)
  Duration warmup = 10 * kMinute;
  Duration duration = 4 * kHour;  ///< measured window after warmup
  Duration drain = kHour;  ///< extra time for window-end events to converge
  std::uint64_t seed = 42;
};

struct DynamicResult {
  CdfResult all;        ///< convergence over all online peers, all events
  CdfResult fast_only;  ///< MIX-F: fast-origin events, fast peers must learn
  CdfResult slow_only;  ///< MIX-S: slow-origin events, fast peers must learn
  std::vector<std::pair<double, std::uint64_t>> bandwidth_series;  ///< Fig 4c
  std::uint64_t total_bytes = 0;
};

DynamicResult run_dynamic(const DynamicOptions& opts);

/// Summarize a tracker's samples as a CDF result.
CdfResult summarize(const ConvergenceTracker& tracker, std::size_t cdf_points = 100);

}  // namespace planetp::sim
