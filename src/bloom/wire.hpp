#pragma once

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "util/byte_buffer.hpp"
#include "util/golomb.hpp"

/// \file wire.hpp
/// Wire encoding of Bloom filters and filter diffs. §7.1: filters are
/// compressed with Golomb-coded run lengths, "which outperforms gzip in our
/// specific context"; §7.2: updates are sent as diffs so the cost scales
/// with the number of new terms, not the filter size.

namespace planetp::bloom {

/// Serialize a full filter (geometry header + Golomb-compressed bits).
void encode_filter(ByteWriter& out, const BloomFilter& filter);

/// Inverse of encode_filter.
BloomFilter decode_filter(ByteReader& in);

/// Serialized byte size of a filter without materializing the message.
std::size_t encoded_filter_size(const BloomFilter& filter);

/// Serialize an XOR diff (bit-vector of changed positions, compressed).
void encode_diff(ByteWriter& out, const BitVector& diff);

/// Inverse of encode_diff.
BitVector decode_diff(ByteReader& in);

/// Serialized byte size of a diff.
std::size_t encoded_diff_size(const BitVector& diff);

/// Decode a filter from its complete encode_filter byte string.
BloomFilter decode_filter_bytes(std::span<const std::uint8_t> wire);

/// Apply an encode_diff byte string to an encode_filter byte string entirely
/// in the Golomb gap domain (positions merged with XOR semantics, result
/// re-encoded) — no 400k-bit vector is ever materialized. Byte-identical to
/// decode_filter -> BloomFilter::apply_diff -> encode_filter, which is what
/// keeps at-rest compressed directory records exactly equal to a decoded
/// oracle. Throws on geometry mismatch or corrupt streams.
std::vector<std::uint8_t> merge_diff_wire(std::span<const std::uint8_t> filter_wire,
                                          std::span<const std::uint8_t> diff_wire);

/// The sorted bit positions an encode_diff byte string flips, decoded
/// straight from the gap stream in O(changed bits) — the basis for surgical
/// candidate-cache fixes without materializing the diff as a bit vector.
std::vector<std::uint64_t> diff_positions(std::span<const std::uint8_t> diff_wire);

}  // namespace planetp::bloom
