#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace planetp {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ResultsAreCorrectPerTask) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    // Destructor joins workers; queued tasks may or may not all run before
    // shutdown is signalled, but the process must not hang or crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace planetp
