#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"
#include "search/evaluation.hpp"
#include "search/experiment.hpp"
#include "search/ipf.hpp"
#include "search/ranker.hpp"
#include "search/vector_model.hpp"

namespace planetp::search {
namespace {

using index::DocumentId;
using index::InvertedIndex;
using Freqs = std::unordered_map<std::string, std::uint32_t>;

TEST(VectorModel, IdfFormula) {
  // IDF_t = log(1 + N/f_t)
  EXPECT_DOUBLE_EQ(idf(100, 10), std::log(11.0));
  EXPECT_DOUBLE_EQ(idf(100, 100), std::log(2.0));
  EXPECT_EQ(idf(100, 0), 0.0);
}

TEST(VectorModel, IpfFormula) {
  EXPECT_DOUBLE_EQ(ipf(400, 4), std::log(101.0));
  EXPECT_EQ(ipf(400, 0), 0.0);
}

TEST(VectorModel, DocWeight) {
  EXPECT_DOUBLE_EQ(doc_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(doc_weight(10), 1.0 + std::log(10.0));
  EXPECT_EQ(doc_weight(0), 0.0);
}

TEST(VectorModel, RareTermsWeighMore) {
  EXPECT_GT(idf(1000, 5), idf(1000, 500));
  EXPECT_GT(ipf(1000, 5), ipf(1000, 500));
}

TEST(Ranker, ScoreMatchesHandComputation) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"apple", 4}, {"pear", 1}});  // |D| = 5
  idx.add_document({0, 2}, Freqs{{"apple", 1}, {"plum", 3}});  // |D| = 4

  const std::unordered_map<std::string, double> weights = {{"apple", 2.0}};
  const auto scored = score_documents(idx, weights);
  ASSERT_EQ(scored.size(), 2u);

  const double s1 = (1.0 + std::log(4.0)) * 2.0 / std::sqrt(5.0);
  const double s2 = 1.0 * 2.0 / std::sqrt(4.0);
  EXPECT_EQ(scored[0].doc, (DocumentId{0, 1}));
  EXPECT_NEAR(scored[0].score, s1, 1e-12);
  EXPECT_NEAR(scored[1].score, s2, 1e-12);
}

TEST(Ranker, MultiTermAccumulates) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}, {"b", 1}});  // matches both
  idx.add_document({0, 2}, Freqs{{"a", 1}, {"c", 1}});  // matches one
  const auto scored =
      score_documents(idx, {{"a", 1.0}, {"b", 1.0}});
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].doc, (DocumentId{0, 1}));
  EXPECT_GT(scored[0].score, scored[1].score);
}

TEST(Ranker, ZeroWeightTermsIgnored) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"common", 1}});
  const auto scored = score_documents(idx, {{"common", 0.0}});
  EXPECT_TRUE(scored.empty());
}

TEST(Ranker, TfIdfTopKOrdersByRelevance) {
  InvertedIndex idx;
  // "rare" appears in one doc, "common" in all: querying both should rank
  // the rare-containing doc first.
  idx.add_document({0, 1}, Freqs{{"rare", 2}, {"common", 1}});
  idx.add_document({0, 2}, Freqs{{"common", 2}});
  idx.add_document({0, 3}, Freqs{{"common", 1}});

  TfIdfRanker ranker(idx);
  const auto top = ranker.top_k({"rare", "common"}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].doc, (DocumentId{0, 1}));
}

TEST(Ranker, TopKTieBreaksByAscendingDocId) {
  // Byte-identical documents score exactly equal; the bounded heap must
  // break the tie by ascending DocumentId, same as the full-sort path.
  InvertedIndex idx;
  for (std::uint32_t d : {7u, 1u, 5u}) idx.add_document({0, d}, Freqs{{"t", 2}});
  TfIdfRanker ranker(idx);
  const auto top = ranker.top_k({"t"}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].doc, (DocumentId{0, 1}));
  EXPECT_EQ(top[1].doc, (DocumentId{0, 5}));
  EXPECT_EQ(top[0].score, top[1].score);  // genuinely tied, not approximately
}

TEST(Ranker, TopKHeapIsByteIdenticalToSortPath) {
  // Property: top_k == score_documents(idf_weights) + truncate_top_k, with
  // EXACT score equality (same FP accumulation order) and pinned tie-breaks.
  // Duplicate-document clusters force genuine score ties.
  Rng rng(1234);
  InvertedIndex idx;
  std::uint32_t next = 0;
  for (int cluster = 0; cluster < 40; ++cluster) {
    Freqs freqs;
    const std::size_t nterms = 2 + rng.below(6);
    for (std::size_t t = 0; t < nterms; ++t) {
      freqs["q" + std::to_string(rng.below(12))] =
          static_cast<std::uint32_t>(1 + rng.below(4));
    }
    const std::uint64_t copies = 1 + rng.below(4);
    for (std::uint64_t c = 0; c < copies; ++c) {
      idx.add_document({next % 5, next}, freqs);
      ++next;
    }
  }

  TfIdfRanker ranker(idx);
  const std::vector<std::string> query = {"q3", "q0", "q7", "q0", "q11"};
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{25}, std::size_t{10000}}) {
    const auto heap_path = ranker.top_k(query, k);
    auto sort_path = score_documents(idx, ranker.idf_weights(query));
    truncate_top_k(sort_path, k);
    ASSERT_EQ(heap_path.size(), sort_path.size()) << "k=" << k;
    for (std::size_t i = 0; i < heap_path.size(); ++i) {
      EXPECT_EQ(heap_path[i].doc, sort_path[i].doc) << "k=" << k << " rank " << i;
      EXPECT_EQ(heap_path[i].score, sort_path[i].score) << "k=" << k << " rank " << i;
    }
  }
}

TEST(Ipf, TableCountsPeersWithTerm) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter f1(params), f2(params), f3(params);
  f1.insert("gossip");
  f2.insert("gossip");
  f2.insert("bloom");
  f3.insert("chord");

  const std::vector<PeerFilter> filters = {{1, &f1}, {2, &f2}, {3, &f3}};
  const IpfTable table({"gossip", "bloom", "nowhere"}, filters);
  EXPECT_EQ(table.peers_with("gossip").size(), 2u);
  EXPECT_EQ(table.peers_with("bloom").size(), 1u);
  EXPECT_TRUE(table.peers_with("nowhere").empty());
  EXPECT_DOUBLE_EQ(table.weight("gossip"), ipf(3, 2));
  EXPECT_DOUBLE_EQ(table.weight("bloom"), ipf(3, 1));
  EXPECT_EQ(table.weight("nowhere"), 0.0);
}

TEST(RankPeers, Equation3Ordering) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter both(params), one(params), none(params);
  both.insert("x");
  both.insert("y");
  one.insert("x");
  none.insert("z");

  const std::vector<PeerFilter> filters = {{1, &both}, {2, &one}, {3, &none}};
  const IpfTable table({"x", "y"}, filters);
  const auto ranked = rank_peers(table);
  // Peer 3 has no query term: omitted. Peer 1 holds both terms: first.
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].peer, 1u);
  EXPECT_EQ(ranked[1].peer, 2u);
  EXPECT_GT(ranked[0].rank, ranked[1].rank);
}

TEST(StoppingHeuristic, Equation4Values) {
  StoppingHeuristic h;
  // p = floor(2 + N/300) + 2*floor(k/50)
  EXPECT_EQ(h.patience(0, 10), 2u);
  EXPECT_EQ(h.patience(300, 10), 3u);
  EXPECT_EQ(h.patience(400, 20), 3u);
  EXPECT_EQ(h.patience(400, 50), 5u);
  EXPECT_EQ(h.patience(400, 100), 7u);
  EXPECT_EQ(h.patience(3000, 500), 32u);
}

TEST(DistributedSearch, SinglePeerEqualsLocalRanking) {
  // Degenerate community: TFxIPF over one peer must return exactly that
  // peer's ranked documents.
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"alpha", 3}});
  idx.add_document({0, 2}, Freqs{{"alpha", 1}, {"beta", 1}});
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("alpha");
  filter.insert("beta");

  const std::vector<PeerFilter> views = {{0, &filter}};
  DistributedSearchOptions opts;
  opts.k = 10;
  const auto result = tfipf_search(
      {"alpha"}, views,
      [&](std::uint32_t, const std::unordered_map<std::string, double>& w) {
        return score_documents(idx, w);
      },
      opts);
  ASSERT_EQ(result.docs.size(), 2u);
  EXPECT_EQ(result.contacted.size(), 1u);
  EXPECT_EQ(result.docs[0].doc, (DocumentId{0, 1}));
}

TEST(DistributedSearch, ContactsPeersInRankOrder) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter strong(params), weak(params);
  strong.insert("q1");
  strong.insert("q2");
  weak.insert("q1");
  const std::vector<PeerFilter> views = {{5, &weak}, {9, &strong}};

  std::vector<std::uint32_t> order;
  DistributedSearchOptions opts;
  opts.k = 5;
  tfipf_search(
      {"q1", "q2"}, views,
      [&](std::uint32_t peer, const auto&) {
        order.push_back(peer);
        return std::vector<ScoredDoc>{};
      },
      opts);
  ASSERT_GE(order.size(), 1u);
  EXPECT_EQ(order[0], 9u);  // both-terms peer ranked first
}

TEST(DistributedSearch, StopsAfterNonContributingStreak) {
  // 30 candidate peers all claim the term, but only the first returns
  // documents; the adaptive heuristic must stop long before 30 contacts.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("term");
  std::vector<PeerFilter> views;
  views.reserve(30);
  for (std::uint32_t i = 0; i < 30; ++i) views.push_back({i, &filter});

  std::size_t contacts = 0;
  DistributedSearchOptions opts;
  opts.k = 5;
  const auto result = tfipf_search(
      {"term"}, views,
      [&](std::uint32_t peer, const auto& w) {
        ++contacts;
        std::vector<ScoredDoc> docs;
        if (peer == 0) {
          for (std::uint32_t d = 0; d < 5; ++d) docs.push_back({{0, d}, 1.0});
        }
        (void)w;
        return docs;
      },
      opts);
  const std::size_t patience = opts.stopping.patience(views.size(), opts.k);
  EXPECT_LE(contacts, 1 + patience + 1);
  EXPECT_EQ(result.docs.size(), 5u);
}

TEST(DistributedSearch, GroupContactIsEquivalentButBatched) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 10; ++i) views.push_back({i, &filter});

  auto contact = [&](std::uint32_t peer, const auto&) {
    std::vector<ScoredDoc> docs;
    docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
    return docs;
  };
  DistributedSearchOptions seq;
  seq.k = 3;
  DistributedSearchOptions par = seq;
  par.group_size = 4;
  const auto r1 = tfipf_search({"t"}, views, contact, seq);
  const auto r2 = tfipf_search({"t"}, views, contact, par);
  ASSERT_EQ(r1.docs.size(), r2.docs.size());
  for (std::size_t i = 0; i < r1.docs.size(); ++i) {
    EXPECT_EQ(r1.docs[i].doc, r2.docs[i].doc);
  }
  // The parallel variant may contact somewhat more peers (the §5.2 tradeoff).
  EXPECT_GE(r2.contacted.size(), r1.contacted.size());
}

TEST(DistributedSearch, MaxPeersCapRespected) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 20; ++i) views.push_back({i, &filter});
  DistributedSearchOptions opts;
  opts.k = 100;  // huge k: would contact everyone
  opts.max_peers = 4;
  const auto r = tfipf_search({"t"}, views,
                              [](std::uint32_t, const auto&) {
                                return std::vector<ScoredDoc>{};
                              },
                              opts);
  EXPECT_LE(r.contacted.size(), 4u);
}

TEST(StoppingHeuristic, Equation4PinnedGrid) {
  // p = floor(2 + N/300) + 2*floor(k/50) pinned over the N x k grid the
  // paper's communities actually span. Any change to the guard logic that
  // shifts these values is a behavioural regression, not a refactor.
  StoppingHeuristic h;
  EXPECT_EQ(h.patience(100, 20), 2u);
  EXPECT_EQ(h.patience(100, 50), 4u);
  EXPECT_EQ(h.patience(100, 100), 6u);
  EXPECT_EQ(h.patience(300, 20), 3u);
  EXPECT_EQ(h.patience(300, 50), 5u);
  EXPECT_EQ(h.patience(300, 100), 7u);
  EXPECT_EQ(h.patience(1000, 20), 5u);
  EXPECT_EQ(h.patience(1000, 50), 7u);
  EXPECT_EQ(h.patience(1000, 100), 9u);
}

TEST(StoppingHeuristic, DegenerateDivisorsAreGuarded) {
  // A zero/negative/non-finite divisor must contribute nothing instead of
  // dividing by zero; huge configurations clamp instead of overflowing the
  // size_t cast.
  StoppingHeuristic h;
  h.community_divisor = 0.0;
  EXPECT_EQ(h.patience(1000, 10), 2u);
  h.community_divisor = -5.0;
  EXPECT_EQ(h.patience(1000, 10), 2u);
  h.community_divisor = std::numeric_limits<double>::infinity();
  EXPECT_EQ(h.patience(1000, 10), 2u);
  h.community_divisor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.patience(1000, 10), 2u);

  h = StoppingHeuristic{};
  h.k_divisor = 0.0;
  EXPECT_EQ(h.patience(0, 500), 2u);
  h.k_divisor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.patience(0, 500), 2u);
  h = StoppingHeuristic{};
  h.k_multiplier = std::numeric_limits<double>::infinity();
  EXPECT_EQ(h.patience(0, 500), 2u);

  h = StoppingHeuristic{};
  h.base = 1e18;  // clamps to the documented ceiling
  EXPECT_EQ(h.patience(0, 10), 1'000'000'000u);
  h.base = -10.0;  // never negative
  EXPECT_EQ(h.patience(0, 10), 0u);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_backoff = 50 * kMillisecond;
  policy.max_backoff = 150 * kMillisecond;
  policy.jitter = 0.0;  // deterministic spine
  Rng rng(1);
  EXPECT_EQ(policy.backoff_before(0, rng), 0);
  EXPECT_EQ(policy.backoff_before(1, rng), 50 * kMillisecond);
  EXPECT_EQ(policy.backoff_before(2, rng), 100 * kMillisecond);
  EXPECT_EQ(policy.backoff_before(3, rng), 150 * kMillisecond);
  EXPECT_EQ(policy.backoff_before(9, rng), 150 * kMillisecond);

  policy.jitter = 0.5;  // jittered value stays inside (backoff/2, backoff]
  for (int i = 0; i < 100; ++i) {
    const Duration b = policy.backoff_before(1, rng);
    EXPECT_GE(b, 25 * kMillisecond);
    EXPECT_LE(b, 50 * kMillisecond);
  }
}

TEST(RankPeers, EqualMassTieBreaksByAscendingId) {
  // Identical filters produce identical eq. 3 mass; the order must still be
  // deterministic (ascending id) regardless of the input view order.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  const std::vector<PeerFilter> shuffled = {{7, &filter}, {3, &filter}, {5, &filter}, {1, &filter}};
  const std::vector<PeerFilter> sorted = {{1, &filter}, {3, &filter}, {5, &filter}, {7, &filter}};

  const auto a = rank_peers(IpfTable({"t"}, shuffled));
  const auto b = rank_peers(IpfTable({"t"}, sorted));
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].peer, b[i].peer);
  }
  EXPECT_EQ(a[0].peer, 1u);
  EXPECT_EQ(a[1].peer, 3u);
  EXPECT_EQ(a[2].peer, 5u);
  EXPECT_EQ(a[3].peer, 7u);
}

TEST(RankPeers, SuspicionDemotesWithoutErasingMass) {
  // Peer 2 holds both query terms (more eq. 3 mass) but carries a SUSPECT
  // level; its effective rank drops below the clean single-term peer while
  // the raw mass stays intact for coverage accounting.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter both(params), one(params);
  both.insert("x");
  both.insert("y");
  one.insert("x");
  const std::vector<PeerFilter> views = {{1, &one, 0}, {2, &both, 2}};
  const auto ranked = rank_peers(IpfTable({"x", "y"}, views));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].peer, 1u);  // clean peer promoted ahead of the suspect
  EXPECT_EQ(ranked[1].peer, 2u);
  EXPECT_GT(ranked[1].rank, ranked[0].rank);  // raw mass unchanged
  EXPECT_LT(ranked[1].effective_rank(), ranked[0].effective_rank());
}

TEST(DistributedSearch, AllPeersFailingYieldsEmptyZeroCoverageResult) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 6; ++i) views.push_back({i, &filter});

  DistributedSearchOptions opts;
  opts.k = 5;
  const auto r = tfipf_search(
      {"t"}, views,
      [](std::uint32_t, const auto&) {
        return PeerSearchResult::failure(ContactStatus::kUnreachable);
      },
      opts);
  EXPECT_TRUE(r.docs.empty());
  EXPECT_EQ(r.contacted.size(), 6u);  // substitution walks the whole ranking
  EXPECT_EQ(r.failed_peers, 6u);
  EXPECT_EQ(r.substituted_peers, 5u);  // the last failure had no replacement
  EXPECT_EQ(r.retries, 0u);            // unreachable is not retried in-query
  EXPECT_DOUBLE_EQ(r.coverage, 0.0);
  EXPECT_FALSE(r.deadline_exceeded);
  ASSERT_EQ(r.outcomes.size(), 6u);
  for (const auto& o : r.outcomes) {
    EXPECT_EQ(o.status, ContactStatus::kUnreachable);
    EXPECT_EQ(o.attempts, 1u);
  }
}

TEST(DistributedSearch, TopRankedTimeoutIsRetriedThenSubstituted) {
  // The strongest candidate never answers: after its retry budget it must be
  // substituted by the next-ranked peer so the search still returns results.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter strong(params), weak(params);
  strong.insert("q1");
  strong.insert("q2");
  weak.insert("q1");
  const std::vector<PeerFilter> views = {{5, &weak}, {9, &strong}};

  DistributedSearchOptions opts;
  opts.k = 5;
  opts.retry.max_attempts = 2;
  const auto r = tfipf_search(
      {"q1", "q2"}, views,
      [](std::uint32_t peer, const auto&) {
        if (peer == 9) return PeerSearchResult::failure(ContactStatus::kTimeout);
        std::vector<ScoredDoc> docs;
        docs.push_back({{peer, 0}, 1.0});
        return PeerSearchResult::ok(std::move(docs));
      },
      opts);
  ASSERT_EQ(r.contacted.size(), 2u);
  EXPECT_EQ(r.contacted[0], 9u);  // ranked first, attempted first
  EXPECT_EQ(r.contacted[1], 5u);  // substituted in
  ASSERT_EQ(r.docs.size(), 1u);
  EXPECT_EQ(r.docs[0].doc.peer, 5u);
  EXPECT_EQ(r.failed_peers, 1u);
  EXPECT_EQ(r.substituted_peers, 1u);
  EXPECT_EQ(r.retries, 1u);  // max_attempts = 2 => one retry
  ASSERT_GE(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].peer, 9u);
  EXPECT_EQ(r.outcomes[0].status, ContactStatus::kTimeout);
  EXPECT_EQ(r.outcomes[0].attempts, 2u);
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_GT(r.coverage, 0.0);
}

TEST(DistributedSearch, RetryRecoversFlakyPeer) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  const std::vector<PeerFilter> views = {{1, &filter}};

  int calls = 0;
  DistributedSearchOptions opts;
  opts.k = 5;
  opts.retry.max_attempts = 3;
  const auto r = tfipf_search(
      {"t"}, views,
      [&](std::uint32_t, const auto&) {
        if (++calls == 1) return PeerSearchResult::failure(ContactStatus::kError);
        std::vector<ScoredDoc> docs;
        docs.push_back({{1, 0}, 1.0});
        return PeerSearchResult::ok(std::move(docs));
      },
      opts);
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(r.docs.size(), 1u);
  EXPECT_EQ(r.failed_peers, 0u);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);  // the peer did answer in the end
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].attempts, 2u);
  EXPECT_EQ(r.outcomes[0].status, ContactStatus::kOk);
}

TEST(DistributedSearch, SlowContactHedgesNextCandidate) {
  // Equal-mass peers rank 1, 2, 3. Peer 1 answers slowly, which must fire
  // exactly one hedged duplicate at peer 2; peer 3 is then contacted as a
  // regular candidate.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  const std::vector<PeerFilter> views = {{1, &filter}, {2, &filter}, {3, &filter}};

  DistributedSearchOptions opts;
  opts.k = 10;
  opts.hedge_threshold = 10 * kMillisecond;
  const auto r = tfipf_search(
      {"t"}, views,
      [](std::uint32_t peer, const auto&) {
        std::vector<ScoredDoc> docs;
        docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
        const Duration latency = peer == 1 ? 20 * kMillisecond : 0;
        return PeerSearchResult::ok(std::move(docs), latency);
      },
      opts);
  ASSERT_EQ(r.contacted.size(), 3u);
  EXPECT_EQ(r.contacted[0], 1u);
  EXPECT_EQ(r.contacted[1], 2u);  // consumed by the hedge
  EXPECT_EQ(r.contacted[2], 3u);
  EXPECT_EQ(r.hedged_contacts, 1u);
  ASSERT_EQ(r.outcomes.size(), 3u);
  EXPECT_FALSE(r.outcomes[0].hedged);
  EXPECT_TRUE(r.outcomes[1].hedged);
  EXPECT_FALSE(r.outcomes[2].hedged);
  EXPECT_EQ(r.docs.size(), 3u);  // hedged results merge into the answer
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(DistributedSearch, DeadlineStopsSearchAndIsReported) {
  // Every contact charges 50ms of virtual latency against a 120ms deadline:
  // the third contact crosses it and the fourth must never happen.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 5; ++i) views.push_back({i, &filter});

  DistributedSearchOptions opts;
  opts.k = 100;  // large k: only the deadline can stop this search
  opts.deadline = 120 * kMillisecond;
  const auto r = tfipf_search(
      {"t"}, views,
      [](std::uint32_t peer, const auto&) {
        std::vector<ScoredDoc> docs;
        docs.push_back({{peer, 0}, 1.0});
        return PeerSearchResult::ok(std::move(docs), 50 * kMillisecond);
      },
      opts);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_EQ(r.contacted.size(), 3u);
  EXPECT_GE(r.elapsed, opts.deadline);
  EXPECT_EQ(r.docs.size(), 3u);  // partial results are still returned
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(DistributedSearch, FailureKnobsAreInertOnHealthyCommunity) {
  // With an infallible, fast contact function, turning on retry budget,
  // hedging and a deadline must not change the result at all — the
  // compatibility guarantee the refactor promises.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 12; ++i) views.push_back({i, &filter});

  auto contact = [](std::uint32_t peer, const auto&) {
    std::vector<ScoredDoc> docs;
    docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
    return docs;
  };
  DistributedSearchOptions plain;
  plain.k = 4;
  DistributedSearchOptions knobs = plain;
  knobs.retry.max_attempts = 5;
  knobs.deadline = 10 * kSecond;
  knobs.hedge_threshold = 1 * kSecond;  // no contact is that slow
  knobs.seed = 99;

  const auto a = tfipf_search({"t"}, views, contact, plain);
  const auto b = tfipf_search({"t"}, views, contact, knobs);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (std::size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc);
    EXPECT_DOUBLE_EQ(a.docs[i].score, b.docs[i].score);
  }
  EXPECT_EQ(a.contacted, b.contacted);
  EXPECT_EQ(b.retries, 0u);
  EXPECT_EQ(b.hedged_contacts, 0u);
  EXPECT_EQ(b.failed_peers, 0u);
  EXPECT_DOUBLE_EQ(b.coverage, 1.0);
  EXPECT_FALSE(b.deadline_exceeded);
}

TEST(DistributedSearchConcurrent, HedgedSearchesAreThreadSafe) {
  // Several searches run concurrently against shared views with hedging and
  // retries active; the contact function touches shared atomic state. Run
  // under TSan (scripts/check.sh) this pins the documented requirement that
  // tfipf_search only needs re-entrancy from its contact function.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 16; ++i) views.push_back({i, &filter});

  std::atomic<std::uint64_t> calls{0};
  auto contact = [&](std::uint32_t peer, const auto&) {
    const std::uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
    if (peer % 5 == 3 && n % 2 == 0) {
      return PeerSearchResult::failure(ContactStatus::kTimeout);
    }
    std::vector<ScoredDoc> docs;
    docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
    const Duration latency = peer % 4 == 1 ? 20 * kMillisecond : 0;
    return PeerSearchResult::ok(std::move(docs), latency);
  };

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<DistributedSearchResult> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      DistributedSearchOptions opts;
      opts.k = 6;
      opts.retry.max_attempts = 2;
      opts.hedge_threshold = 10 * kMillisecond;
      opts.seed = static_cast<std::uint64_t>(t) + 1;
      results[t] = tfipf_search({"t"}, views, contact, opts);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_GT(calls.load(), 0u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.docs.empty());
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
    EXPECT_EQ(r.candidate_peers, 16u);
  }
}

TEST(DistributedSearchConcurrent, CandidateCacheScanIsThreadSafe) {
  // Searches resolve their IpfTables through one shared CandidateCache while
  // a mutator concurrently replaces filters, applies XOR diffs, touches
  // versions and removes/re-adds peers. Run under TSan (scripts/check.sh)
  // this pins the cache's documented thread-safety: every public method may
  // race with lookup(), and queries stay consistent with the caller's view
  // (whose filters the test owns and keeps alive).
  bloom::BloomParams params{65536, 2};
  std::vector<std::shared_ptr<bloom::BloomFilter>> owned;
  for (std::uint32_t i = 0; i < 16; ++i) {
    auto f = std::make_shared<bloom::BloomFilter>(params);
    f->insert("t");
    f->insert("peer" + std::to_string(i));
    owned.push_back(std::move(f));
  }

  CandidateCacheConfig cfg;
  cfg.max_terms = 8;  // force evictions under contention
  CandidateCache cache(cfg);
  for (std::uint32_t i = 0; i < 16; ++i) cache.update_peer(i, owned[i], 1);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    std::uint64_t version = 1;
    std::uint32_t peer = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (peer % 4) {
        case 0:
          cache.update_peer(peer, owned[(peer + 1) % 16], ++version);
          break;
        case 1: {
          auto base = cache.filter_of(peer);
          const auto at = cache.version_of(peer);
          if (base != nullptr && at.has_value()) {
            bloom::BloomFilter modified = *base;
            modified.insert("delta" + std::to_string(version));
            cache.apply_peer_diff(peer, modified.diff_from(*base), *at, ++version);
          }
          break;
        }
        case 2:
          cache.touch_peer(peer, ++version);
          break;
        default:
          cache.remove_peer(peer);
          cache.update_peer(peer, owned[peer], ++version);
          break;
      }
      peer = (peer + 1) % 16;
    }
  });

  auto contact = [](std::uint32_t peer, const auto&) {
    std::vector<ScoredDoc> docs;
    docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
    return PeerSearchResult::ok(std::move(docs));
  };

  constexpr int kThreads = 4;
  constexpr int kSearches = 40;
  std::vector<std::thread> workers;
  std::vector<DistributedSearchResult> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<PeerFilter> views;
      for (std::uint32_t i = 0; i < 16; ++i) views.push_back({i, owned[i].get()});
      for (int s = 0; s < kSearches; ++s) {
        DistributedSearchOptions opts;
        opts.k = 8;
        opts.seed = static_cast<std::uint64_t>(t) * kSearches + s;
        opts.cache = &cache;
        results[t] = tfipf_search({"t", "peer" + std::to_string(s % 16)}, views,
                                  contact, opts);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  mutator.join();

  // Every view row carries "t", so regardless of interleaving each search
  // must rank all 16 peers and find their documents.
  for (const auto& r : results) {
    EXPECT_EQ(r.candidate_peers, 16u);
    EXPECT_FALSE(r.docs.empty());
  }
  EXPECT_GT(cache.stats().lookups, 0u);
}

TEST(Evaluation, RecallAndPrecision) {
  RelevantSet relevant = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  std::vector<ScoredDoc> presented = {{{0, 1}, 1.0}, {{0, 2}, 0.9}, {{0, 99}, 0.5}};
  EXPECT_DOUBLE_EQ(recall(presented, relevant), 0.5);
  EXPECT_NEAR(precision(presented, relevant), 2.0 / 3.0, 1e-12);
}

TEST(Evaluation, EdgeCases) {
  EXPECT_DOUBLE_EQ(recall({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(precision({}, {{0, 1}}), 1.0);
  EXPECT_DOUBLE_EQ(recall({}, {{0, 1}}), 0.0);
}

TEST(Evaluation, BestPeersGreedyCover) {
  RelevantSet relevant = {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}};
  std::unordered_map<DocumentId, std::uint32_t, index::DocumentIdHash> owner = {
      {{0, 1}, 10}, {{0, 2}, 10}, {{0, 3}, 10},  // peer 10 holds three
      {{0, 4}, 20}, {{0, 5}, 30},
  };
  EXPECT_EQ(best_peers_for_k(relevant, 3, owner), 1u);   // peer 10 suffices
  EXPECT_EQ(best_peers_for_k(relevant, 4, owner), 2u);
  EXPECT_EQ(best_peers_for_k(relevant, 5, owner), 3u);
  EXPECT_EQ(best_peers_for_k(relevant, 100, owner), 3u); // capped at |relevant|
  EXPECT_EQ(best_peers_for_k({}, 5, owner), 0u);
}

}  // namespace
}  // namespace planetp::search
