#include "util/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace planetp {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(BitVector, SetAndTest) {
  BitVector bits(130);  // crosses a word boundary
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
}

TEST(BitVector, ResetClearsBit) {
  BitVector bits(64);
  bits.set(10);
  bits.reset(10);
  EXPECT_FALSE(bits.test(10));
  EXPECT_EQ(bits.count(), 0u);
}

TEST(BitVector, AssignSelectsOperation) {
  BitVector bits(8);
  bits.assign(3, true);
  EXPECT_TRUE(bits.test(3));
  bits.assign(3, false);
  EXPECT_FALSE(bits.test(3));
}

TEST(BitVector, ClearZeroesEverything) {
  BitVector bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  bits.clear();
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_EQ(bits.size(), 200u);
}

TEST(BitVector, BooleanOps) {
  BitVector a(65), b(65);
  a.set(0);
  a.set(64);
  b.set(64);
  b.set(32);

  const BitVector o = a | b;
  EXPECT_TRUE(o.test(0));
  EXPECT_TRUE(o.test(32));
  EXPECT_TRUE(o.test(64));

  const BitVector n = a & b;
  EXPECT_EQ(n.count(), 1u);
  EXPECT_TRUE(n.test(64));

  const BitVector x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(0));
  EXPECT_TRUE(x.test(32));
  EXPECT_FALSE(x.test(64));
}

TEST(BitVector, XorIsInvolution) {
  Rng rng(123);
  BitVector a(500), b(500);
  for (int i = 0; i < 100; ++i) a.set(rng.below(500));
  for (int i = 0; i < 100; ++i) b.set(rng.below(500));
  BitVector c = a;
  c ^= b;
  c ^= b;
  EXPECT_EQ(c, a);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVector, ContainsAll) {
  BitVector super(100), sub(100);
  super.set(1);
  super.set(50);
  super.set(99);
  sub.set(50);
  EXPECT_TRUE(super.contains_all(sub));
  sub.set(2);
  EXPECT_FALSE(super.contains_all(sub));
  // Every vector contains the empty set.
  EXPECT_TRUE(super.contains_all(BitVector(100)));
}

TEST(BitVector, ForEachSetVisitsAscending) {
  BitVector bits(300);
  const std::vector<std::size_t> want = {0, 7, 64, 65, 128, 299};
  for (std::size_t i : want) bits.set(i);
  std::vector<std::size_t> got;
  bits.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVector, ResizeGrowKeepsBits) {
  BitVector bits(10);
  bits.set(3);
  bits.resize(100);
  EXPECT_TRUE(bits.test(3));
  EXPECT_FALSE(bits.test(99));
  EXPECT_EQ(bits.count(), 1u);
}

TEST(BitVector, ResizeShrinkDropsTail) {
  BitVector bits(100);
  bits.set(3);
  bits.set(99);
  bits.resize(10);
  EXPECT_EQ(bits.count(), 1u);
  EXPECT_TRUE(bits.test(3));
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(64), b(64), c(65);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set(1);
  EXPECT_FALSE(a == b);
}

class BitVectorRandomOps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorRandomOps, CountMatchesReference) {
  const std::size_t nbits = GetParam();
  Rng rng(nbits);
  BitVector bits(nbits);
  std::vector<bool> ref(nbits, false);
  for (std::size_t i = 0; i < nbits; ++i) {
    if (rng.chance(0.3)) {
      bits.set(i);
      ref[i] = true;
    }
  }
  std::size_t expected = 0;
  for (bool b : ref) expected += b;
  EXPECT_EQ(bits.count(), expected);
  for (std::size_t i = 0; i < nbits; ++i) EXPECT_EQ(bits.test(i), ref[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorRandomOps,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000, 4096));

}  // namespace
}  // namespace planetp
