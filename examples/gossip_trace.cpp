/// \file gossip_trace.cpp
/// Watch a rumor spread: simulate a 200-peer DSL community, inject one
/// Bloom-filter update, and print the coverage curve over time together
/// with the traffic split (rumor vs anti-entropy bytes).

#include <cstdio>

#include "sim/community.hpp"

using namespace planetp;
using namespace planetp::sim;

int main() {
  SimConfig cfg;
  cfg.seed = 2026;

  SimCommunity community(cfg);
  constexpr std::size_t kPeers = 200;
  for (std::size_t i = 0; i < kPeers; ++i) {
    community.add_peer({link_speed::kDsl512k, 1000});
  }

  // Count coverage by hand via a tracker-less hook: ask each peer's
  // directory for the event version at sampling points.
  community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  community.run_until(5 * kMinute);
  community.stats().reset();

  const gossip::PeerId origin = 17;
  community.inject_filter_change(origin, 1000);
  const TimePoint injected = community.queue().now();
  std::printf("injected 1000-key filter change at peer %u, t=%.0fs\n", origin,
              to_seconds(injected));
  std::puts("  t(s)  peers-knowing  rumorKB  aeKB");

  std::size_t knowing = 1;
  for (int step = 1; knowing < kPeers && step <= 120; ++step) {
    community.run_until(injected + step * 10 * kSecond);
    knowing = 0;
    for (gossip::PeerId id = 0; id < kPeers; ++id) {
      const auto* r = community.protocol(id).directory().find(origin);
      if (r != nullptr && r->version >= 2) ++knowing;
    }
    std::printf("  %4d  %13zu  %7.1f  %5.1f\n", step * 10, knowing,
                community.stats().rumor_bytes() / 1024.0,
                community.stats().anti_entropy_bytes() / 1024.0);
  }
  std::printf("rumor died out after reaching all %zu peers; total volume %.1f KB\n",
              kPeers, community.stats().total_bytes() / 1024.0);
  return 0;
}
