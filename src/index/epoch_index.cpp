#include "index/epoch_index.hpp"

#include <algorithm>

namespace planetp::index {

const IndexSegment::TermEntry* IndexSegment::find(std::string_view term) const {
  auto it = std::lower_bound(
      terms.begin(), terms.end(), term,
      [](const TermEntry& e, std::string_view t) { return e.term < t; });
  if (it == terms.end() || it->term != term) return nullptr;
  return &*it;
}

std::uint64_t EpochSnapshot::collection_frequency(std::string_view term) const {
  std::uint64_t cf = base_ == nullptr ? 0 : base_->collection_frequency(term);
  for (const auto& seg : segments_) cf += seg->collection_frequency(term);
  if (!dead_cf_.empty()) {
    auto it = dead_cf_.find(term);
    if (it != dead_cf_.end()) cf -= it->second;
  }
  return cf;
}

DocumentId EpochSnapshot::doc_at_slot(std::uint32_t slot) const {
  const std::uint32_t nbase =
      base_ == nullptr ? 0 : static_cast<std::uint32_t>(base_->num_documents());
  if (slot < nbase) return base_->doc_at(slot);
  auto it = std::upper_bound(segment_slot_offsets_.begin(), segment_slot_offsets_.end(), slot);
  const std::size_t s = static_cast<std::size_t>(it - segment_slot_offsets_.begin()) - 1;
  return segments_[s]->docs[slot - segment_slot_offsets_[s]];
}

std::uint32_t EpochSnapshot::doc_length_at_slot(std::uint32_t slot) const {
  const std::uint32_t nbase =
      base_ == nullptr ? 0 : static_cast<std::uint32_t>(base_->num_documents());
  if (slot < nbase) return base_->doc_length_at(slot);
  auto it = std::upper_bound(segment_slot_offsets_.begin(), segment_slot_offsets_.end(), slot);
  const std::size_t s = static_cast<std::size_t>(it - segment_slot_offsets_.begin()) - 1;
  return segments_[s]->doc_lengths[slot - segment_slot_offsets_[s]];
}

/// Everything a base merge reads, captured immutably under the lock so the
/// fold can run without it.
struct EpochIndex::MergeJob {
  std::shared_ptr<const CompressedIndex> base;
  std::uint64_t base_seq = 0;
  std::vector<std::shared_ptr<const IndexSegment>> segments;
  std::vector<std::shared_ptr<const EpochTombstone>> tombstones;
  std::uint64_t cut = 0;  ///< epoch at capture; folds every item with seq <= cut
};

EpochIndex::EpochIndex(EpochConfig config) : config_(config) {
  // Epoch 0: empty but never null, so readers can always load-and-rank.
  publish_snapshot_locked();
}

EpochIndex::~EpochIndex() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  merge_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
}

void EpochIndex::commit_publish(DocumentId doc, const TermDictionary& dict,
                                const TermCounts& counts) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t seq = ++epoch_;

  auto seg = std::make_shared<IndexSegment>();
  // (term, freq) sorted by term string: segment entries support the binary
  // search in IndexSegment::find.
  std::vector<std::pair<std::string_view, std::uint32_t>> tf;
  tf.reserve(counts.terms().size());
  std::uint32_t length = 0;
  for (TermId t : counts.terms()) {
    const std::uint32_t f = counts.count(t);
    tf.emplace_back(dict.term(t), f);
    length += f;
  }
  std::sort(tf.begin(), tf.end());
  seg->docs.push_back(doc);
  seg->doc_lengths.push_back(length);
  seg->doc_seqs.push_back(seq);
  seg->min_seq = seg->max_seq = seq;
  seg->level = 0;
  seg->terms.reserve(tf.size());
  for (const auto& [term, f] : tf) {
    IndexSegment::TermEntry e;
    e.term.assign(term);
    e.dense.push_back(0);
    e.freqs.push_back(f);
    e.collection_freq = f;
    seg->terms.push_back(std::move(e));
  }
  segments_.push_back(std::move(seg));
  ++pending_docs_;
  ++stats_.segments_created;
  ++stats_.epochs_published;

  coalesce_locked();
  publish_snapshot_locked();
  maybe_merge_locked(lock);
}

void EpochIndex::commit_remove(DocumentId doc, std::uint32_t doc_length,
                               std::vector<std::pair<std::string, std::uint32_t>> term_freqs) {
  std::unique_lock<std::mutex> lock(mu_);
  auto tomb = std::make_shared<EpochTombstone>();
  tomb->seq = ++epoch_;
  tomb->doc = doc;
  tomb->doc_length = doc_length;
  tomb->term_freqs = std::move(term_freqs);
  tombstones_.push_back(std::move(tomb));
  ++stats_.tombstones_created;
  ++stats_.epochs_published;

  publish_snapshot_locked();
  maybe_merge_locked(lock);
}

void EpochIndex::publish_snapshot_locked() {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch_ = epoch_;
  snap->base_ = base_;
  snap->base_seq_ = base_seq_;
  snap->segments_ = segments_;
  snap->tombstones_ = tombstones_;

  std::size_t slots = base_ == nullptr ? 0 : base_->num_documents();
  snap->segment_slot_offsets_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    snap->segment_slot_offsets_.push_back(static_cast<std::uint32_t>(slots));
    slots += seg->docs.size();
  }
  snap->slot_count_ = slots;
  // Every pending tombstone kills exactly one publish occurrence still held
  // by base_ or segments_, so live documents count exactly.
  snap->num_docs_ = base_docs_ + pending_docs_ - tombstones_.size();
  for (const auto& t : tombstones_) {
    auto [it, inserted] = snap->latest_tombstone_.try_emplace(t->doc, t->seq);
    if (!inserted && it->second < t->seq) it->second = t->seq;
    for (const auto& [term, f] : t->term_freqs) {
      auto [cit, cins] = snap->dead_cf_.try_emplace(std::string(term), f);
      if (!cins) cit->second += f;
    }
  }
  // The snapshot is fully built before the critical section; the mutex both
  // publishes its contents to readers and totally orders epochs, so each
  // reader observes a non-decreasing epoch sequence.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

void EpochIndex::coalesce_locked() {
  if (config_.coalesce_fanin < 2) return;
  const std::size_t fanin = config_.coalesce_fanin;
  while (segments_.size() >= fanin) {
    const std::size_t n = segments_.size();
    const std::uint32_t level = segments_[n - 1]->level;
    bool eligible = true;
    for (std::size_t i = n - fanin; i < n; ++i) {
      // Same tier only (geometric growth), and never a segment a pending
      // merge has captured — the fold drops exactly the captured prefix.
      if (segments_[i]->level != level ||
          (merge_cut_ != 0 && segments_[i]->min_seq <= merge_cut_)) {
        eligible = false;
        break;
      }
    }
    if (!eligible) return;

    // Pure concatenation: per-document commit sequences ride along, so
    // liveness checks (and the collection-frequency arithmetic, which
    // assumes dead postings survive until a base merge) stay exact.
    auto merged = std::make_shared<IndexSegment>();
    merged->level = level + 1;
    merged->min_seq = segments_[n - fanin]->min_seq;
    merged->max_seq = segments_[n - 1]->max_seq;
    std::size_t total_docs = 0;
    for (std::size_t i = n - fanin; i < n; ++i) total_docs += segments_[i]->docs.size();
    merged->docs.reserve(total_docs);
    merged->doc_lengths.reserve(total_docs);
    merged->doc_seqs.reserve(total_docs);
    std::vector<std::uint32_t> doc_offsets;
    doc_offsets.reserve(fanin);
    for (std::size_t i = n - fanin; i < n; ++i) {
      const IndexSegment& s = *segments_[i];
      doc_offsets.push_back(static_cast<std::uint32_t>(merged->docs.size()));
      merged->docs.insert(merged->docs.end(), s.docs.begin(), s.docs.end());
      merged->doc_lengths.insert(merged->doc_lengths.end(), s.doc_lengths.begin(),
                                 s.doc_lengths.end());
      merged->doc_seqs.insert(merged->doc_seqs.end(), s.doc_seqs.begin(), s.doc_seqs.end());
    }

    // K-way merge of the sorted per-segment term lists. Entries are tagged
    // with their group position so concatenated dense ids stay ascending.
    struct Tagged {
      const IndexSegment::TermEntry* entry;
      std::uint32_t group;  ///< position within the coalesced group
    };
    std::vector<std::pair<std::string_view, Tagged>> all;
    for (std::size_t i = n - fanin; i < n; ++i) {
      for (const auto& e : segments_[i]->terms) {
        all.emplace_back(e.term, Tagged{&e, static_cast<std::uint32_t>(i - (n - fanin))});
      }
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second.group < b.second.group;
    });
    for (std::size_t i = 0; i < all.size();) {
      std::size_t j = i;
      while (j < all.size() && all[j].first == all[i].first) ++j;
      IndexSegment::TermEntry e;
      e.term.assign(all[i].first);
      for (std::size_t k = i; k < j; ++k) {
        const Tagged& tag = all[k].second;
        const std::uint32_t offset = doc_offsets[tag.group];
        for (std::size_t p = 0; p < tag.entry->dense.size(); ++p) {
          e.dense.push_back(offset + tag.entry->dense[p]);
          e.freqs.push_back(tag.entry->freqs[p]);
        }
        e.collection_freq += tag.entry->collection_freq;
      }
      merged->terms.push_back(std::move(e));
      i = j;
    }

    segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(n - fanin), segments_.end());
    segments_.push_back(std::move(merged));
    ++stats_.coalesces;
  }
}

void EpochIndex::maybe_merge_locked(std::unique_lock<std::mutex>& lock) {
  if (requested_ != nullptr || merge_inflight_) return;
  const std::size_t doc_threshold = std::max(
      config_.merge_min_docs,
      static_cast<std::size_t>(config_.merge_base_fraction * static_cast<double>(base_docs_)));
  const bool docs_due = pending_docs_ >= doc_threshold && pending_docs_ > 0;
  const bool tombstones_due =
      !tombstones_.empty() && tombstones_.size() >= config_.merge_tombstone_threshold;
  if (!docs_due && !tombstones_due) return;

  auto job = std::make_unique<MergeJob>();
  job->base = base_;
  job->base_seq = base_seq_;
  job->segments = segments_;
  job->tombstones = tombstones_;
  job->cut = epoch_;
  merge_cut_ = job->cut;

  if (config_.background_merge) {
    requested_ = std::move(job);
    if (!merge_thread_.joinable()) {
      merge_thread_ = std::thread([this] { merge_worker_(); });
    }
    merge_cv_.notify_one();
    return;
  }

  // Inline mode: deterministic for tests that pin counters. The lock stays
  // held — readers never contend for it, and the writer is the caller.
  merge_inflight_ = true;
  std::shared_ptr<const CompressedIndex> merged = run_merge_(*job);
  install_merge_locked(*job, std::move(merged));
  merge_inflight_ = false;
  idle_cv_.notify_all();
  (void)lock;
}

std::shared_ptr<const CompressedIndex> EpochIndex::run_merge_(const MergeJob& job) const {
  // Liveness at the cut, judged only by captured tombstones: a tombstone
  // with seq > cut stays pending and keeps killing the (then merged-as-live)
  // occurrence through the snapshot's exact sequence comparison.
  std::unordered_map<DocumentId, std::uint64_t, DocumentIdHash> latest;
  for (const auto& t : job.tombstones) {
    auto [it, inserted] = latest.try_emplace(t->doc, t->seq);
    if (!inserted && it->second < t->seq) it->second = t->seq;
  }
  auto dead = [&latest](DocumentId doc, std::uint64_t seq) {
    auto it = latest.find(doc);
    return it != latest.end() && it->second > seq;
  };

  // Live documents, renumbered densely in ascending DocumentId order — the
  // exact layout CompressedIndex::build would produce.
  std::vector<std::pair<DocumentId, std::uint32_t>> live;
  if (job.base != nullptr) {
    for (std::uint32_t d = 0; d < job.base->num_documents(); ++d) {
      const DocumentId doc = job.base->doc_at(d);
      if (!dead(doc, job.base_seq)) live.emplace_back(doc, job.base->doc_length_at(d));
    }
  }
  for (const auto& seg : job.segments) {
    for (std::size_t i = 0; i < seg->docs.size(); ++i) {
      if (!dead(seg->docs[i], seg->doc_seqs[i])) {
        live.emplace_back(seg->docs[i], seg->doc_lengths[i]);
      }
    }
  }
  std::sort(live.begin(), live.end());
  std::vector<DocumentId> docs;
  std::vector<std::uint32_t> lengths;
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> dense_of;
  docs.reserve(live.size());
  lengths.reserve(live.size());
  dense_of.reserve(live.size());
  for (const auto& [doc, length] : live) {
    dense_of.emplace(doc, static_cast<std::uint32_t>(docs.size()));
    docs.push_back(doc);
    lengths.push_back(length);
  }

  CompressedIndex::Builder builder(std::move(docs), std::move(lengths));

  std::vector<std::string> terms;
  if (job.base != nullptr) {
    job.base->for_each_term([&terms](std::string_view t) { terms.emplace_back(t); });
  }
  for (const auto& seg : job.segments) {
    for (const auto& e : seg->terms) terms.push_back(e.term);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::vector<std::pair<std::uint32_t, std::uint32_t>> postings;
  for (const std::string& term : terms) {
    postings.clear();
    if (job.base != nullptr) {
      for (auto c = job.base->postings(term); !c.done(); c.next()) {
        if (!dead(c.doc(), job.base_seq)) postings.emplace_back(dense_of.at(c.doc()), c.term_freq());
      }
    }
    for (const auto& seg : job.segments) {
      const IndexSegment::TermEntry* e = seg->find(term);
      if (e == nullptr) continue;
      for (std::size_t i = 0; i < e->dense.size(); ++i) {
        const std::uint32_t d = e->dense[i];
        if (!dead(seg->docs[d], seg->doc_seqs[d])) {
          postings.emplace_back(dense_of.at(seg->docs[d]), e->freqs[i]);
        }
      }
    }
    std::sort(postings.begin(), postings.end());
    builder.add_term(term, postings);
  }
  return std::make_shared<const CompressedIndex>(builder.take());
}

void EpochIndex::install_merge_locked(const MergeJob& job,
                                      std::shared_ptr<const CompressedIndex> merged) {
  base_ = std::move(merged);
  base_seq_ = job.cut;
  base_docs_ = base_->num_documents();

  // The captured items are exactly the prefixes with seq <= cut: commits
  // after capture have larger sequences and coalescing never crossed the
  // cut.
  std::size_t folded_segments = 0;
  while (folded_segments < segments_.size() && segments_[folded_segments]->max_seq <= job.cut) {
    ++folded_segments;
  }
  segments_.erase(segments_.begin(), segments_.begin() + static_cast<std::ptrdiff_t>(folded_segments));
  std::size_t folded_tombstones = 0;
  while (folded_tombstones < tombstones_.size() && tombstones_[folded_tombstones]->seq <= job.cut) {
    ++folded_tombstones;
  }
  tombstones_.erase(tombstones_.begin(),
                    tombstones_.begin() + static_cast<std::ptrdiff_t>(folded_tombstones));
  pending_docs_ = 0;
  for (const auto& seg : segments_) pending_docs_ += seg->docs.size();
  merge_cut_ = 0;

  ++stats_.merges_completed;
  stats_.segments_merged += job.segments.size();
  stats_.tombstones_merged += job.tombstones.size();
  stats_.docs_merged += base_docs_;

  publish_snapshot_locked();
}

void EpochIndex::merge_worker_() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    merge_cv_.wait(lock, [this] { return stop_ || requested_ != nullptr; });
    if (stop_) return;
    std::unique_ptr<MergeJob> job = std::move(requested_);
    merge_inflight_ = true;
    lock.unlock();
    std::shared_ptr<const CompressedIndex> merged = run_merge_(*job);
    lock.lock();
    install_merge_locked(*job, std::move(merged));
    merge_inflight_ = false;
    idle_cv_.notify_all();
    // More pending may have piled up behind the fold; re-evaluate while we
    // still hold the lock so wait_for_merges observes a settled state.
    maybe_merge_locked(lock);
  }
}

void EpochIndex::wait_for_merges() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return requested_ == nullptr && !merge_inflight_; });
}

void EpochIndex::compact() {
  std::unique_lock<std::mutex> lock(mu_);
  // Let any scheduled/in-flight merge settle first so the job below
  // captures the complete pending state.
  idle_cv_.wait(lock, [this] { return requested_ == nullptr && !merge_inflight_; });
  if (segments_.empty() && tombstones_.empty()) return;  // base already holds everything

  MergeJob job;
  job.base = base_;
  job.base_seq = base_seq_;
  job.segments = segments_;
  job.tombstones = tombstones_;
  job.cut = epoch_;
  merge_cut_ = job.cut;

  // Inline under mu_ (the writer-side lock readers never take), same as the
  // deterministic inline-merge mode: when compact() returns, the published
  // snapshot's base holds every committed document.
  merge_inflight_ = true;
  std::shared_ptr<const CompressedIndex> merged = run_merge_(job);
  install_merge_locked(job, std::move(merged));
  merge_inflight_ = false;
  idle_cv_.notify_all();
}

EpochStats EpochIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace planetp::index
