#include "search/candidate_cache.hpp"

#include <algorithm>
#include <future>
#include <unordered_set>

#include "bloom/wire.hpp"

namespace planetp::search {

namespace {

/// The filter-major probe kernel. For each filter, all terms are tested
/// back-to-back: the hot loop touches one filter's word array at a time
/// (instead of term-major re-walks over the whole population), hashes are
/// precomputed, bit reads are word-aligned, and the next term's words are
/// prefetched while the current term is tested — the probe positions are
/// uniform over a 400k-bit vector, so without prefetch nearly every read
/// misses cache. out[t] collects the peer ids whose filter contains term t,
/// in filter order.
void probe_shard(const std::pair<std::uint32_t, const bloom::BloomFilter*>* filters,
                 std::size_t count, const HashPair* terms, std::size_t nterms,
                 std::vector<std::vector<std::uint32_t>>* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const bloom::BloomFilter* f = filters[i].second;
    if (f == nullptr) continue;
    const BitVector::Word* words = f->bits().words().data();
    const std::uint64_t nbits = f->bit_size();
    const std::uint32_t k = f->num_hashes();
    if (nbits == 0) continue;
    auto prefetch = [&](std::size_t t) {
      for (std::uint32_t j = 0; j < k; ++j) {
        __builtin_prefetch(&words[(terms[t].ith(j) % nbits) >> 6]);
      }
    };
    if (nterms > 0) prefetch(0);
    for (std::size_t t = 0; t < nterms; ++t) {
      if (t + 1 < nterms) prefetch(t + 1);
      bool all = true;
      for (std::uint32_t j = 0; j < k; ++j) {
        const std::uint64_t pos = terms[t].ith(j) % nbits;
        if (((words[pos >> 6] >> (pos & 63)) & 1u) == 0) {
          all = false;
          break;
        }
      }
      if (all) (*out)[t].push_back(filters[i].first);
    }
  }
}

/// Per-query membership test over the view's cache-backed peers. Dense byte
/// map for the common small-id case, hash set otherwise.
class ViewSet {
 public:
  explicit ViewSet(std::uint32_t max_id) {
    static constexpr std::uint32_t kDenseLimit = 1u << 22;  // 4 MB byte map cap
    dense_ok_ = max_id < kDenseLimit;
    if (dense_ok_) dense_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  }

  /// Marks \p id; returns false if it was already marked (duplicate view row).
  bool insert(std::uint32_t id) {
    if (dense_ok_) {
      if (dense_[id] != 0) return false;
      dense_[id] = 1;
      return true;
    }
    return sparse_.insert(id).second;
  }

  bool contains(std::uint32_t id) const {
    if (dense_ok_) return id < dense_.size() && dense_[id] != 0;
    return sparse_.contains(id);
  }

 private:
  bool dense_ok_ = true;
  std::vector<std::uint8_t> dense_;
  std::unordered_set<std::uint32_t> sparse_;
};

/// Heap bytes a decoded filter's bit vector occupies.
std::size_t decoded_cost(const bloom::BloomFilter& f) {
  return f.bits().words().size() * sizeof(BitVector::Word);
}

}  // namespace

/// The backed/extra split of one view at one population epoch. Callers hand
/// lookup() the same directory view query after query; re-deriving the split
/// costs a hash lookup per view row, so it is memoized and reused while the
/// rows (peer, filter pointer) and the epoch are unchanged. Immutable once
/// published; lookups pin their snapshot with a shared_ptr so a concurrent
/// query with a different view can replace the memo underneath them.
struct CandidateCache::ViewMemo {
  explicit ViewMemo(std::uint32_t max_id) : backed(max_id) {}

  std::uint64_t epoch = 0;
  /// Every view row verbatim, for the equality check on reuse.
  std::vector<std::pair<std::uint32_t, const bloom::BloomFilter*>> rows;
  /// Rows not backed by the cache (unknown peer, foreign pointer, duplicate).
  std::vector<std::pair<std::uint32_t, const bloom::BloomFilter*>> extra;
  ViewSet backed;
};

CandidateCache::CandidateCache(CandidateCacheConfig config) : config_(config) {}

CandidateCache::~CandidateCache() = default;

void CandidateCache::update_peer(std::uint32_t peer,
                                 std::shared_ptr<const bloom::BloomFilter> filter,
                                 std::uint64_t version) {
  if (filter == nullptr) {
    remove_peer(peer);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  PeerState& st = peers_[peer];
  detach_residency(st);
  st.wire.clear();  // decoded-only mode: this filter is the durable copy
  st.filter = std::move(filter);
  st.version = version;
  decoded_bytes_ += decoded_cost(*st.filter);
  ++epoch_;
  // Keep every cached term warm: fix this peer's membership in place.
  reprobe_entries(peer, st.filter.get());
  stats_.full_reprobes += entries_.size();
  evict_decoded_to_bound();
}

void CandidateCache::update_peer_wire(std::uint32_t peer, std::vector<std::uint8_t> wire,
                                      std::uint64_t version) {
  if (wire.empty()) {
    remove_peer(peer);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  PeerState& st = peers_[peer];
  detach_residency(st);
  st.wire = std::move(wire);
  st.version = version;
  ++epoch_;
  // At rest until asked for: entries must not claim membership for a peer
  // that is not decoded-resident (lookup would otherwise rank it from a
  // filter nobody holds).
  reprobe_entries(peer, nullptr);
  stats_.full_reprobes += entries_.size();
}

bool CandidateCache::apply_peer_diff(std::uint32_t peer, const BitVector& diff,
                                     std::uint64_t base_version, std::uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.filter == nullptr || !it->second.wire.empty() ||
      it->second.version != base_version || it->second.filter->bit_size() != diff.size()) {
    return false;
  }
  // Copy-on-write: in-flight queries may still reference the old filter.
  auto updated = std::make_shared<bloom::BloomFilter>(*it->second.filter);
  updated->apply_diff(diff);
  const std::uint64_t nbits = diff.size();
  // Surgical pass: only a term whose bit positions the diff touches can have
  // changed membership at this peer; everything else stays warm untouched.
  for (auto& [term, e] : entries_) {
    bool touched = false;
    for (std::uint32_t j = 0; j < updated->num_hashes() && !touched; ++j) {
      touched = diff.test(static_cast<std::size_t>(e.hp.ith(j) % nbits));
    }
    if (!touched) {
      ++stats_.surgical_keeps;
      continue;
    }
    ++stats_.surgical_fixes;
    const bool contains = updated->contains(e.hp);
    auto pos = std::lower_bound(e.peers.begin(), e.peers.end(), peer);
    const bool present = pos != e.peers.end() && *pos == peer;
    if (contains && !present) {
      e.peers.insert(pos, peer);
    } else if (!contains && present) {
      e.peers.erase(pos);
    }
  }
  it->second.filter = std::move(updated);
  it->second.version = new_version;
  ++epoch_;
  return true;
}

bool CandidateCache::apply_peer_diff_wire(std::uint32_t peer,
                                          std::span<const std::uint8_t> diff_wire,
                                          std::uint64_t base_version,
                                          std::uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.wire.empty() || it->second.version != base_version) {
    return false;
  }
  PeerState& st = it->second;
  std::vector<std::uint8_t> merged;
  std::vector<std::uint64_t> flips;
  try {
    // Gap-domain merge: the at-rest bytes absorb the diff without ever
    // materializing a bit vector (byte-identical to decode/XOR/re-encode).
    merged = bloom::merge_diff_wire(st.wire, diff_wire);
    if (st.filter != nullptr) flips = bloom::diff_positions(diff_wire);
  } catch (const std::exception&) {
    return false;  // geometry mismatch or corrupt stream: full update needed
  }
  if (st.filter != nullptr) {
    // Mirror the flips onto a private decoded copy (in-flight queries may
    // still reference the old one) and surgically fix only the cached terms
    // whose bit positions the diff touches.
    auto updated = std::make_shared<bloom::BloomFilter>(*st.filter);
    BitVector& bits = updated->mutable_bits();
    for (std::uint64_t pos : flips) {
      if (pos >= bits.size()) continue;
      if (bits.test(static_cast<std::size_t>(pos))) {
        bits.reset(static_cast<std::size_t>(pos));
      } else {
        bits.set(static_cast<std::size_t>(pos));
      }
    }
    const std::uint64_t nbits = updated->bit_size();
    for (auto& [term, e] : entries_) {
      bool touched = false;
      for (std::uint32_t j = 0; j < updated->num_hashes() && !touched; ++j) {
        touched = std::binary_search(flips.begin(), flips.end(), e.hp.ith(j) % nbits);
      }
      if (!touched) {
        ++stats_.surgical_keeps;
        continue;
      }
      ++stats_.surgical_fixes;
      const bool contains = updated->contains(e.hp);
      auto pos = std::lower_bound(e.peers.begin(), e.peers.end(), peer);
      const bool present = pos != e.peers.end() && *pos == peer;
      if (contains && !present) {
        e.peers.insert(pos, peer);
      } else if (!contains && present) {
        e.peers.erase(pos);
      }
    }
    st.filter = std::move(updated);  // same geometry: decoded_bytes_ unchanged
  }
  st.wire = std::move(merged);
  st.version = new_version;
  ++epoch_;
  return true;
}

bool CandidateCache::touch_peer(std::uint32_t peer, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  // Content unchanged: entries stay valid, no epoch bump needed.
  it->second.version = version;
  return true;
}

void CandidateCache::remove_peer(std::uint32_t peer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  detach_residency(it->second);
  peers_.erase(it);
  ++epoch_;
  reprobe_entries(peer, nullptr);
}

void CandidateCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.clear();
  entries_.clear();
  lru_.clear();
  decoded_lru_.clear();
  decoded_bytes_ = 0;
  memo_.reset();
  ++epoch_;
}

std::optional<std::uint64_t> CandidateCache::version_of(std::uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return std::nullopt;
  return it->second.version;
}

std::shared_ptr<const bloom::BloomFilter> CandidateCache::filter_of(std::uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.filter;
}

const bloom::BloomFilter* CandidateCache::filter_ptr(std::uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.filter.get();
}

std::shared_ptr<const bloom::BloomFilter> CandidateCache::resident_filter(std::uint32_t peer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return nullptr;
  PeerState& st = it->second;
  if (st.filter != nullptr) {
    if (st.evictable) decoded_lru_.splice(decoded_lru_.begin(), decoded_lru_, st.lru);
    return st.filter;
  }
  if (st.wire.empty()) return nullptr;
  std::shared_ptr<const bloom::BloomFilter> decoded;
  try {
    decoded = std::make_shared<bloom::BloomFilter>(bloom::decode_filter_bytes(st.wire));
  } catch (const std::exception&) {
    return nullptr;  // corrupt wire; the caller falls back to a full update
  }
  st.filter = decoded;
  decoded_bytes_ += decoded_cost(*st.filter);
  decoded_lru_.push_front(peer);
  st.lru = decoded_lru_.begin();
  st.evictable = true;
  ++stats_.wire_decodes;
  // Residency transition is a population change: cached entries gain this
  // peer, and in-flight miss probes must not install results computed
  // against the pre-decode population.
  ++epoch_;
  reprobe_entries(peer, st.filter.get());
  evict_decoded_to_bound();
  return decoded;
}

IpfTable CandidateCache::lookup(const std::vector<std::string>& terms,
                                const std::vector<PeerFilter>& view) {
  return lookup(HashedTerms::from(terms), view);
}

IpfTable CandidateCache::lookup(const HashedTerms& q, const std::vector<PeerFilter>& view) {
  IpfTable table;
  table.terms_ = q.terms;
  table.num_peers_ = view.size();
  for (const PeerFilter& pf : view) {
    if (pf.suspicion != 0) table.suspicion_[pf.peer] = pf.suspicion;
  }

  const std::size_t nterms = q.terms.size();
  std::vector<std::vector<std::uint32_t>> cand(nterms);

  std::shared_ptr<const ViewMemo> memo;
  std::vector<std::size_t> miss_idx;
  std::vector<HashPair> miss_hashes;
  std::vector<std::pair<std::uint32_t, const bloom::BloomFilter*>> population;
  std::vector<std::shared_ptr<const bloom::BloomFilter>> keepalive;
  std::uint64_t epoch_snapshot = 0;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;

    // Classify view rows: rows whose filter pointer is the cache's stored
    // filter resolve through the candidate entries; anything else (unknown
    // peer, stale/foreign pointer, duplicated id) falls back to direct
    // probes — correctness never depends on the caller keeping the cache
    // synchronized. The split is memoized: callers rebuild the same view
    // query after query, so while the rows and the population epoch are
    // unchanged the per-row hash lookups are skipped entirely.
    bool reuse = memo_ != nullptr && memo_->epoch == epoch_ && memo_->rows.size() == view.size();
    for (std::size_t i = 0; reuse && i < view.size(); ++i) {
      reuse = memo_->rows[i].first == view[i].peer && memo_->rows[i].second == view[i].filter;
    }
    if (reuse) {
      ++stats_.view_memo_hits;
      memo = memo_;
    } else {
      std::uint32_t max_id = 0;
      for (const PeerFilter& pf : view) {
        if (pf.filter != nullptr) max_id = std::max(max_id, pf.peer);
      }
      auto fresh = std::make_shared<ViewMemo>(max_id);
      fresh->epoch = epoch_;
      fresh->rows.reserve(view.size());
      for (const PeerFilter& pf : view) {
        fresh->rows.emplace_back(pf.peer, pf.filter);
        if (pf.filter == nullptr) continue;
        auto it = config_.enabled ? peers_.find(pf.peer) : peers_.end();
        if (it != peers_.end() && it->second.filter.get() == pf.filter &&
            fresh->backed.insert(pf.peer)) {
          continue;
        }
        fresh->extra.emplace_back(pf.peer, pf.filter);
      }
      memo = fresh;
      memo_ = std::move(fresh);
    }
    const ViewSet& backed = memo->backed;

    for (std::size_t t = 0; t < nterms; ++t) {
      auto it = entries_.find(std::string_view(q.terms[t]));
      if (it != entries_.end()) {
        ++stats_.term_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        for (std::uint32_t p : it->second.peers) {
          if (backed.contains(p)) cand[t].push_back(p);
        }
      } else {
        ++stats_.term_misses;
        miss_idx.push_back(t);
        miss_hashes.push_back(q.hashes[t]);
      }
    }

    if (config_.enabled && !miss_idx.empty()) {
      // Snapshot the whole known population (not just the view) so the new
      // entries answer future queries with different views too. The filters
      // are shared_ptr-owned; keepalive pins them across the unlocked probe.
      // Only decoded-resident peers enter the entries (the at-rest ones have
      // no probeable filter); a later decode-in re-probes every entry so the
      // invariant "entries cover exactly the resident population" holds.
      population.reserve(peers_.size());
      keepalive.reserve(peers_.size());
      for (const auto& [id, st] : peers_) {
        if (st.filter == nullptr) continue;
        population.emplace_back(id, st.filter.get());
        keepalive.push_back(st.filter);
      }
      std::sort(population.begin(), population.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      epoch_snapshot = epoch_;
    }
  }

  // Cache misses: one batched filter-major pass over the known population.
  if (!miss_idx.empty()) {
    std::vector<std::vector<std::uint32_t>> miss_results(miss_hashes.size());
    if (!population.empty()) probe_batch(population, miss_hashes, miss_results);

    std::lock_guard<std::mutex> lock(mu_);
    // Only install results when the population did not change underneath the
    // probe; the query answer itself is always consistent with the caller's
    // view (whose filters keepalive pinned).
    const bool install = config_.enabled && epoch_ == epoch_snapshot;
    for (std::size_t m = 0; m < miss_idx.size(); ++m) {
      for (std::uint32_t p : miss_results[m]) {
        if (memo->backed.contains(p)) cand[miss_idx[m]].push_back(p);
      }
      const std::string& term = q.terms[miss_idx[m]];
      if (install && !entries_.contains(std::string_view(term))) {
        lru_.push_front(term);
        TermEntry entry;
        entry.hp = miss_hashes[m];
        entry.peers = std::move(miss_results[m]);
        entry.lru = lru_.begin();
        entries_.emplace(term, std::move(entry));
      }
    }
    if (install) evict_to_bound();
  }

  // Direct probes for the unbacked view rows, all terms, same kernel.
  if (!memo->extra.empty()) {
    std::vector<std::vector<std::uint32_t>> extra_results(nterms);
    probe_batch(memo->extra, q.hashes, extra_results);
    for (std::size_t t = 0; t < nterms; ++t) {
      cand[t].insert(cand[t].end(), extra_results[t].begin(), extra_results[t].end());
    }
  }

  for (std::size_t t = 0; t < nterms; ++t) {
    IpfTable::Entry entry;
    entry.peers = std::move(cand[t]);
    entry.ipf = ipf(table.num_peers_, entry.peers.size());
    table.entries_.emplace(q.terms[t], std::move(entry));
  }
  return table;
}

void CandidateCache::probe_batch(
    const std::vector<std::pair<std::uint32_t, const bloom::BloomFilter*>>& filters,
    const std::vector<HashPair>& terms, std::vector<std::vector<std::uint32_t>>& out) {
  out.assign(terms.size(), {});
  if (filters.empty() || terms.empty()) return;

  ThreadPool* pool = nullptr;
  std::size_t nthreads = 1;
  if (config_.parallel_threshold > 0 && filters.size() >= config_.parallel_threshold) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(config_.max_threads);
    pool = pool_.get();
    nthreads = std::max<std::size_t>(1, pool->size());
    ++stats_.parallel_scans;
  }
  if (pool == nullptr) {
    probe_shard(filters.data(), filters.size(), terms.data(), terms.size(), &out);
    return;
  }

  // Contiguous shards keep each partial result in filter order; merging in
  // shard order reproduces the single-threaded output exactly.
  const std::size_t shards = std::min(nthreads, filters.size());
  const std::size_t chunk = (filters.size() + shards - 1) / shards;
  std::vector<std::vector<std::vector<std::uint32_t>>> partial(
      shards, std::vector<std::vector<std::uint32_t>>(terms.size()));
  std::vector<std::future<void>> pending;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(begin + chunk, filters.size());
    if (begin >= end) break;
    pending.push_back(pool->submit([&filters, &terms, &partial, s, begin, end] {
      probe_shard(filters.data() + begin, end - begin, terms.data(), terms.size(),
                  &partial[s]);
    }));
  }
  for (auto& f : pending) f.get();
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t t = 0; t < terms.size(); ++t) {
      out[t].insert(out[t].end(), partial[s][t].begin(), partial[s][t].end());
    }
  }
}

void CandidateCache::reprobe_entries(std::uint32_t peer, const bloom::BloomFilter* filter) {
  for (auto& [term, e] : entries_) {
    const bool contains = filter != nullptr && filter->contains(e.hp);
    auto pos = std::lower_bound(e.peers.begin(), e.peers.end(), peer);
    const bool present = pos != e.peers.end() && *pos == peer;
    if (contains && !present) {
      e.peers.insert(pos, peer);
    } else if (!contains && present) {
      e.peers.erase(pos);
    }
  }
}

void CandidateCache::evict_to_bound() {
  while (entries_.size() > config_.max_terms && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void CandidateCache::detach_residency(PeerState& st) {
  if (st.filter == nullptr) return;
  decoded_bytes_ -= decoded_cost(*st.filter);
  if (st.evictable) {
    decoded_lru_.erase(st.lru);
    st.evictable = false;
  }
  st.filter.reset();
}

void CandidateCache::evict_decoded_to_bound() {
  if (config_.max_decoded_bytes == 0) return;
  while (decoded_bytes_ > config_.max_decoded_bytes && !decoded_lru_.empty()) {
    const std::uint32_t victim = decoded_lru_.back();
    decoded_lru_.pop_back();
    PeerState& st = peers_.at(victim);
    decoded_bytes_ -= decoded_cost(*st.filter);
    st.filter.reset();  // the wire bytes remain the durable copy
    st.evictable = false;
    reprobe_entries(victim, nullptr);
    ++stats_.decoded_evictions;
    ++epoch_;
  }
}

CandidateCacheStats CandidateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CandidateCache::cached_terms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t CandidateCache::population_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::size_t CandidateCache::known_peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_.size();
}

std::size_t CandidateCache::decoded_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decoded_bytes_;
}

std::size_t CandidateCache::resident_peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, st] : peers_) n += st.filter != nullptr ? 1 : 0;
  return n;
}

}  // namespace planetp::search
