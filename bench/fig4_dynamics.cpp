/// \file fig4_dynamics.cpp
/// Figure 4:
///  (a) CDF of convergence time for 100 Poisson arrivals (mean 90 s apart)
///      into a stable 1000-peer community, with and without the partial
///      anti-entropy piggyback (LAN vs LAN-NPA) — the paper's ablation
///      showing partial AE removes the long variable tail.
///  (b) CDF of convergence in a dynamic 1000-member community (40% always
///      online; 60% cycling 60 min on / 140 min off; 5% of rejoins carry
///      1000 new keys), LAN vs MIX with the bandwidth-aware algorithm.
///  (c) Aggregate gossiping bandwidth over time for (b)'s LAN run.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/scenarios.hpp"

using namespace planetp;
using namespace planetp::sim;

namespace {

void print_cdf(const char* name, const CdfResult& r) {
  std::printf("# cdf %s  (events=%zu converged=%zu mean=%.1fs p50=%.1fs p90=%.1fs "
              "p99=%.1fs)\n",
              name, r.events, r.converged, r.mean_seconds, r.p50, r.p90, r.p99);
  std::printf("%-12s %10s\n", "time(s)", "fraction");
  // Print a sparse CDF: every 5th point keeps the output readable.
  for (std::size_t i = 0; i < r.cdf.size(); i += 5) {
    std::printf("%-12.1f %10.2f\n", r.cdf[i].first, r.cdf[i].second);
  }
  if (!r.cdf.empty()) {
    std::printf("%-12.1f %10.2f\n", r.cdf.back().first, r.cdf.back().second);
  }
  std::puts("");
}

void part_a(bool quick, std::size_t peers) {
  std::puts("== Fig 4(a): Poisson arrivals — partial anti-entropy ablation ==\n");
  for (const bool partial_ae : {true, false}) {
    ArrivalOptions opts;
    opts.stable_members = peers != 0 ? peers : (quick ? 200 : 1000);
    opts.arrivals = quick ? 30 : 100;
    opts.partial_ae = partial_ae;
    opts.seed = 11;
    const CdfResult r = run_arrivals(opts);
    print_cdf(partial_ae ? "LAN (partial AE)" : "LAN-NPA (no partial AE)", r);
  }
}

void part_bc(bool quick, std::size_t peers) {
  std::puts("== Fig 4(b): dynamic community convergence CDF ==\n");
  DynamicOptions lan;
  lan.members = peers != 0 ? peers : (quick ? 200 : 1000);
  lan.duration = quick ? kHour : 4 * kHour;
  lan.seed = 12;
  const DynamicResult lan_result = run_dynamic(lan);
  print_cdf("LAN", lan_result.all);

  DynamicOptions mix = lan;
  mix.profile = BandwidthProfile::kMix;
  mix.bandwidth_aware = true;
  const DynamicResult mix_result = run_dynamic(mix);
  print_cdf("MIX (bandwidth-aware)", mix_result.all);
  print_cdf("MIX fast-origin events, fast peers converge", mix_result.fast_only);

  std::puts("== Fig 4(c): aggregate gossiping bandwidth over time (LAN run) ==\n");
  std::printf("%-12s %14s\n", "time(s)", "bytes/s");
  const auto& series = lan_result.bandwidth_series;
  const double bucket_seconds =
      series.size() > 1 ? series[1].first - series[0].first : 10.0;
  for (std::size_t i = 0; i < series.size(); i += 6) {
    std::printf("%-12.0f %14.0f\n", series[i].first,
                static_cast<double>(series[i].second) / bucket_seconds);
  }
  std::printf("\ntotal volume over the window: %.1f MB\n",
              static_cast<double>(lan_result.total_bytes) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* part = "all";
  std::size_t peers = 0;  // 0 = the figure's published community size
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
    // Override the stable-community size (the shared-base bootstrap makes
    // sizes well beyond the paper's 1000 practical); arrivals/duration keep
    // their quick/full defaults.
    if (std::strcmp(argv[i], "--peers") == 0 && i + 1 < argc) {
      peers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  if (std::strcmp(part, "a") == 0 || std::strcmp(part, "all") == 0) part_a(quick, peers);
  if (std::strcmp(part, "b") == 0 || std::strcmp(part, "c") == 0 ||
      std::strcmp(part, "all") == 0) {
    part_bc(quick, peers);
  }
  return 0;
}
