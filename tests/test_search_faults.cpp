#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "corpus/placement.hpp"
#include "corpus/synthetic.hpp"
#include "search/distributed.hpp"
#include "search/evaluation.hpp"
#include "search/experiment.hpp"
#include "sim/community.hpp"

/// Failure-aware retrieval under injected faults (docs/SEARCH.md): the query
/// RPCs of tfipf_search routed through SimCommunity's FaultInjector, with the
/// recall/coverage guarantees the robustness work promises pinned as tests.

namespace planetp::search {
namespace {

constexpr std::size_t kPeers = 40;
constexpr std::size_t kTopK = 20;

struct Scenario {
  corpus::SynthCollection collection;
  RetrievalSetup setup;

  Scenario() {
    collection = corpus::generate(corpus::preset_tiny());
    corpus::PlacementOptions placement;
    placement.kind = corpus::PlacementKind::kUniform;
    placement.seed = 7;
    setup = distribute_collection(collection, kPeers, placement);
  }

  /// Build a simulated community whose query path injects \p faults.
  std::unique_ptr<sim::SimCommunity> make_sim(sim::FaultPlan faults,
                                              std::uint64_t seed = 11) const {
    sim::SimConfig cfg;
    cfg.seed = seed;
    cfg.faults = std::move(faults);
    auto sim = std::make_unique<sim::SimCommunity>(std::move(cfg));
    for (std::size_t i = 0; i < kPeers; ++i) sim->add_peer({});
    sim->start_converged();
    return sim;
  }

  sim::SimCommunity::LocalEvalFn local_eval() const {
    return [this](gossip::PeerId peer,
                  const std::unordered_map<std::string, double>& weights) {
      return score_documents(setup.peer_indexes[peer], weights);
    };
  }

  /// Fault-free recall of one query (direct in-process contacts).
  double baseline_recall(const corpus::SynthQuery& q) const {
    DistributedSearchOptions opts;
    opts.k = kTopK;
    const auto r = tfipf_search(query_term_strings(q), setup.filter_views(),
                                setup.local_contact(), opts);
    return recall(r.docs, judgment_set(q));
  }
};

TEST(SearchFaults, UniformLossRecallStaysWithinFivePercent) {
  // 20% of all messages silently lost on both legs of every query RPC; the
  // retry budget plus substitution must keep mean recall within 5% of the
  // fault-free run (the headline robustness claim).
  const Scenario s;
  auto sim = s.make_sim(sim::FaultPlan::uniform_drop(0.2));

  double base_sum = 0.0;
  double faulted_sum = 0.0;
  for (const auto& q : s.collection.queries) {
    base_sum += s.baseline_recall(q);

    DistributedSearchOptions opts;
    opts.k = kTopK;
    opts.retry.max_attempts = 4;
    opts.retry.base_backoff = kMillisecond;
    opts.seed = q.id + 1;
    const auto contact = sim->search_contact(0, s.local_eval());
    const auto r = tfipf_search(query_term_strings(q), s.setup.filter_views(),
                                contact, opts);
    sim->note_search(r);
    faulted_sum += recall(r.docs, judgment_set(q));
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
  }
  const std::size_t n = s.collection.queries.size();
  ASSERT_GT(n, 0u);
  const double base_mean = base_sum / static_cast<double>(n);
  const double faulted_mean = faulted_sum / static_cast<double>(n);
  ASSERT_GT(base_mean, 0.0);
  EXPECT_GE(faulted_mean, 0.95 * base_mean)
      << "base=" << base_mean << " faulted=" << faulted_mean;

  // The loss actually happened: RPCs were sent, some failed, retries fired.
  const auto& stats = sim->stats();
  EXPECT_GT(stats.query_rpcs_sent(), 0u);
  EXPECT_GT(stats.query_rpcs_failed(), 0u);
  EXPECT_GT(stats.query_rpcs_retried(), 0u);
}

TEST(SearchFaults, KillingTopRankedPeersMidQueryDegradesGracefully) {
  // Kill the top 10% of each query's eq. 3 ranking *mid-query*: every remote
  // contact costs 10ms of simulated service time, and the kill window opens
  // halfway through the victim prefix — so the first victims answer before
  // dying and the rest silently vanish while the search is underway. The
  // search must still return within its deadline, report coverage < 1.0, and
  // keep recall at >= 90% of the fault-free run via substitution down the
  // ranking.
  constexpr Duration kServiceTime = 10 * kMillisecond;
  const Scenario s;
  const auto views = s.setup.filter_views();

  double base_sum = 0.0;
  double faulted_sum = 0.0;
  std::size_t evaluated = 0;
  for (const auto& q : s.collection.queries) {
    const auto terms = query_term_strings(q);
    const auto ranked = rank_peers(IpfTable(terms, views));
    // Victims: the top tenth of candidates, never the searcher itself (a
    // self-contact bypasses the network and cannot be killed).
    std::vector<gossip::PeerId> victims;
    const std::size_t quota =
        (ranked.size() + 9) / 10;  // ceil(10%), at least 1 when candidates exist
    for (const auto& rp : ranked) {
      if (victims.size() >= quota) break;
      if (rp.peer != 0) victims.push_back(rp.peer);
    }
    if (victims.empty()) continue;

    // Victim j is contacted no earlier than j * kServiceTime, so opening the
    // window at floor(quota/2) * kServiceTime guarantees the later half of
    // the victims (at least the last one) dies before it is reached.
    sim::TimeWindow window;
    window.start = static_cast<TimePoint>(victims.size() / 2) * kServiceTime;
    sim::FaultPlan plan;
    for (gossip::PeerId v : victims) {
      plan.drop(sim::FaultScope::of_peer(v), window, 1.0);
    }
    auto sim = s.make_sim(std::move(plan), /*seed=*/q.id + 101);

    DistributedSearchOptions opts;
    opts.k = kTopK;
    opts.retry.max_attempts = 2;
    opts.retry.base_backoff = kMillisecond;
    opts.deadline = 5 * kSecond;
    opts.seed = q.id + 1;
    const auto inner = sim->search_contact(0, s.local_eval());
    // Charge each remote contact its service time on the simulation clock so
    // the kill window can open while the query is in flight.
    const auto contact = [&](std::uint32_t peer,
                             const std::unordered_map<std::string, double>& w) {
      auto res = inner(peer, w);
      if (peer != 0) {
        sim->queue().run_until(sim->queue().now() + kServiceTime);
        res.latency += kServiceTime;
      }
      return res;
    };
    const auto r = tfipf_search(terms, views, contact, opts);
    sim->note_search(r);

    EXPECT_FALSE(r.deadline_exceeded);
    EXPECT_LE(r.elapsed, opts.deadline);
    EXPECT_GE(r.failed_peers, 1u);  // a top-ranked victim died mid-query
    EXPECT_LT(r.coverage, 1.0);
    EXPECT_GT(r.substituted_peers, 0u);
    EXPECT_GT(sim->stats().query_rpcs_failed(), 0u);

    base_sum += s.baseline_recall(q);
    faulted_sum += recall(r.docs, judgment_set(q));
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0u);
  ASSERT_GT(base_sum, 0.0);
  EXPECT_GE(faulted_sum, 0.9 * base_sum)
      << "base=" << base_sum / evaluated << " faulted=" << faulted_sum / evaluated;
}

/// Hand-built 4-peer community sharing one term: deterministic contact order
/// (equal mass resolves to ascending id, searcher 0 first) for exact counter
/// assertions.
struct TinyCommunity {
  bloom::BloomParams params{65536, 2};
  std::vector<bloom::BloomFilter> filters;
  std::vector<PeerFilter> views;

  TinyCommunity() {
    for (std::uint32_t i = 0; i < 4; ++i) {
      filters.emplace_back(params);
      filters.back().insert("t");
    }
    for (std::uint32_t i = 0; i < 4; ++i) views.push_back({i, &filters[i]});
  }

  static sim::SimCommunity::LocalEvalFn one_doc_each() {
    return [](gossip::PeerId peer, const std::unordered_map<std::string, double>&) {
      std::vector<ScoredDoc> docs;
      docs.push_back({{peer, 0}, 1.0 / (static_cast<double>(peer) + 1.0)});
      return docs;
    };
  }
};

TEST(SearchFaults, CountersTrackSentRetriedAndFailed) {
  const TinyCommunity tiny;
  sim::FaultPlan plan;
  plan.drop(sim::FaultScope::of_peer(1), sim::TimeWindow::always(), 1.0);

  sim::SimConfig cfg;
  cfg.faults = std::move(plan);
  sim::SimCommunity sim(std::move(cfg));
  for (int i = 0; i < 4; ++i) sim.add_peer({});
  sim.start_converged();

  DistributedSearchOptions opts;
  opts.k = 10;
  opts.retry.max_attempts = 3;
  opts.retry.base_backoff = kMillisecond;
  const auto contact = sim.search_contact(0, TinyCommunity::one_doc_each());
  const auto r = tfipf_search({"t"}, tiny.views, contact, opts);
  sim.note_search(r);

  // Contact order 0 (local), 1 (3 failed attempts, substituted), 2, 3.
  EXPECT_EQ(r.contacted, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.failed_peers, 1u);
  EXPECT_EQ(r.substituted_peers, 1u);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_EQ(r.docs.size(), 3u);

  const auto& stats = sim.stats();
  EXPECT_EQ(stats.query_rpcs_sent(), 5u);    // 3 attempts at peer 1, one each at 2 and 3
  EXPECT_EQ(stats.query_rpcs_failed(), 3u);  // every attempt at peer 1
  EXPECT_EQ(stats.query_rpcs_retried(), 2u);
  EXPECT_EQ(stats.query_rpcs_hedged(), 0u);
}

TEST(SearchFaults, CountersTrackHedgedContacts) {
  const TinyCommunity tiny;
  sim::FaultPlan plan;
  plan.delay(sim::FaultScope::of_peer(1), sim::TimeWindow::always(), 20 * kMillisecond);

  sim::SimConfig cfg;
  cfg.faults = std::move(plan);
  sim::SimCommunity sim(std::move(cfg));
  for (int i = 0; i < 4; ++i) sim.add_peer({});
  sim.start_converged();

  DistributedSearchOptions opts;
  opts.k = 10;
  opts.hedge_threshold = 10 * kMillisecond;
  const auto contact = sim.search_contact(0, TinyCommunity::one_doc_each());
  const auto r = tfipf_search({"t"}, tiny.views, contact, opts);
  sim.note_search(r);

  // Peer 1's 40ms round trip (20ms per leg) crosses the hedge threshold, so
  // peer 2 is contacted as a hedge duplicate; peer 3 follows normally.
  EXPECT_EQ(r.contacted, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.hedged_contacts, 1u);
  ASSERT_EQ(r.outcomes.size(), 4u);
  EXPECT_FALSE(r.outcomes[1].hedged);
  EXPECT_EQ(r.outcomes[1].latency, 40 * kMillisecond);
  EXPECT_TRUE(r.outcomes[2].hedged);
  EXPECT_EQ(r.failed_peers, 0u);
  EXPECT_EQ(r.docs.size(), 4u);

  const auto& stats = sim.stats();
  EXPECT_EQ(stats.query_rpcs_sent(), 3u);
  EXPECT_EQ(stats.query_rpcs_failed(), 0u);
  EXPECT_EQ(stats.query_rpcs_hedged(), 1u);
}

TEST(DistributedSearchConcurrent, SearchesShareOneFaultInjector) {
  // Several threads search concurrently, each routing contacts through the
  // same (thread-safe) FaultInjector — the sharing pattern LiveNode uses.
  // Exists to run under TSan via scripts/check.sh.
  const TinyCommunity tiny;
  sim::FaultInjector injector(sim::FaultPlan::uniform_drop(0.3), /*seed=*/5);

  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> contacts{0};
  std::vector<std::thread> workers;
  std::vector<DistributedSearchResult> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto contact = [&](std::uint32_t peer,
                         const std::unordered_map<std::string, double>&)
          -> PeerSearchResult {
        contacts.fetch_add(1, std::memory_order_relaxed);
        const auto decision = injector.decide(100 + static_cast<gossip::PeerId>(t), peer, 0);
        if (decision.drop) return PeerSearchResult::failure(ContactStatus::kTimeout);
        std::vector<ScoredDoc> docs;
        docs.push_back({{peer, 0}, 1.0 / (static_cast<double>(peer) + 1.0)});
        return PeerSearchResult::ok(std::move(docs), decision.extra_delay);
      };
      DistributedSearchOptions opts;
      opts.k = 4;
      opts.retry.max_attempts = 2;
      opts.retry.base_backoff = kMillisecond;
      opts.hedge_threshold = 10 * kMillisecond;
      opts.seed = static_cast<std::uint64_t>(t) + 1;
      results[t] = tfipf_search({"t"}, tiny.views, contact, opts);
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_GT(contacts.load(), 0u);
  EXPECT_GT(injector.counters().dropped, 0u);
  for (const auto& r : results) {
    EXPECT_EQ(r.candidate_peers, 4u);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0);
  }
}

}  // namespace
}  // namespace planetp::search
