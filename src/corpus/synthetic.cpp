#include "corpus/synthetic.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/distributions.hpp"

namespace planetp::corpus {

std::uint32_t SynthDoc::length() const {
  std::uint32_t n = 0;
  for (const auto& [t, f] : terms) n += f;
  return n;
}

std::string SynthCollection::term_string(TermId t) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%06u", t);
  return buf;
}

std::size_t SynthCollection::approx_bytes() const {
  std::size_t tokens = 0;
  for (const SynthDoc& d : docs) tokens += d.length();
  return tokens * 6;  // ~5 chars + separator per token
}

namespace {

/// A topic: characteristic terms, most-characteristic first. Term j of the
/// list is drawn with probability proportional to 1/(j+1) (a mild internal
/// Zipf), so each topic has a few signature terms and a long tail.
struct Topic {
  std::vector<TermId> terms;
};

TermId sample_topic_term(const Topic& topic, Rng& rng) {
  // Inverse-CDF over 1/(j+1) weights via rejection on the harmonic series:
  // cheap approximation — draw u^2-biased index, which concentrates mass on
  // the front of the list similarly to 1/rank.
  const double u = rng.uniform();
  const auto idx = static_cast<std::size_t>(u * u * static_cast<double>(topic.terms.size()));
  return topic.terms[std::min(idx, topic.terms.size() - 1)];
}

}  // namespace

SynthCollection generate(const CollectionSpec& spec) {
  SynthCollection out;
  out.spec = spec;
  Rng rng(spec.seed);

  // --- topics -------------------------------------------------------------
  // Characteristic terms avoid the most popular background ranks so that a
  // topic's signature is actually discriminative (stop-word-like terms make
  // bad query keys, mirroring real collections after stop-word removal).
  const TermId background_top = static_cast<TermId>(
      std::min<std::size_t>(spec.vocab_size / 20 + 1, 2000));
  std::vector<Topic> topics(spec.num_topics);
  for (auto& topic : topics) {
    std::unordered_set<TermId> seen;
    topic.terms.reserve(spec.topic_terms);
    while (topic.terms.size() < spec.topic_terms) {
      const TermId t = background_top +
                       static_cast<TermId>(rng.below(spec.vocab_size - background_top));
      if (seen.insert(t).second) topic.terms.push_back(t);
    }
  }

  // --- documents ------------------------------------------------------------
  ZipfSampler background(spec.vocab_size, spec.zipf_s);
  std::vector<std::vector<std::uint32_t>> docs_by_topic(spec.num_topics);
  out.docs.reserve(spec.num_docs);
  std::unordered_set<TermId> used_terms;

  for (std::size_t d = 0; d < spec.num_docs; ++d) {
    SynthDoc doc;
    doc.id = static_cast<std::uint32_t>(d);
    doc.primary_topic = static_cast<std::uint32_t>(rng.below(spec.num_topics));
    docs_by_topic[doc.primary_topic].push_back(doc.id);

    // Optional secondary topic: a document that "mentions" another subject.
    const bool has_secondary = spec.num_topics > 1 && rng.chance(spec.secondary_topic_prob);
    std::uint32_t secondary = doc.primary_topic;
    while (has_secondary && secondary == doc.primary_topic) {
      secondary = static_cast<std::uint32_t>(rng.below(spec.num_topics));
    }

    const std::size_t tokens = std::max<std::size_t>(
        spec.min_doc_tokens, poisson_sample(rng, static_cast<double>(spec.mean_doc_tokens)));

    std::unordered_map<TermId, std::uint32_t> freq;
    for (std::size_t i = 0; i < tokens; ++i) {
      TermId t;
      const double u = rng.uniform();
      if (u < spec.topical_fraction) {
        t = sample_topic_term(topics[doc.primary_topic], rng);
      } else if (has_secondary && u < spec.topical_fraction + spec.secondary_fraction) {
        t = sample_topic_term(topics[secondary], rng);
      } else {
        t = static_cast<TermId>(background.sample(rng) - 1);
      }
      ++freq[t];
    }
    doc.terms.assign(freq.begin(), freq.end());
    std::sort(doc.terms.begin(), doc.terms.end());
    for (const auto& [t, f] : doc.terms) used_terms.insert(t);
    out.docs.push_back(std::move(doc));
  }
  out.distinct_terms = used_terms.size();

  // --- queries and judgments -----------------------------------------------
  out.queries.reserve(spec.num_queries);
  for (std::size_t q = 0; q < spec.num_queries; ++q) {
    SynthQuery query;
    query.id = static_cast<std::uint32_t>(q);
    // Choose a topic that actually has documents.
    do {
      query.topic = static_cast<std::uint32_t>(rng.below(spec.num_topics));
    } while (docs_by_topic[query.topic].empty());

    const std::size_t nterms =
        spec.query_terms_min + rng.below(spec.query_terms_max - spec.query_terms_min + 1);
    // Query keys come from the topic's signature head: the terms a user
    // searching for that subject would naturally pick.
    const Topic& topic = topics[query.topic];
    const std::size_t head = std::min<std::size_t>(topic.terms.size(), 25);
    std::unordered_set<TermId> chosen;
    while (chosen.size() < std::min(nterms, head)) {
      chosen.insert(topic.terms[rng.below(head)]);
    }
    query.terms.assign(chosen.begin(), chosen.end());
    std::sort(query.terms.begin(), query.terms.end());

    // Judgments: all documents of the topic, subsampled to the cap.
    std::vector<std::uint32_t> rel = docs_by_topic[query.topic];
    if (rel.size() > spec.max_relevant_per_query) {
      for (std::size_t i = 0; i < spec.max_relevant_per_query; ++i) {
        const std::size_t j = i + rng.below(rel.size() - i);
        std::swap(rel[i], rel[j]);
      }
      rel.resize(spec.max_relevant_per_query);
    }
    query.relevant_docs.insert(rel.begin(), rel.end());
    out.queries.push_back(std::move(query));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Presets shaped after Table 3
// ---------------------------------------------------------------------------

CollectionSpec preset_cacm() {
  CollectionSpec s;
  s.name = "CACM";
  s.num_docs = 3204;
  s.vocab_size = 75'493;
  s.num_queries = 52;
  s.num_topics = 140;
  s.mean_doc_tokens = 100;  // ~2.1 MB of abstracts
  s.seed = 0xCAC3;
  return s;
}

CollectionSpec preset_med() {
  CollectionSpec s;
  s.name = "MED";
  s.num_docs = 1033;
  s.vocab_size = 83'451;
  s.num_queries = 30;
  s.num_topics = 60;
  s.mean_doc_tokens = 150;
  s.seed = 0x3ED1;
  return s;
}

CollectionSpec preset_cran() {
  CollectionSpec s;
  s.name = "CRAN";
  s.num_docs = 1400;
  s.vocab_size = 117'718;
  s.num_queries = 152;
  s.num_topics = 90;
  s.mean_doc_tokens = 170;
  s.seed = 0xC4A9;
  return s;
}

CollectionSpec preset_cisi() {
  CollectionSpec s;
  s.name = "CISI";
  s.num_docs = 1460;
  s.vocab_size = 84'957;
  s.num_queries = 76;
  s.num_topics = 80;
  s.mean_doc_tokens = 250;
  s.seed = 0xC151;
  return s;
}

CollectionSpec preset_ap89(std::size_t scale_divisor) {
  if (scale_divisor == 0) scale_divisor = 1;
  CollectionSpec s;
  s.name = "AP89";
  s.num_docs = 84'678 / scale_divisor;
  s.vocab_size = 129'603;
  s.num_queries = 97;
  s.num_topics = 400 / (scale_divisor > 4 ? 2 : 1);
  s.mean_doc_tokens = 480;  // full AP newswire articles (~3 KB each)
  s.max_relevant_per_query = 100;
  s.seed = 0xA989;
  return s;
}

CollectionSpec preset_tiny() {
  CollectionSpec s;
  s.name = "TINY";
  s.num_docs = 200;
  s.vocab_size = 5000;
  s.num_queries = 12;
  s.num_topics = 10;
  s.mean_doc_tokens = 60;
  s.min_doc_tokens = 15;
  s.max_relevant_per_query = 40;
  s.seed = 0x717f;
  return s;
}

}  // namespace planetp::corpus
