#include "net/reactor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace planetp::net {
namespace {

/// Collects frames/failures with waitable accessors.
class Sink {
 public:
  void on_frame(const Frame& frame) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(frame);
    cv_.notify_all();
  }
  void on_failure(const std::string& address) {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back(address);
    cv_.notify_all();
  }

  bool wait_for_frames(std::size_t n, int seconds = 5) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [&] { return frames_.size() >= n; });
  }
  bool wait_for_failures(std::size_t n, int seconds = 5) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [&] { return failures_.size() >= n; });
  }

  std::vector<Frame> frames() {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }
  std::vector<std::string> failures() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
  std::vector<std::string> failures_;
};

TEST(Reactor, DeliversFramesBetweenEndpoints) {
  Reactor a, b;
  Sink sink_a, sink_b;
  a.listen(0);
  b.listen(0);
  a.start([&](const Frame& f) { sink_a.on_frame(f); },
          [&](const std::string& addr) { sink_a.on_failure(addr); });
  b.start([&](const Frame& f) { sink_b.on_frame(f); },
          [&](const std::string& addr) { sink_b.on_failure(addr); });

  Frame frame;
  frame.sender = 1;
  frame.channel = Channel::kGossip;
  frame.payload = {10, 20, 30};
  a.send(b.address(), frame);

  ASSERT_TRUE(sink_b.wait_for_frames(1));
  const auto frames = sink_b.frames();
  EXPECT_EQ(frames[0].sender, 1u);
  EXPECT_EQ(frames[0].payload, (std::vector<std::uint8_t>{10, 20, 30}));

  // And the reverse direction (separate connection).
  Frame reply;
  reply.sender = 2;
  b.send(a.address(), reply);
  ASSERT_TRUE(sink_a.wait_for_frames(1));
  EXPECT_EQ(sink_a.frames()[0].sender, 2u);

  a.stop();
  b.stop();
}

TEST(Reactor, ManyFramesArriveInOrder) {
  Reactor a, b;
  Sink sink_b;
  a.listen(0);
  b.listen(0);
  a.start(nullptr, nullptr);
  b.start([&](const Frame& f) { sink_b.on_frame(f); }, nullptr);

  constexpr std::size_t kFrames = 200;
  for (std::size_t i = 0; i < kFrames; ++i) {
    Frame frame;
    frame.sender = static_cast<std::uint32_t>(i);
    frame.payload.assign(i % 50 + 1, static_cast<std::uint8_t>(i));
    a.send(b.address(), frame);
  }
  ASSERT_TRUE(sink_b.wait_for_frames(kFrames, 10));
  const auto frames = sink_b.frames();
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(frames[i].sender, i) << i;  // single TCP stream preserves order
  }
  a.stop();
  b.stop();
}

TEST(Reactor, SendToDeadPortReportsFailure) {
  Reactor a;
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });

  // Nothing listens on this port (we grab one, then close it by scoping a
  // reactor that never starts).
  std::uint16_t dead_port;
  {
    Reactor ephemeral;
    dead_port = ephemeral.listen(0);
  }
  Frame frame;
  frame.sender = 9;
  a.send("127.0.0.1:" + std::to_string(dead_port), frame);
  ASSERT_TRUE(sink_a.wait_for_failures(1, 10));
  EXPECT_NE(sink_a.failures()[0].find(std::to_string(dead_port)), std::string::npos);
  a.stop();
}

TEST(Reactor, UnparseableAddressFailsImmediately) {
  Reactor a;
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });
  a.send("not-an-address", Frame{});
  ASSERT_TRUE(sink_a.wait_for_failures(1));
  EXPECT_EQ(sink_a.failures()[0], "not-an-address");
  a.stop();
}

TEST(Reactor, TimersFireInOrder) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  a.schedule(60 * kMillisecond, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
    cv.notify_all();
  });
  a.schedule(20 * kMillisecond, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
    cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return order.size() == 2; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  a.stop();
}

TEST(Reactor, CancelledTimerDoesNotFire) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);

  std::atomic<int> fired{0};
  const auto token = a.schedule(100 * kMillisecond, [&] { fired.fetch_add(1); });
  a.cancel_timer(token);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(fired.load(), 0);
  a.stop();
}

TEST(Reactor, PostRunsOnReactorThread) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);
  std::atomic<bool> ran{false};
  a.post([&] { ran.store(true); });
  for (int i = 0; i < 100 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(ran.load());
  a.stop();
}

TEST(Reactor, StopIsIdempotent) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);
  a.stop();
  a.stop();
  SUCCEED();
}

TEST(Reactor, LargeFrameRoundtrip) {
  Reactor a, b;
  Sink sink_b;
  a.listen(0);
  b.listen(0);
  a.start(nullptr, nullptr);
  b.start([&](const Frame& f) { sink_b.on_frame(f); }, nullptr);

  Frame frame;
  frame.sender = 3;
  frame.payload.assign(2 << 20, 0x5a);  // 2 MiB: exercises partial writes
  a.send(b.address(), frame);
  ASSERT_TRUE(sink_b.wait_for_frames(1, 15));
  EXPECT_EQ(sink_b.frames()[0].payload.size(), frame.payload.size());
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace planetp::net
