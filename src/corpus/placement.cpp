#include "corpus/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/distributions.hpp"

namespace planetp::corpus {

std::vector<std::uint32_t> place_documents(std::size_t num_docs, std::size_t num_peers,
                                           const PlacementOptions& opts) {
  Rng rng(opts.seed);
  std::vector<std::size_t> counts;
  if (opts.kind == PlacementKind::kWeibull) {
    counts = weibull_partition(rng, num_docs, num_peers, opts.weibull_shape,
                               opts.weibull_scale,
                               num_docs >= num_peers ? 1 : 0);
  } else {
    counts.assign(num_peers, num_docs / num_peers);
    for (std::size_t i = 0; i < num_docs % num_peers; ++i) ++counts[i];
  }

  // Shuffle document ids, then deal them out per the counts so that topical
  // clustering does not correlate with peer identity.
  std::vector<std::uint32_t> doc_ids(num_docs);
  std::iota(doc_ids.begin(), doc_ids.end(), 0);
  for (std::size_t i = 0; i + 1 < doc_ids.size(); ++i) {
    const std::size_t j = i + rng.below(doc_ids.size() - i);
    std::swap(doc_ids[i], doc_ids[j]);
  }

  std::vector<std::uint32_t> owner(num_docs, 0);
  std::size_t pos = 0;
  for (std::size_t peer = 0; peer < num_peers; ++peer) {
    for (std::size_t i = 0; i < counts[peer] && pos < num_docs; ++i, ++pos) {
      owner[doc_ids[pos]] = static_cast<std::uint32_t>(peer);
    }
  }
  // Any remainder from rounding goes to the last peer.
  for (; pos < num_docs; ++pos) {
    owner[doc_ids[pos]] = static_cast<std::uint32_t>(num_peers - 1);
  }
  return owner;
}

}  // namespace planetp::corpus
