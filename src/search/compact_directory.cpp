#include "search/compact_directory.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace planetp::search {

void CompactDirectory::add_peer(std::uint32_t peer, const bloom::BloomFilter& filter) {
  if (groups_.empty() || groups_.back().members.size() >= group_size_) {
    groups_.push_back(Group{filter, {peer}});
  } else {
    Group& group = groups_.back();
    if (group.filter.bit_size() != filter.bit_size()) {
      throw std::invalid_argument("CompactDirectory: filter geometry mismatch");
    }
    group.filter.merge(filter);
    group.members.push_back(peer);
  }
  ++peer_count_;
}

std::vector<std::uint32_t> CompactDirectory::candidates(
    const std::vector<std::string>& terms) const {
  std::vector<std::uint32_t> out;
  std::vector<HashPair> hashes;
  hashes.reserve(terms.size());
  for (const auto& t : terms) hashes.push_back(hash_pair(t));

  for (const Group& group : groups_) {
    bool all = true;
    for (const HashPair& hp : hashes) {
      if (!group.filter.contains(hp)) {
        all = false;
        break;
      }
    }
    if (all) out.insert(out.end(), group.members.begin(), group.members.end());
  }
  return out;
}

std::vector<std::uint32_t> CompactDirectory::candidates_any(
    const std::vector<std::string>& terms) const {
  std::vector<std::uint32_t> out;
  std::vector<HashPair> hashes;
  hashes.reserve(terms.size());
  for (const auto& t : terms) hashes.push_back(hash_pair(t));

  for (const Group& group : groups_) {
    for (const HashPair& hp : hashes) {
      if (group.filter.contains(hp)) {
        out.insert(out.end(), group.members.begin(), group.members.end());
        break;
      }
    }
  }
  return out;
}

std::size_t CompactDirectory::memory_bytes() const {
  std::size_t bytes = 0;
  for (const Group& group : groups_) {
    bytes += group.filter.bit_size() / 8 + group.members.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace planetp::search
