#include "sim/network.hpp"

#include <algorithm>

namespace planetp::sim {

double sample_mix_bandwidth(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.09) return link_speed::kModem56k;
  if (u < 0.30) return link_speed::kDsl512k;
  if (u < 0.80) return link_speed::kCable5M;
  if (u < 0.96) return link_speed::kEthernet10M;
  return link_speed::kLan45M;
}

bool is_fast_link(double bits_per_second) {
  return bits_per_second >= link_speed::kDsl512k;
}

void NetworkStats::record(std::uint32_t sender, std::size_t bytes, TimePoint at,
                          TrafficKind kind) {
  total_bytes_ += bytes;
  if (kind == TrafficKind::kRumor) rumor_bytes_ += bytes;
  ++total_messages_;
  if (sender >= per_peer_bytes_.size()) per_peer_bytes_.resize(sender + 1, 0);
  per_peer_bytes_[sender] += bytes;
  if (!origin_set_) {
    origin_ = at;
    origin_set_ = true;
  }
  const std::size_t idx = static_cast<std::size_t>((at - origin_) / bucket_);
  if (buckets_.size() <= idx) buckets_.resize(idx + 1, 0);
  buckets_[idx] += bytes;
}

std::vector<std::pair<double, std::uint64_t>> NetworkStats::bytes_over_time() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  out.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out.emplace_back(to_seconds(origin_ + static_cast<Duration>(i) * bucket_), buckets_[i]);
  }
  return out;
}

void NetworkStats::reset() {
  total_bytes_ = 0;
  rumor_bytes_ = 0;
  total_messages_ = 0;
  dropped_messages_ = 0;
  partition_dropped_messages_ = 0;
  duplicated_messages_ = 0;
  delayed_messages_ = 0;
  reordered_messages_ = 0;
  query_rpcs_sent_ = 0;
  query_rpcs_retried_ = 0;
  query_rpcs_hedged_ = 0;
  query_rpcs_failed_ = 0;
  std::fill(per_peer_bytes_.begin(), per_peer_bytes_.end(), 0);
  bytes_by_type_.fill(0);
  messages_by_type_.fill(0);
  gossip_baseline_ = gossip_cumulative_;
  gossip_stats_ = gossip::GossipStats{};
  buckets_.clear();
  origin_set_ = false;
}

LinkModel::LinkModel(std::vector<double> peer_bandwidths_bps, NetworkParams params)
    : bandwidth_(std::move(peer_bandwidths_bps)),
      uplink_free_(bandwidth_.size(), 0),
      downlink_free_(bandwidth_.size(), 0),
      params_(params) {}

void LinkModel::add_peer(double bandwidth_bps) {
  bandwidth_.push_back(bandwidth_bps);
  uplink_free_.push_back(0);
  downlink_free_.push_back(0);
}

TimePoint LinkModel::transfer(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                              TimePoint now) {
  const double bits = static_cast<double>(bytes) * 8.0;

  // Serialize on the sender's uplink...
  const Duration up_time =
      static_cast<Duration>(bits / bandwidth_[from] * static_cast<double>(kSecond));
  const TimePoint up_start = std::max(now, uplink_free_[from]);
  const TimePoint up_done = up_start + up_time;
  uplink_free_[from] = up_done;

  // ...then on the receiver's downlink.
  const Duration down_time =
      static_cast<Duration>(bits / bandwidth_[to] * static_cast<double>(kSecond));
  const TimePoint down_start = std::max(up_done + params_.base_latency, downlink_free_[to]);
  const TimePoint down_done = down_start + down_time;
  downlink_free_[to] = down_done;

  return down_done;
}

void LinkModel::reset_busy() {
  std::fill(uplink_free_.begin(), uplink_free_.end(), 0);
  std::fill(downlink_free_.begin(), downlink_free_.end(), 0);
}

}  // namespace planetp::sim
