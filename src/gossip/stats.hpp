#pragma once

#include <cstdint>

/// \file stats.hpp
/// Dissemination counters kept by gossip::Protocol (docs/PROTOCOL.md "Lazy
/// dissemination"). They answer the question the lazy rumor mode exists for:
/// how many payload bytes were pushed blind, and how many of those arrived at
/// a receiver that already knew them. Plain integers, aggregated by the
/// embedding runtime (SimCommunity across peers, LiveNode into NetStats).

namespace planetp::gossip {

struct GossipStats {
  /// Rumor payloads pushed blind in RumorMsg (eager mongering), and their
  /// modeled wire bytes. Lazy mode never pushes blind, so both stay 0.
  std::uint64_t payloads_sent = 0;
  std::uint64_t payload_bytes_sent = 0;

  /// Received payloads (RumorMsg or PullResponse) that superseded nothing —
  /// the redundant deliveries lazy dissemination eliminates.
  std::uint64_t duplicate_payloads = 0;
  std::uint64_t duplicate_payload_bytes = 0;

  /// Lazy handshake volume: digests pushed, ids they carried, want replies
  /// issued, ids wanted, and bodies served (from the interned hot store or
  /// the pull cache — either way a pointer splice, never a re-encode).
  std::uint64_t digests_sent = 0;
  std::uint64_t digest_ids_sent = 0;
  std::uint64_t wants_sent = 0;
  std::uint64_t want_ids_sent = 0;
  std::uint64_t wants_served = 0;

  GossipStats& operator+=(const GossipStats& o) {
    payloads_sent += o.payloads_sent;
    payload_bytes_sent += o.payload_bytes_sent;
    duplicate_payloads += o.duplicate_payloads;
    duplicate_payload_bytes += o.duplicate_payload_bytes;
    digests_sent += o.digests_sent;
    digest_ids_sent += o.digest_ids_sent;
    wants_sent += o.wants_sent;
    want_ids_sent += o.want_ids_sent;
    wants_served += o.wants_served;
    return *this;
  }

  /// Field-wise subtraction; used to report counters relative to a baseline
  /// snapshot (the benches' measurement-window semantics after a reset).
  GossipStats& operator-=(const GossipStats& o) {
    payloads_sent -= o.payloads_sent;
    payload_bytes_sent -= o.payload_bytes_sent;
    duplicate_payloads -= o.duplicate_payloads;
    duplicate_payload_bytes -= o.duplicate_payload_bytes;
    digests_sent -= o.digests_sent;
    digest_ids_sent -= o.digest_ids_sent;
    wants_sent -= o.wants_sent;
    want_ids_sent -= o.want_ids_sent;
    wants_served -= o.wants_served;
    return *this;
  }
};

}  // namespace planetp::gossip
