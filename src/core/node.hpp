#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/snippet_store.hpp"
#include "core/config.hpp"
#include "gossip/protocol.hpp"
#include "index/data_store.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"

/// \file node.hpp
/// The public face of a PlanetP peer: publish XML documents, search the
/// community exhaustively or by TFxIPF ranking, and register persistent
/// queries. A Node owns its local data store, Bloom filter and gossip
/// protocol instance; a Community (in-process) or the live TCP runtime
/// moves its messages.

namespace planetp::core {

class Community;

using PeerId = gossip::PeerId;
using DocumentId = index::DocumentId;

/// One search result: enough to display and to fetch the document.
struct SearchHit {
  DocumentId doc;
  double score = 0.0;     ///< 0 for exhaustive (unranked) results
  std::string title;
  std::string xml;        ///< the stored XML document (empty if not fetched)
};

/// Exhaustive-search outcome. §2 advantage (4): Bloom filters let a searcher
/// know that matching documents *may* exist on peers that are currently
/// offline; those peers are reported so the caller can rendezvous later.
struct ExhaustiveResult {
  std::vector<SearchHit> hits;
  std::vector<PeerId> offline_candidates;
  std::vector<SearchHit> broker_hits;  ///< snippets found via the brokerage
};

class Node {
 public:
  Node(PeerId id, NodeConfig config, Community* community);

  PeerId id() const { return id_; }

  // ------------------------------------------------------------------
  // Publishing
  // ------------------------------------------------------------------

  /// Publish an XML document: index it, update the Bloom filter, gossip the
  /// change, and (optionally) publish a snippet to the brokers under the
  /// document's most frequent terms.
  DocumentId publish(std::string xml);

  /// Convenience: wrap plain text in the XML envelope and publish.
  DocumentId publish_text(std::string_view title, std::string_view body);

  /// Withdraw a document. Returns false if unknown.
  bool unpublish(DocumentId id);

  /// Replace a published document in place (same id, new content): the
  /// community sees the updated terms after the next filter gossip, and
  /// persistent queries matching the new content fire. Returns false if the
  /// id is unknown.
  bool republish(DocumentId id, std::string xml);

  // ------------------------------------------------------------------
  // Search
  // ------------------------------------------------------------------

  /// §5.1: conjunction of terms against the whole community, via Bloom
  /// filter candidate selection + direct contact + broker lookup.
  ExhaustiveResult exhaustive_search(std::string_view query);

  /// §5.2: TFxIPF ranked retrieval of the top-k documents.
  std::vector<SearchHit> ranked_search(std::string_view query, std::size_t k);

  /// Proxy search (§7.2's future-work item for modem peers): delegate the
  /// whole ranked search to a better-connected peer, which runs the peer
  /// ranking and adaptive contact loop on our behalf. With \p proxy ==
  /// kInvalidPeer a random online *fast* peer is chosen; falls back to a
  /// local ranked_search when no proxy is available.
  std::vector<SearchHit> proxy_ranked_search(std::string_view query, std::size_t k,
                                             PeerId proxy = gossip::kInvalidPeer);

  // ------------------------------------------------------------------
  // Persistent queries (§5.1)
  // ------------------------------------------------------------------

  using QueryCallback = std::function<void(const SearchHit&)>;

  /// Register a persistent exhaustive query; \p cb fires once per newly
  /// discovered matching document (deduplicated by document id), triggered
  /// by incoming Bloom filters and by matching broker snippets.
  std::uint64_t add_persistent_query(std::string query, QueryCallback cb);

  bool remove_persistent_query(std::uint64_t handle);

  // ------------------------------------------------------------------
  // Rendezvous search (§2, advantage 4)
  // ------------------------------------------------------------------

  /// Exhaustive search that also *rendezvouses* with offline candidates:
  /// "instead of missing these documents as in current systems, the
  /// searching peer could arrange to rendezvous with the off-line peers
  /// when they reconnect to obtain the needed information." Hits available
  /// now are returned; each offline candidate is queried automatically when
  /// it comes back online, delivering late hits through \p cb. Returns the
  /// immediate result plus a handle to cancel the rendezvous.
  std::pair<ExhaustiveResult, std::uint64_t> rendezvous_search(std::string query,
                                                               QueryCallback cb);

  /// Cancel an outstanding rendezvous; returns false if unknown/completed.
  bool cancel_rendezvous(std::uint64_t handle);

  /// Offline peers still being waited on for this rendezvous.
  std::size_t pending_rendezvous_peers(std::uint64_t handle) const;

  // ------------------------------------------------------------------
  // Introspection / internal wiring
  // ------------------------------------------------------------------

  index::DataStore& store() { return store_; }
  const index::DataStore& store() const { return store_; }
  gossip::Protocol& protocol() { return protocol_; }
  /// This node's dissemination counters (docs/PROTOCOL.md "Lazy
  /// dissemination"): payload pushes vs. duplicates, digests, served wants.
  const gossip::GossipStats& gossip_stats() const { return protocol_.stats(); }
  const NodeConfig& config() const { return config_; }
  Community* community() { return community_; }

  /// Evaluate a remote ranked query against the local index (eq. 2 with the
  /// searcher's term weights).
  std::vector<search::ScoredDoc> handle_ranked_query(
      const std::unordered_map<std::string, double>& term_weights) const;

  /// Evaluate a remote exhaustive query locally; returns full hits.
  std::vector<SearchHit> handle_exhaustive_query(std::string_view query) const;

  /// Called by the community when a peer's record (with a new filter)
  /// arrives: re-evaluates persistent queries against that peer.
  void on_directory_update(PeerId origin);

  /// Gossip-layer hook: a strictly newer rumor for \p payload.origin was
  /// applied. Keeps the candidate cache warm — XOR filter diffs are applied
  /// surgically (only cached terms whose bits the diff touches are fixed),
  /// rejoin version bumps are recorded without re-decoding, and anything
  /// else drops the stale filter for lazy re-decode by filter_of.
  void on_rumor_applied(const gossip::RumorPayload& payload);

  /// Gossip-layer hook: \p peer expired from the directory (T_dead).
  void on_peer_expired(PeerId peer);

  /// Called by the community when a broker snippet is published whose keys
  /// cover one of our persistent queries.
  void on_broker_snippet(const broker::Snippet& snippet);

  /// Decoded Bloom filter of a peer as recorded in our directory (nullptr
  /// when unknown). The cache stores the record's Golomb wire bytes at rest,
  /// keyed by the record version, and decodes on demand; the returned
  /// shared_ptr pins the decoded filter across any LRU eviction
  /// (candidate_cache.max_decoded_bytes) that happens underneath.
  std::shared_ptr<const bloom::BloomFilter> filter_of(PeerId peer) const;

  /// The query hot-path cache (stats/introspection; tests and benches).
  search::CandidateCache& candidate_cache() { return filter_cache_; }
  const search::CandidateCache& candidate_cache() const { return filter_cache_; }

 private:
  struct PersistentQuery {
    std::string raw;
    std::vector<std::string> terms;
    std::vector<HashPair> term_hashes;  ///< hash_pair(terms[i]), computed once
    QueryCallback callback;
    std::unordered_set<DocumentId, index::DocumentIdHash> seen;
  };

  struct Rendezvous {
    std::string raw;
    QueryCallback callback;
    std::unordered_set<PeerId> waiting_on;  ///< offline candidates to revisit
    std::unordered_set<DocumentId, index::DocumentIdHash> seen;
  };

  /// Push the current filter state into the gossip protocol (diff + full).
  void announce_filter_change(std::uint32_t new_keys);

  /// Encode the current Bloom filter for the wire.
  std::vector<std::uint8_t> encoded_filter() const;

  /// Candidate peers whose filters contain every term.
  std::vector<PeerId> candidates_for(const std::vector<std::string>& terms) const;

  /// Own Bloom filter, projected from the counting filter once per
  /// store_.filter_version() and kept in the candidate cache (so the self
  /// row of a ranked search resolves through warm entries too).
  const bloom::BloomFilter* own_filter() const;

  void run_persistent_query_against(PersistentQuery& q, PeerId target);

  PeerId id_;
  NodeConfig config_;
  Community* community_;
  index::DataStore store_;
  gossip::Protocol protocol_;
  bloom::BloomFilter last_announced_;  ///< diff base for filter-change rumors
  std::uint64_t next_query_handle_ = 1;
  std::uint64_t next_snippet_id_ = 1;
  std::unordered_map<DocumentId, std::uint64_t, index::DocumentIdHash> doc_snippets_;
  std::map<std::uint64_t, Rendezvous> rendezvous_;
  std::map<std::uint64_t, PersistentQuery> persistent_queries_;
  /// Decoded-filter store + term→candidate cache + probe kernel (the query
  /// hot path). mutable: filter_of/own_filter fill it lazily from const
  /// accessors; the cache itself is internally synchronized.
  mutable search::CandidateCache filter_cache_;
};

}  // namespace planetp::core
