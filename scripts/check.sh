#!/usr/bin/env bash
# Full verification: configure, build, test, and run every benchmark.
# Usage: scripts/check.sh [--quick]   (--quick shrinks the benchmark sweeps)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  echo "=== $(basename "$b") ==="
  if [ "$QUICK" = "--quick" ]; then
    "$b" --quick
  else
    "$b"
  fi
done
