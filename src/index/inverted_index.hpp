#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/document.hpp"
#include "index/term_dictionary.hpp"

/// \file inverted_index.hpp
/// Per-peer inverted index: term -> postings (document, term frequency).
/// This is the structure each peer keeps over its local data store (§2); its
/// term set is what the peer's Bloom filter summarizes, and its postings
/// supply the f_{D,t} and |D| statistics of the ranking equations (§5.2).
///
/// Internally the index is keyed by dense store-local TermIds from an
/// interned TermDictionary, and every document gets a dense *slot* so the
/// ranker can accumulate scores into a flat array instead of a hash map
/// (Witten, Moffat & Bell's term-number + accumulator-array organization).
/// The string-keyed API below is a thin adapter over the TermId core, so
/// existing callers (DataStore, persistence, CompressedIndex::build, tests)
/// keep working unchanged. TermIds and slots are store-local and must never
/// leak into wire or disk formats; see docs/INDEX.md.

namespace planetp::index {

struct Posting {
  DocumentId doc;
  std::uint32_t term_freq = 0;  ///< f_{D,t}

  bool operator==(const Posting&) const = default;
};

/// Reusable TermId -> frequency accumulator ("flat map"): counts live in a
/// dense array indexed by TermId, with the touched ids kept in
/// first-occurrence order. clear() is O(distinct terms touched), so one
/// buffer serves an entire publish batch without reallocating.
class TermCounts {
 public:
  /// Add \p n occurrences of \p term.
  void add(TermId term, std::uint32_t n = 1) {
    if (term >= counts_.size()) counts_.resize(term + 1, 0);
    if (counts_[term] == 0) order_.push_back(term);
    counts_[term] += n;
  }

  /// Distinct terms in first-occurrence order.
  const std::vector<TermId>& terms() const { return order_; }
  std::uint32_t count(TermId term) const {
    return term < counts_.size() ? counts_[term] : 0;
  }
  bool empty() const { return order_.empty(); }

  /// Reset for reuse, keeping capacity.
  void clear() {
    for (TermId t : order_) counts_[t] = 0;
    order_.clear();
  }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<TermId> order_;
};

class InvertedIndex {
 public:
  /// Sentinel for "document has no slot".
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;

  // --- string-keyed API (adapters over the TermId core) -------------------

  /// Insert a document given its term -> frequency map. The document must
  /// not already be present.
  void add_document(DocumentId doc,
                    const std::unordered_map<std::string, std::uint32_t>& term_freqs);

  /// Remove a document and all its postings. Returns false if unknown.
  bool remove_document(DocumentId doc);

  /// Postings for a term (empty when absent).
  const std::vector<Posting>& postings(std::string_view term) const {
    return postings_by_id(term_id(term));
  }

  /// Whether any document contains the term.
  bool contains_term(std::string_view term) const {
    return document_frequency_by_id(term_id(term)) > 0;
  }

  /// f_{D,t}: frequency of \p term in \p doc (0 when absent).
  std::uint32_t term_frequency(std::string_view term, DocumentId doc) const;

  /// |D|: total number of term occurrences in the document (the paper's
  /// "number of terms in document D" used in the sqrt(|D|) normalizer).
  std::uint32_t document_length(DocumentId doc) const;

  /// f_t: total occurrences of \p term across the collection (for IDF).
  std::uint64_t collection_frequency(std::string_view term) const {
    return collection_frequency_by_id(term_id(term));
  }

  /// Number of documents containing \p term.
  std::uint32_t document_frequency(std::string_view term) const {
    return document_frequency_by_id(term_id(term));
  }

  std::size_t num_documents() const { return slot_of_.size(); }
  /// Number of distinct terms with at least one posting.
  std::size_t num_terms() const { return nonempty_terms_; }

  /// Iterate all distinct terms with live postings (used to build the Bloom
  /// filter and compressed snapshots). Materializes a std::string per term;
  /// hot paths should use for_each_term_id instead.
  void for_each_term(const std::function<void(const std::string&)>& fn) const;

  /// All documents currently indexed (ids ascending).
  std::vector<DocumentId> documents() const;

  // --- TermId hot-path API ------------------------------------------------

  /// The store-local term dictionary (append-only; ids are dense).
  const TermDictionary& dictionary() const { return dict_; }

  /// Intern \p term, creating an id (and an empty posting list) if new.
  TermId intern_term(std::string_view term);

  /// Id of \p term, or kInvalidTermId when never interned.
  TermId term_id(std::string_view term) const { return dict_.find(term); }

  /// Postings by term id (empty for kInvalidTermId or never-posted terms).
  const std::vector<Posting>& postings_by_id(TermId term) const {
    return term < terms_.size() ? terms_[term].postings : empty_postings_();
  }

  /// f_{D,t} by term id (0 when absent); linear scan of the posting list.
  std::uint32_t term_frequency_by_id(TermId term, DocumentId doc) const {
    for (const Posting& p : postings_by_id(term)) {
      if (p.doc == doc) return p.term_freq;
    }
    return 0;
  }

  /// Dense doc slots parallel to postings_by_id(term): slots()[i] is the
  /// accumulator index of postings()[i].doc.
  const std::vector<std::uint32_t>& posting_slots(TermId term) const {
    return term < terms_.size() ? terms_[term].slots : empty_slots_();
  }

  std::uint64_t collection_frequency_by_id(TermId term) const {
    return term < terms_.size() ? terms_[term].collection_freq : 0;
  }
  std::uint32_t document_frequency_by_id(TermId term) const {
    return term < terms_.size() ? static_cast<std::uint32_t>(terms_[term].postings.size()) : 0;
  }

  /// Insert a document from a TermCounts accumulator (the hot publish path:
  /// no string keys, postings appended in first-occurrence order). The
  /// document must not already be present; every TermId must come from this
  /// index's dictionary.
  void add_document_counts(DocumentId doc, const TermCounts& counts);

  /// Distinct term ids of \p doc in insertion order (empty when unknown).
  /// Valid until the document is removed.
  const std::vector<TermId>& document_term_ids(DocumentId doc) const;

  // --- dense document slots (ranker accumulator domain) -------------------

  /// Upper bound (exclusive) on live slot numbers. Freed slots are reused,
  /// so this tracks the high-water mark of concurrently live documents.
  std::size_t doc_slot_count() const { return slot_docs_.size(); }

  /// Slot of \p doc, or kNoSlot.
  std::uint32_t doc_slot(DocumentId doc) const {
    auto it = slot_of_.find(doc);
    return it == slot_of_.end() ? kNoSlot : it->second;
  }

  /// Document occupying \p slot (unspecified for freed slots — only slots
  /// reached through live postings are meaningful).
  DocumentId doc_at_slot(std::uint32_t slot) const { return slot_docs_[slot]; }

  /// |D| of the document occupying \p slot.
  std::uint32_t doc_length_at_slot(std::uint32_t slot) const { return slot_lengths_[slot]; }

 private:
  struct TermEntry {
    std::vector<Posting> postings;
    std::vector<std::uint32_t> slots;  ///< parallel to postings
    std::uint64_t collection_freq = 0;
  };

  static const std::vector<Posting>& empty_postings_();
  static const std::vector<std::uint32_t>& empty_slots_();

  TermDictionary dict_;
  std::vector<TermEntry> terms_;  ///< by TermId (dense, parallel to dict_)
  std::size_t nonempty_terms_ = 0;

  std::vector<DocumentId> slot_docs_;       ///< by slot
  std::vector<std::uint32_t> slot_lengths_; ///< by slot
  std::vector<std::vector<TermId>> slot_terms_;  ///< by slot, insertion order
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> slot_of_;
};

}  // namespace planetp::index
