#include "gossip/directory.hpp"

#include <algorithm>

namespace planetp::gossip {

void Directory::put_self(PeerRecord record) {
  const PeerId id = record.id;
  auto [it, inserted] = records_.insert_or_assign(id, std::move(record));
  if (inserted) add_id(id);
  it->second.online = true;
}

bool Directory::apply(const PeerRecord& record) {
  if (auto t = tombstones_.find(record.id); t != tombstones_.end()) {
    if (record.version <= t->second) return false;  // expired stays expired
    tombstones_.erase(t);  // a genuinely newer version is a real rejoin
  }
  auto it = records_.find(record.id);
  if (it == records_.end()) {
    records_.emplace(record.id, record);
    add_id(record.id);
    return true;
  }
  if (record.version <= it->second.version) {
    return false;
  }
  // Preserve nothing local: a newer version means fresh presence knowledge,
  // so the peer is believed online again.
  PeerRecord updated = record;
  updated.online = true;
  updated.offline_since = 0;
  updated.suspicion = 0;  // fresh presence knowledge resets local suspicion
  it->second = std::move(updated);
  return true;
}

const PeerRecord* Directory::find(PeerId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeerRecord* Directory::find_mutable(PeerId id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

void Directory::mark_offline(PeerId id, TimePoint now) {
  if (PeerRecord* r = find_mutable(id); r != nullptr && r->online) {
    r->online = false;
    r->offline_since = now;
  }
}

void Directory::mark_online(PeerId id) {
  if (PeerRecord* r = find_mutable(id); r != nullptr) {
    r->online = true;
    r->offline_since = 0;
    r->suspicion = 0;
  }
}

std::uint32_t Directory::record_query_failure(PeerId id, TimePoint now) {
  PeerRecord* r = find_mutable(id);
  if (r == nullptr || id == self_) return 0;
  ++r->suspicion;
  if (r->suspicion >= kSuspectThreshold) mark_offline(id, now);
  return r->suspicion;
}

void Directory::record_query_success(PeerId id) {
  if (PeerRecord* r = find_mutable(id); r != nullptr) r->suspicion = 0;
}

std::uint32_t Directory::suspicion(PeerId id) const {
  const PeerRecord* r = find(id);
  return r == nullptr ? 0 : r->suspicion;
}

std::vector<PeerId> Directory::expire_dead(TimePoint now, Duration t_dead) {
  std::vector<PeerId> dropped;
  for (auto it = records_.begin(); it != records_.end();) {
    const PeerRecord& r = it->second;
    if (!r.online && r.id != self_ && now - r.offline_since >= t_dead) {
      dropped.push_back(r.id);
      tombstones_[r.id] = r.version;
      remove_id(r.id);
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

PeerId Directory::random_online(Rng& rng) const {
  if (ids_.empty()) return kInvalidPeer;
  // Rejection sampling over the flat list; bounded attempts keep worst-case
  // cost predictable even when most of the community is offline.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = ids_[rng.below(ids_.size())];
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) return id;
  }
  // Fall back to a linear scan so "some online peer exists" always succeeds.
  std::vector<PeerId> online;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_online_of_class(Rng& rng, LinkClass cls) const {
  if (ids_.empty()) return kInvalidPeer;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = ids_[rng.below(ids_.size())];
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) return id;
  }
  std::vector<PeerId> online;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_offline(Rng& rng) const {
  std::vector<PeerId> offline;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && !r->online) offline.push_back(id);
  }
  if (offline.empty()) return kInvalidPeer;
  return offline[rng.below(offline.size())];
}

std::vector<PeerSummary> Directory::summary() const {
  std::vector<PeerSummary> out;
  out.reserve(records_.size());
  for (const auto& [id, r] : records_) out.push_back(PeerSummary{id, r.version});
  std::sort(out.begin(), out.end(),
            [](const PeerSummary& a, const PeerSummary& b) { return a.id < b.id; });
  return out;
}

std::vector<RumorId> Directory::newer_in(const std::vector<PeerSummary>& remote) const {
  std::vector<RumorId> out;
  for (const PeerSummary& s : remote) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      continue;  // we expired this record; don't pull it back
    }
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version < s.version) {
      out.push_back(RumorId{s.id, s.version});
    }
  }
  return out;
}

std::optional<std::uint64_t> Directory::tombstone_version(PeerId id) const {
  auto it = tombstones_.find(id);
  if (it == tombstones_.end()) return std::nullopt;
  return it->second;
}

bool Directory::same_as(const std::vector<PeerSummary>& remote) const {
  if (remote.size() != records_.size()) return false;
  for (const PeerSummary& s : remote) {
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version != s.version) return false;
  }
  return true;
}

std::size_t Directory::online_count() const {
  std::size_t n = 0;
  for (const auto& [id, r] : records_) n += r.online ? 1 : 0;
  return n;
}

void Directory::for_each(const std::function<void(const PeerRecord&)>& fn) const {
  for (const auto& [id, r] : records_) fn(r);
}

void Directory::add_id(PeerId id) { ids_.push_back(id); }

void Directory::remove_id(PeerId id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it != ids_.end()) {
    *it = ids_.back();
    ids_.pop_back();
  }
}

}  // namespace planetp::gossip
