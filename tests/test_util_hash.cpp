#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gossip/types.hpp"
#include "util/rng.hpp"

namespace planetp {
namespace {

TEST(Hash, Fnv1aIsDeterministic) {
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
}

TEST(Hash, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, MurmurDiffersFromFnv) {
  // The Bloom filter's double hashing requires the two base hashes to be
  // effectively independent; at minimum they must differ.
  for (const char* s : {"alpha", "beta", "gamma", "x", ""}) {
    EXPECT_NE(fnv1a64(s), murmur64(s)) << s;
  }
}

TEST(Hash, MurmurSeedChangesValue) {
  EXPECT_NE(murmur64("seedtest", 1), murmur64("seedtest", 2));
}

TEST(Hash, MurmurHandlesAllTailLengths) {
  const std::string base = "abcdefghijklmnop";
  std::set<std::uint64_t> values;
  for (std::size_t len = 0; len <= base.size(); ++len) {
    values.insert(murmur64(std::string_view(base).substr(0, len)));
  }
  EXPECT_EQ(values.size(), base.size() + 1);  // all prefixes hash distinctly
}

TEST(Hash, SplitmixAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = splitmix64(0x123456789abcdefULL);
    const std::uint64_t b = splitmix64(0x123456789abcdefULL ^ (1ULL << bit));
    total += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, RumorIdHashSpreadsLowBits) {
  // The realistic RumorId population is many origins with tiny version
  // numbers. A naive (origin << 32) ^ version hash puts all entropy in the
  // high bits, so any power-of-two bucket count collapses to a handful of
  // buckets. RumorIdHash must mix through splitmix64 so the LOW bits spread.
  constexpr std::size_t kBuckets = 4096;
  constexpr std::uint32_t kOrigins = 2048;
  constexpr std::uint64_t kVersions = 4;
  gossip::RumorIdHash h;
  std::vector<int> load(kBuckets, 0);
  std::set<std::size_t> distinct;
  for (std::uint32_t origin = 0; origin < kOrigins; ++origin) {
    for (std::uint64_t v = 1; v <= kVersions; ++v) {
      const std::size_t x = h(gossip::RumorId{origin, v});
      distinct.insert(x);
      ++load[x % kBuckets];
    }
  }
  EXPECT_EQ(distinct.size(), std::size_t{kOrigins} * kVersions);  // no collisions
  // 8192 keys into 4096 buckets: mean load 2. The unmixed hash would put all
  // 8192 keys into kVersions buckets (max load 2048); a decent mix keeps the
  // maximum within a small multiple of the mean.
  const int max_load = *std::max_element(load.begin(), load.end());
  EXPECT_LE(max_load, 16);
}

TEST(Hash, HashPairH2IsOdd) {
  for (const char* s : {"a", "bb", "ccc", "planetp", "gossip"}) {
    EXPECT_EQ(hash_pair(s).h2 & 1u, 1u) << s;
  }
}

TEST(Hash, HashPairDerivedSequenceCoversDistinctSlots) {
  const HashPair hp = hash_pair("term");
  std::set<std::uint64_t> slots;
  for (std::uint32_t i = 0; i < 16; ++i) slots.insert(hp.ith(i) % 1024);
  EXPECT_GT(slots.size(), 12u);  // near-distinct probes in a 1K table
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == child2());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace planetp
