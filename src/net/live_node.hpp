#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/hash_ring.hpp"
#include "broker/snippet_store.hpp"
#include "gossip/protocol.hpp"
#include "index/data_store.hpp"
#include "net/reactor.hpp"
#include "net/rpc.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"
#include "sim/faults.hpp"

/// \file live_node.hpp
/// A PlanetP peer running over real TCP sockets: the same gossip::Protocol
/// the simulator drives, plus the RPC channel for ranked/exhaustive search
/// and document fetch. This is the live counterpart of the paper's Java
/// prototype, runnable on loopback or a LAN.

namespace planetp::net {

struct LiveNodeConfig {
  bloom::BloomParams bloom;
  text::AnalyzerOptions analyzer;
  gossip::GossipConfig gossip;          ///< use short intervals for local tests
  ReactorConfig reactor;                ///< transport caps, backoff, idle reaping
  Duration rpc_timeout = 3 * kSecond;
  search::StoppingHeuristic stopping;
  std::size_t search_group_size = 1;

  /// Failure-aware retrieval knobs (docs/SEARCH.md); defaults reproduce the
  /// failure-oblivious behaviour on a healthy community.
  search::RetryPolicy search_retry;     ///< per-peer retry budget for query RPCs
  Duration search_deadline = 0;         ///< whole-query wall-clock budget; 0 = unlimited
  Duration search_hedge_threshold = 0;  ///< hedge contacts slower than this; 0 = off

  /// Query hot path (docs/SEARCH.md): decoded-filter store + term→candidate
  /// cache kept warm by gossiped XOR diffs. Replaces the old per-query
  /// decode of every directory filter.
  search::CandidateCacheConfig candidate_cache;

  /// Brokers per key: the owner plus this many minus one ring successors.
  /// 1 is the paper's unreplicated brokerage; > 1 survives broker failure
  /// (publish/lookup fail over along the replica set).
  std::size_t broker_replication = 1;

  /// Optional fault injection wrapping the gossip send path: the same
  /// FaultPlan the simulator consumes drives drop/duplicate/delay over real
  /// TCP, so live tests replay identical scenarios. Share one injector
  /// across a community's nodes (it is thread-safe) for plan-wide
  /// determinism; time is measured from this node's start().
  std::shared_ptr<sim::FaultInjector> faults;
};

struct LiveHit {
  std::uint32_t peer = 0;
  std::uint32_t local = 0;
  double score = 0.0;
  std::string title;
};

class LiveNode {
 public:
  /// Create a node with the given peer id, listening on \p port (0 picks an
  /// ephemeral port).
  LiveNode(gossip::PeerId id, LiveNodeConfig config, std::uint16_t port = 0);
  ~LiveNode();

  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  /// Start the reactor, announce ourselves (local_join) and begin gossiping.
  void start();
  void stop();

  gossip::PeerId id() const { return id_; }
  std::string address() const { return reactor_.address(); }

  /// Bootstrap into an existing community through one known member.
  void join(gossip::PeerId introducer, const std::string& introducer_address);

  /// Pre-seed the directory of an already-converged community (the live
  /// counterpart of SimCommunity::start_converged): call before start(),
  /// which will then install our own record quietly instead of rumoring a
  /// join. Lets N-node experiments skip the O(N²) bootstrap gossip storm.
  void bootstrap_converged(std::vector<gossip::PeerRecord> records);

  /// Bump our directory version and rumor presence (gossip::local_rejoin) —
  /// the restart half of a crash/restart churn event.
  void announce_rejoin();

  /// This node's own directory record as another node would bootstrap it
  /// (version 1, online, current key count). The filter wire is included only
  /// when requested and non-empty — at 1000 nodes, replicating every filter
  /// into every bootstrap set is O(N²) memory for nothing when most nodes
  /// publish no documents.
  gossip::PeerRecord bootstrap_record(bool include_filter = true) const;

  /// Publish a plain-text document (wrapped in the XML envelope).
  index::DocumentId publish_text(std::string_view title, std::string_view body);

  /// Publish raw XML.
  index::DocumentId publish(std::string xml);

  /// Blocking TFxIPF ranked search across the community.
  std::vector<LiveHit> ranked_search(std::string_view query, std::size_t k);

  /// Blocking exhaustive (conjunctive) search.
  std::vector<LiveHit> exhaustive_search(std::string_view query);

  /// Fetch a document's XML from its owner, retrying per the configured
  /// retry policy. Empty optional when every attempt times out.
  std::optional<std::string> fetch_document(std::uint32_t peer, std::uint32_t local);

  /// Fetch with failover: try the owner first, then each of \p alternates
  /// (peers believed to hold a replica — e.g. brokers storing the document's
  /// snippet) before giving up.
  std::optional<std::string> fetch_document(std::uint32_t peer, std::uint32_t local,
                                            const std::vector<gossip::PeerId>& alternates);

  // ------------------------------------------------------------------
  // Information brokerage (§4) over the live community
  // ------------------------------------------------------------------

  /// Publish an XML snippet to the brokers responsible for each key; the
  /// ring is the set of currently known online members (consistent hashing
  /// over the replicated directory). Fire-and-forget: the brokerage makes
  /// no safety guarantee by design. Returns the snippet id.
  std::uint64_t publish_snippet(std::string xml, std::vector<std::string> keys,
                                Duration ttl);

  /// Ask the responsible broker for the live snippets under \p key.
  std::vector<WireSnippet> lookup_snippets(const std::string& key);

  /// Snippets currently stored by this node's broker role.
  std::size_t brokered_snippet_count() const;

  /// Number of members this node's directory knows (self included).
  std::size_t known_peers() const;

  /// Snapshot of the replicated directory: (peer id, address, version,
  /// online, key count) per member, sorted by id.
  struct PeerInfo {
    gossip::PeerId id;
    std::string address;
    std::uint64_t version;
    bool online;
    std::uint32_t key_count;
  };
  std::vector<PeerInfo> directory_snapshot() const;

  /// Serialized snapshot of the local data store (see index/persistence.hpp);
  /// safe to call while the node is live.
  std::vector<std::uint8_t> serialize_store() const;

  /// Wait until the directory knows at least \p n members (true) or
  /// \p timeout elapses (false).
  bool wait_for_peers(std::size_t n, Duration timeout);

  /// Wait until this node's view of \p peer has version >= \p version.
  bool wait_for_version(gossip::PeerId peer, std::uint64_t version, Duration timeout);

  /// The query hot-path cache (stats/introspection; tests and benches).
  const search::CandidateCache& candidate_cache() const { return filter_cache_; }

  /// Transport counters (docs/NET.md "NetStats"): this node's reactor
  /// snapshot with the gossip protocol's dissemination counters merged in
  /// (payload pushes vs. duplicates, digests, served wants).
  NetStats net_stats() const;

  /// Gossip rounds executed since start().
  std::uint64_t gossip_rounds() const { return rounds_.load(std::memory_order_relaxed); }

  /// |actual − scheduled| gap per gossip round, newest last (bounded window;
  /// feeds the live_throughput bench's p99 round-jitter figure).
  std::vector<Duration> round_jitter_samples() const;

 private:
  void on_frame(const Frame& frame);
  void on_send_failure(const std::string& address);
  void gossip_round();
  void send_outgoing(std::vector<gossip::Protocol::Outgoing> batch);
  void handle_rpc(std::uint32_t sender, const RpcMessage& msg);
  void reply_rpc(std::uint32_t peer, const RpcMessage& msg);
  /// Synchronous RPC. Returns the response, or nullopt with \p status (when
  /// given) distinguishing kTimeout from kUnreachable — the latter reported
  /// the moment the transport gives up on the address (connect refused,
  /// backoff, frame dropped) instead of burning the full rpc_timeout.
  std::optional<RpcMessage> call(gossip::PeerId peer, RpcMessage request,
                                 search::ContactStatus* status = nullptr);
  std::string address_of(gossip::PeerId peer) const;
  void announce_filter_change(std::uint32_t new_keys);
  /// Broker responsible for \p key given the current directory (requires
  /// mu_ held). kInvalidPeer when the directory is empty.
  gossip::PeerId broker_for(const std::string& key) const;
  /// The key's full replica set — the owner plus broker_replication - 1 ring
  /// successors (requires mu_ held). Empty when the directory is empty.
  std::vector<gossip::PeerId> broker_replicas_for(const std::string& key) const;
  /// Feed a query-RPC outcome into the directory's SUSPECT tracking.
  void note_contact_outcome(gossip::PeerId peer, bool ok);
  void sweep_broker_store();
  /// \p record's decoded filter via the cache, decoding (and re-warming the
  /// term entries) only when the cached version is stale. Requires mu_ held.
  std::shared_ptr<const bloom::BloomFilter> cached_filter(const gossip::PeerRecord& record);
  /// Own filter, projected once per store_.filter_version(). Requires mu_ held.
  std::shared_ptr<const bloom::BloomFilter> own_filter();

  gossip::PeerId id_;
  LiveNodeConfig config_;
  Reactor reactor_;
  TimePoint fault_origin_ = 0;  ///< start() time; faults run on node-relative time

  mutable std::mutex mu_;  ///< guards store_, protocol_, filter bookkeeping
  index::DataStore store_;
  gossip::Protocol protocol_;
  bloom::BloomFilter last_announced_;
  broker::SnippetStore broker_store_;  ///< this node's broker role (guarded by mu_)
  /// Internally synchronized; maintained by the gossip on_apply/on_expire
  /// hooks (which run under mu_) and read by the query paths.
  search::CandidateCache filter_cache_;
  std::uint64_t next_snippet_id_ = 1;

  // Synchronous RPC bookkeeping. Pending calls are keyed by request id and
  // remember the address the request went to, so a transport failure on that
  // address fails them fast (rpc_cv_ wakes with failed = true) instead of
  // letting the caller wait out rpc_timeout.
  struct PendingRpc {
    std::string address;
    bool failed = false;
  };
  std::mutex rpc_mu_;
  std::condition_variable rpc_cv_;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, RpcMessage> rpc_responses_;
  std::unordered_map<std::uint64_t, PendingRpc> rpc_pending_;

  // Converged-start state: records installed at start() instead of a join
  // rumor, plus our own pre-crash version to resume from (0 = fresh join).
  std::vector<gossip::PeerRecord> bootstrap_records_;
  std::uint64_t bootstrap_self_version_ = 0;
  bool bootstrap_requested_ = false;

  // Round accounting for observability and the live_throughput bench.
  std::atomic<std::uint64_t> rounds_{0};
  mutable std::mutex jitter_mu_;
  std::vector<Duration> jitter_samples_;  ///< bounded ring, newest last
  TimePoint last_round_due_ = 0;          ///< when the pending round should fire

  bool started_ = false;
};

}  // namespace planetp::net
