/// \file tcp_community.cpp
/// A live PlanetP community over loopback TCP: several net::LiveNode peers
/// gossip for real (sockets, framing, timers), publish documents, and answer
/// ranked queries — the moral equivalent of the paper's Java prototype.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "net/live_node.hpp"

using namespace planetp;
using namespace planetp::net;

int main() {
  LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip.base_interval = 150 * kMillisecond;  // demo-speed gossip
  cfg.gossip.max_interval = 600 * kMillisecond;
  cfg.gossip.slow_down = 150 * kMillisecond;

  constexpr std::size_t kPeers = 5;
  std::vector<std::unique_ptr<LiveNode>> nodes;
  for (std::size_t i = 0; i < kPeers; ++i) {
    nodes.push_back(std::make_unique<LiveNode>(static_cast<gossip::PeerId>(i), cfg));
    nodes.back()->start();
  }
  // Everyone bootstraps through node 0 (§3's join flow).
  for (std::size_t i = 1; i < kPeers; ++i) {
    nodes[i]->join(0, nodes[0]->address());
  }
  std::printf("started %zu peers; node 0 at %s\n", kPeers, nodes[0]->address().c_str());

  for (auto& node : nodes) {
    if (!node->wait_for_peers(kPeers, 20 * kSecond)) {
      std::fprintf(stderr, "peer %u failed to learn the full membership\n", node->id());
      return 1;
    }
  }
  std::puts("directories converged: every peer knows every peer");

  nodes[1]->publish_text("Gossip", "gossiping spreads updates epidemically through communities");
  nodes[2]->publish_text("Bloom", "bloom filters summarize term sets compactly");
  nodes[3]->publish_text("Ranking", "tfidf ranking orders documents by relevance to queries");

  // Wait for the three filter-change rumors to reach node 4.
  for (gossip::PeerId origin : {1u, 2u, 3u}) {
    if (!nodes[4]->wait_for_version(origin, 2, 30 * kSecond)) {
      std::fprintf(stderr, "rumor from %u did not reach node 4\n", origin);
      return 1;
    }
  }
  std::puts("filter updates gossiped everywhere");

  std::puts("== node 4 ranked search: \"gossiping communities\" ==");
  for (const LiveHit& hit : nodes[4]->ranked_search("gossiping communities", 5)) {
    std::printf("  %.3f  [peer %u] %s\n", hit.score, hit.peer, hit.title.c_str());
  }

  std::puts("== node 0 exhaustive search: \"bloom filters\" ==");
  for (const LiveHit& hit : nodes[0]->exhaustive_search("bloom filters")) {
    std::printf("  [peer %u] %s\n", hit.peer, hit.title.c_str());
    const auto xml = nodes[0]->fetch_document(hit.peer, hit.local);
    if (xml) std::printf("    fetched %zu bytes of XML from the owner\n", xml->size());
  }

  for (auto& node : nodes) node->stop();
  std::puts("done");
  return 0;
}
