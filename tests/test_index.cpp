#include "index/inverted_index.hpp"

#include <gtest/gtest.h>

#include "index/document.hpp"

namespace planetp::index {
namespace {

using Freqs = std::unordered_map<std::string, std::uint32_t>;

TEST(InvertedIndex, AddAndQuery) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"apple", 3}, {"banana", 1}});
  idx.add_document({0, 2}, Freqs{{"apple", 1}, {"cherry", 2}});

  EXPECT_EQ(idx.num_documents(), 2u);
  EXPECT_EQ(idx.num_terms(), 3u);
  EXPECT_EQ(idx.document_frequency("apple"), 2u);
  EXPECT_EQ(idx.document_frequency("banana"), 1u);
  EXPECT_EQ(idx.document_frequency("durian"), 0u);
  EXPECT_EQ(idx.collection_frequency("apple"), 4u);
  EXPECT_EQ(idx.term_frequency("apple", {0, 1}), 3u);
  EXPECT_EQ(idx.term_frequency("apple", {0, 2}), 1u);
  EXPECT_EQ(idx.term_frequency("cherry", {0, 1}), 0u);
}

TEST(InvertedIndex, DocumentLengths) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 2}, {"b", 3}});
  EXPECT_EQ(idx.document_length({0, 1}), 5u);
  EXPECT_EQ(idx.document_length({0, 9}), 0u);
}

TEST(InvertedIndex, DuplicateAddThrows) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}});
  EXPECT_THROW(idx.add_document({0, 1}, Freqs{{"b", 1}}), std::invalid_argument);
}

TEST(InvertedIndex, RemoveDocument) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"shared", 1}, {"only1", 1}});
  idx.add_document({0, 2}, Freqs{{"shared", 2}});

  EXPECT_TRUE(idx.remove_document({0, 1}));
  EXPECT_FALSE(idx.remove_document({0, 1}));  // already gone
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_FALSE(idx.contains_term("only1"));
  EXPECT_EQ(idx.collection_frequency("shared"), 2u);
  EXPECT_EQ(idx.document_frequency("shared"), 1u);
}

TEST(InvertedIndex, PostingsContent) {
  InvertedIndex idx;
  idx.add_document({1, 5}, Freqs{{"x", 7}});
  const auto& plist = idx.postings("x");
  ASSERT_EQ(plist.size(), 1u);
  EXPECT_EQ(plist[0].doc, (DocumentId{1, 5}));
  EXPECT_EQ(plist[0].term_freq, 7u);
  EXPECT_TRUE(idx.postings("absent").empty());
}

TEST(InvertedIndex, ForEachTermVisitsAll) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}, {"b", 1}, {"c", 1}});
  std::size_t count = 0;
  idx.for_each_term([&](const std::string&) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST(InvertedIndex, DocumentsSorted) {
  InvertedIndex idx;
  idx.add_document({0, 3}, Freqs{{"a", 1}});
  idx.add_document({0, 1}, Freqs{{"a", 1}});
  idx.add_document({0, 2}, Freqs{{"a", 1}});
  const auto docs = idx.documents();
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].local, 1u);
  EXPECT_EQ(docs[2].local, 3u);
}

TEST(Document, MakeDocumentExtractsEverything) {
  const std::string xml = R"(<document title="Gossip Paper">
      <abstract>We present PlanetP.</abstract>
      <link href="paper.ps" type="postscript">full postscript text here</link>
    </document>)";
  const Document doc = make_document({3, 7}, xml);
  EXPECT_EQ(doc.id, (DocumentId{3, 7}));
  EXPECT_EQ(doc.title, "Gossip Paper");
  EXPECT_NE(doc.text.find("PlanetP"), std::string::npos);
  EXPECT_NE(doc.text.find("postscript text"), std::string::npos);
  ASSERT_EQ(doc.links.size(), 1u);
  EXPECT_EQ(doc.links[0].href, "paper.ps");
  EXPECT_EQ(doc.links[0].content_type, "postscript");
  EXPECT_FALSE(doc.links[0].content.empty());
}

TEST(Document, TitleFromChildElement) {
  const Document doc = make_document({0, 0}, "<doc><title>Child Title</title>body</doc>");
  EXPECT_EQ(doc.title, "Child Title");
}

TEST(Document, UnknownLinkTypeNotExtracted) {
  const Document doc = make_document(
      {0, 0}, R"(<doc><link href="img.png" type="image">alt text</link></doc>)");
  ASSERT_EQ(doc.links.size(), 1u);
  EXPECT_TRUE(doc.links[0].content.empty());
}

TEST(Document, MalformedXmlThrows) {
  EXPECT_THROW(make_document({0, 0}, "<doc>unclosed"), std::runtime_error);
}

TEST(Document, WrapTextEscapes) {
  const std::string xml = wrap_text_as_xml("A & B", "body with <angle>");
  const Document doc = make_document({0, 0}, xml);
  EXPECT_EQ(doc.title, "A & B");
  EXPECT_NE(doc.text.find("<angle>"), std::string::npos);
}

TEST(DocumentId, OrderingAndHash) {
  const DocumentId a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(DocumentIdHash{}(a), DocumentIdHash{}(b));
}

}  // namespace
}  // namespace planetp::index
