#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/ipf.hpp"
#include "search/ranker.hpp"

/// \file distributed.hpp
/// PlanetP's two-stage ranked retrieval (§5.2): rank peers by eq. 3 using
/// IPF over the gossiped Bloom filters, then contact them top-down, ranking
/// returned documents with eq. 2 (IPF substituted for IDF) and stopping
/// adaptively per eq. 4.

namespace planetp::search {

/// Eq. 4's adaptive stopping rule: stop after p consecutive peers contribute
/// nothing to the current top-k, with
///   p = floor(2 + N/300) + 2 * floor(k/50).
struct StoppingHeuristic {
  double base = 2.0;
  double community_divisor = 300.0;
  double k_multiplier = 2.0;
  double k_divisor = 50.0;

  std::size_t patience(std::size_t community_size, std::size_t k) const {
    const auto first = static_cast<std::size_t>(
        base + static_cast<double>(community_size) / community_divisor);
    const auto second = static_cast<std::size_t>(
        k_multiplier * std::floor(static_cast<double>(k) / k_divisor));
    return first + second;
  }
};

/// Peer relevance per eq. 3: R_i(Q) = sum of IPF_t over query terms t that
/// hit peer i's Bloom filter. Peers with R_i = 0 are omitted. Sorted by
/// descending rank, ties by peer id.
struct RankedPeer {
  std::uint32_t peer = 0;
  double rank = 0.0;
};
std::vector<RankedPeer> rank_peers(const IpfTable& ipf);

/// Contact function: evaluate the weighted query at a peer and return its
/// locally scored documents (eq. 2 with the supplied weights). In-process
/// communities call straight into the peer's index; the live runtime issues
/// an RPC.
using PeerSearchFn = std::function<std::vector<ScoredDoc>(
    std::uint32_t peer, const std::unordered_map<std::string, double>& term_weights)>;

struct DistributedSearchOptions {
  std::size_t k = 20;          ///< user's result budget
  std::size_t group_size = 1;  ///< m: peers contacted per step (§5.2's parallel variant)
  StoppingHeuristic stopping;
  std::size_t max_peers = 0;   ///< hard cap; 0 = unlimited
};

struct DistributedSearchResult {
  std::vector<ScoredDoc> docs;            ///< final top-k
  std::vector<std::uint32_t> contacted;   ///< peers contacted, in order
  std::size_t candidate_peers = 0;        ///< peers with non-zero rank
};

/// Run the full TFxIPF retrieval against the searcher's view of the
/// community (\p filters) using \p contact to reach peers.
DistributedSearchResult tfipf_search(const std::vector<std::string>& query_terms,
                                     const std::vector<PeerFilter>& filters,
                                     const PeerSearchFn& contact,
                                     const DistributedSearchOptions& opts);

}  // namespace planetp::search
