#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Fixed-size worker pool. Used to parallelize independent simulator runs in
/// the benchmark sweeps and parallel peer contact during ranked retrieval.

namespace planetp {

class ThreadPool {
 public:
  /// Create \p threads workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace planetp
