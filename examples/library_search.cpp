/// \file library_search.cpp
/// A digital-library community (the paper's motivating workload): 50 peers
/// share a synthetic scientific-abstract collection; a user runs ranked
/// queries against the communal store and we compare the distributed TFxIPF
/// results against the centralized TFxIDF oracle, per query.

#include <cstdio>

#include "corpus/synthetic.hpp"
#include "search/experiment.hpp"

using namespace planetp;
using namespace planetp::search;

int main() {
  // Generate a CACM-shaped collection (3204 abstracts) and spread it over
  // 50 peers with the heavy-tailed Weibull placement of §7.3.
  auto spec = corpus::preset_cacm();
  const auto collection = corpus::generate(spec);
  std::printf("collection %s: %zu docs, %zu distinct terms, %zu queries\n",
              spec.name.c_str(), collection.docs.size(), collection.distinct_terms,
              collection.queries.size());

  const RetrievalSetup setup =
      distribute_collection(collection, 50, corpus::PlacementOptions{});
  std::printf("distributed over %zu peers\n\n", setup.num_peers);

  TfIdfRanker baseline(setup.global_index);
  const auto views = setup.filter_views();
  const auto contact = setup.local_contact();

  const std::size_t k = 10;
  double sum_overlap = 0.0;
  std::size_t shown = 0;
  for (const auto& query : collection.queries) {
    const auto terms = query_term_strings(query);
    const RelevantSet relevant = judgment_set(query);

    DistributedSearchOptions opts;
    opts.k = k;
    const auto planetp_result = tfipf_search(terms, views, contact, opts);
    const auto oracle = baseline.top_k(terms, k);

    // Overlap between the distributed result and the centralized oracle.
    std::size_t overlap = 0;
    for (const auto& d : planetp_result.docs) {
      for (const auto& o : oracle) {
        if (d.doc == o.doc) {
          ++overlap;
          break;
        }
      }
    }
    sum_overlap += oracle.empty() ? 1.0
                                  : static_cast<double>(overlap) /
                                        static_cast<double>(oracle.size());

    if (shown < 5) {
      std::printf("query %2u (%zu terms): recall %.2f precision %.2f, contacted %zu/%zu "
                  "peers, top-%zu overlap with TFxIDF %zu/%zu\n",
                  query.id, terms.size(), recall(planetp_result.docs, relevant),
                  precision(planetp_result.docs, relevant),
                  planetp_result.contacted.size(), planetp_result.candidate_peers, k,
                  overlap, oracle.size());
      ++shown;
    }
  }
  std::printf("\naverage top-%zu overlap with the centralized oracle over %zu queries: "
              "%.1f%%\n",
              k, collection.queries.size(),
              100.0 * sum_overlap / static_cast<double>(collection.queries.size()));
  return 0;
}
