#include "search/ranker.hpp"

#include <algorithm>
#include <string_view>

#include "search/vector_model.hpp"

namespace planetp::search {

namespace {

using index::InvertedIndex;
using index::Posting;
using index::TermId;

/// Resolved (term id, weight) pairs of a query, in lexicographic term order.
/// The canonical order makes the floating-point accumulation below bitwise
/// reproducible no matter how the caller's container iterates — so the heap
/// top-k, the full-sort path, and CompressedIndex::score all agree exactly.
struct ResolvedTerms {
  std::vector<std::pair<TermId, double>> entries;
};

template <typename WeightFn>
void resolve_term(const InvertedIndex& idx, std::string_view term, ResolvedTerms& out,
                  WeightFn&& weight_of) {
  const TermId id = idx.term_id(term);
  if (id == index::kInvalidTermId) return;
  for (const auto& [prev, w] : out.entries) {
    if (prev == id) return;  // queries hold a handful of terms: linear dedup
  }
  const double weight = weight_of(id);
  if (weight <= 0.0) return;
  out.entries.emplace_back(id, weight);
}

/// Accumulate eq. 2 partial sums into a dense per-slot array. Returns the
/// touched slots (each once, in first-touch order).
std::vector<std::uint32_t> accumulate(const InvertedIndex& idx, const ResolvedTerms& terms,
                                      std::vector<double>& acc) {
  acc.assign(idx.doc_slot_count(), 0.0);
  std::vector<std::uint32_t> touched;
  for (const auto& [term, weight] : terms.entries) {
    const std::vector<Posting>& postings = idx.postings_by_id(term);
    const std::vector<std::uint32_t>& slots = idx.posting_slots(term);
    for (std::size_t i = 0; i < postings.size(); ++i) {
      const std::uint32_t slot = slots[i];
      // Contributions are strictly positive (weight > 0, freq >= 1), so an
      // exact zero means "first touch".
      if (acc[slot] == 0.0) touched.push_back(slot);
      acc[slot] += score_contribution(postings[i].term_freq, weight);
    }
  }
  return touched;
}

ScoredDoc scored_at(const InvertedIndex& idx, std::uint32_t slot, double sum) {
  return ScoredDoc{idx.doc_at_slot(slot), sum * length_norm(idx.doc_length_at_slot(slot))};
}

/// Deduplicated (term, weight) pairs in lexicographic term order — the
/// string-keyed analogue of ResolvedTerms for snapshot scoring, where terms
/// resolve by string lookup instead of TermId.
std::vector<std::pair<std::string_view, double>> sort_weighted_terms(
    const std::unordered_map<std::string, double>& term_weights) {
  std::vector<std::pair<std::string_view, double>> sorted;
  sorted.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) {
    if (weight > 0.0) sorted.emplace_back(term, weight);
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Accumulate eq. 2 partial sums over a snapshot's slot domain. Per
/// document, contributions arrive in the same lexicographic term order as
/// accumulate() above (a document has at most one live posting per term),
/// so the per-slot sums are bitwise identical to a sequential store's.
std::vector<std::uint32_t> accumulate_snapshot(
    const index::EpochSnapshot& snap,
    const std::vector<std::pair<std::string_view, double>>& terms, std::vector<double>& acc) {
  acc.assign(snap.slot_count(), 0.0);
  std::vector<std::uint32_t> touched;
  for (const auto& [term, weight] : terms) {
    const double w = weight;
    snap.for_each_posting(term, [&acc, &touched, w](std::uint32_t slot, std::uint32_t freq) {
      if (acc[slot] == 0.0) touched.push_back(slot);
      acc[slot] += score_contribution(freq, w);
    });
  }
  return touched;
}

ScoredDoc snapshot_scored_at(const index::EpochSnapshot& snap, std::uint32_t slot, double sum) {
  return ScoredDoc{snap.doc_at_slot(slot), sum * length_norm(snap.doc_length_at_slot(slot))};
}

/// Bounded top-k selection over touched slots: a heap of the k best seen so
/// far whose root is the *worst* kept entry. ranks_before is a strict total
/// order (docs are distinct), so the selected set, sorted, is byte-identical
/// to sorting all matches and truncating.
template <typename ScoreAt>
std::vector<ScoredDoc> select_top_k(const std::vector<std::uint32_t>& touched, std::size_t k,
                                    ScoreAt&& scored) {
  std::vector<ScoredDoc> heap;
  heap.reserve(std::min(k, touched.size()));
  for (const std::uint32_t slot : touched) {
    const ScoredDoc cand = scored(slot);
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), ranks_before);
    } else if (ranks_before(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), ranks_before);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), ranks_before);
    }
  }
  std::sort(heap.begin(), heap.end(), ranks_before);
  return heap;
}

}  // namespace

std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights) {
  // Canonical accumulation order: lexicographic by term.
  std::vector<std::pair<std::string_view, double>> sorted;
  sorted.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) sorted.emplace_back(term, weight);
  std::sort(sorted.begin(), sorted.end());

  ResolvedTerms resolved;
  resolved.entries.reserve(sorted.size());
  for (const auto& [term, weight] : sorted) {
    resolve_term(idx, term, resolved, [&](TermId) { return weight; });
  }

  std::vector<double> acc;
  const std::vector<std::uint32_t> touched = accumulate(idx, resolved, acc);

  std::vector<ScoredDoc> out;
  out.reserve(touched.size());
  for (const std::uint32_t slot : touched) {
    out.push_back(scored_at(idx, slot, acc[slot]));
  }
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

std::unordered_map<std::string, double> TfIdfRanker::idf_weights(
    const std::vector<std::string>& terms) const {
  std::unordered_map<std::string, double> weights;
  for (const std::string& t : terms) {
    if (weights.contains(t)) continue;
    weights.emplace(t, idf(index_->num_documents(), index_->collection_frequency(t)));
  }
  return weights;
}

std::vector<ScoredDoc> TfIdfRanker::top_k(const std::vector<std::string>& terms,
                                          std::size_t k) const {
  const InvertedIndex& idx = *index_;
  // Same canonical lexicographic order as score_documents, so the heap path
  // scores every document bitwise identically to the sort path.
  std::vector<std::string_view> sorted(terms.begin(), terms.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  ResolvedTerms resolved;
  resolved.entries.reserve(sorted.size());
  for (const std::string_view term : sorted) {
    resolve_term(idx, term, resolved, [&](TermId id) {
      return idf(idx.num_documents(), idx.collection_frequency_by_id(id));
    });
  }

  std::vector<double> acc;
  const std::vector<std::uint32_t> touched = accumulate(idx, resolved, acc);
  if (k == 0) return {};
  return select_top_k(touched, k,
                      [&](std::uint32_t slot) { return scored_at(idx, slot, acc[slot]); });
}

std::vector<ScoredDoc> score_snapshot(
    const index::EpochSnapshot& snap,
    const std::unordered_map<std::string, double>& term_weights) {
  const auto sorted = sort_weighted_terms(term_weights);
  std::vector<double> acc;
  const std::vector<std::uint32_t> touched = accumulate_snapshot(snap, sorted, acc);
  std::vector<ScoredDoc> out;
  out.reserve(touched.size());
  for (const std::uint32_t slot : touched) {
    out.push_back(snapshot_scored_at(snap, slot, acc[slot]));
  }
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

std::unordered_map<std::string, double> SnapshotRanker::idf_weights(
    const std::vector<std::string>& terms) const {
  std::unordered_map<std::string, double> weights;
  for (const std::string& t : terms) {
    if (weights.contains(t)) continue;
    weights.emplace(t, idf(snap_->num_documents(), snap_->collection_frequency(t)));
  }
  return weights;
}

std::vector<ScoredDoc> SnapshotRanker::top_k(const std::vector<std::string>& terms,
                                             std::size_t k) const {
  const index::EpochSnapshot& snap = *snap_;
  // Same canonical lexicographic order as TfIdfRanker::top_k, with IDF
  // inputs from the snapshot's exact live statistics.
  std::vector<std::string_view> sorted(terms.begin(), terms.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::pair<std::string_view, double>> weighted;
  weighted.reserve(sorted.size());
  for (const std::string_view term : sorted) {
    const double weight = idf(snap.num_documents(), snap.collection_frequency(term));
    if (weight > 0.0) weighted.emplace_back(term, weight);
  }

  std::vector<double> acc;
  const std::vector<std::uint32_t> touched = accumulate_snapshot(snap, weighted, acc);
  if (k == 0) return {};
  return select_top_k(
      touched, k, [&](std::uint32_t slot) { return snapshot_scored_at(snap, slot, acc[slot]); });
}

void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k) {
  if (docs.size() > k) docs.resize(k);
}

}  // namespace planetp::search
