#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

/// \file mem_sampler.hpp
/// Process memory sampling for benchmarks, read from /proc/self/status:
/// VmRSS (current resident set) and VmHWM (peak resident set — the
/// high-water mark, which survives frees and so attributes per-phase cost
/// when phases run in ascending size order). Values in kilobytes; zero on
/// platforms without procfs, so gates keyed on them must treat 0 as
/// "unknown", not "tiny".

namespace planetp::benchutil {

struct MemSample {
  std::size_t vm_rss_kb = 0;  ///< current resident set size
  std::size_t vm_hwm_kb = 0;  ///< peak resident set size since process start
};

inline MemSample sample_memory() {
  MemSample s;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return s;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      s.vm_rss_kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      s.vm_hwm_kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
    }
  }
  std::fclose(f);
  return s;
}

inline double to_mb(std::size_t kb) { return static_cast<double>(kb) / 1024.0; }

}  // namespace planetp::benchutil
