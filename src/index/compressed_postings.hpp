#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.hpp"
#include "util/hash.hpp"
#include "util/varint.hpp"

/// \file compressed_postings.hpp
/// Compressed, immutable posting lists in the style of Witten, Moffat &
/// Bell's "Managing Gigabytes" — the same reference the paper takes its
/// ranking equations from. The mutable InvertedIndex is the write path; a
/// CompressedIndex is a compact read-optimized snapshot of it:
///
///   - documents are numbered densely; ids are delta-coded varints,
///   - term frequencies are varints,
///   - each term's postings live in one contiguous byte run,
///   - postings are grouped into fixed-size blocks of kBlockPostings with a
///     skip entry per block (byte offset, last dense id, dense-id resume
///     base) plus the block's maximum score contribution, and a per-term
///     global upper bound (docs/INDEX.md "Block-max pruning").
///
/// Peers with large, slowly changing stores (the common case per §2's file
/// system citations) can serve queries from a snapshot several times
/// smaller than the hash-map index, rebuilding it only when enough changes
/// accumulate.
///
/// A CompressedIndex is also the read-optimized *base* of the epoch
/// snapshots in epoch_index.hpp: the background segment merge folds pending
/// in-memory segments into a fresh CompressedIndex via Builder, and readers
/// walk base postings through PostingCursor (dense() doubles as the
/// snapshot's accumulator slot). The skip entries let the pruned top-k
/// driver (search/ranker.cpp) jump a lagging cursor forward without
/// decoding through, and the block/term maxima bound what a document can
/// still score — the MaxScore/Block-Max-WAND organization.

namespace planetp::index {

/// Hostile-blob rejection (throws std::runtime_error). Out of line so the
/// inlined cursor fast path stays small.
[[noreturn]] void corrupt_blob(const char* what);

class CompressedIndex {
 public:
  CompressedIndex() = default;

  /// Postings per block. Small enough that a block decode is cheap, large
  /// enough that skip metadata stays ~1% of blob bytes.
  static constexpr std::uint32_t kBlockPostings = 128;

  /// Terms whose document frequency reaches 1/kDirectFraction of the corpus
  /// additionally keep a dense frequency array (slot -> term frequency,
  /// 0 = absent): the pruned driver's survivor probes hit such stop-word
  /// tier lists for candidates scattered across the whole dense range, and
  /// seeking a compressed cursor to each would decode essentially the
  /// entire list — the array answers in O(1) with no decoding. Derived
  /// (never serialized) and capped at u16 frequencies; rarer terms or
  /// burstier frequencies fall back to cursor seeks.
  static constexpr std::uint32_t kDirectFraction = 32;

  /// Direct arrays only exist at corpus sizes where survivor probes
  /// actually hurt: below this many documents a whole posting list decodes
  /// in a few blocks anyway, and the dense rows would dominate
  /// memory_bytes() — the compression that motivates this class.
  static constexpr std::uint32_t kDirectMinDocs = 4096;

  /// Per-block skip metadata. Offsets are relative to the term's byte run,
  /// so entries survive blob concatenation order changes (persistence
  /// round-trips rebuild the global blob in a different order).
  struct SkipEntry {
    std::uint32_t offset = 0;      ///< byte offset of the block's first posting
    std::uint32_t last_dense = 0;  ///< dense id of the block's last posting
    std::uint32_t base_dense = 0;  ///< delta-decode resume value (previous
                                   ///< block's last_dense; unused for block 0)
    /// max over the block's postings of w_{D,t} * 1/sqrt(|D|) — the largest
    /// score contribution a unit query weight can collect from this block.
    double max_contrib = 0.0;
    /// max term frequency in the block. Candidates with a known length give
    /// the tighter norm-aware bound w(max_freq) * 1/sqrt(|D_cand|), which
    /// max_contrib (worst norm over the whole block) cannot.
    std::uint32_t max_freq = 0;
  };

  /// Snapshot \p source. Document ids are remapped densely; the mapping is
  /// kept for translating results back.
  static CompressedIndex build(const InvertedIndex& source);

  /// Iterate a term's postings without materializing them.
  class PostingCursor {
   public:
    bool done() const { return remaining_ == 0; }
    /// Advance to the next posting; must not be called when done(). Inline:
    /// the pruned driver's accumulation pass decodes whole lists through
    /// this, and an out-of-line call per posting costs as much as the
    /// varint decode itself.
    void next() {
      --remaining_;
      if (remaining_ == 0) return;
      const std::uint32_t gap = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
      freq_ = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
      dense_ += gap + 1;
      if (dense_ >= owner_->docs_.size()) corrupt_blob("dense id out of range");
      doc_ = owner_->docs_[dense_];
      ++decoded_;
    }
    DocumentId doc() const { return doc_; }
    std::uint32_t term_freq() const { return freq_; }
    /// Dense id of doc() (ascending along the cursor; the epoch snapshot's
    /// accumulator slot for base documents).
    std::uint32_t dense() const { return dense_; }
    /// Total postings in the list (document frequency).
    std::uint32_t size() const { return count_; }
    /// Term statistics captured at lookup, so the query path hashes each
    /// term exactly once (the HashedTerms idiom of search/ipf.hpp).
    std::uint64_t collection_freq() const { return cf_; }
    /// The term's global score upper bound (max_contribution).
    double list_max() const { return list_max_; }
    /// The term's largest frequency in any document (norm-aware bounds).
    std::uint32_t list_max_freq() const { return list_max_freq_; }

    /// True when the list carries a dense frequency array (high-df terms;
    /// see kDirectFraction) — freq_at() then answers membership probes in
    /// O(1) without moving the cursor or decoding postings.
    bool direct() const { return direct_ != nullptr; }
    /// Term frequency at \p dense (0 = no posting). Only when direct().
    std::uint32_t freq_at(std::uint32_t dense) const { return direct_[dense]; }

    // --- skip-capable navigation (docs/INDEX.md "Block-max pruning") ---

    std::uint32_t num_blocks() const { return num_blocks_; }
    /// Block holding the currently loaded posting.
    std::uint32_t current_block() const { return (count_ - remaining_) / kBlockPostings; }
    /// The block's maximum score contribution (build-time exact).
    double block_max(std::uint32_t block) const { return skips_[block].max_contrib; }
    /// The block's maximum term frequency (build-time exact).
    std::uint32_t block_max_freq(std::uint32_t block) const { return skips_[block].max_freq; }
    /// Dense id of the block's last posting.
    std::uint32_t block_last(std::uint32_t block) const { return skips_[block].last_dense; }

    /// First block >= current_block() whose last posting's dense id reaches
    /// \p target (pure skip-entry scan, no decoding); num_blocks() when the
    /// list holds no such posting.
    std::uint32_t find_block(std::uint32_t target) const;

    /// Advance (forward only) until dense() >= \p target, jumping whole
    /// blocks via skip entries; exhausts the cursor when no posting
    /// reaches \p target. No-op when already at or past \p target.
    void seek_to(std::uint32_t target);

    // --- instrumentation (PruneStats feeding) ---
    std::uint64_t postings_decoded() const { return decoded_; }
    std::uint64_t blocks_jumped() const { return jumped_; }

   private:
    friend class CompressedIndex;
    PostingCursor(const CompressedIndex* owner, const std::uint8_t* data, std::size_t size,
                  std::uint32_t count, const SkipEntry* skips, std::uint32_t num_blocks,
                  std::uint64_t cf, double list_max, std::uint32_t list_max_freq,
                  const std::uint16_t* direct);

    /// Decode the block's first posting (delta base comes from the skip
    /// entry rather than the running dense id).
    void load_first_(std::uint32_t block) {
      const std::uint32_t gap = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
      freq_ = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
      dense_ = block == 0 ? gap : skips_[block].base_dense + gap + 1;
      if (dense_ >= owner_->docs_.size()) corrupt_blob("dense id out of range");
      doc_ = owner_->docs_[dense_];
      ++decoded_;
    }
    void jump_to_block_(std::uint32_t block);

    const CompressedIndex* owner_ = nullptr;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t pos_ = 0;
    std::uint32_t count_ = 0;      ///< total postings
    std::uint32_t remaining_ = 0;  ///< loaded posting + unread postings
    std::uint32_t dense_ = 0;      ///< running dense doc id
    DocumentId doc_;
    std::uint32_t freq_ = 0;
    const SkipEntry* skips_ = nullptr;
    std::uint32_t num_blocks_ = 0;
    std::uint64_t cf_ = 0;       ///< term collection frequency
    double list_max_ = 0.0;      ///< term-level max_contribution
    std::uint32_t list_max_freq_ = 0;  ///< term-level max frequency
    const std::uint16_t* direct_ = nullptr;  ///< dense freq array (high-df terms)
    std::uint64_t decoded_ = 0;  ///< postings decoded through this cursor
    std::uint64_t jumped_ = 0;   ///< blocks stepped over via skip entries
  };

  /// Cursor over \p term's postings (empty cursor when absent).
  PostingCursor postings(std::string_view term) const;

  /// Decode a full posting list (convenience for tests and scoring).
  std::vector<Posting> decode(std::string_view term) const;

  std::uint32_t document_frequency(std::string_view term) const;
  std::uint64_t collection_frequency(std::string_view term) const;
  /// Per-term global score upper bound: max over the term's postings of
  /// w_{D,t} * 1/sqrt(|D|) (0 when absent). Multiplied by the query weight
  /// this bounds the term's contribution to any document's score.
  double max_contribution(std::string_view term) const;
  std::uint32_t document_length(DocumentId doc) const;
  std::size_t num_documents() const { return docs_.size(); }
  std::size_t num_terms() const { return terms_.size(); }

  /// Dense-id accessors (the epoch snapshot's slot domain for base docs).
  const std::vector<DocumentId>& documents() const { return docs_; }
  DocumentId doc_at(std::uint32_t dense) const { return docs_[dense]; }
  std::uint32_t doc_length_at(std::uint32_t dense) const { return doc_lengths_[dense]; }
  /// Precomputed 1/sqrt(|D|) (identical bits to search::length_norm of the
  /// stored length — the pruned driver screens candidates with it, so it
  /// must not pay a sqrt per candidate).
  double doc_norm_at(std::uint32_t dense) const { return doc_norms_[dense]; }

  /// Visit every term once (unspecified order; used by the segment merge to
  /// build the term-set union).
  void for_each_term(const std::function<void(std::string_view)>& fn) const;

  /// Everything persistence needs to serialize one term: statistics, the
  /// raw byte run, and the block metadata.
  struct TermView {
    std::string_view term;
    std::uint32_t doc_freq = 0;
    std::uint64_t collection_freq = 0;
    const std::uint8_t* run = nullptr;  ///< delta-coded (gap, freq) varints
    std::uint32_t run_bytes = 0;
    const SkipEntry* skips = nullptr;
    std::uint32_t num_blocks = 0;
    double max_contrib = 0.0;
    std::uint32_t max_freq = 0;
  };
  void for_each_term_entry(const std::function<void(const TermView&)>& fn) const;

  /// Assemble a CompressedIndex directly from merge output (dense postings
  /// per term), bypassing an intermediate InvertedIndex. Produces exactly
  /// the layout build() would for the same logical content. Defined after
  /// the class (it holds a CompressedIndex by value).
  class Builder;

  /// Total bytes of the compressed structure (postings + dictionaries +
  /// skip metadata).
  std::size_t memory_bytes() const;

  /// Score documents against weighted query terms, identical semantics to
  /// search::score_documents over the source index. Exhaustive — the
  /// correctness reference the pruned driver is pinned against.
  std::vector<std::pair<DocumentId, double>> score(
      const std::unordered_map<std::string, double>& term_weights) const;

 private:
  struct TermEntry {
    std::uint32_t offset = 0;      ///< into blob_
    std::uint32_t length = 0;      ///< bytes
    std::uint32_t doc_freq = 0;    ///< postings count
    std::uint64_t collection_freq = 0;
    std::uint32_t skip_begin = 0;  ///< into skips_
    std::uint32_t num_blocks = 0;  ///< ceil(doc_freq / kBlockPostings)
    double max_contrib = 0.0;      ///< max over blocks of SkipEntry::max_contrib
    std::uint32_t max_freq = 0;    ///< max over blocks of SkipEntry::max_freq
    /// Start of the term's dense frequency array in direct_freqs_
    /// (num_documents entries), or kNoDirect for cursor-only terms.
    std::uint32_t direct_begin = kNoDirect;
  };
  static constexpr std::uint32_t kNoDirect = 0xFFFFFFFFu;

  /// Encode one term's postings (dense ascending) into blob_ + skips_ and
  /// register the TermEntry. Shared by build() and Builder::add_term so the
  /// layout and the block metadata are computed in exactly one place.
  void append_term_(std::string term,
                    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings);

  /// Transparent hashing: the epoch read path looks terms up by
  /// string_view, so find() must not materialize a std::string per probe.
  std::unordered_map<std::string, TermEntry, StringHash, std::equal_to<>> terms_;
  std::vector<std::uint8_t> blob_;         ///< all posting runs, concatenated
  std::vector<SkipEntry> skips_;           ///< all terms' block entries, concatenated
  std::vector<std::uint16_t> direct_freqs_;  ///< high-df terms' dense freq arrays
  std::vector<DocumentId> docs_;           ///< dense id -> original id
  std::vector<std::uint32_t> doc_lengths_; ///< by dense id
  std::vector<double> doc_norms_;          ///< 1/sqrt(length), by dense id
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> dense_of_;
};

class CompressedIndex::Builder {
 public:
  /// \p docs ascending by DocumentId, \p lengths parallel.
  Builder(std::vector<DocumentId> docs, std::vector<std::uint32_t> lengths);

  /// Add one term's postings as (dense id, freq), sorted ascending by
  /// dense id. Must be called at most once per term.
  void add_term(std::string_view term,
                const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings);

  CompressedIndex take() { return std::move(out_); }

 private:
  CompressedIndex out_;
};

}  // namespace planetp::index
