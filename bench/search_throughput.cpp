/// \file search_throughput.cpp
/// Query hot-path throughput (docs/SEARCH.md "Query hot path"): the eq. 3
/// "rank peers" step at 1000 and 5000 peers with paper-size 50 KB filters,
/// comparing
///   uncached — a from-scratch IpfTable scan per query (the paper's cost,
///              Table 1's dominant term at scale),
///   cold     — the same queries through a freshly primed CandidateCache
///              (first touch of each term pays the batched miss kernel),
///   warm     — a second pass over the same workload (all terms answered
///              from cached candidate sets; filters are never probed).
///
/// Emits BENCH_search_throughput.json with qps and p50/p99 latencies per
/// mode. Two built-in gates:
///   1. warm must be >= 5x uncached qps at 5000 peers (the cache is the
///      point; a run where it is not winning is a regression);
///   2. with --baseline <json>, warm qps must stay above half the recorded
///      baseline (scripts/check.sh runs this against bench/baselines/).
/// Usage: search_throughput [--quick] [--baseline <file>]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"
#include "search/ipf.hpp"

using namespace planetp;
using namespace planetp::search;

namespace {

constexpr std::size_t kHotTerms = 64;      ///< query vocabulary
constexpr std::size_t kHotPerPeer = 2;     ///< hot terms per peer filter (selective terms)
constexpr std::size_t kFillerPerPeer = 198;  ///< unique keys per peer filter
constexpr std::size_t kTermsPerQuery = 3;

std::string hot_term(std::size_t i) { return "hot" + std::to_string(i); }

/// Paper-size filters: each peer shares kHotPerPeer hot terms (a sliding
/// window over the hot vocabulary, so every hot term lands on ~N/8 peers)
/// plus unique filler keys that set realistic bit density.
std::vector<bloom::BloomFilter> build_population(std::size_t peers) {
  std::vector<bloom::BloomFilter> filters(peers, bloom::BloomFilter{});
  for (std::size_t p = 0; p < peers; ++p) {
    for (std::size_t j = 0; j < kHotPerPeer; ++j) {
      filters[p].insert(hot_term((p + j * (kHotTerms / kHotPerPeer)) % kHotTerms));
    }
    for (std::size_t j = 0; j < kFillerPerPeer; ++j) {
      filters[p].insert("p" + std::to_string(p) + "_k" + std::to_string(j));
    }
  }
  return filters;
}

std::vector<HashedTerms> build_queries(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<HashedTerms> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    for (std::size_t t = 0; t < kTermsPerQuery; ++t) {
      terms.push_back(hot_term(rng() % kHotTerms));
    }
    queries.push_back(HashedTerms::from(terms));
  }
  return queries;
}

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

struct ModeResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

ModeResult summarize(std::vector<double>& per_query_ns) {
  ModeResult r;
  double total = 0.0;
  for (double ns : per_query_ns) total += ns;
  r.qps = total > 0.0 ? static_cast<double>(per_query_ns.size()) * 1e9 / total : 0.0;
  std::sort(per_query_ns.begin(), per_query_ns.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(per_query_ns.size() - 1));
    return per_query_ns[i] / 1e3;
  };
  r.p50_us = at(0.50);
  r.p99_us = at(0.99);
  return r;
}

/// One timed pass: table() builds the IpfTable for query q; the ranked-peer
/// count feeds a sink so nothing is optimized away.
template <typename TableFn>
ModeResult timed_pass(const std::vector<HashedTerms>& queries, TableFn&& table,
                      std::size_t* sink) {
  std::vector<double> per_query_ns;
  per_query_ns.reserve(queries.size());
  for (const HashedTerms& q : queries) {
    const double t0 = now_ns();
    const IpfTable t = table(q);
    *sink += rank_peers(t).size();
    per_query_ns.push_back(now_ns() - t0);
  }
  return summarize(per_query_ns);
}

/// Byte-identity spot check between the cached and uncached paths.
bool tables_identical(const IpfTable& a, const IpfTable& b) {
  if (a.num_peers() != b.num_peers() || a.terms() != b.terms()) return false;
  for (const std::string& t : a.terms()) {
    if (a.weight(t) != b.weight(t)) return false;
    std::vector<std::uint32_t> pa = a.peers_with(t);
    std::vector<std::uint32_t> pb = b.peers_with(t);
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    if (pa != pb) return false;
  }
  const auto ra = rank_peers(a);
  const auto rb = rank_peers(b);
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].peer != rb[i].peer || ra[i].rank != rb[i].rank) return false;
  }
  return true;
}

struct SizeResult {
  std::size_t peers = 0;
  std::size_t queries = 0;
  ModeResult uncached, cold, warm;
  double warm_speedup = 0.0;
};

SizeResult run_size(std::size_t peers, std::size_t nqueries) {
  SizeResult out;
  out.peers = peers;
  out.queries = nqueries;

  const std::vector<bloom::BloomFilter> filters = build_population(peers);
  std::vector<PeerFilter> views;
  views.reserve(peers);
  for (std::size_t p = 0; p < peers; ++p) {
    views.push_back({static_cast<std::uint32_t>(p), &filters[p]});
  }
  const std::vector<HashedTerms> queries = build_queries(nqueries, 7 * peers + 1);

  std::size_t sink = 0;
  out.uncached = timed_pass(queries, [&](const HashedTerms& q) { return IpfTable(q, views); },
                            &sink);

  CandidateCache cache;
  for (std::size_t p = 0; p < peers; ++p) {
    // Aliasing shared_ptr: the bench owns the filters and outlives the cache.
    cache.update_peer(static_cast<std::uint32_t>(p),
                      std::shared_ptr<const bloom::BloomFilter>(std::shared_ptr<void>(),
                                                                &filters[p]),
                      1);
  }

  for (std::size_t q = 0; q < std::min<std::size_t>(3, queries.size()); ++q) {
    if (!tables_identical(cache.lookup(queries[q], views), IpfTable(queries[q], views))) {
      std::fprintf(stderr, "FAIL: cached table diverges from uncached at %zu peers\n", peers);
      std::exit(1);
    }
  }
  cache.clear();
  for (std::size_t p = 0; p < peers; ++p) {
    cache.update_peer(static_cast<std::uint32_t>(p),
                      std::shared_ptr<const bloom::BloomFilter>(std::shared_ptr<void>(),
                                                                &filters[p]),
                      1);
  }

  out.cold = timed_pass(queries, [&](const HashedTerms& q) { return cache.lookup(q, views); },
                        &sink);
  out.warm = timed_pass(queries, [&](const HashedTerms& q) { return cache.lookup(q, views); },
                        &sink);
  out.warm_speedup = out.uncached.qps > 0.0 ? out.warm.qps / out.uncached.qps : 0.0;

  std::printf("%5zu peers, %4zu queries:\n", peers, nqueries);
  std::printf("  uncached  %10.0f qps   p50 %8.1f us   p99 %8.1f us\n", out.uncached.qps,
              out.uncached.p50_us, out.uncached.p99_us);
  std::printf("  cold      %10.0f qps   p50 %8.1f us   p99 %8.1f us\n", out.cold.qps,
              out.cold.p50_us, out.cold.p99_us);
  std::printf("  warm      %10.0f qps   p50 %8.1f us   p99 %8.1f us   (%.1fx vs uncached)\n",
              out.warm.qps, out.warm.p50_us, out.warm.p99_us, out.warm_speedup);
  if (sink == 0) std::printf("  (sink empty)\n");
  return out;
}

void append_mode(std::ostringstream& os, const char* name, const ModeResult& m) {
  os << "\"" << name << "\": {\"qps\": " << m.qps << ", \"p50_us\": " << m.p50_us
     << ", \"p99_us\": " << m.p99_us << "}";
}

/// Minimal key lookup in the baseline JSON: finds "key" and parses the
/// number after the following ':'.
double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  const std::size_t nqueries = quick ? 64 : 256;
  std::vector<SizeResult> results;
  results.push_back(run_size(1000, nqueries));
  results.push_back(run_size(5000, nqueries));

  std::ostringstream os;
  os << "{\n  \"bench\": \"search_throughput\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    os << "    {\"peers\": " << r.peers << ", \"queries\": " << r.queries << ", ";
    append_mode(os, "uncached", r.uncached);
    os << ", ";
    append_mode(os, "cold", r.cold);
    os << ", ";
    append_mode(os, "warm", r.warm);
    os << ", \"warm_speedup_vs_uncached\": " << r.warm_speedup << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (const SizeResult& r : results) {
    os << "  \"warm_qps_" << r.peers << "\": " << r.warm.qps << ",\n";
  }
  os << "  \"warm_speedup_5000\": " << results.back().warm_speedup << "\n}\n";

  std::ofstream("BENCH_search_throughput.json") << os.str();
  std::printf("wrote BENCH_search_throughput.json\n");

  int rc = 0;
  if (results.back().warm_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: warm cache only %.1fx vs uncached at 5000 peers (need >= 5x)\n",
                 results.back().warm_speedup);
    rc = 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const SizeResult& r : results) {
      const std::string key = "warm_qps_" + std::to_string(r.peers);
      const double recorded = parse_key(baseline, key);
      if (recorded <= 0.0) continue;
      if (r.warm.qps < recorded / 2.0) {
        std::fprintf(stderr,
                     "FAIL: warm qps at %zu peers regressed: %.0f vs baseline %.0f (>2x drop)\n",
                     r.peers, r.warm.qps, recorded);
        rc = 1;
      } else {
        std::printf("baseline check at %zu peers: %.0f qps vs recorded %.0f — ok\n", r.peers,
                    r.warm.qps, recorded);
      }
    }
  }
  return rc;
}
