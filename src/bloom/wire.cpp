#include "bloom/wire.hpp"

#include <stdexcept>

namespace planetp::bloom {

namespace {

void encode_bits(ByteWriter& out, const BitVector& bits) {
  const CompressedBits c = compress_bits(bits);
  out.varint(c.nbits);
  out.varint(c.set_bits);
  out.varint(c.m);
  out.bytes(c.payload);
}

BitVector decode_bits(ByteReader& in) {
  CompressedBits c;
  c.nbits = in.varint();
  c.set_bits = in.varint();
  c.m = in.varint();
  c.payload = in.bytes();
  return decompress_bits(c);
}

std::size_t encoded_bits_size(const BitVector& bits) {
  const CompressedBits c = compress_bits(bits);
  ByteWriter probe;
  probe.varint(c.nbits);
  probe.varint(c.set_bits);
  probe.varint(c.m);
  probe.varint(c.payload.size());
  return probe.size() + c.payload.size();
}

/// Read the compressed header + payload without decoding the gap stream.
CompressedBits read_compressed(ByteReader& in) {
  CompressedBits c;
  c.nbits = in.varint();
  c.set_bits = in.varint();
  c.m = in.varint();
  c.payload = in.bytes();
  return c;
}

}  // namespace

void encode_filter(ByteWriter& out, const BloomFilter& filter) {
  out.varint(filter.num_hashes());
  encode_bits(out, filter.bits());
}

BloomFilter decode_filter(ByteReader& in) {
  BloomParams params;
  params.num_hashes = static_cast<std::uint32_t>(in.varint());
  BitVector bits = decode_bits(in);
  params.bits = bits.size();
  BloomFilter filter(params);
  filter.mutable_bits() = std::move(bits);
  return filter;
}

std::size_t encoded_filter_size(const BloomFilter& filter) {
  return 1 + encoded_bits_size(filter.bits());
}

void encode_diff(ByteWriter& out, const BitVector& diff) { encode_bits(out, diff); }

BitVector decode_diff(ByteReader& in) { return decode_bits(in); }

std::size_t encoded_diff_size(const BitVector& diff) { return encoded_bits_size(diff); }

BloomFilter decode_filter_bytes(std::span<const std::uint8_t> wire) {
  ByteReader reader(wire);
  return decode_filter(reader);
}

std::vector<std::uint8_t> merge_diff_wire(std::span<const std::uint8_t> filter_wire,
                                          std::span<const std::uint8_t> diff_wire) {
  ByteReader filter_in(filter_wire);
  const std::uint64_t num_hashes = filter_in.varint();
  const CompressedBits base = read_compressed(filter_in);
  ByteReader diff_in(diff_wire);
  const CompressedBits diff = read_compressed(diff_in);
  if (base.nbits != diff.nbits)
    throw std::invalid_argument("merge_diff_wire: filter/diff size mismatch");

  const CompressedBits merged = xor_merge(base, diff);
  ByteWriter out;
  out.varint(num_hashes);
  out.varint(merged.nbits);
  out.varint(merged.set_bits);
  out.varint(merged.m);
  out.bytes(merged.payload);
  return out.take();
}

std::vector<std::uint64_t> diff_positions(std::span<const std::uint8_t> diff_wire) {
  ByteReader in(diff_wire);
  return golomb_positions(read_compressed(in));
}

}  // namespace planetp::bloom
