#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

/// \file snippet_store.hpp
/// Per-broker storage of published XML snippets (§4). "Information is
/// published to the brokerage service as an XML snippet with a set of
/// associated keys and a discard time. ... The snippet is discarded after
/// its discard time expires."

namespace planetp::broker {

struct Snippet {
  std::uint64_t id = 0;           ///< publisher-assigned unique id
  std::uint32_t publisher = 0;    ///< the peer that published it
  std::string xml;                ///< the snippet body
  std::vector<std::string> keys;  ///< the keys it was published under
  TimePoint discard_at = 0;       ///< absolute expiry time
};

/// The slice of the key space one broker stores: key -> snippet refs.
class SnippetStore {
 public:
  /// Store \p snippet under \p key. A (key, snippet-id) pair published twice
  /// refreshes the body and expiry.
  void put(const std::string& key, const Snippet& snippet);

  /// All live snippets for \p key at \p now; expired entries are pruned.
  std::vector<Snippet> get(const std::string& key, TimePoint now);

  /// Drop every expired snippet; returns how many were discarded.
  std::size_t sweep(TimePoint now);

  /// Remove every entry for a (publisher, snippet-id); used when a snippet
  /// is withdrawn early.
  std::size_t erase_snippet(std::uint32_t publisher, std::uint64_t snippet_id);

  /// Extract all entries whose key maps outside this broker's new range —
  /// handoff support. The predicate receives the key and returns true when
  /// the entry must move; moved entries are removed locally.
  std::vector<std::pair<std::string, Snippet>> extract_if(
      const std::function<bool(const std::string&)>& must_move);

  /// Every (key, snippet) pair — the graceful-leave handoff payload.
  std::vector<std::pair<std::string, Snippet>> all() const;

  std::size_t key_count() const { return by_key_.size(); }
  std::size_t snippet_count() const;

 private:
  std::unordered_map<std::string, std::vector<Snippet>> by_key_;
};

}  // namespace planetp::broker
