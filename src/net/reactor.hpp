#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "net/net_stats.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file reactor.hpp
/// Production event loop of the live runtime (docs/NET.md): an epoll
/// edge-triggered reactor with a persistent interest set, per-wakeup read
/// budgets, bounded classed outbound queues with an explicit backpressure
/// policy, a jittered-exponential reconnect state machine per outbound
/// address, idle-connection reaping, and a NetStats observability surface.
///
/// All callbacks run on the reactor thread. Other threads interact only via
/// send() / post() / schedule(), which are thread-safe.

namespace planetp::net {

/// Delivery class of an outbound frame; drives the backpressure policy.
/// Gossip is redundant by design (anti-entropy repairs any loss), so gossip
/// frames are droppable — oldest first — when a queue exceeds its caps. RPC
/// frames are never evicted once queued; when one cannot even be admitted the
/// sender is told so it can fail fast instead of silently buffering.
enum class SendClass : std::uint8_t { kGossip = 0, kRpc = 1 };

/// What send() did with the frame. kEnqueued means "accepted for a delivery
/// attempt" — a later asynchronous failure is still reported via on_failure.
enum class SendResult : std::uint8_t {
  kEnqueued = 0,
  kRejectedFull = 1,     ///< global outbound byte cap reached (RPC admission)
  kRejectedOversize = 2, ///< frame larger than ReactorConfig::max_frame_bytes
};

struct ReactorConfig {
  /// Largest acceptable frame, inbound and outbound. Feeds the per-connection
  /// FrameDecoder cap, so a peer streaming just-under-limit headers can hold
  /// at most this much undecoded buffer per connection (it used to be a hard
  /// 64 MB). Also rejects oversize outbound frames at send().
  std::size_t max_frame_bytes = 16u << 20;

  /// Outbound byte caps: per connection and across all connections. When a
  /// queue exceeds a cap, queued gossip frames are evicted oldest-first; if
  /// nothing droppable remains the incoming frame itself is dropped and the
  /// failure handler fires.
  std::size_t per_connection_outbound_cap = 4u << 20;
  std::size_t global_outbound_cap = 64u << 20;

  /// Per-connection read budget per wakeup: one chatty peer cannot starve
  /// the loop — once exhausted, the connection re-queues for the next
  /// iteration and other fds get served.
  std::size_t read_budget_per_wakeup = 256 * 1024;

  /// Connections with no traffic and an empty queue for this long are closed
  /// (with an RST so loopback soaks do not accumulate TIME_WAIT state).
  /// 0 disables reaping.
  Duration idle_timeout = 30 * kSecond;

  /// Cadence of the maintenance sweep (idle reaping + connect timeouts).
  Duration maintenance_interval = 500 * kMillisecond;

  /// A non-blocking connect still pending after this long counts as failed.
  Duration connect_timeout = 2 * kSecond;

  /// Reconnect backoff: after the n-th consecutive failure to an address the
  /// next attempt waits min(base << (n-1), max), scaled by a uniform jitter
  /// in [0.5, 1.5). Any successful connect resets the streak.
  Duration reconnect_backoff_base = 50 * kMillisecond;
  Duration reconnect_backoff_max = 5 * kSecond;

  /// SO_SNDBUF for outbound sockets (0 = kernel default). Tests use tiny
  /// buffers to exercise backpressure without megabytes of traffic.
  int socket_send_buffer = 0;
};

class Reactor {
 public:
  using FrameHandler = std::function<void(const Frame&)>;
  using FailureHandler = std::function<void(const std::string& address)>;

  explicit Reactor(ReactorConfig config = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Bind and listen on 127.0.0.1:\p port (0 = ephemeral). Must be called
  /// before start(). Returns the bound port.
  std::uint16_t listen(std::uint16_t port);

  /// Start the loop on its own thread. \p on_frame receives every inbound
  /// frame; \p on_failure fires when delivery to an address definitively
  /// failed: connect refused/reset/timed out (queued output or not), a frame
  /// dropped by backpressure or backoff, or an established connection dying
  /// with output pending.
  void start(FrameHandler on_frame, FailureHandler on_failure);

  /// Stop the loop, join the thread and close every connection. Idempotent.
  void stop();

  /// Queue a frame to \p address ("host:port"), connecting if needed.
  /// Thread-safe; returns immediately. See SendResult for the admission
  /// outcome; asynchronous failures are reported via on_failure.
  SendResult send(const std::string& address, Frame frame, SendClass cls = SendClass::kGossip);

  /// Run \p fn on the reactor thread as soon as possible. Thread-safe.
  void post(std::function<void()> fn);

  /// Run \p fn on the reactor thread after \p delay. Thread-safe. Returns a
  /// token that cancel_timer() accepts.
  std::uint64_t schedule(Duration delay, std::function<void()> fn);
  void cancel_timer(std::uint64_t token);

  std::uint16_t port() const { return port_; }
  std::string address() const { return "127.0.0.1:" + std::to_string(port_); }

  /// Counter snapshot (thread-safe; relaxed reads).
  NetStats stats() const { return counters_.snapshot(); }
  const ReactorConfig& config() const { return config_; }

 private:
  /// One queued outbound frame: its full wire encoding plus its class.
  struct OutFrame {
    std::vector<std::uint8_t> bytes;
    SendClass cls = SendClass::kGossip;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;    ///< guards against same-batch fd reuse
    std::string address;      ///< outbound target, empty for inbound
    bool connecting = false;  ///< non-blocking connect in flight
    bool read_pending = false;  ///< budget exhausted; more data may be buffered
    std::deque<OutFrame> out;
    std::size_t front_pos = 0;    ///< bytes of out.front() already written
    std::size_t queued_bytes = 0; ///< sum of queued frame sizes
    FrameDecoder decoder;
    TimePoint created_at = 0;
    TimePoint last_activity = 0;
  };

  /// Reconnect state machine per outbound address.
  struct Link {
    int fd = -1;                 ///< live connection, -1 when none
    std::uint32_t failures = 0;  ///< consecutive connect/delivery failures
    TimePoint next_attempt = 0;  ///< earliest allowed reconnect time
  };

  enum class CloseReason : std::uint8_t {
    kError = 0,       ///< reset / connect failure / corrupt stream
    kRemoteClose = 1, ///< clean EOF with nothing pending
    kIdle = 2,        ///< reaped by the idle sweep
    kShutdown = 3,    ///< reactor stop
  };

  void loop();
  void wake();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void close_connection(int fd, CloseReason reason);
  void enqueue_on_reactor(const std::string& address, Frame frame, SendClass cls);
  Connection* ensure_connection(const std::string& address, TimePoint now);
  bool enforce_caps(Connection& conn);
  bool drop_oldest_gossip(Connection& conn);
  void flush(Connection& conn);
  void note_delivery_failure(const std::string& address, TimePoint now);
  void maintenance_sweep();
  void drain_tasks();
  void fire_timers();
  void process_pending_reads();
  void accept_new();
  static TimePoint steady_now();

  ReactorConfig config_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd for cross-thread wakeups
  std::uint16_t port_ = 0;
  std::uint64_t next_gen_ = 1;
  TimePoint next_maintenance_ = 0;

  FrameHandler on_frame_;
  FailureHandler on_failure_;

  std::unordered_map<int, Connection> conns_;
  std::unordered_map<std::string, Link> links_;  ///< address -> reconnect state
  std::vector<int> pending_reads_;               ///< budget-exhausted fds

  NetCounters counters_;
  Rng rng_{0x9e3779b97f4a7c15ULL};  ///< backoff jitter only (reactor thread)

  std::mutex mu_;
  std::deque<std::function<void()>> tasks_;

  struct Timer {
    TimePoint at;
    std::uint64_t token;
    std::function<void()> fn;
  };
  std::multimap<TimePoint, Timer> timers_;  // reactor thread only
  std::atomic<std::uint64_t> next_timer_token_{1};
  std::mutex timer_mu_;
  std::vector<Timer> pending_timers_;        // injected from other threads
  std::vector<std::uint64_t> cancelled_timers_;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace planetp::net
