#include "index/compressed_postings.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/varint.hpp"

namespace planetp::index {

namespace {

// w_{D,t} = 1 + log f_{D,t} and 1/sqrt(|D|) — same formulas as
// search::doc_weight / search::length_norm, duplicated here to keep the
// index layer free of search deps (score() below already does the same).
double weight_of(std::uint32_t freq) {
  return 1.0 + std::log(static_cast<double>(freq));
}
double norm_of(std::uint32_t doc_length) {
  return doc_length == 0 ? 0.0 : 1.0 / std::sqrt(static_cast<double>(doc_length));
}

}  // namespace

[[noreturn]] void corrupt_blob(const char* what) {
  throw std::runtime_error(std::string("compressed postings: corrupt blob (") + what + ")");
}

void CompressedIndex::append_term_(
    std::string term, const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings) {
  if (postings.empty()) return;
  TermEntry te;
  te.offset = static_cast<std::uint32_t>(blob_.size());
  te.doc_freq = static_cast<std::uint32_t>(postings.size());
  te.skip_begin = static_cast<std::uint32_t>(skips_.size());
  te.num_blocks = (te.doc_freq + kBlockPostings - 1) / kBlockPostings;

  std::uint32_t prev = 0;
  bool first = true;
  std::uint32_t in_block = 0;  // postings encoded into the current block
  SkipEntry sk;
  for (const auto& [dense, freq] : postings) {
    if (in_block == 0) {
      sk = SkipEntry{};
      sk.offset = static_cast<std::uint32_t>(blob_.size()) - te.offset;
      sk.base_dense = prev;  // delta decoding resumes from the previous posting
    }
    put_varint(blob_, first ? dense : dense - prev - 1);
    put_varint(blob_, freq);
    te.collection_freq += freq;
    const double contrib = weight_of(freq) * doc_norms_[dense];
    sk.max_contrib = std::max(sk.max_contrib, contrib);
    te.max_contrib = std::max(te.max_contrib, contrib);
    sk.max_freq = std::max(sk.max_freq, freq);
    te.max_freq = std::max(te.max_freq, freq);
    prev = dense;
    first = false;
    if (++in_block == kBlockPostings) {
      sk.last_dense = dense;
      skips_.push_back(sk);
      in_block = 0;
    }
  }
  if (in_block != 0) {
    sk.last_dense = prev;
    skips_.push_back(sk);
  }
  te.length = static_cast<std::uint32_t>(blob_.size()) - te.offset;
  // High-df terms get a dense frequency array for O(1) survivor probes
  // (see kDirectFraction). u16 per slot; a burstier frequency anywhere in
  // the list falls back to cursor seeks for the whole term.
  if (docs_.size() >= kDirectMinDocs &&
      te.doc_freq * kDirectFraction >= docs_.size() &&
      te.max_freq <= std::numeric_limits<std::uint16_t>::max()) {
    te.direct_begin = static_cast<std::uint32_t>(direct_freqs_.size());
    direct_freqs_.resize(direct_freqs_.size() + docs_.size(), 0);
    std::uint16_t* row = direct_freqs_.data() + te.direct_begin;
    for (const auto& [dense, freq] : postings) row[dense] = static_cast<std::uint16_t>(freq);
  }
  terms_.emplace(std::move(term), te);
}

CompressedIndex CompressedIndex::build(const InvertedIndex& source) {
  CompressedIndex out;

  // Dense renumbering in ascending original-id order: postings within each
  // term can then be written sorted, and deltas stay small.
  out.docs_ = source.documents();
  out.doc_lengths_.reserve(out.docs_.size());
  out.doc_norms_.reserve(out.docs_.size());
  for (std::uint32_t dense = 0; dense < out.docs_.size(); ++dense) {
    out.dense_of_.emplace(out.docs_[dense], dense);
    out.doc_lengths_.push_back(source.document_length(out.docs_[dense]));
    out.doc_norms_.push_back(norm_of(out.doc_lengths_.back()));
  }

  source.for_each_term([&](const std::string& term) {
    const auto& plist = source.postings(term);
    // (dense id, freq), sorted by dense id for delta coding.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(plist.size());
    for (const Posting& p : plist) {
      entries.emplace_back(out.dense_of_.at(p.doc), p.term_freq);
    }
    std::sort(entries.begin(), entries.end());
    out.append_term_(term, entries);
  });
  return out;
}

CompressedIndex::PostingCursor::PostingCursor(const CompressedIndex* owner,
                                              const std::uint8_t* data, std::size_t size,
                                              std::uint32_t count, const SkipEntry* skips,
                                              std::uint32_t num_blocks, std::uint64_t cf,
                                              double list_max, std::uint32_t list_max_freq,
                                              const std::uint16_t* direct)
    : owner_(owner), data_(data), size_(size), count_(count), remaining_(count),
      skips_(skips), num_blocks_(num_blocks), cf_(cf), list_max_(list_max),
      list_max_freq_(list_max_freq), direct_(direct) {
  if (remaining_ > 0) load_first_(0);
}

std::uint32_t CompressedIndex::PostingCursor::find_block(std::uint32_t target) const {
  // Binary search: the pruned driver probes parked cursors once per
  // screened candidate, so a linear scan over a long list's skip table
  // would dominate the probe.
  std::uint32_t lo = current_block();
  std::uint32_t hi = num_blocks_;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (skips_[mid].last_dense < target) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}

void CompressedIndex::PostingCursor::jump_to_block_(std::uint32_t block) {
  const SkipEntry& sk = skips_[block];
  // Hostile-blob discipline: a decoded skip offset must stay inside the
  // term's run (persistence validates this too; the cursor never trusts it).
  if (sk.offset >= size_) corrupt_blob("skip offset out of range");
  pos_ = sk.offset;
  remaining_ = count_ - block * kBlockPostings;
  load_first_(block);
}

void CompressedIndex::PostingCursor::seek_to(std::uint32_t target) {
  if (done() || dense_ >= target) return;
  const std::uint32_t b = find_block(target);
  if (b == num_blocks_) {
    // No posting reaches target; candidates only grow, so the cursor is
    // spent for good.
    remaining_ = 0;
    return;
  }
  const std::uint32_t cur = current_block();
  if (b > cur) {
    jumped_ += b - cur;
    jump_to_block_(b);
  }
  // In-block linear decode; block b's last_dense >= target guarantees
  // termination on a well-formed blob.
  while (!done() && dense_ < target) next();
}

CompressedIndex::PostingCursor CompressedIndex::postings(std::string_view term) const {
  auto it = terms_.find(term);
  if (it == terms_.end()) {
    return PostingCursor(this, nullptr, 0, 0, nullptr, 0, 0, 0.0, 0, nullptr);
  }
  const TermEntry& te = it->second;
  return PostingCursor(this, blob_.data() + te.offset, te.length, te.doc_freq,
                       skips_.data() + te.skip_begin, te.num_blocks, te.collection_freq,
                       te.max_contrib, te.max_freq,
                       te.direct_begin == kNoDirect ? nullptr
                                                    : direct_freqs_.data() + te.direct_begin);
}

std::vector<Posting> CompressedIndex::decode(std::string_view term) const {
  std::vector<Posting> out;
  for (PostingCursor c = postings(term); !c.done(); c.next()) {
    out.push_back(Posting{c.doc(), c.term_freq()});
  }
  return out;
}

std::uint32_t CompressedIndex::document_frequency(std::string_view term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? 0 : it->second.doc_freq;
}

std::uint64_t CompressedIndex::collection_frequency(std::string_view term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? 0 : it->second.collection_freq;
}

double CompressedIndex::max_contribution(std::string_view term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? 0.0 : it->second.max_contrib;
}

void CompressedIndex::for_each_term(const std::function<void(std::string_view)>& fn) const {
  for (const auto& [term, te] : terms_) fn(term);
}

void CompressedIndex::for_each_term_entry(
    const std::function<void(const TermView&)>& fn) const {
  for (const auto& [term, te] : terms_) {
    TermView v;
    v.term = term;
    v.doc_freq = te.doc_freq;
    v.collection_freq = te.collection_freq;
    v.run = blob_.data() + te.offset;
    v.run_bytes = te.length;
    v.skips = skips_.data() + te.skip_begin;
    v.num_blocks = te.num_blocks;
    v.max_contrib = te.max_contrib;
    v.max_freq = te.max_freq;
    fn(v);
  }
}

CompressedIndex::Builder::Builder(std::vector<DocumentId> docs,
                                  std::vector<std::uint32_t> lengths) {
  out_.docs_ = std::move(docs);
  out_.doc_lengths_ = std::move(lengths);
  out_.doc_norms_.reserve(out_.doc_lengths_.size());
  for (const std::uint32_t len : out_.doc_lengths_) out_.doc_norms_.push_back(norm_of(len));
  for (std::uint32_t dense = 0; dense < out_.docs_.size(); ++dense) {
    out_.dense_of_.emplace(out_.docs_[dense], dense);
  }
}

void CompressedIndex::Builder::add_term(
    std::string_view term,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings) {
  out_.append_term_(std::string(term), postings);
}

std::uint32_t CompressedIndex::document_length(DocumentId doc) const {
  auto it = dense_of_.find(doc);
  return it == dense_of_.end() ? 0 : doc_lengths_[it->second];
}

std::size_t CompressedIndex::memory_bytes() const {
  std::size_t bytes = blob_.size();
  for (const auto& [term, te] : terms_) bytes += term.size() + sizeof(TermEntry);
  bytes += skips_.size() * sizeof(SkipEntry);
  bytes += direct_freqs_.size() * sizeof(std::uint16_t);
  bytes += docs_.size() * sizeof(DocumentId);
  bytes += doc_lengths_.size() * sizeof(std::uint32_t);
  bytes += doc_norms_.size() * sizeof(double);
  bytes += dense_of_.size() * (sizeof(DocumentId) + sizeof(std::uint32_t));
  return bytes;
}

std::vector<std::pair<DocumentId, double>> CompressedIndex::score(
    const std::unordered_map<std::string, double>& term_weights) const {
  // Accumulate over dense ids (a flat array beats a hash map here). Terms
  // are visited in lexicographic order — the same canonical order as
  // search::score_documents — so per-document sums are bitwise identical to
  // the uncompressed ranking.
  std::vector<double> acc(docs_.size(), 0.0);
  std::vector<bool> touched(docs_.size(), false);
  std::vector<std::pair<std::string_view, double>> sorted_terms;
  sorted_terms.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) sorted_terms.emplace_back(term, weight);
  std::sort(sorted_terms.begin(), sorted_terms.end());
  for (const auto& [term, weight] : sorted_terms) {
    if (weight <= 0.0) continue;
    for (PostingCursor c = postings(term); !c.done(); c.next()) {
      acc[c.dense()] += weight_of(c.term_freq()) * weight;
      touched[c.dense()] = true;
    }
  }
  std::vector<std::pair<DocumentId, double>> out;
  for (std::uint32_t dense = 0; dense < docs_.size(); ++dense) {
    if (!touched[dense]) continue;
    out.emplace_back(docs_[dense], acc[dense] * doc_norms_[dense]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace planetp::index
