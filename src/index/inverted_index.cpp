#include "index/inverted_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace planetp::index {

const std::vector<Posting>& InvertedIndex::empty_postings_() {
  static const std::vector<Posting> empty;
  return empty;
}

const std::vector<std::uint32_t>& InvertedIndex::empty_slots_() {
  static const std::vector<std::uint32_t> empty;
  return empty;
}

TermId InvertedIndex::intern_term(std::string_view term) {
  const TermId id = dict_.intern(term);
  if (id >= terms_.size()) terms_.resize(id + 1);
  return id;
}

void InvertedIndex::add_document_counts(DocumentId doc, const TermCounts& counts) {
  if (slot_of_.contains(doc)) {
    throw std::invalid_argument("InvertedIndex::add_document: document already indexed");
  }

  // Assign a dense slot (reusing freed ones keeps the accumulator domain
  // compact under churn).
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_docs_[slot] = doc;
  } else {
    slot = static_cast<std::uint32_t>(slot_docs_.size());
    slot_docs_.push_back(doc);
    slot_lengths_.push_back(0);
    slot_terms_.emplace_back();
  }
  slot_of_.emplace(doc, slot);

  std::uint32_t length = 0;
  std::vector<TermId>& doc_terms = slot_terms_[slot];
  doc_terms.reserve(counts.terms().size());
  for (const TermId term : counts.terms()) {
    const std::uint32_t freq = counts.count(term);
    TermEntry& entry = terms_[term];
    if (entry.postings.empty()) ++nonempty_terms_;
    entry.postings.push_back(Posting{doc, freq});
    entry.slots.push_back(slot);
    entry.collection_freq += freq;
    length += freq;
    doc_terms.push_back(term);
  }
  slot_lengths_[slot] = length;
}

void InvertedIndex::add_document(
    DocumentId doc, const std::unordered_map<std::string, std::uint32_t>& term_freqs) {
  if (slot_of_.contains(doc)) {
    throw std::invalid_argument("InvertedIndex::add_document: document already indexed");
  }
  TermCounts counts;
  for (const auto& [term, freq] : term_freqs) {
    counts.add(intern_term(term), freq);
  }
  add_document_counts(doc, counts);
}

bool InvertedIndex::remove_document(DocumentId doc) {
  auto it = slot_of_.find(doc);
  if (it == slot_of_.end()) return false;
  const std::uint32_t slot = it->second;
  slot_of_.erase(it);

  for (const TermId term : slot_terms_[slot]) {
    TermEntry& entry = terms_[term];
    for (std::size_t i = 0; i < entry.slots.size(); ++i) {
      if (entry.slots[i] == slot) {
        entry.collection_freq -= entry.postings[i].term_freq;
        entry.postings.erase(entry.postings.begin() + static_cast<std::ptrdiff_t>(i));
        entry.slots.erase(entry.slots.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (entry.postings.empty()) --nonempty_terms_;
  }
  slot_terms_[slot].clear();
  slot_lengths_[slot] = 0;
  free_slots_.push_back(slot);
  return true;
}

std::uint32_t InvertedIndex::term_frequency(std::string_view term, DocumentId doc) const {
  for (const Posting& p : postings(term)) {
    if (p.doc == doc) return p.term_freq;
  }
  return 0;
}

std::uint32_t InvertedIndex::document_length(DocumentId doc) const {
  auto it = slot_of_.find(doc);
  return it == slot_of_.end() ? 0 : slot_lengths_[it->second];
}

const std::vector<TermId>& InvertedIndex::document_term_ids(DocumentId doc) const {
  static const std::vector<TermId> empty;
  auto it = slot_of_.find(doc);
  return it == slot_of_.end() ? empty : slot_terms_[it->second];
}

void InvertedIndex::for_each_term(const std::function<void(const std::string&)>& fn) const {
  std::string term;
  for (TermId id = 0; id < terms_.size(); ++id) {
    if (terms_[id].postings.empty()) continue;
    term.assign(dict_.term(id));
    fn(term);
  }
}

std::vector<DocumentId> InvertedIndex::documents() const {
  std::vector<DocumentId> out;
  out.reserve(slot_of_.size());
  for (const auto& [doc, slot] : slot_of_) out.push_back(doc);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace planetp::index
