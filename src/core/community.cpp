#include "core/community.hpp"

#include <algorithm>

#include "bloom/wire.hpp"

namespace planetp::core {

Community::Community(NodeConfig defaults, SyncMode mode, std::uint64_t seed)
    : defaults_(std::move(defaults)), mode_(mode), rng_(seed) {}

Community::~Community() = default;

Node& Community::create_node() { return create_node(defaults_); }

Node& Community::create_node(const NodeConfig& config) {
  const PeerId id = static_cast<PeerId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, config, this));
  online_.push_back(true);
  next_round_.push_back(clock_.now() +
                        static_cast<Duration>(rng_.below(
                            static_cast<std::uint64_t>(defaults_.gossip.base_interval))));
  Node& node = *nodes_.back();

  // Join the gossip layer. In instant mode everybody learns immediately; in
  // gossip mode the join rumor has to propagate like any other. The join
  // carries a real (empty) encoded filter so later filter-change diffs have
  // a base to apply against.
  ByteWriter filter_writer;
  bloom::encode_filter(filter_writer, node.store().bloom_filter());
  node.protocol().local_join("mem://" + std::to_string(id), config.link_class, 0,
                             filter_writer.take(), clock_.now());
  node.protocol().hooks().on_apply = [this, id](const gossip::RumorPayload& payload,
                                                TimePoint) {
    // Candidate-cache maintenance first (surgical diff application keeps
    // warm entries warm), then the persistent-query/rendezvous machinery,
    // which may decode the updated filter.
    nodes_[id]->on_rumor_applied(payload);
    applied_update(id, payload.origin);
  };
  node.protocol().hooks().on_expire = [this, id](PeerId peer) {
    nodes_[id]->on_peer_expired(peer);
  };

  if (mode_ == SyncMode::kInstant) {
    record_changed(id);
    // The newcomer also gets everyone else's records.
    for (const auto& other : nodes_) {
      if (other->id() == id) continue;
      const gossip::PeerRecord* r = other->protocol().directory().find(other->id());
      if (r != nullptr) node.protocol().directory().apply(*r);
    }
  } else if (nodes_.size() > 1) {
    // Bootstrap through a random existing member (§3's join flow).
    const PeerId introducer = static_cast<PeerId>(rng_.below(nodes_.size() - 1));
    deliver_all(id, {node.protocol().join_via(introducer, clock_.now())});
  }

  brokers_.join(id);
  return node;
}

void Community::record_changed(PeerId origin) {
  if (mode_ != SyncMode::kInstant) return;  // gossip mode spreads it itself
  const gossip::PeerRecord* record = nodes_[origin]->protocol().directory().find(origin);
  if (record == nullptr) return;
  for (auto& node : nodes_) {
    if (node->id() == origin) continue;
    if (node->protocol().directory().apply(*record)) {
      node->on_directory_update(origin);
    }
  }
}

void Community::applied_update(PeerId at_node, PeerId origin) {
  nodes_[at_node]->on_directory_update(origin);
}

void Community::snippet_published(const broker::Snippet& snippet) {
  brokers_.publish(snippet);
  for (auto& node : nodes_) {
    if (online_[node->id()]) node->on_broker_snippet(snippet);
  }
}

void Community::set_online(PeerId id, bool online) {
  if (online_[id] == online) return;
  online_[id] = online;
  if (online) {
    nodes_[id]->protocol().local_rejoin(clock_.now());
    if (mode_ == SyncMode::kInstant) {
      record_changed(id);
    } else {
      // Catch-up anti-entropy: pull what we slept through (§3's join flow).
      Rng& rng = rng_;
      const PeerId target = nodes_[id]->protocol().directory().random_online(rng);
      if (target != gossip::kInvalidPeer) {
        deliver_all(id, {nodes_[id]->protocol().join_via(target, clock_.now())});
      }
    }
    brokers_.join(id);
  } else {
    // Leaving is silent (§3) — and abrupt departure loses brokered data (§4).
    brokers_.leave_abruptly(id);
  }
}

void Community::step(Duration dt) {
  if (mode_ != SyncMode::kGossipStep) return;
  const TimePoint limit = clock_.now() + dt;
  while (clock_.now() < limit) {
    // Find the earliest due round within the window.
    TimePoint next = limit;
    for (PeerId id = 0; id < nodes_.size(); ++id) {
      if (online_[id]) next = std::min(next, next_round_[id]);
    }
    clock_.schedule_at(next, [] {});
    clock_.run_until(next);
    run_due_rounds();
    if (next >= limit) break;
  }
}

void Community::run_due_rounds() {
  for (PeerId id = 0; id < nodes_.size(); ++id) {
    if (!online_[id] || next_round_[id] > clock_.now()) continue;
    auto batch = nodes_[id]->protocol().on_round(clock_.now());
    next_round_[id] = clock_.now() + nodes_[id]->protocol().current_interval();
    deliver_all(id, std::move(batch));
  }
}

void Community::deliver_all(PeerId from, std::vector<gossip::Protocol::Outgoing> batch) {
  // Synchronous, zero-latency delivery; replies are processed recursively
  // (bounded: protocols never loop — every reply chain ends in at most a
  // pull response).
  for (auto& out : batch) {
    if (out.to >= nodes_.size()) continue;
    if (!online_[out.to]) {
      nodes_[from]->protocol().on_send_failed(out.to, clock_.now());
      continue;
    }
    auto replies = nodes_[out.to]->protocol().on_message(clock_.now(), from, out.msg);
    deliver_all(out.to, std::move(replies));
  }
}

bool Community::step_until_converged(Duration limit, Duration stride) {
  if (mode_ == SyncMode::kInstant) return true;
  const TimePoint deadline = clock_.now() + limit;
  while (clock_.now() < deadline) {
    step(stride);
    // Converged when every online node knows every member's newest version.
    bool ok = true;
    for (const auto& a : nodes_) {
      if (!online_[a->id()]) continue;
      for (const auto& b : nodes_) {
        const gossip::PeerRecord* own = b->protocol().directory().find(b->id());
        const gossip::PeerRecord* seen = a->protocol().directory().find(b->id());
        if (own != nullptr && (seen == nullptr || seen->version < own->version)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) return true;
  }
  return false;
}

search::PeerSearchResult Community::contact_ranked(
    PeerId caller, PeerId target,
    const std::unordered_map<std::string, double>& term_weights) {
  if (target >= nodes_.size() || !online_[target]) {
    if (caller < nodes_.size()) {
      nodes_[caller]->protocol().on_send_failed(target, clock_.now());
    }
    return search::PeerSearchResult::failure(search::ContactStatus::kUnreachable);
  }
  return search::PeerSearchResult::ok(nodes_[target]->handle_ranked_query(term_weights));
}

std::vector<SearchHit> Community::contact_exhaustive(PeerId caller, PeerId target,
                                                     std::string_view query) {
  if (target >= nodes_.size() || !online_[target]) {
    if (caller < nodes_.size()) {
      nodes_[caller]->protocol().on_send_failed(target, clock_.now());
    }
    return {};
  }
  return nodes_[target]->handle_exhaustive_query(query);
}

std::vector<SearchHit> Community::contact_proxy_search(PeerId caller, PeerId proxy,
                                                       std::string_view query,
                                                       std::size_t k) {
  if (proxy >= nodes_.size() || !online_[proxy]) {
    if (caller < nodes_.size()) {
      nodes_[caller]->protocol().on_send_failed(proxy, clock_.now());
    }
    return {};
  }
  return nodes_[proxy]->ranked_search(query, k);
}

const index::Document* Community::fetch_document(const DocumentId& doc) {
  if (doc.peer >= nodes_.size() || !online_[doc.peer]) return nullptr;
  return nodes_[doc.peer]->store().document(doc);
}

}  // namespace planetp::core
