/// \file index_throughput.cpp
/// Local indexing & ranking hot path (docs/INDEX.md): a synthetic Zipf
/// corpus published into a per-peer store and ranked with eq. 2, comparing
///   legacy   — the pre-dictionary cost model, reconstructed from the same
///              public primitives the old code used: tokenize into a
///              std::vector<std::string>, per-token stop-word check + Porter
///              stem on fresh strings, an unordered_map<string, uint32>
///              frequency map, a string-keyed postings index, Bloom inserts
///              that re-hash every term string, and query evaluation into a
///              DocumentId-keyed hash map followed by a full sort,
///   interned — the shipping path: Analyzer::for_each_term streaming through
///              an AnalyzerScratch into TermDictionary::intern, TermCounts +
///              InvertedIndex::add_document_counts, Bloom fed from the
///              dictionary's pre-computed hashes, and TfIdfRanker::top_k's
///              dense accumulator + bounded heap.
/// Both sides consume pre-extracted text (XML parsing excluded — it is
/// identical work on either path). A third measurement runs DataStore::
/// publish_batch with and without a ThreadPool on the full XML envelope to
/// show the parallel sharding win (reported, not gated).
///
/// Reports publish docs/sec, ranked-eval queries/sec with p50/p99 latency,
/// and heap allocations per op (counted by this TU's operator new). Emits
/// BENCH_index_throughput.json.
///
/// A fourth measurement covers the block-max pruned top-k driver
/// (docs/INDEX.md "Block-max pruning"): the same queries ranked through a
/// TfIdfRanker with a CompressedIndex accelerator, at k = 10 and k = 100,
/// for short (2-5 term) and long (6-10 term) queries. Rank safety is
/// asserted in-run: every pruned result must be byte-identical (score bits,
/// documents, tie-breaks) to the exhaustive ranker.
///
/// Gates:
///   1. interned eval must rank the same documents as legacy eval (sanity);
///   2. combined speedup (geomean of publish and eval) must be >= 3x at the
///      largest corpus;
///   3. pruned eval must be byte-identical to exhaustive eval for every
///      query and k, must actually skip blocks (blocks_skipped > 0), and at
///      the largest corpus pruned qps (short queries, k = 10) must be >= 3x
///      the exhaustive eval qps;
///   4. with --baseline <json>, interned publish docs/sec, eval qps and
///      pruned eval qps must stay above half the recorded baseline
///      (scripts/check.sh wires this to bench/baselines/index_throughput.json).
/// Usage: index_throughput [--quick] [--baseline <file>]

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "index/compressed_postings.hpp"
#include "index/data_store.hpp"
#include "index/inverted_index.hpp"
#include "search/ranker.hpp"
#include "search/vector_model.hpp"
#include "text/analyzer.hpp"
#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every throwing/sized/array operator new in the process
// funnels through here (this TU's definitions replace the library's), so the
// delta across a timed window counts real heap allocations on the indexing
// path. Aligned variants keep their default definitions; plain delete always
// pairs with plain new, so free() is the right inverse.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace planetp;
using namespace planetp::index;
using planetp::search::ScoredDoc;

namespace {

double wall_now_s() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e9;
}

// ---------------------------------------------------------------------------
// Synthetic corpus: Zipf term popularity over a generated vocabulary whose
// words carry realistic suffixes so the stemmer does real work.
// ---------------------------------------------------------------------------

std::vector<std::string> make_vocabulary(std::size_t size, Rng& rng) {
  static const char* const kSuffixes[] = {"", "", "", "s", "ing", "ed", "ation", "ly"};
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::string w;
    const std::size_t stem_len = 4 + rng.below(6);
    for (std::size_t c = 0; c < stem_len; ++c) {
      w.push_back(static_cast<char>('a' + rng.below(26)));
    }
    w += kSuffixes[rng.below(sizeof(kSuffixes) / sizeof(kSuffixes[0]))];
    vocab.push_back(std::move(w));
  }
  return vocab;
}

/// Documents carry two properties of real text that flat synthetic corpora
/// miss and that the pruned rows below depend on: heavy-tailed lengths
/// (log-uniform, ~30..960 words — real collections span orders of
/// magnitude) and bursty term repetition (a quarter of tokens repeat a
/// word the document already used, Simon's rich-get-richer process). Both
/// spread the per-posting score contributions w_{D,t}/sqrt(|D|), so block
/// maxima discriminate between blocks instead of sitting flat at the
/// list-level bound.
std::vector<std::string> make_corpus(std::size_t docs, const std::vector<std::string>& vocab,
                                     const ZipfSampler& zipf, Rng& rng) {
  std::vector<std::string> out;
  out.reserve(docs);
  std::vector<std::uint32_t> emitted;
  for (std::size_t d = 0; d < docs; ++d) {
    const std::size_t base = std::size_t{30} << rng.below(5);
    const std::size_t words = base + rng.below(base);
    std::string text;
    text.reserve(words * 10);
    emitted.clear();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint32_t rank;
      if (!emitted.empty() && rng.below(4) == 0) {
        rank = emitted[rng.below(emitted.size())];
      } else {
        rank = static_cast<std::uint32_t>(zipf.sample(rng));
      }
      emitted.push_back(rank);
      text += vocab[rank - 1];
      text.push_back(' ');
    }
    out.push_back(std::move(text));
  }
  return out;
}

/// Query terms are Zipf-drawn like the corpus itself, so queries mix
/// high-df head terms (the stop-word role a synthetic vocabulary gives its
/// first ranks) with discriminative tail terms — the shape MaxScore is
/// built for: the head lists' upper bounds are tiny, so they turn
/// non-essential almost immediately and candidates are generated from the
/// short tail lists alone.
std::vector<std::vector<std::string>> make_queries(std::size_t count,
                                                   const std::vector<std::string>& vocab,
                                                   const ZipfSampler& zipf, Rng& rng,
                                                   std::size_t min_terms = 2,
                                                   std::size_t max_terms = 5) {
  std::vector<std::vector<std::string>> out;
  out.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const std::size_t n = min_terms + rng.below(max_terms - min_terms + 1);
    for (std::size_t t = 0; t < n; ++t) terms.push_back(vocab[zipf.sample(rng) - 1]);
    out.push_back(std::move(terms));
  }
  return out;
}

bool bit_identical(const std::vector<ScoredDoc>& a, const std::vector<ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc ||
        std::bit_cast<std::uint64_t>(a[i].score) != std::bit_cast<std::uint64_t>(b[i].score)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Legacy cost model: the string-keyed pipeline this PR replaced, rebuilt from
// the same public primitives so the comparison measures data-structure and
// allocation discipline, not algorithmic differences.
// ---------------------------------------------------------------------------

/// Old Analyzer::term_frequencies: analyze into a term vector (one string per
/// token), then aggregate into a fresh hash map.
std::unordered_map<std::string, std::uint32_t> legacy_term_frequencies(const std::string& text) {
  const std::vector<std::string> tokens = text::tokenize(text);
  std::vector<std::string> terms;
  terms.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    if (text::is_stopword(tok)) continue;
    std::string stemmed = tok;
    text::porter_stem(stemmed);
    if (text::is_stopword(stemmed)) continue;
    terms.push_back(std::move(stemmed));
  }
  std::unordered_map<std::string, std::uint32_t> freqs;
  for (const std::string& t : terms) ++freqs[t];
  return freqs;
}

/// Old string-keyed index shape: postings and statistics behind string hash
/// maps, document lengths behind a DocumentId hash map.
struct LegacyIndex {
  std::unordered_map<std::string, std::vector<Posting>> postings;
  std::unordered_map<std::string, std::uint64_t> collection_freq;
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> doc_lengths;
  std::size_t num_docs = 0;

  void add_document(DocumentId doc,
                    const std::unordered_map<std::string, std::uint32_t>& freqs) {
    std::uint32_t length = 0;
    for (const auto& [term, freq] : freqs) {
      postings[term].push_back(Posting{doc, freq});
      collection_freq[term] += freq;
      length += freq;
    }
    doc_lengths.emplace(doc, length);
    ++num_docs;
  }
};

/// Old eq. 2 evaluation: DocumentId-keyed accumulator map, then a full sort
/// of every matched document before truncating to k.
std::vector<ScoredDoc> legacy_top_k(const LegacyIndex& idx,
                                    const std::vector<std::string>& query_terms,
                                    std::size_t k) {
  std::unordered_map<std::string, double> weights;
  for (const std::string& raw : query_terms) {
    std::string t = raw;
    text::porter_stem(t);
    if (weights.contains(t)) continue;
    auto it = idx.collection_freq.find(t);
    const std::uint64_t cf = it == idx.collection_freq.end() ? 0 : it->second;
    weights.emplace(std::move(t), search::idf(idx.num_docs, cf));
  }
  std::unordered_map<DocumentId, double, DocumentIdHash> acc;
  for (const auto& [term, weight] : weights) {
    if (weight <= 0.0) continue;
    auto it = idx.postings.find(term);
    if (it == idx.postings.end()) continue;
    for (const Posting& p : it->second) {
      acc[p.doc] += search::doc_weight(p.term_freq) * weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, sum] : acc) {
    out.push_back(ScoredDoc{doc, sum * search::length_norm(idx.doc_lengths.at(doc))});
  }
  std::sort(out.begin(), out.end(), search::ranks_before);
  search::truncate_top_k(out, k);
  return out;
}

// ---------------------------------------------------------------------------
// Interned path: the shipping pipeline on pre-extracted text (mirrors
// DataStore::index_document without the XML envelope).
// ---------------------------------------------------------------------------

struct InternedStore {
  InvertedIndex idx;
  bloom::CountingBloomFilter filter;
  text::AnalyzerScratch scratch;
  TermCounts counts;

  explicit InternedStore(bloom::BloomParams params) : filter(params) {}

  void publish(DocumentId id, const std::string& text, const text::Analyzer& analyzer) {
    counts.clear();
    analyzer.for_each_term(text, scratch,
                           [&](std::string_view term) { counts.add(idx.intern_term(term)); });
    idx.add_document_counts(id, counts);
    const TermDictionary& dict = idx.dictionary();
    for (const TermId term : counts.terms()) filter.insert(dict.hash(term));
  }
};

// ---------------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------------

struct OpStats {
  double wall_s = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t allocs = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  double per_sec() const { return wall_s > 0.0 ? static_cast<double>(ops) / wall_s : 0.0; }
  double allocs_per_op() const {
    return ops > 0 ? static_cast<double>(allocs) / static_cast<double>(ops) : 0.0;
  }
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t at = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[at];
}

/// Time a per-item loop, recording per-item latency and the alloc delta.
template <typename Fn>
OpStats timed_loop(std::size_t n, Fn&& fn) {
  std::vector<double> lat_us;
  lat_us.reserve(n);
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const double t0 = wall_now_s();
  for (std::size_t i = 0; i < n; ++i) {
    const double s = wall_now_s();
    fn(i);
    lat_us.push_back((wall_now_s() - s) * 1e6);
  }
  OpStats out;
  out.wall_s = wall_now_s() - t0;
  out.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  out.ops = n;
  std::sort(lat_us.begin(), lat_us.end());
  out.p50_us = percentile(lat_us, 0.50);
  out.p99_us = percentile(lat_us, 0.99);
  return out;
}

struct SizeResult {
  std::size_t docs = 0;
  std::size_t queries = 0;
  OpStats legacy_publish, interned_publish;
  OpStats legacy_eval, interned_eval;
  OpStats exhaustive_eval_k100, exhaustive_eval_long;
  OpStats pruned_eval_k10, pruned_eval_k100, pruned_eval_long;
  double publish_speedup = 0.0;
  double eval_speedup = 0.0;
  double combined_speedup = 0.0;
  double pruned_speedup_k10 = 0.0;
  double pruned_speedup_k100 = 0.0;
  double pruned_speedup_long = 0.0;
  search::PruneStats prune_stats;
  bool pruned_identical = true;
  double batch_seq_dps = 0.0;
  double batch_par_dps = 0.0;
  std::size_t pool_threads = 0;
  bool rankings_agree = true;
};

void print_op(const char* label, const OpStats& s, const char* unit) {
  std::printf("  %-18s %8.2f s   %9.0f %s   p50 %7.1f us   p99 %8.1f us   %7.1f allocs/op\n",
              label, s.wall_s, s.per_sec(), unit, s.p50_us, s.p99_us, s.allocs_per_op());
}

SizeResult run_size(std::size_t docs, std::size_t queries, std::size_t vocab_size) {
  SizeResult out;
  out.docs = docs;
  out.queries = queries;
  std::printf("%6zu docs, %zu queries, vocab %zu:\n", docs, queries, vocab_size);

  Rng rng(20260806);
  const std::vector<std::string> vocab = make_vocabulary(vocab_size, rng);
  const ZipfSampler zipf(vocab_size, 1.05);
  const std::vector<std::string> corpus = make_corpus(docs, vocab, zipf, rng);
  const auto query_set = make_queries(queries, vocab, zipf, rng);
  const bloom::BloomParams bloom_params{1u << 20, 4};
  constexpr std::size_t kTopK = 10;

  // --- legacy publish ---
  LegacyIndex legacy;
  bloom::CountingBloomFilter legacy_filter(bloom_params);
  out.legacy_publish = timed_loop(docs, [&](std::size_t i) {
    const auto freqs = legacy_term_frequencies(corpus[i]);
    legacy.add_document(DocumentId{1, static_cast<std::uint32_t>(i)}, freqs);
    for (const auto& [term, freq] : freqs) legacy_filter.insert(term);
  });
  print_op("legacy publish", out.legacy_publish, "docs/s ");

  // --- interned publish ---
  const text::Analyzer analyzer;
  InternedStore interned(bloom_params);
  out.interned_publish = timed_loop(docs, [&](std::size_t i) {
    interned.publish(DocumentId{1, static_cast<std::uint32_t>(i)}, corpus[i], analyzer);
  });
  print_op("interned publish", out.interned_publish, "docs/s ");

  // Pre-stem the query terms once for the interned side (the legacy side
  // stems inside the timed loop because that is what the old code did per
  // query; stemming 2-5 short words is noise either way).
  std::vector<std::vector<std::string>> stemmed_queries = query_set;
  for (auto& q : stemmed_queries) {
    for (auto& t : q) text::porter_stem(t);
  }

  // --- legacy eval ---
  std::uint64_t legacy_hits = 0;
  out.legacy_eval = timed_loop(queries, [&](std::size_t i) {
    legacy_hits += legacy_top_k(legacy, query_set[i], kTopK).size();
  });
  print_op("legacy eval", out.legacy_eval, "query/s");

  // --- interned eval ---
  const search::TfIdfRanker ranker(interned.idx);
  std::uint64_t interned_hits = 0;
  out.interned_eval = timed_loop(queries, [&](std::size_t i) {
    interned_hits += ranker.top_k(stemmed_queries[i], kTopK).size();
  });
  print_op("interned eval", out.interned_eval, "query/s");

  // Sanity: both paths rank the same documents. Scores can differ in final
  // ulps (different accumulation order), so compare the doc sets and the
  // score sums rather than exact per-rank equality.
  for (std::size_t i = 0; i < queries; ++i) {
    const auto a = legacy_top_k(legacy, query_set[i], kTopK);
    const auto b = ranker.top_k(stemmed_queries[i], kTopK);
    double sum_a = 0.0, sum_b = 0.0;
    for (const auto& d : a) sum_a += d.score;
    for (const auto& d : b) sum_b += d.score;
    if (a.size() != b.size() ||
        std::abs(sum_a - sum_b) > 1e-6 * std::max(1.0, std::abs(sum_a))) {
      out.rankings_agree = false;
      std::fprintf(stderr, "  ranking mismatch on query %zu: %zu docs (sum %.12f) vs %zu (%.12f)\n",
                   i, a.size(), sum_a, b.size(), sum_b);
      break;
    }
  }
  if (interned_hits != legacy_hits) out.rankings_agree = false;

  // --- pruned eval: block-max driver over a CompressedIndex accelerator ---
  // Long queries (6-10 terms) are the adversarial case for MaxScore: more
  // non-essential lists, weaker per-term bounds.
  auto long_queries = make_queries(queries, vocab, zipf, rng, 6, 10);
  for (auto& q : long_queries) {
    for (auto& t : q) text::porter_stem(t);
  }

  const CompressedIndex ci = CompressedIndex::build(interned.idx);
  const search::TfIdfRanker accel(interned.idx, &ci);

  std::uint64_t sink = 0;
  out.exhaustive_eval_k100 = timed_loop(queries, [&](std::size_t i) {
    sink += ranker.top_k(stemmed_queries[i], 100).size();
  });
  print_op("exhaust eval k100", out.exhaustive_eval_k100, "query/s");
  out.exhaustive_eval_long = timed_loop(queries, [&](std::size_t i) {
    sink += ranker.top_k(long_queries[i], kTopK).size();
  });
  print_op("exhaust eval long", out.exhaustive_eval_long, "query/s");

  search::PruneStats& ps = out.prune_stats;
  out.pruned_eval_k10 = timed_loop(queries, [&](std::size_t i) {
    sink += accel.top_k(stemmed_queries[i], kTopK, &ps).size();
  });
  print_op("pruned eval k10", out.pruned_eval_k10, "query/s");
  out.pruned_eval_k100 = timed_loop(queries, [&](std::size_t i) {
    sink += accel.top_k(stemmed_queries[i], 100, &ps).size();
  });
  print_op("pruned eval k100", out.pruned_eval_k100, "query/s");
  out.pruned_eval_long = timed_loop(queries, [&](std::size_t i) {
    sink += accel.top_k(long_queries[i], kTopK, &ps).size();
  });
  print_op("pruned eval long", out.pruned_eval_long, "query/s");

  // Rank safety, asserted in-run: every pruned result byte-identical to the
  // exhaustive ranker (score bits, documents, tie-breaks), both query
  // shapes, both k.
  for (std::size_t i = 0; i < queries && out.pruned_identical; ++i) {
    for (const std::size_t k : {std::size_t{10}, std::size_t{100}}) {
      if (!bit_identical(accel.top_k(stemmed_queries[i], k), ranker.top_k(stemmed_queries[i], k)) ||
          !bit_identical(accel.top_k(long_queries[i], k), ranker.top_k(long_queries[i], k))) {
        out.pruned_identical = false;
        std::fprintf(stderr, "  pruned ranking diverged on query %zu k %zu\n", i, k);
        break;
      }
    }
  }

  if (sink == 0) std::fprintf(stderr, "  pruned/exhaustive eval returned no results\n");
  out.pruned_speedup_k10 = out.interned_eval.per_sec() > 0.0
                               ? out.pruned_eval_k10.per_sec() / out.interned_eval.per_sec()
                               : 0.0;
  out.pruned_speedup_k100 =
      out.exhaustive_eval_k100.per_sec() > 0.0
          ? out.pruned_eval_k100.per_sec() / out.exhaustive_eval_k100.per_sec()
          : 0.0;
  out.pruned_speedup_long =
      out.exhaustive_eval_long.per_sec() > 0.0
          ? out.pruned_eval_long.per_sec() / out.exhaustive_eval_long.per_sec()
          : 0.0;
  std::printf(
      "  pruned speedup: k10 %.1fx, k100 %.1fx, long %.1fx   (%llu blocks skipped, %llu "
      "pruned, %llu fallbacks, %llu abandoned)%s\n",
      out.pruned_speedup_k10, out.pruned_speedup_k100, out.pruned_speedup_long,
      static_cast<unsigned long long>(ps.blocks_skipped),
      static_cast<unsigned long long>(ps.pruned_queries),
      static_cast<unsigned long long>(ps.prune_fallbacks),
      static_cast<unsigned long long>(ps.docs_abandoned),
      out.pruned_identical ? "" : "   (PRUNED RANKINGS DIVERGED)");

  // --- DataStore batch publish: sequential vs ThreadPool (XML included) ---
  std::vector<std::string> xml;
  xml.reserve(docs);
  for (std::size_t i = 0; i < docs; ++i) {
    xml.push_back(wrap_text_as_xml("doc" + std::to_string(i), corpus[i]));
  }
  {
    DataStore store(1, bloom_params);
    const double t0 = wall_now_s();
    store.publish_batch(xml, nullptr);
    out.batch_seq_dps = static_cast<double>(docs) / (wall_now_s() - t0);
  }
  {
    ThreadPool pool;
    out.pool_threads = pool.size();
    DataStore store(1, bloom_params);
    const double t0 = wall_now_s();
    store.publish_batch(xml, &pool);
    out.batch_par_dps = static_cast<double>(docs) / (wall_now_s() - t0);
  }
  // On a single-core host the pooled number is pure offload overhead; the
  // worker count in the report makes that interpretable.
  std::printf(
      "  batch publish (with XML): %.0f docs/s sequential, %.0f docs/s on %zu worker%s (%.1fx)\n",
      out.batch_seq_dps, out.batch_par_dps, out.pool_threads, out.pool_threads == 1 ? "" : "s",
      out.batch_seq_dps > 0.0 ? out.batch_par_dps / out.batch_seq_dps : 0.0);

  out.publish_speedup = out.legacy_publish.per_sec() > 0.0
                            ? out.interned_publish.per_sec() / out.legacy_publish.per_sec()
                            : 0.0;
  out.eval_speedup = out.legacy_eval.per_sec() > 0.0
                         ? out.interned_eval.per_sec() / out.legacy_eval.per_sec()
                         : 0.0;
  out.combined_speedup = std::sqrt(out.publish_speedup * out.eval_speedup);
  std::printf("  speedup: publish %.1fx, eval %.1fx, combined %.1fx%s\n\n", out.publish_speedup,
              out.eval_speedup, out.combined_speedup,
              out.rankings_agree ? "" : "   (RANKINGS DIVERGED)");
  return out;
}

void append_op(std::ostringstream& os, const char* name, const OpStats& s) {
  os << "\"" << name << "\": {\"wall_s\": " << s.wall_s << ", \"ops\": " << s.ops
     << ", \"per_sec\": " << s.per_sec() << ", \"p50_us\": " << s.p50_us
     << ", \"p99_us\": " << s.p99_us << ", \"allocs_per_op\": " << s.allocs_per_op() << "}";
}

/// Minimal key lookup in the baseline JSON: finds "key" and parses the
/// number after the following ':'.
double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::vector<SizeResult> results;
  results.push_back(run_size(1000, quick ? 200 : 600, 8000));
  results.push_back(run_size(10000, quick ? 300 : 1000, 30000));

  std::ostringstream os;
  os << "{\n  \"bench\": \"index_throughput\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    os << "    {\"docs\": " << r.docs << ", \"queries\": " << r.queries << ", ";
    append_op(os, "legacy_publish", r.legacy_publish);
    os << ", ";
    append_op(os, "interned_publish", r.interned_publish);
    os << ", ";
    append_op(os, "legacy_eval", r.legacy_eval);
    os << ", ";
    append_op(os, "interned_eval", r.interned_eval);
    os << ", ";
    append_op(os, "exhaustive_eval_k100", r.exhaustive_eval_k100);
    os << ", ";
    append_op(os, "exhaustive_eval_long", r.exhaustive_eval_long);
    os << ", ";
    append_op(os, "pruned_eval_k10", r.pruned_eval_k10);
    os << ", ";
    append_op(os, "pruned_eval_k100", r.pruned_eval_k100);
    os << ", ";
    append_op(os, "pruned_eval_long", r.pruned_eval_long);
    os << ", \"pruned_speedup_k10\": " << r.pruned_speedup_k10
       << ", \"pruned_speedup_k100\": " << r.pruned_speedup_k100
       << ", \"pruned_speedup_long\": " << r.pruned_speedup_long
       << ", \"blocks_skipped\": " << r.prune_stats.blocks_skipped
       << ", \"pruned_queries\": " << r.prune_stats.pruned_queries
       << ", \"prune_fallbacks\": " << r.prune_stats.prune_fallbacks
       << ", \"postings_decoded\": " << r.prune_stats.postings_decoded
       << ", \"docs_abandoned\": " << r.prune_stats.docs_abandoned
       << ", \"batch_seq_docs_per_sec\": " << r.batch_seq_dps
       << ", \"batch_par_docs_per_sec\": " << r.batch_par_dps
       << ", \"batch_pool_threads\": " << r.pool_threads
       << ", \"publish_speedup\": " << r.publish_speedup
       << ", \"eval_speedup\": " << r.eval_speedup
       << ", \"combined_speedup\": " << r.combined_speedup << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (const SizeResult& r : results) {
    os << "  \"interned_publish_dps_" << r.docs << "\": " << r.interned_publish.per_sec()
       << ",\n";
    os << "  \"interned_eval_qps_" << r.docs << "\": " << r.interned_eval.per_sec() << ",\n";
    os << "  \"pruned_eval_qps_" << r.docs << "\": " << r.pruned_eval_k10.per_sec() << ",\n";
  }
  os << "  \"pruned_speedup_k10_" << results.back().docs << "\": "
     << results.back().pruned_speedup_k10 << ",\n";
  os << "  \"combined_speedup_" << results.back().docs << "\": "
     << results.back().combined_speedup << "\n}\n";

  std::ofstream("BENCH_index_throughput.json") << os.str();
  std::printf("wrote BENCH_index_throughput.json\n");

  int rc = 0;
  for (const SizeResult& r : results) {
    if (!r.rankings_agree) {
      std::fprintf(stderr, "FAIL: interned ranking diverges from legacy at %zu docs\n", r.docs);
      rc = 1;
    }
  }
  if (results.back().combined_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: combined speedup only %.1fx at %zu docs (need >= 3x)\n",
                 results.back().combined_speedup, results.back().docs);
    rc = 1;
  }
  for (const SizeResult& r : results) {
    if (!r.pruned_identical) {
      std::fprintf(stderr, "FAIL: pruned top-k diverged from exhaustive at %zu docs\n", r.docs);
      rc = 1;
    }
  }
  if (results.back().prune_stats.blocks_skipped == 0) {
    std::fprintf(stderr, "FAIL: pruned driver skipped no blocks at %zu docs\n",
                 results.back().docs);
    rc = 1;
  }
  if (results.back().pruned_speedup_k10 < 3.0) {
    std::fprintf(stderr,
                 "FAIL: pruned eval (k=10) only %.1fx over exhaustive at %zu docs (need >= 3x)\n",
                 results.back().pruned_speedup_k10, results.back().docs);
    rc = 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const SizeResult& r : results) {
      const struct {
        const char* what;
        std::string key;
        double measured;
      } checks[] = {
          {"publish docs/s", "interned_publish_dps_" + std::to_string(r.docs),
           r.interned_publish.per_sec()},
          {"eval queries/s", "interned_eval_qps_" + std::to_string(r.docs),
           r.interned_eval.per_sec()},
          {"pruned eval queries/s", "pruned_eval_qps_" + std::to_string(r.docs),
           r.pruned_eval_k10.per_sec()},
      };
      for (const auto& c : checks) {
        const double recorded = parse_key(baseline, c.key);
        if (recorded <= 0.0) continue;
        if (c.measured < recorded / 2.0) {
          std::fprintf(stderr,
                       "FAIL: %s at %zu docs regressed: %.0f vs baseline %.0f (>2x drop)\n",
                       c.what, r.docs, c.measured, recorded);
          rc = 1;
        } else {
          std::printf("baseline check %s at %zu docs: %.0f vs recorded %.0f — ok\n", c.what,
                      r.docs, c.measured, recorded);
        }
      }
    }
  }
  return rc;
}
