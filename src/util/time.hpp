#pragma once

#include <cstdint>

namespace planetp {

/// Simulation / protocol time. All PlanetP components express time as
/// microseconds since an arbitrary epoch so that the discrete-event simulator
/// and the live runtime share one representation.
using TimePoint = std::int64_t;  ///< microseconds since epoch
using Duration = std::int64_t;   ///< microseconds

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Convert a duration in (possibly fractional) seconds to microseconds.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Convert a microsecond duration to fractional seconds (for reporting).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace planetp
