#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

/// \file event_queue.hpp
/// Deterministic discrete-event engine. Events at equal timestamps fire in
/// insertion order (a monotonically increasing sequence number breaks ties),
/// so simulations replay identically for a given seed.

namespace planetp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  TimePoint now() const { return now_; }

  /// Schedule \p fn to run \p delay after now (clamped to >= 0).
  void schedule(Duration delay, Callback fn);

  /// Schedule \p fn at absolute time \p at (clamped to >= now).
  void schedule_at(TimePoint at, Callback fn);

  /// Run events until the queue is empty or \p limit is reached; the clock
  /// stops at the later of the last event time and (if hit) the limit.
  /// Returns the number of events executed.
  std::size_t run_until(TimePoint limit);

  /// Run everything (no limit).
  std::size_t run();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace planetp::sim
