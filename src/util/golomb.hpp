#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitio.hpp"
#include "util/bitvector.hpp"

/// \file golomb.hpp
/// Golomb run-length compression of sparse bit vectors.
///
/// PlanetP gossips fixed-size (50 KB) Bloom filters; because filters are
/// sparse, the paper compresses them with a run-length scheme whose run
/// lengths are Golomb-coded (Golomb, 1966), which it found outperformed gzip
/// for this workload. We encode the gaps between consecutive set bits: for a
/// filter with density p, gaps are geometrically distributed and the optimal
/// Golomb parameter is M ~= 0.69/p (Witten, Moffat & Bell, "Managing
/// Gigabytes").

namespace planetp {

/// Encode a single non-negative integer with Golomb parameter \p m (> 0).
void golomb_encode(BitWriter& out, std::uint64_t value, std::uint64_t m);

/// Decode a single value previously written by golomb_encode with the same m.
std::uint64_t golomb_decode(BitReader& in, std::uint64_t m);

/// Compute the near-optimal Golomb parameter for gap coding a bit vector
/// with \p set_bits ones out of \p total_bits. Returns at least 1.
std::uint64_t golomb_optimal_m(std::size_t set_bits, std::size_t total_bits);

/// Compressed form of a bit vector: header (size, #set bits, parameter m)
/// plus Golomb-coded gaps. Decompression restores the exact vector.
struct CompressedBits {
  std::uint64_t nbits = 0;      ///< logical size of the original vector
  std::uint64_t set_bits = 0;   ///< number of ones
  std::uint64_t m = 1;          ///< Golomb parameter used
  std::vector<std::uint8_t> payload;  ///< Golomb-coded gap stream

  /// Total serialized size in bytes (payload + fixed header fields).
  std::size_t byte_size() const { return payload.size() + 3 * sizeof(std::uint64_t); }
};

/// Compress \p bits with gap + Golomb coding.
CompressedBits compress_bits(const BitVector& bits);

/// Exact inverse of compress_bits.
BitVector decompress_bits(const CompressedBits& c);

/// Decode the sorted set-bit positions without materializing a BitVector.
/// O(set_bits) work and memory; throws std::out_of_range on corrupt streams.
std::vector<std::uint64_t> golomb_positions(const CompressedBits& c);

/// Compress a sorted list of distinct bit positions (all < \p nbits).
/// Identical output to compress_bits over the equivalent BitVector.
CompressedBits compress_positions(std::span<const std::uint64_t> positions,
                                  std::uint64_t nbits);

/// XOR two compressed vectors of equal size entirely in the gap domain:
/// positions present in exactly one input survive, positions in both cancel.
/// Byte-identical to decompress -> BitVector XOR -> compress, but costs
/// O(set_bits) instead of O(nbits) — this is how gossiped filter diffs are
/// applied to at-rest Golomb-coded directory records.
CompressedBits xor_merge(const CompressedBits& a, const CompressedBits& b);

}  // namespace planetp
