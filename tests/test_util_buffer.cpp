#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/varint.hpp"

namespace planetp {
namespace {

TEST(Varint, RoundtripBoundaries) {
  for (std::uint64_t v : std::vector<std::uint64_t>{
           0, 1, 127, 128, 16383, 16384, std::numeric_limits<std::uint64_t>::max()}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf.data(), buf.size(), pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EncodedLengths) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 300);
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf.data(), 1, pos), std::out_of_range);
}

TEST(Varint, ZigzagRoundtrip) {
  for (std::int64_t v : std::vector<std::int64_t>{
           0, 1, -1, 2, -2, 1000000, -1000000, std::numeric_limits<std::int64_t>::max(),
           std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Varint, ZigzagSmallMagnitudesAreSmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

TEST(ByteBuffer, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(ByteBuffer, StringsAndBytes) {
  ByteWriter w;
  w.str("hello world");
  w.str("");
  std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.bytes(blob);
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
}

TEST(ByteBuffer, VarintsInterleaved) {
  ByteWriter w;
  w.varint(0);
  w.svarint(-42);
  w.varint(1'000'000);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.svarint(), -42);
  EXPECT_EQ(r.varint(), 1'000'000u);
}

TEST(ByteBuffer, UnderflowThrows) {
  ByteWriter w;
  w.u16(7);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes follow
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(ByteBuffer, RawHasNoLengthPrefix) {
  ByteWriter w;
  std::vector<std::uint8_t> raw = {9, 8, 7};
  w.raw(raw);
  EXPECT_EQ(w.size(), 3u);
}

TEST(ByteBuffer, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace planetp
