#include <gtest/gtest.h>

#include "text/analyzer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"

namespace planetp::text {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  const auto toks = tokenize("Hello, World! Foo-bar");
  EXPECT_EQ(toks, (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(Tokenizer, DropsShortTokens) {
  const auto toks = tokenize("a an the xy z");
  // min_length defaults to 2: "a" and "z" are dropped.
  EXPECT_EQ(toks, (std::vector<std::string>{"an", "the", "xy"}));
}

TEST(Tokenizer, MergesApostrophes) {
  const auto toks = tokenize("don't can't O'Brien");
  EXPECT_EQ(toks, (std::vector<std::string>{"dont", "cant", "obrien"}));
}

TEST(Tokenizer, KeepsNumbersByDefault) {
  const auto toks = tokenize("route 66 and 1989");
  EXPECT_EQ(toks, (std::vector<std::string>{"route", "66", "and", "1989"}));
}

TEST(Tokenizer, CanDropNumbers) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  const auto toks = tokenize("route 66", opts);
  EXPECT_EQ(toks, (std::vector<std::string>{"route"}));
}

TEST(Tokenizer, DropsOverlongTokens) {
  TokenizerOptions opts;
  opts.max_length = 5;
  const auto toks = tokenize("tiny enormous", opts);
  EXPECT_EQ(toks, (std::vector<std::string>{"tiny"}));
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("!!! ... ---").empty());
}

TEST(Tokenizer, AlphanumericMix) {
  const auto toks = tokenize("ipv6 x86b two2three");
  EXPECT_EQ(toks, (std::vector<std::string>{"ipv6", "x86b", "two2three"}));
}

TEST(Stopwords, CommonWordsAreStopwords) {
  for (const char* w : {"the", "of", "and", "is", "to", "a", "in"}) {
    EXPECT_TRUE(is_stopword(w)) << w;
  }
}

TEST(Stopwords, ContentWordsAreNot) {
  for (const char* w : {"gossip", "bloom", "filter", "peer", "network"}) {
    EXPECT_FALSE(is_stopword(w)) << w;
  }
}

TEST(Stopwords, CountIsStable) { EXPECT_EQ(stopword_count(), 174u); }

TEST(Analyzer, FullPipeline) {
  Analyzer analyzer;
  const auto terms = analyzer.analyze("The running dogs are jumping quickly");
  // "the"/"are" are stop words; remaining words are stemmed.
  EXPECT_EQ(terms, (std::vector<std::string>{"run", "dog", "jump", "quickli"}));
}

TEST(Analyzer, StemmingOffKeepsWords) {
  AnalyzerOptions opts;
  opts.stem = false;
  Analyzer analyzer(opts);
  const auto terms = analyzer.analyze("running dogs");
  EXPECT_EQ(terms, (std::vector<std::string>{"running", "dogs"}));
}

TEST(Analyzer, StopwordsOffKeepsThem) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Analyzer analyzer(opts);
  const auto terms = analyzer.analyze("the cat");
  EXPECT_EQ(terms, (std::vector<std::string>{"the", "cat"}));
}

TEST(Analyzer, TermFrequencies) {
  Analyzer analyzer;
  const auto freqs = analyzer.term_frequencies("cat cat dog cats");
  // "cats" stems to "cat": frequency 3.
  EXPECT_EQ(freqs.at("cat"), 3u);
  EXPECT_EQ(freqs.at("dog"), 1u);
  EXPECT_EQ(freqs.size(), 2u);
}

TEST(Analyzer, ProcessTokenLowercasesAndStems) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.process_token("Running"), "run");
  EXPECT_EQ(analyzer.process_token("THE"), "");  // stop word dropped
}

TEST(Tokenizer, ForEachTokenMatchesTokenize) {
  const std::string input = "Hello, World! don't drop-me 1989 antidisestablishmentarianism";
  const auto expected = tokenize(input);
  std::vector<std::string> streamed;
  std::string buf;
  for_each_token(input, TokenizerOptions{}, buf,
                 [&](std::string_view tok) { streamed.emplace_back(tok); });
  EXPECT_EQ(streamed, expected);
}

TEST(Analyzer, ScratchReuseIsIdempotent) {
  // One scratch (memo + buffers) across many calls must never change the
  // output: repeated analysis of the same text — and of texts sharing its
  // vocabulary — stays identical to a fresh-scratch run.
  Analyzer analyzer;
  AnalyzerScratch shared;
  const std::string text =
      "the running dogs are jumping quickly over running dogs and lazily "
      "jumping foxes while the quick dogs keep running";
  auto collect = [&](AnalyzerScratch& scratch) {
    std::vector<std::string> out;
    analyzer.for_each_term(text, scratch,
                           [&](std::string_view term) { out.emplace_back(term); });
    return out;
  };
  const auto first = collect(shared);
  EXPECT_EQ(first, analyzer.analyze(text));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(collect(shared), first) << "pass " << i;
  AnalyzerScratch fresh;
  EXPECT_EQ(collect(fresh), first);
  shared.reset();
  EXPECT_EQ(collect(shared), first);
}

TEST(Analyzer, SharedScratchAcrossOptionSets) {
  // The memo only caches option-independent facts, so a scratch that served
  // a default analyzer must not poison a non-stemming one (and vice versa).
  const std::string text = "the running dogs";
  Analyzer stemming;
  AnalyzerOptions raw_opts;
  raw_opts.stem = false;
  raw_opts.remove_stopwords = false;
  Analyzer raw(raw_opts);

  AnalyzerScratch scratch;
  std::vector<std::string> a, b;
  stemming.for_each_term(text, scratch, [&](std::string_view t) { a.emplace_back(t); });
  raw.for_each_term(text, scratch, [&](std::string_view t) { b.emplace_back(t); });
  EXPECT_EQ(a, (std::vector<std::string>{"run", "dog"}));
  EXPECT_EQ(b, (std::vector<std::string>{"the", "running", "dogs"}));
  // And the default analyzer still answers correctly afterwards.
  a.clear();
  stemming.for_each_term(text, scratch, [&](std::string_view t) { a.emplace_back(t); });
  EXPECT_EQ(a, (std::vector<std::string>{"run", "dog"}));
}

TEST(Analyzer, QueryAndDocumentAgree) {
  // The same pipeline must map query words and document words to the same
  // terms, or search would silently fail.
  Analyzer analyzer;
  const auto doc_terms = analyzer.analyze("distributed systems are fascinating");
  const auto query_terms = analyzer.analyze("Distributed Systems");
  for (const auto& qt : query_terms) {
    EXPECT_NE(std::find(doc_terms.begin(), doc_terms.end(), qt), doc_terms.end()) << qt;
  }
}

}  // namespace
}  // namespace planetp::text
