#include "search/distributed.hpp"

#include <algorithm>
#include <unordered_set>

namespace planetp::search {

std::vector<RankedPeer> rank_peers(const IpfTable& ipf) {
  std::unordered_map<std::uint32_t, double> acc;
  for (const std::string& term : ipf.terms()) {
    const double w = ipf.weight(term);
    if (w <= 0.0) continue;
    for (std::uint32_t peer : ipf.peers_with(term)) acc[peer] += w;
  }
  std::vector<RankedPeer> out;
  out.reserve(acc.size());
  for (const auto& [peer, rank] : acc) out.push_back(RankedPeer{peer, rank});
  std::sort(out.begin(), out.end(), [](const RankedPeer& a, const RankedPeer& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.peer < b.peer;
  });
  return out;
}

DistributedSearchResult tfipf_search(const std::vector<std::string>& query_terms,
                                     const std::vector<PeerFilter>& filters,
                                     const PeerSearchFn& contact,
                                     const DistributedSearchOptions& opts) {
  DistributedSearchResult result;

  const IpfTable ipf(query_terms, filters);
  const auto weights = ipf.weights();
  const auto peers = rank_peers(ipf);
  result.candidate_peers = peers.size();

  const std::size_t patience = opts.stopping.patience(filters.size(), opts.k);
  const std::size_t group = std::max<std::size_t>(1, opts.group_size);

  std::vector<ScoredDoc> merged;
  std::size_t no_contribution_streak = 0;

  for (std::size_t i = 0; i < peers.size();) {
    if (opts.max_peers != 0 && result.contacted.size() >= opts.max_peers) break;

    // Contact the next group of peers (the paper's latency optimization;
    // group = 1 reproduces the sequential algorithm).
    const std::size_t end = std::min(i + group, peers.size());
    bool stop = false;
    for (std::size_t j = i; j < end; ++j) {
      const std::uint32_t peer = peers[j].peer;
      result.contacted.push_back(peer);
      std::vector<ScoredDoc> local = contact(peer, weights);

      // Merge and re-rank.
      merged.insert(merged.end(), local.begin(), local.end());
      std::sort(merged.begin(), merged.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc < b.doc;
      });

      // Did this peer contribute to the current top-k?
      std::unordered_set<index::DocumentId, index::DocumentIdHash> top;
      const std::size_t top_n = std::min(opts.k, merged.size());
      for (std::size_t t = 0; t < top_n; ++t) top.insert(merged[t].doc);
      bool contributed = false;
      for (const ScoredDoc& d : local) {
        if (top.contains(d.doc)) {
          contributed = true;
          break;
        }
      }
      if (contributed) {
        no_contribution_streak = 0;
      } else if (++no_contribution_streak >= patience && merged.size() >= opts.k) {
        stop = true;
        break;
      }
    }
    if (stop) break;
    i = end;
  }

  truncate_top_k(merged, opts.k);
  result.docs = std::move(merged);
  return result;
}

}  // namespace planetp::search
