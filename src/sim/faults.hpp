#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gossip/messages.hpp"
#include "gossip/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file faults.hpp
/// Deterministic fault injection for the gossip layer. A FaultPlan is a pure
/// description — per-link or per-peer rules active inside time windows that
/// drop, duplicate, delay or reorder messages, network partitions that heal,
/// and peer crash/restart events. A FaultInjector pairs a plan with a seeded
/// Rng and makes the actual per-message decisions: the same (plan, seed) and
/// the same sequence of decide() calls always yield the same injected-fault
/// sequence, so every failing scenario reproduces from its seed.
///
/// The same plan drives both runtimes: `SimCommunity` consults an injector in
/// its dispatch path (the old `SimConfig::message_drop_prob` knob is now a
/// shim that appends a uniform drop rule), and `net::LiveNode` accepts a
/// shared injector that wraps its TCP send path, so live tests replay the
/// exact scenarios the simulator runs.

namespace planetp::sim {

/// Wildcard peer id for fault scoping.
inline constexpr gossip::PeerId kAnyPeer = gossip::kInvalidPeer;

/// Half-open activity window [start, end) in simulation time.
struct TimeWindow {
  TimePoint start = 0;
  TimePoint end = std::numeric_limits<TimePoint>::max();

  bool contains(TimePoint t) const { return t >= start && t < end; }
  static TimeWindow always() { return {}; }
};

/// Which messages a rule applies to. `from`/`to` scope one link direction;
/// `peer` scopes every message touching that peer (either endpoint). All
/// three default to kAnyPeer (match everything) and compose conjunctively.
struct FaultScope {
  gossip::PeerId from = kAnyPeer;
  gossip::PeerId to = kAnyPeer;
  gossip::PeerId peer = kAnyPeer;

  bool matches(gossip::PeerId f, gossip::PeerId t) const {
    if (from != kAnyPeer && f != from) return false;
    if (to != kAnyPeer && t != to) return false;
    if (peer != kAnyPeer && f != peer && t != peer) return false;
    return true;
  }

  static FaultScope link(gossip::PeerId from, gossip::PeerId to) { return {from, to, kAnyPeer}; }
  static FaultScope of_peer(gossip::PeerId peer) { return {kAnyPeer, kAnyPeer, peer}; }
  static FaultScope any() { return {}; }
};

/// Message-type scoping for fault rules: values mirror the gossip::Message
/// variant indices so a rule can target one protocol leg (e.g. lose only
/// RumorWant replies and prove anti-entropy heals the stranded rumor). kAny
/// matches everything, including non-gossip traffic such as query RPCs.
enum class MsgClass : std::uint8_t {
  kRumor = 0,
  kRumorAck = 1,
  kSummaryRequest = 2,
  kSummary = 3,
  kPullRequest = 4,
  kPullResponse = 5,
  kRumorDigest = 6,
  kRumorWant = 7,
  kAny = 255,
};

/// The class of a concrete gossip message.
inline MsgClass msg_class_of(const gossip::Message& msg) {
  return static_cast<MsgClass>(msg.index());
}

enum class FaultAction : std::uint8_t {
  kDrop = 0,       ///< lose the message
  kDuplicate = 1,  ///< deliver an extra copy, lagging the original
  kDelay = 2,      ///< add latency to the message
  kReorder = 3,    ///< hold the message so later traffic overtakes it
};

struct FaultRule {
  FaultAction action = FaultAction::kDrop;
  FaultScope scope;
  TimeWindow window;
  double probability = 1.0;
  /// kDelay: fixed extra latency. kDuplicate/kReorder: minimum lag of the
  /// duplicate copy / held message.
  Duration delay = 0;
  /// Additional uniform-random latency in [0, jitter).
  Duration jitter = 0;
  /// Drop rules only: the sender is told delivery failed (TCP-like refusal)
  /// instead of the message vanishing silently (UDP-like loss).
  bool notify_sender = false;
  /// Restrict the rule to one gossip message type (kAny = all traffic).
  MsgClass msg = MsgClass::kAny;
};

/// A partition splits listed peers into groups; messages between different
/// groups are cut (with sender notification — a partitioned link refuses
/// connections, it does not silently eat traffic). Peers not listed in any
/// group are unaffected. The partition heals when the window ends.
struct PartitionSpec {
  TimeWindow window;
  std::unordered_map<gossip::PeerId, int> group_of;
};

/// Scheduled crash of a peer. With `lose_directory` the peer forgets all
/// protocol state (directory, hot rumors) as a process crash would; otherwise
/// it keeps its persisted directory, as PlanetP peers do (§3). restart_at == 0
/// means the peer never comes back.
struct CrashEvent {
  gossip::PeerId peer = kAnyPeer;
  TimePoint at = 0;
  TimePoint restart_at = 0;
  bool lose_directory = false;
};

/// What to do with one message. `duplicate_lags` holds the extra copies'
/// lags relative to the (already delayed) primary delivery.
struct FaultDecision {
  bool drop = false;
  bool partition_drop = false;  ///< drop was caused by a partition
  bool notify_sender = false;   ///< valid when drop: tell the sender
  bool delayed = false;
  bool reordered = false;
  Duration extra_delay = 0;
  std::vector<Duration> duplicate_lags;
};

/// Running totals of injected faults (also mirrored into NetworkStats by the
/// simulator so benches report convergence-vs-loss from one place).
struct FaultCounters {
  std::uint64_t dropped = 0;            ///< all dropped messages, partitions included
  std::uint64_t partition_dropped = 0;  ///< subset of `dropped` cut by partitions
  std::uint64_t duplicated = 0;         ///< extra copies injected
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
};

/// Declarative fault schedule. Builder methods return *this so plans read as
/// one chained expression; the plan itself holds no randomness.
class FaultPlan {
 public:
  FaultPlan& drop(FaultScope scope, TimeWindow window, double probability,
                  bool notify_sender = false, MsgClass msg = MsgClass::kAny);
  FaultPlan& duplicate(FaultScope scope, TimeWindow window, double probability,
                       Duration min_lag = 0, Duration jitter = kSecond,
                       MsgClass msg = MsgClass::kAny);
  FaultPlan& delay(FaultScope scope, TimeWindow window, Duration extra, Duration jitter = 0,
                   double probability = 1.0, MsgClass msg = MsgClass::kAny);
  FaultPlan& reorder(FaultScope scope, TimeWindow window, double probability,
                     Duration min_hold = 0, Duration jitter = kSecond,
                     MsgClass msg = MsgClass::kAny);
  FaultPlan& partition(TimeWindow window, const std::vector<std::vector<gossip::PeerId>>& groups);
  FaultPlan& crash(gossip::PeerId peer, TimePoint at, TimePoint restart_at = 0,
                   bool lose_directory = false);

  /// The `SimConfig::message_drop_prob` compatibility shim: every message,
  /// everywhere, forever, silently lost with probability \p p.
  static FaultPlan uniform_drop(double p);

  bool empty() const { return rules_.empty() && partitions_.empty() && crashes_.empty(); }
  const std::vector<FaultRule>& rules() const { return rules_; }
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

 private:
  std::vector<FaultRule> rules_;
  std::vector<PartitionSpec> partitions_;
  std::vector<CrashEvent> crashes_;
};

/// Applies a FaultPlan with a deterministic random stream. Thread-safe (the
/// live runtime calls decide() from several reactor threads sharing one
/// injector); the simulator's single-threaded use pays one uncontended lock.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {}, std::uint64_t seed = 0);

  /// Decide the fate of one message from \p from to \p to sent at \p now.
  /// Partitions are checked first, then rules in plan order; the first drop
  /// wins. Non-drop effects accumulate. \p msg lets class-scoped rules match
  /// only their message type; callers without a gossip message (query RPCs)
  /// pass kAny, which only class-less rules apply to.
  FaultDecision decide(gossip::PeerId from, gossip::PeerId to, TimePoint now,
                       MsgClass msg = MsgClass::kAny);

  const FaultPlan& plan() const { return plan_; }
  FaultCounters counters() const;
  void reset_counters();

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace planetp::sim
