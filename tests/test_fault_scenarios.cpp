#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "net/live_node.hpp"
#include "sim/community.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

/// \file test_fault_scenarios.cpp
/// End-to-end fault scenarios: the FaultPlan driving a full SimCommunity
/// (partitions that heal, crash/restart with and without persisted state,
/// sustained uniform loss) plus one live-TCP run sharing the same injector
/// machinery. Every scenario is asserted bit-reproducible from its seed.

namespace planetp::sim {
namespace {

gossip::PeerId pid(int i) { return static_cast<gossip::PeerId>(i); }

// ---------------------------------------------------------------------------
// Partition and heal
// ---------------------------------------------------------------------------

/// 12 peers split three ways for 20 minutes; one filter change happens inside
/// each island while the network is cut.
std::unique_ptr<SimCommunity> run_three_way_partition(std::uint64_t seed, bool* converged) {
  SimConfig cfg;
  cfg.seed = seed;
  // Probe aggressively so the healed halves re-merge well inside the test
  // horizon (the default 0.1 converges too, just more slowly).
  cfg.gossip.anti_entropy_every = 5;
  cfg.gossip.offline_probe_prob = 0.3;
  cfg.faults.partition({2 * kMinute, 22 * kMinute},
                       {{pid(0), pid(1), pid(2), pid(3)},
                        {pid(4), pid(5), pid(6), pid(7)},
                        {pid(8), pid(9), pid(10), pid(11)}});

  auto community = std::make_unique<SimCommunity>(cfg);
  for (int i = 0; i < 12; ++i) community->add_peer({link_speed::kLan45M, 1000});
  community->add_tracker("all", [](gossip::PeerId) { return true; });
  community->start_converged();

  community->run_until(5 * kMinute);  // partition is up
  community->inject_filter_change(0, 100);   // one event per island
  community->inject_filter_change(5, 100);
  community->inject_filter_change(10, 100);
  community->run_until(22 * kMinute);

  // While cut, no island can have learned the other islands' events.
  EXPECT_EQ(community->tracker(0).pending_events(), 3u);
  EXPECT_GT(community->faults().counters().partition_dropped, 0u);
  EXPECT_EQ(community->protocol(0).directory().find(5)->version, 1u);

  community->run_until(4 * kHour);  // healed; offline probes re-merge the halves
  *converged = community->tracker(0).pending_events() == 0 &&
               community->directories_consistent();
  return community;
}

std::tuple<std::uint64_t, std::uint64_t, std::size_t> fingerprint(SimCommunity& community) {
  return {community.stats().total_bytes(), community.faults().counters().dropped,
          community.tracker(0).converged_events()};
}

TEST(FaultScenarios, ThreeWayPartitionHealsAndConverges) {
  bool converged = false;
  const auto community = run_three_way_partition(21, &converged);
  EXPECT_TRUE(converged);
  // Every island's event reached every peer.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(community->protocol(pid(i)).directory().find(0)->version, 2u) << i;
    EXPECT_EQ(community->protocol(pid(i)).directory().find(5)->version, 2u) << i;
    EXPECT_EQ(community->protocol(pid(i)).directory().find(10)->version, 2u) << i;
  }
  // Partition drops were mirrored into the traffic accounting.
  EXPECT_EQ(community->stats().partition_dropped_messages(),
            community->faults().counters().partition_dropped);
}

TEST(FaultScenarios, PartitionScenarioIsReproducibleFromSeed) {
  bool c1 = false;
  bool c2 = false;
  const auto a = run_three_way_partition(33, &c1);
  const auto b = run_three_way_partition(33, &c2);
  EXPECT_EQ(fingerprint(*a), fingerprint(*b));
  EXPECT_EQ(c1, c2);
}

// ---------------------------------------------------------------------------
// Crash and restart: no T_dead limbo
// ---------------------------------------------------------------------------

TEST(FaultScenarios, CrashRestartKeepingDirectoryReadmitsAfterTDead) {
  // T_dead is short enough that the community *expires* the crashed peer's
  // record before it returns; the rejoin rumor must re-admit it everywhere at
  // its newest version instead of leaving it in limbo.
  SimConfig cfg;
  cfg.seed = 14;
  cfg.gossip.t_dead = 10 * kMinute;
  cfg.faults.crash(pid(3), /*at=*/2 * kMinute, /*restart_at=*/40 * kMinute,
                   /*lose_directory=*/false);
  SimCommunity community(cfg);
  for (int i = 0; i < 8; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();

  community.run_until(35 * kMinute);
  EXPECT_FALSE(community.is_online(3));
  // At least someone already expired the dead peer (probes marked it offline
  // at different local times, so expiry is not simultaneous).
  std::size_t expired = 0;
  for (int i = 0; i < 8; ++i) {
    if (i != 3 && community.protocol(pid(i)).directory().find(3) == nullptr) ++expired;
  }
  EXPECT_GT(expired, 0u);

  community.run_until(3 * kHour);
  EXPECT_TRUE(community.is_online(3));
  const std::uint64_t version = community.protocol(3).directory().find(3)->version;
  EXPECT_GE(version, 2u);  // rejoin bumped it
  for (int i = 0; i < 8; ++i) {
    const auto* r = community.protocol(pid(i)).directory().find(3);
    ASSERT_NE(r, nullptr) << "peer " << i << " left 3 in T_dead limbo";
    EXPECT_EQ(r->version, version) << i;
  }
  EXPECT_TRUE(community.directories_consistent());
}

TEST(FaultScenarios, CrashLosingDirectoryRecoversOwnVersion) {
  // The peer's process dies without persistence: directory, hot rumors and —
  // critically — its own version counter are gone. On restart it must notice
  // the community remembers a higher version of itself and jump past it
  // (adopt_own_version), or its future updates would be ignored as stale.
  SimConfig cfg;
  cfg.seed = 15;
  cfg.faults.crash(pid(2), /*at=*/5 * kMinute, /*restart_at=*/30 * kMinute,
                   /*lose_directory=*/true);
  SimCommunity community(cfg);
  for (int i = 0; i < 8; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();

  community.run_until(2 * kMinute);
  community.inject_filter_change(2, 50);  // bump 2's version to 2 pre-crash
  community.run_until(20 * kMinute);
  EXPECT_FALSE(community.is_online(2));
  EXPECT_EQ(community.protocol(2).directory().size(), 0u);  // state truly lost

  community.run_until(3 * kHour);
  EXPECT_TRUE(community.is_online(2));
  const auto* self = community.protocol(2).directory().find(2);
  ASSERT_NE(self, nullptr);
  EXPECT_GT(self->version, 2u) << "restarted peer must supersede its pre-crash version";
  EXPECT_EQ(community.protocol(2).directory().size(), 8u);  // relearned everyone
  for (int i = 0; i < 8; ++i) {
    const auto* r = community.protocol(pid(i)).directory().find(2);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_EQ(r->version, self->version) << i;
  }
  EXPECT_TRUE(community.directories_consistent());
}

TEST(FaultScenarios, LossyCrashRestartCannotStrandThePeer) {
  // A peer that loses its directory restarts knowing exactly one address —
  // its introducer — and under uniform loss any leg of the catch-up exchange
  // (request, summary, pull request, pull response) can vanish. Whichever leg
  // is lost, the peer must keep re-asking the introducer rather than ending
  // permanently isolated while the rest of the community still believes it
  // is online. Several seeds so different legs get to be the lost one.
  for (const std::uint64_t seed : {1u, 7u, 42u, 101u}) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.faults.drop(FaultScope::any(), TimeWindow::always(), 0.15)
        .partition({5 * kMinute, 35 * kMinute}, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
        .crash(pid(2), /*at=*/10 * kMinute, /*restart_at=*/50 * kMinute,
               /*lose_directory=*/true);
    cfg.gossip.offline_probe_prob = 0.3;
    SimCommunity community(cfg);
    for (int i = 0; i < 10; ++i) community.add_peer({link_speed::kLan45M, 500});
    community.start_converged();
    community.inject_filter_change(6, 40);
    community.run_until(3 * kHour);
    EXPECT_EQ(community.protocol(2).directory().size(), 10u) << "seed " << seed;
    EXPECT_TRUE(community.directories_consistent()) << "seed " << seed;
  }
}

TEST(FaultScenarios, CrashLosingDirectoryAfterExpiryJumpsRejoinFloor) {
  // Worst case: the peer loses its state AND stays away past T_dead, so the
  // community both expired its record and holds tombstones at the very
  // version the peer restarts with (1). Without the summary reply's
  // rejoin_floor the restarted peer would gossip v1 forever and every copy
  // would be refused as tombstoned.
  SimConfig cfg;
  cfg.seed = 18;
  cfg.gossip.t_dead = 8 * kMinute;
  cfg.faults.crash(pid(4), /*at=*/2 * kMinute, /*restart_at=*/45 * kMinute,
                   /*lose_directory=*/true);
  SimCommunity community(cfg);
  for (int i = 0; i < 8; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();

  community.run_until(40 * kMinute);
  for (int i = 0; i < 8; ++i) {  // everyone expired the crashed peer
    if (i == 4) continue;
    EXPECT_EQ(community.protocol(pid(i)).directory().find(4), nullptr) << i;
  }

  community.run_until(3 * kHour);
  EXPECT_TRUE(community.is_online(4));
  const auto* self = community.protocol(4).directory().find(4);
  ASSERT_NE(self, nullptr);
  EXPECT_GE(self->version, 2u);  // jumped past the tombstoned version 1
  for (int i = 0; i < 8; ++i) {
    const auto* r = community.protocol(pid(i)).directory().find(4);
    ASSERT_NE(r, nullptr) << "peer " << i << " still refuses the restarted peer";
    EXPECT_EQ(r->version, self->version) << i;
  }
  EXPECT_TRUE(community.directories_consistent());
}

// ---------------------------------------------------------------------------
// Sustained uniform loss
// ---------------------------------------------------------------------------

std::tuple<std::uint64_t, std::uint64_t, std::size_t> run_lossy(std::uint64_t seed,
                                                                bool* converged) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.faults = FaultPlan::uniform_drop(0.20);
  SimCommunity community(cfg);
  for (int i = 0; i < 20; ++i) community.add_peer({link_speed::kLan45M, 1000});
  const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  community.run_until(kMinute);
  community.inject_filter_change(0, 100);
  community.run_until(2 * kHour);  // bounded horizon: ~240 base rounds
  *converged = community.tracker(t).pending_events() == 0;
  EXPECT_GT(community.stats().dropped_messages(), 0u);
  EXPECT_EQ(community.stats().dropped_messages(), community.faults().counters().dropped);
  return {community.stats().total_bytes(), community.stats().dropped_messages(),
          community.tracker(t).converged_events()};
}

TEST(FaultScenarios, TwentyPercentLossConvergesInBoundedTime) {
  bool converged = false;
  run_lossy(16, &converged);
  EXPECT_TRUE(converged);
}

TEST(FaultScenarios, LossScenarioIsReproducibleFromSeed) {
  bool c1 = false;
  bool c2 = false;
  const auto a = run_lossy(27, &c1);
  const auto b = run_lossy(27, &c2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(c1, c2);
}

// ---------------------------------------------------------------------------
// The same injector machinery wraps the live TCP stack
// ---------------------------------------------------------------------------

TEST(FaultScenarios, LiveNodesConvergeThroughLossyInjector) {
  auto faults = std::make_shared<FaultInjector>(FaultPlan::uniform_drop(0.3), 77);
  net::LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip.base_interval = 100 * kMillisecond;
  cfg.gossip.max_interval = 400 * kMillisecond;
  cfg.gossip.slow_down = 100 * kMillisecond;
  cfg.faults = faults;

  net::LiveNode a(0, cfg);
  net::LiveNode b(1, cfg);
  net::LiveNode c(2, cfg);
  a.start();
  b.start();
  c.start();
  b.join(0, a.address());
  c.join(0, a.address());

  // Push retries and anti-entropy shrug off the 30% loss.
  EXPECT_TRUE(a.wait_for_peers(3, 30 * kSecond));
  EXPECT_TRUE(b.wait_for_peers(3, 30 * kSecond));
  EXPECT_TRUE(c.wait_for_peers(3, 30 * kSecond));
  EXPECT_GT(faults->counters().dropped, 0u);

  c.stop();
  b.stop();
  a.stop();
}

}  // namespace
}  // namespace planetp::sim
