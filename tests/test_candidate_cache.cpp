#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"

using namespace planetp;
using namespace planetp::search;

namespace {

bloom::BloomParams small_params() { return bloom::BloomParams{65536, 2}; }

std::string term_name(std::size_t i) { return "term" + std::to_string(i); }

std::shared_ptr<bloom::BloomFilter> make_filter(const std::vector<std::size_t>& term_ids) {
  auto f = std::make_shared<bloom::BloomFilter>(small_params());
  for (std::size_t t : term_ids) f->insert(term_name(t));
  return f;
}

/// The tentpole invariant: for any view, the cache-assembled table must be
/// byte-identical to a from-scratch IpfTable over the same view — same term
/// weights, same candidate sets, and bitwise-equal rank_peers output.
void expect_identical(const IpfTable& cached, const IpfTable& fresh) {
  EXPECT_EQ(cached.num_peers(), fresh.num_peers());
  ASSERT_EQ(cached.terms(), fresh.terms());
  for (const std::string& t : cached.terms()) {
    EXPECT_EQ(cached.weight(t), fresh.weight(t)) << "term " << t;
    // Candidate lists are sets: order carries no meaning, membership must match.
    std::vector<std::uint32_t> a = cached.peers_with(t);
    std::vector<std::uint32_t> b = fresh.peers_with(t);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "term " << t;
  }
  const auto ra = rank_peers(cached);
  const auto rb = rank_peers(fresh);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].peer, rb[i].peer) << "rank position " << i;
    EXPECT_EQ(ra[i].rank, rb[i].rank) << "rank position " << i;
    EXPECT_EQ(ra[i].suspicion, rb[i].suspicion) << "rank position " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Deterministic behaviour pins
// ---------------------------------------------------------------------------

TEST(CandidateCache, WarmLookupMatchesFreshTable) {
  CandidateCache cache;
  auto f0 = make_filter({1, 2, 3});
  auto f1 = make_filter({2, 3, 4});
  cache.update_peer(0, f0, 1);
  cache.update_peer(1, f1, 1);

  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0},
                                        {1, cache.filter_ptr(1), 2}};
  const std::vector<std::string> terms = {term_name(2), term_name(4), term_name(9)};
  const HashedTerms hashed = HashedTerms::from(terms);

  const IpfTable cold = cache.lookup(hashed, view);
  expect_identical(cold, IpfTable(hashed, view));
  EXPECT_EQ(cache.stats().term_misses, 3u);

  const IpfTable warm = cache.lookup(hashed, view);
  expect_identical(warm, IpfTable(hashed, view));
  EXPECT_EQ(cache.stats().term_hits, 3u);
  EXPECT_EQ(cache.stats().term_misses, 3u);
  EXPECT_EQ(cache.cached_terms(), 3u);
}

TEST(CandidateCache, SurgicalDiffKeepsUntouchedTermsWarm) {
  CandidateCache cache;
  cache.update_peer(0, make_filter({1}), 1);

  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  const HashedTerms hashed = HashedTerms::from({term_name(1), term_name(2)});
  cache.lookup(hashed, view);
  ASSERT_EQ(cache.cached_terms(), 2u);

  // A diff that only inserts term 7: neither cached term's bits move, so both
  // entries must be kept warm without re-probing.
  auto base = cache.filter_of(0);
  bloom::BloomFilter modified = *base;
  modified.insert(term_name(7));
  ASSERT_TRUE(cache.apply_peer_diff(0, modified.diff_from(*base), 1, 2));
  EXPECT_EQ(cache.version_of(0), 2u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.surgical_keeps + stats.surgical_fixes, 2u);
  EXPECT_GE(stats.surgical_keeps, 1u);

  // Entries answered from cache (no new misses) and still byte-identical
  // against the updated filter.
  const std::vector<PeerFilter> view2 = {{0, cache.filter_ptr(0), 0}};
  const IpfTable after = cache.lookup(hashed, view2);
  expect_identical(after, IpfTable(hashed, view2));
  EXPECT_EQ(cache.stats().term_misses, 2u);
  EXPECT_EQ(cache.stats().term_hits, 2u);
}

TEST(CandidateCache, SurgicalDiffFixesTouchedTermMembership) {
  CandidateCache cache;
  cache.update_peer(0, make_filter({}), 1);

  const HashedTerms hashed = HashedTerms::from({term_name(5)});
  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  const IpfTable before = cache.lookup(hashed, view);
  EXPECT_TRUE(before.peers_with(term_name(5)).empty());

  // The diff inserts exactly the cached term: its bits are touched, so the
  // entry's membership for peer 0 must flip without a full reprobe.
  auto base = cache.filter_of(0);
  bloom::BloomFilter modified = *base;
  modified.insert(term_name(5));
  ASSERT_TRUE(cache.apply_peer_diff(0, modified.diff_from(*base), 1, 2));
  EXPECT_GE(cache.stats().surgical_fixes, 1u);

  const std::vector<PeerFilter> view2 = {{0, cache.filter_ptr(0), 0}};
  const IpfTable after = cache.lookup(hashed, view2);
  expect_identical(after, IpfTable(hashed, view2));
  ASSERT_EQ(after.peers_with(term_name(5)).size(), 1u);
  EXPECT_EQ(after.peers_with(term_name(5))[0], 0u);
  EXPECT_EQ(cache.stats().term_misses, 1u);  // still answered from the entry
}

TEST(CandidateCache, StaleOrMismatchedDiffIsRejected) {
  CandidateCache cache;
  cache.update_peer(3, make_filter({1}), 5);

  auto base = cache.filter_of(3);
  bloom::BloomFilter modified = *base;
  modified.insert(term_name(2));
  const BitVector diff = modified.diff_from(*base);

  EXPECT_FALSE(cache.apply_peer_diff(3, diff, 4, 6));   // wrong base version
  EXPECT_FALSE(cache.apply_peer_diff(9, diff, 5, 6));   // unknown peer
  EXPECT_FALSE(cache.apply_peer_diff(3, BitVector(128), 5, 6));  // wrong geometry
  EXPECT_EQ(cache.version_of(3), 5u);
  EXPECT_TRUE(cache.apply_peer_diff(3, diff, 5, 6));
  EXPECT_EQ(cache.version_of(3), 6u);
}

TEST(CandidateCache, FullUpdateReprobesAndRemoveErases) {
  CandidateCache cache;
  cache.update_peer(0, make_filter({1}), 1);
  cache.update_peer(1, make_filter({1}), 1);

  const HashedTerms hashed = HashedTerms::from({term_name(1)});
  std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}, {1, cache.filter_ptr(1), 0}};
  EXPECT_EQ(cache.lookup(hashed, view).peers_with(term_name(1)).size(), 2u);

  // Replacing peer 0's filter with one lacking the term reprobes the warm
  // entry in place.
  cache.update_peer(0, make_filter({2}), 2);
  view = {{0, cache.filter_ptr(0), 0}, {1, cache.filter_ptr(1), 0}};
  IpfTable t = cache.lookup(hashed, view);
  expect_identical(t, IpfTable(hashed, view));
  ASSERT_EQ(t.peers_with(term_name(1)).size(), 1u);
  EXPECT_EQ(t.peers_with(term_name(1))[0], 1u);
  EXPECT_GT(cache.stats().full_reprobes, 0u);

  cache.remove_peer(1);
  EXPECT_EQ(cache.known_peers(), 1u);
  EXPECT_FALSE(cache.version_of(1).has_value());
  view = {{0, cache.filter_ptr(0), 0}};
  EXPECT_TRUE(cache.lookup(hashed, view).peers_with(term_name(1)).empty());
}

TEST(CandidateCache, TouchPeerKeepsEntriesWarm) {
  CandidateCache cache;
  cache.update_peer(0, make_filter({1}), 1);
  const HashedTerms hashed = HashedTerms::from({term_name(1)});
  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  cache.lookup(hashed, view);

  EXPECT_TRUE(cache.touch_peer(0, 2));  // rejoin: version bump, same content
  EXPECT_FALSE(cache.touch_peer(7, 1));
  EXPECT_EQ(cache.version_of(0), 2u);

  cache.lookup(hashed, view);
  EXPECT_EQ(cache.stats().term_hits, 1u);
}

TEST(CandidateCache, EvictionBoundsEntriesAndStaysCorrect) {
  CandidateCacheConfig cfg;
  cfg.max_terms = 4;
  CandidateCache cache(cfg);
  cache.update_peer(0, make_filter({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}), 1);

  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  std::vector<std::string> terms;
  for (std::size_t i = 0; i < 10; ++i) terms.push_back(term_name(i));
  const HashedTerms hashed = HashedTerms::from(terms);

  const IpfTable t = cache.lookup(hashed, view);
  expect_identical(t, IpfTable(hashed, view));
  EXPECT_LE(cache.cached_terms(), 4u);
  EXPECT_GE(cache.stats().evictions, 6u);

  // Evicted terms just miss again; results stay identical.
  const IpfTable again = cache.lookup(hashed, view);
  expect_identical(again, IpfTable(hashed, view));
}

TEST(CandidateCache, DisabledModeProbesWithoutStoringEntries) {
  CandidateCacheConfig cfg;
  cfg.enabled = false;
  CandidateCache cache(cfg);
  cache.update_peer(0, make_filter({1, 2}), 1);

  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0}};
  const HashedTerms hashed = HashedTerms::from({term_name(1), term_name(9)});
  const IpfTable t = cache.lookup(hashed, view);
  expect_identical(t, IpfTable(hashed, view));
  EXPECT_EQ(cache.cached_terms(), 0u);
  EXPECT_EQ(cache.stats().term_hits, 0u);
}

TEST(CandidateCache, UnbackedAndDuplicateViewRowsAreProbedDirectly) {
  CandidateCache cache;
  cache.update_peer(0, make_filter({1}), 1);

  // Peer 5 is unknown to the cache; peer 0 appears twice (the duplicate row
  // must be probed directly so the fresh table's double-count is reproduced).
  auto foreign = make_filter({1});
  const std::vector<PeerFilter> view = {{0, cache.filter_ptr(0), 0},
                                        {5, foreign.get(), 1},
                                        {0, cache.filter_ptr(0), 0}};
  const HashedTerms hashed = HashedTerms::from({term_name(1)});
  const IpfTable t = cache.lookup(hashed, view);
  expect_identical(t, IpfTable(hashed, view));
  EXPECT_EQ(t.peers_with(term_name(1)).size(), 3u);
}

TEST(CandidateCache, ParallelKernelMatchesSingleThreaded) {
  CandidateCacheConfig cfg;
  cfg.parallel_threshold = 4;  // force the sharded path on a small population
  CandidateCache cache(cfg);

  std::vector<PeerFilter> view;
  for (std::uint32_t p = 0; p < 12; ++p) {
    cache.update_peer(p, make_filter({p % 5, p % 3}), 1);
  }
  for (std::uint32_t p = 0; p < 12; ++p) view.push_back({p, cache.filter_ptr(p), 0});

  std::vector<std::string> terms;
  for (std::size_t i = 0; i < 5; ++i) terms.push_back(term_name(i));
  const HashedTerms hashed = HashedTerms::from(terms);
  const IpfTable t = cache.lookup(hashed, view);
  expect_identical(t, IpfTable(hashed, view));
  EXPECT_GT(cache.stats().parallel_scans, 0u);
}

// ---------------------------------------------------------------------------
// Property test: randomized gossip interleavings
// ---------------------------------------------------------------------------

/// Drive the cache through random interleavings of the operations gossip
/// performs on it — full filter replacements, surgical XOR diffs, version
/// touches, removals, stale diffs — interleaved with queries, and require
/// every query to be byte-identical to an uncached IpfTable over the same
/// view (including extra rows the cache has never seen and random SUSPECT
/// levels). Evictions are forced by a small max_terms.
TEST(CandidateCacheProperty, RandomInterleavingsMatchUncachedTables) {
  std::mt19937_64 rng(20260806);
  constexpr std::size_t kPeers = 12;
  constexpr std::size_t kVocab = 40;
  constexpr int kIterations = 400;

  CandidateCacheConfig cfg;
  cfg.max_terms = 16;
  CandidateCache cache(cfg);

  std::vector<std::uint64_t> version(kPeers, 0);
  auto extra = make_filter({0, 1, 2});

  auto random_filter = [&] {
    std::vector<std::size_t> ids;
    for (std::size_t t = 0; t < kVocab; ++t) {
      if (rng() % 100 < 30) ids.push_back(t);
    }
    return make_filter(ids);
  };

  // Seed half the population so early queries see both hits and empty views.
  for (std::size_t p = 0; p < kPeers; p += 2) {
    cache.update_peer(static_cast<std::uint32_t>(p), random_filter(), ++version[p]);
  }

  std::size_t queries_checked = 0;
  for (int iter = 0; iter < kIterations; ++iter) {
    const std::uint32_t peer = static_cast<std::uint32_t>(rng() % kPeers);
    switch (rng() % 8) {
      case 0:  // full filter replacement (kFilterChange with full bits)
        cache.update_peer(peer, random_filter(), ++version[peer]);
        break;
      case 1: {  // surgical XOR diff on a known peer
        auto base = cache.filter_of(peer);
        if (base == nullptr) break;
        bloom::BloomFilter modified = *base;
        const std::size_t adds = 1 + rng() % 3;
        for (std::size_t a = 0; a < adds; ++a) modified.insert(term_name(rng() % kVocab));
        ASSERT_TRUE(cache.apply_peer_diff(peer, modified.diff_from(*base),
                                          version[peer], version[peer] + 1));
        ++version[peer];
        break;
      }
      case 2:  // rejoin: version touch, content unchanged
        if (cache.version_of(peer).has_value()) {
          ASSERT_TRUE(cache.touch_peer(peer, ++version[peer]));
        }
        break;
      case 3:  // expiry
        cache.remove_peer(peer);
        break;
      case 4: {  // stale diff must be rejected and change nothing
        auto base = cache.filter_of(peer);
        if (base == nullptr) break;
        bloom::BloomFilter modified = *base;
        modified.insert(term_name(rng() % kVocab));
        EXPECT_FALSE(cache.apply_peer_diff(peer, modified.diff_from(*base),
                                           version[peer] + 17, version[peer] + 18));
        break;
      }
      default: {  // query
        std::vector<PeerFilter> view;
        for (std::uint32_t p = 0; p < kPeers; ++p) {
          const bloom::BloomFilter* f = cache.filter_ptr(p);
          if (f != nullptr) {
            view.push_back({p, f, static_cast<std::uint32_t>(rng() % 3)});
          }
        }
        if (rng() % 2 == 0) view.push_back({100, extra.get(), 0});  // unbacked row
        if (rng() % 4 == 0 && !view.empty()) view.push_back(view.front());  // duplicate

        std::vector<std::string> terms;
        const std::size_t nterms = 1 + rng() % 4;
        for (std::size_t t = 0; t < nterms; ++t) terms.push_back(term_name(rng() % kVocab));
        const HashedTerms hashed = HashedTerms::from(terms);

        expect_identical(cache.lookup(hashed, view), IpfTable(hashed, view));
        ++queries_checked;
        break;
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "diverged at iteration " << iter;
    }
  }

  EXPECT_GT(queries_checked, 100u);
  const auto stats = cache.stats();
  // The interleavings must have exercised every maintenance path.
  EXPECT_GT(stats.term_hits, 0u);
  EXPECT_GT(stats.term_misses, 0u);
  EXPECT_GT(stats.surgical_keeps, 0u);
  EXPECT_GT(stats.surgical_fixes, 0u);
  EXPECT_GT(stats.full_reprobes, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

// ---------------------------------------------------------------------------
// Epoch advance: E-consistent or transparently re-probed to E+1 — never a mix
// ---------------------------------------------------------------------------

TEST(CandidateCache, EpochAdvanceServesConsistentResultsNeverAMix) {
  CandidateCache cache;
  auto f0 = make_filter({1, 2, 3});
  auto f1 = make_filter({2, 3, 4});
  cache.update_peer(0, f0, 1);
  cache.update_peer(1, f1, 1);
  const std::uint64_t epoch_e = cache.population_epoch();
  EXPECT_EQ(epoch_e, 2u);

  // Prime on epoch E: both terms cached, answers E-consistent.
  const std::vector<std::string> terms = {term_name(2), term_name(4)};
  const HashedTerms hashed = HashedTerms::from(terms);
  const std::vector<PeerFilter> view_e = {{0, cache.filter_ptr(0), 0},
                                          {1, cache.filter_ptr(1), 0}};
  expect_identical(cache.lookup(hashed, view_e), IpfTable(hashed, view_e));
  EXPECT_EQ(cache.stats().term_misses, 2u);
  EXPECT_EQ(cache.cached_terms(), 2u);
  EXPECT_EQ(cache.population_epoch(), epoch_e);  // queries never advance the epoch

  // A warm E lookup is pure epoch-E state: hits only, no re-probe counters.
  expect_identical(cache.lookup(hashed, view_e), IpfTable(hashed, view_e));
  EXPECT_EQ(cache.stats().term_hits, 2u);
  EXPECT_EQ(cache.stats().full_reprobes, 0u);

  // Population change -> epoch E+1: peer 1's filter flips membership of both
  // cached terms (drops term 2 and 4, gains term 9). The cache must re-probe
  // its entries *at update time*, so the next lookup serves E+1 throughout.
  auto f1b = make_filter({3, 9});
  cache.update_peer(1, f1b, 2);
  EXPECT_EQ(cache.population_epoch(), epoch_e + 1);
  // The counter pinning which path ran: a full filter replacement re-probes
  // every cached entry (2 of them) in place.
  EXPECT_EQ(cache.stats().full_reprobes, 2u);

  const std::vector<PeerFilter> view_e1 = {{0, cache.filter_ptr(0), 0},
                                           {1, cache.filter_ptr(1), 0}};
  const IpfTable after = cache.lookup(hashed, view_e1);
  // Fully E+1-consistent: identical to a from-scratch table over the new
  // view. In particular peer 1 is out of term 2's and term 4's candidates —
  // an E/E+1 mix would have kept it for the warm entries.
  expect_identical(after, IpfTable(hashed, view_e1));
  std::vector<std::uint32_t> t2 = after.peers_with(term_name(2));
  EXPECT_EQ(t2, std::vector<std::uint32_t>{0});
  EXPECT_TRUE(after.peers_with(term_name(4)).empty());
  // ...and it was served from the re-probed (warm) entries, not from fresh
  // kernel probes: hits advanced, misses did not.
  EXPECT_EQ(cache.stats().term_hits, 4u);
  EXPECT_EQ(cache.stats().term_misses, 2u);
}
