#include "net/live_node.hpp"

#include <algorithm>

#include "bloom/wire.hpp"
#include "gossip/messages.hpp"
#include "index/persistence.hpp"
#include "index/xml.hpp"
#include "search/ranker.hpp"
#include "util/logging.hpp"

namespace planetp::net {

using gossip::PeerId;

LiveNode::LiveNode(PeerId id, LiveNodeConfig config, std::uint16_t port)
    : id_(id),
      config_(config),
      reactor_(config.reactor),
      store_(id, config.bloom, config.analyzer),
      protocol_(id, config.gossip, Rng(0x11fe00d ^ id)),
      last_announced_(config.bloom),
      filter_cache_(config.candidate_cache) {
  reactor_.listen(port);
  // Keep the candidate cache warm from the gossip stream: XOR filter diffs
  // apply surgically (cached terms whose bits the diff misses stay warm),
  // rejoins are version touches, anything else drops the stale filter for
  // lazy re-decode on the next query. Both hooks fire under mu_.
  protocol_.hooks().on_apply = [this](const gossip::RumorPayload& payload, TimePoint) {
    if (payload.origin == id_) return;
    if (!payload.filter.has_value() || payload.kind == gossip::EventKind::kRejoin) {
      filter_cache_.touch_peer(payload.origin, payload.version);
      return;
    }
    const gossip::FilterUpdate& fu = *payload.filter;
    if (fu.base_version != 0 && !fu.bits.empty()) {
      // Wire-backed peers absorb the diff in the Golomb gap domain (at-rest
      // bytes updated in place, resident decoded copies fixed surgically).
      if (filter_cache_.apply_peer_diff_wire(payload.origin, fu.bits, fu.base_version,
                                             payload.version)) {
        return;
      }
      try {
        ByteReader reader(fu.bits);
        const BitVector diff = bloom::decode_diff(reader);
        if (filter_cache_.apply_peer_diff(payload.origin, diff, fu.base_version,
                                          payload.version)) {
          return;
        }
      } catch (const std::exception&) {
      }
    }
    filter_cache_.remove_peer(payload.origin);
  };
  protocol_.hooks().on_expire = [this](PeerId peer) { filter_cache_.remove_peer(peer); };
}

LiveNode::~LiveNode() { stop(); }

namespace {
TimePoint steady_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void LiveNode::start() {
  if (started_) return;
  started_ = true;
  fault_origin_ = steady_micros();
  reactor_.start([this](const Frame& f) { on_frame(f); },
                 [this](const std::string& addr) { on_send_failure(addr); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    ByteWriter w;
    bloom::encode_filter(w, store_.bloom_filter());
    const auto key_count = static_cast<std::uint32_t>(store_.index().num_terms());
    if (bootstrap_requested_) {
      // Converged start: install everyone quietly, no join rumor. When the
      // seeded records carried a version for ourselves (restart keeping the
      // directory) resume from it so peers' stale records lose to ours.
      protocol_.quiet_start(address(), gossip::LinkClass::kFast, key_count, w.take());
      protocol_.bootstrap(bootstrap_records_);
      if (bootstrap_self_version_ > 1) {
        if (const gossip::PeerRecord* self = protocol_.directory().find(id_)) {
          gossip::PeerRecord resumed = *self;
          resumed.version = bootstrap_self_version_;
          protocol_.directory().put_self(std::move(resumed));
        }
      }
      bootstrap_records_.clear();
    } else {
      protocol_.local_join(address(), gossip::LinkClass::kFast, key_count, w.take(), 0);
    }
  }
  const Duration first = protocol_.current_interval();
  {
    std::lock_guard<std::mutex> lock(jitter_mu_);
    last_round_due_ = steady_micros() + first;
  }
  reactor_.schedule(first, [this] { gossip_round(); });
  reactor_.schedule(5 * kSecond, [this] { sweep_broker_store(); });
}

void LiveNode::bootstrap_converged(std::vector<gossip::PeerRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  bootstrap_self_version_ = 0;
  for (const gossip::PeerRecord& r : records) {
    if (r.id == id_) bootstrap_self_version_ = r.version;
  }
  bootstrap_records_ = std::move(records);
  bootstrap_requested_ = true;
}

gossip::PeerRecord LiveNode::bootstrap_record(bool include_filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  gossip::PeerRecord r;
  r.id = id_;
  r.address = reactor_.address();
  r.link_class = gossip::LinkClass::kFast;
  r.version = 1;
  r.online = true;
  r.key_count = static_cast<std::uint32_t>(store_.index().num_terms());
  if (include_filter && r.key_count > 0) {
    ByteWriter w;
    bloom::encode_filter(w, store_.bloom_filter());
    r.filter_wire = w.take();
  }
  return r;
}

void LiveNode::announce_rejoin() {
  std::lock_guard<std::mutex> lock(mu_);
  // Bumps our version and rumors presence; the rumor rides the next round.
  protocol_.local_rejoin(steady_micros());
}

void LiveNode::stop() {
  if (!started_) return;
  started_ = false;
  reactor_.stop();
}

void LiveNode::join(PeerId introducer, const std::string& introducer_address) {
  std::vector<gossip::Protocol::Outgoing> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Seed a provisional record (version 0) so messages can route to the
    // introducer before its real record arrives.
    gossip::PeerRecord seed;
    seed.id = introducer;
    seed.address = introducer_address;
    seed.version = 0;
    protocol_.directory().apply(seed);
    out.push_back(protocol_.join_via(introducer, steady_micros()));
  }
  send_outgoing(std::move(out));
}

namespace {
constexpr std::size_t kJitterWindow = 512;
}

void LiveNode::gossip_round() {
  if (!started_) return;
  const TimePoint entered = steady_micros();
  rounds_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jitter_mu_);
    if (last_round_due_ != 0) {
      const Duration jitter =
          entered > last_round_due_ ? entered - last_round_due_ : last_round_due_ - entered;
      if (jitter_samples_.size() >= kJitterWindow) {
        jitter_samples_.erase(jitter_samples_.begin());
      }
      jitter_samples_.push_back(jitter);
    }
  }
  std::vector<gossip::Protocol::Outgoing> out;
  Duration next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = protocol_.on_round(steady_micros());
    next = protocol_.current_interval();
  }
  send_outgoing(std::move(out));
  {
    std::lock_guard<std::mutex> lock(jitter_mu_);
    last_round_due_ = steady_micros() + next;
  }
  reactor_.schedule(next, [this] { gossip_round(); });
}

std::vector<Duration> LiveNode::round_jitter_samples() const {
  std::lock_guard<std::mutex> lock(jitter_mu_);
  return jitter_samples_;
}

NetStats LiveNode::net_stats() const {
  NetStats s = reactor_.stats();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.gossip = protocol_.stats();
  }
  return s;
}

std::string LiveNode::address_of(PeerId peer) const {
  const gossip::PeerRecord* record = protocol_.directory().find(peer);
  return record == nullptr ? std::string{} : record->address;
}

void LiveNode::send_outgoing(std::vector<gossip::Protocol::Outgoing> batch) {
  for (auto& out : batch) {
    std::string addr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      addr = address_of(out.to);
    }
    if (addr.empty()) continue;
    Frame frame;
    frame.sender = id_;
    frame.channel = Channel::kGossip;
    frame.payload = gossip::encode_message(out.msg);
    // Pull responses answer an explicit request (anti-entropy pull or a lazy
    // RumorWant): dropping one under backpressure would strand the asker
    // until a retry, so they ride the never-evicted RPC send class. Everything
    // else is periodic gossip and may be shed.
    const SendClass cls = std::holds_alternative<gossip::PullResponseMsg>(out.msg)
                              ? SendClass::kRpc
                              : SendClass::kGossip;

    if (config_.faults) {
      // The fault-wrapping transport: the same FaultPlan the simulator runs,
      // applied to real frames. Drops are silent wire loss; delayed and
      // duplicate copies ride the reactor's timer heap.
      const sim::FaultDecision fault = config_.faults->decide(
          id_, out.to, steady_micros() - fault_origin_, sim::msg_class_of(out.msg));
      if (fault.drop) continue;
      for (const Duration lag : fault.duplicate_lags) {
        reactor_.schedule(fault.extra_delay + std::max<Duration>(lag, 1),
                          [this, addr, frame, cls] { reactor_.send(addr, Frame(frame), cls); });
      }
      if (fault.extra_delay > 0) {
        reactor_.schedule(fault.extra_delay, [this, addr, frame, cls]() mutable {
          reactor_.send(addr, std::move(frame), cls);
        });
        continue;
      }
    }
    reactor_.send(addr, std::move(frame), cls);
  }
}

void LiveNode::on_frame(const Frame& frame) {
  if (frame.channel == Channel::kGossip) {
    std::vector<gossip::Protocol::Outgoing> replies;
    try {
      const gossip::Message msg = gossip::decode_message(frame.payload);
      std::lock_guard<std::mutex> lock(mu_);
      replies = protocol_.on_message(steady_micros(), frame.sender, msg);
    } catch (const std::exception& e) {
      PLOG_WARN("net", "bad gossip frame from ", frame.sender, ": ", e.what());
      return;
    }
    send_outgoing(std::move(replies));
    return;
  }
  try {
    handle_rpc(frame.sender, decode_rpc(frame.payload));
  } catch (const std::exception& e) {
    PLOG_WARN("net", "bad rpc frame from ", frame.sender, ": ", e.what());
  }
}

void LiveNode::on_send_failure(const std::string& address) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Identify which peer the address belongs to and mark it offline (§3).
    PeerId failed = gossip::kInvalidPeer;
    protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
      if (r.address == address) failed = r.id;
    });
    if (failed != gossip::kInvalidPeer) protocol_.on_send_failed(failed, 0);
  }
  // Fail any synchronous RPC waiting on this address now rather than letting
  // it burn the full rpc_timeout against a dead socket.
  bool woke = false;
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    for (auto& [id, pending] : rpc_pending_) {
      if (pending.address == address && !pending.failed) {
        pending.failed = true;
        woke = true;
      }
    }
  }
  if (woke) rpc_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Publishing
// ---------------------------------------------------------------------------

void LiveNode::announce_filter_change(std::uint32_t new_keys) {
  std::vector<gossip::Protocol::Outgoing> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bloom::BloomFilter current = store_.bloom_filter();
    ByteWriter diff_writer;
    bloom::encode_diff(diff_writer, current.diff_from(last_announced_));
    ByteWriter full_writer;
    bloom::encode_filter(full_writer, current);
    protocol_.local_filter_change(static_cast<std::uint32_t>(store_.index().num_terms()),
                                  new_keys, diff_writer.take(), full_writer.take(), 0);
    last_announced_ = current;
  }
}

index::DocumentId LiveNode::publish(std::string xml) {
  index::DocumentId doc;
  std::size_t before, after;
  {
    std::lock_guard<std::mutex> lock(mu_);
    before = store_.index().num_terms();
    doc = store_.publish(std::move(xml));
    after = store_.index().num_terms();
  }
  announce_filter_change(static_cast<std::uint32_t>(after - before));
  return doc;
}

index::DocumentId LiveNode::publish_text(std::string_view title, std::string_view body) {
  return publish(index::wrap_text_as_xml(title, body));
}

// ---------------------------------------------------------------------------
// RPC server side
// ---------------------------------------------------------------------------

void LiveNode::reply_rpc(std::uint32_t peer, const RpcMessage& msg) {
  std::string addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    addr = address_of(peer);
  }
  if (addr.empty()) return;
  Frame frame;
  frame.sender = id_;
  frame.channel = Channel::kRpc;
  frame.payload = encode_rpc(msg);
  reactor_.send(addr, std::move(frame), SendClass::kRpc);
}

void LiveNode::handle_rpc(std::uint32_t sender, const RpcMessage& msg) {
  if (const auto* req = std::get_if<RankedRequest>(&msg)) {
    RankedResponse resp;
    resp.request_id = req->request_id;
    std::unordered_map<std::string, double> weights;
    for (const WeightedTerm& t : req->weights) weights.emplace(t.term, t.weight);
    // Rank lock-free against the published epoch snapshot; mu_ is only taken
    // afterwards for the title lookups.
    const auto scored = search::score_snapshot(*store_.snapshot(), weights);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& d : scored) {
        const index::Document* doc = store_.document(d.doc);
        resp.docs.push_back(
            RemoteDoc{d.doc.peer, d.doc.local, d.score, doc != nullptr ? doc->title : ""});
      }
    }
    reply_rpc(sender, resp);
    return;
  }
  if (const auto* req = std::get_if<ExhaustiveRequest>(&msg)) {
    ExhaustiveResponse resp;
    resp.request_id = req->request_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const index::DocumentId& d : store_.search_all_terms(req->query)) {
        const index::Document* doc = store_.document(d);
        resp.docs.push_back(
            RemoteDoc{d.peer, d.local, 0.0, doc != nullptr ? doc->title : ""});
      }
    }
    reply_rpc(sender, resp);
    return;
  }
  if (const auto* req = std::get_if<FetchRequest>(&msg)) {
    FetchResponse resp;
    resp.request_id = req->request_id;
    std::unique_lock<std::mutex> lock(mu_);
    const index::Document* doc = store_.document(index::DocumentId{req->peer, req->local});
    if (doc != nullptr) {
      resp.found = true;
      resp.title = doc->title;
      resp.xml = doc->xml_source;
    } else {
      // Replica fallback: we may hold the document as a brokered snippet
      // (publisher + snippet id addressing), letting a fetch succeed after
      // the publisher died. Snippet ids are only meaningful to the caller
      // when it published the document's snippet under its local id.
      const TimePoint now = steady_micros();
      for (const auto& [key, s] : broker_store_.all()) {
        if (s.publisher == req->peer && s.id == req->local && s.discard_at > now) {
          resp.found = true;
          resp.xml = s.xml;
          break;
        }
      }
    }
    lock.unlock();
    reply_rpc(sender, resp);
    return;
  }
  if (const auto* req = std::get_if<StoreSnippetRequest>(&msg)) {
    // We are the responsible broker for (some of) this snippet's keys.
    broker::Snippet local;
    local.id = req->snippet.snippet_id;
    local.publisher = req->snippet.publisher;
    local.xml = req->snippet.xml;
    local.keys = req->snippet.keys;
    local.discard_at = steady_micros() + req->snippet.ttl_us;
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : local.keys) {
      const auto replicas = broker_replicas_for(key);
      if (std::find(replicas.begin(), replicas.end(), id_) != replicas.end()) {
        broker_store_.put(key, local);
      }
    }
    return;  // fire-and-forget
  }
  if (const auto* req = std::get_if<LookupSnippetRequest>(&msg)) {
    LookupSnippetResponse resp;
    resp.request_id = req->request_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const TimePoint now = steady_micros();
      for (const broker::Snippet& s : broker_store_.get(req->key, now)) {
        resp.snippets.push_back(
            WireSnippet{s.publisher, s.id, s.xml, s.keys, s.discard_at - now});
      }
    }
    reply_rpc(sender, resp);
    return;
  }
  // A response: hand to the waiting caller.
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    rpc_responses_.emplace(rpc_request_id(msg), msg);
  }
  rpc_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// RPC client side
// ---------------------------------------------------------------------------

std::optional<RpcMessage> LiveNode::call(PeerId peer, RpcMessage request,
                                         search::ContactStatus* status) {
  const auto fail = [&](search::ContactStatus s) {
    if (status != nullptr) *status = s;
    return std::nullopt;
  };
  std::string addr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    addr = address_of(peer);
  }
  if (addr.empty()) return fail(search::ContactStatus::kUnreachable);

  const std::uint64_t request_id = rpc_request_id(request);
  Frame frame;
  frame.sender = id_;
  frame.channel = Channel::kRpc;
  frame.payload = encode_rpc(request);
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    rpc_pending_.emplace(request_id, PendingRpc{addr, false});
  }
  if (reactor_.send(addr, std::move(frame), SendClass::kRpc) != SendResult::kEnqueued) {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    rpc_pending_.erase(request_id);
    return fail(search::ContactStatus::kUnreachable);
  }

  std::unique_lock<std::mutex> lock(rpc_mu_);
  const bool got = rpc_cv_.wait_for(
      lock, std::chrono::microseconds(config_.rpc_timeout), [&] {
        return rpc_responses_.contains(request_id) || rpc_pending_[request_id].failed;
      });
  const bool transport_failed = rpc_pending_[request_id].failed;
  rpc_pending_.erase(request_id);
  if (!got || !rpc_responses_.contains(request_id)) {
    // Transport gave up (connect refused / dropped frame) => unreachable,
    // reported in far less than rpc_timeout; silence => timeout.
    return fail(transport_failed ? search::ContactStatus::kUnreachable
                                 : search::ContactStatus::kTimeout);
  }
  if (status != nullptr) *status = search::ContactStatus::kOk;
  auto node = rpc_responses_.extract(request_id);
  return std::move(node.mapped());
}

std::shared_ptr<const bloom::BloomFilter> LiveNode::cached_filter(
    const gossip::PeerRecord& record) {
  if (auto cached = filter_cache_.version_of(record.id);
      !cached.has_value() || *cached != record.version) {
    // At rest in the cache as the record's compressed wire; decoded on
    // demand below, bounded by candidate_cache.max_decoded_bytes.
    filter_cache_.update_peer_wire(record.id, record.filter_wire, record.version);
  }
  return filter_cache_.resident_filter(record.id);
}

std::shared_ptr<const bloom::BloomFilter> LiveNode::own_filter() {
  // Cache versions are non-zero; the store's version starts at 0.
  const std::uint64_t version = store_.filter_version() + 1;
  if (auto cached = filter_cache_.version_of(id_); !cached.has_value() || *cached != version) {
    filter_cache_.update_peer(id_, std::make_shared<bloom::BloomFilter>(store_.bloom_filter()),
                              version);
  }
  return filter_cache_.filter_of(id_);
}

std::vector<LiveHit> LiveNode::ranked_search(std::string_view query, std::size_t k) {
  std::vector<std::string> terms;
  std::vector<search::PeerFilter> views;
  // Shared ownership pins the view's filters: a concurrent gossip update
  // swaps the cache's copy (copy-on-write) without invalidating this query.
  std::vector<std::shared_ptr<const bloom::BloomFilter>> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    terms = store_.analyzer().analyze(query);
    protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
      if (r.id == id_ || !r.online || r.filter_wire.empty()) return;
      auto f = cached_filter(r);
      if (f == nullptr) return;
      views.push_back(search::PeerFilter{r.id, f.get(), r.suspicion});
      pinned.push_back(std::move(f));
    });
    auto own = own_filter();
    views.push_back(search::PeerFilter{id_, own.get()});
    pinned.push_back(std::move(own));
  }
  if (terms.empty()) return {};

  std::unordered_map<index::DocumentId, std::string, index::DocumentIdHash> titles;
  const auto contact = [&](std::uint32_t peer,
                           const std::unordered_map<std::string, double>& weights)
      -> search::PeerSearchResult {
    if (peer == id_) {
      // Self-evaluation ranks lock-free against the epoch snapshot; mu_
      // guards only the title map.
      auto docs = search::score_snapshot(*store_.snapshot(), weights);
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& d : docs) {
        const index::Document* doc = store_.document(d.doc);
        if (doc != nullptr) titles[d.doc] = doc->title;
      }
      return search::PeerSearchResult::ok(std::move(docs));
    }
    RankedRequest req;
    {
      std::lock_guard<std::mutex> lock(rpc_mu_);
      req.request_id = next_request_id_++;
    }
    for (const auto& [term, weight] : weights) req.weights.push_back({term, weight});
    const TimePoint sent_at = steady_micros();
    search::ContactStatus status = search::ContactStatus::kTimeout;
    const auto resp = call(peer, req, &status);
    const Duration latency = steady_micros() - sent_at;
    if (!resp) {
      // kTimeout: silence within rpc_timeout (retryable). kUnreachable: the
      // transport itself gave up on the peer — no point retrying in-query.
      return search::PeerSearchResult::failure(status, latency);
    }
    if (const auto* r = std::get_if<RankedResponse>(&*resp)) {
      std::vector<search::ScoredDoc> docs;
      for (const RemoteDoc& d : r->docs) {
        const index::DocumentId doc_id{d.peer, d.local};
        docs.push_back(search::ScoredDoc{doc_id, d.score});
        titles[doc_id] = d.title;
      }
      return search::PeerSearchResult::ok(std::move(docs), latency);
    }
    // Wrong variant or an explicit ErrorResponse: the peer answered but
    // could not serve the query.
    return search::PeerSearchResult::failure(search::ContactStatus::kError, latency);
  };

  search::DistributedSearchOptions opts;
  opts.k = k;
  opts.group_size = config_.search_group_size;
  opts.stopping = config_.stopping;
  opts.retry = config_.search_retry;
  opts.deadline = config_.search_deadline;
  opts.hedge_threshold = config_.search_hedge_threshold;
  opts.seed = 0x5ea2c4u ^ id_;
  opts.cache = &filter_cache_;
  opts.clock = [] { return steady_micros(); };
  opts.sleep = [](Duration d) {
    if (d > 0) std::this_thread::sleep_for(std::chrono::microseconds(d));
  };
  const auto result = search::tfipf_search(terms, views, contact, opts);

  // SUSPECT feedback: repeated query failures demote a peer in future
  // rankings and eventually mark it offline locally.
  for (const search::PeerOutcome& outcome : result.outcomes) {
    note_contact_outcome(outcome.peer, outcome.status == search::ContactStatus::kOk);
  }

  std::vector<LiveHit> hits;
  for (const auto& d : result.docs) {
    hits.push_back(LiveHit{d.doc.peer, d.doc.local, d.score, titles[d.doc]});
  }
  return hits;
}

std::vector<LiveHit> LiveNode::exhaustive_search(std::string_view query) {
  std::vector<std::string> terms;
  std::vector<PeerId> candidates;
  std::vector<LiveHit> hits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    terms = store_.analyzer().analyze(query);
    if (terms.empty()) return {};
    for (const index::DocumentId& d : store_.search_all_terms(query)) {
      const index::Document* doc = store_.document(d);
      hits.push_back(LiveHit{d.peer, d.local, 0.0, doc != nullptr ? doc->title : ""});
    }
    // Hash once per query, probe cached filters (no per-query decode).
    std::vector<HashPair> hashes;
    hashes.reserve(terms.size());
    for (const std::string& t : terms) hashes.push_back(hash_pair(t));
    protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
      if (r.id == id_ || !r.online || r.filter_wire.empty()) return;
      const auto f = cached_filter(r);
      if (f == nullptr) return;
      for (const HashPair& hp : hashes) {
        if (!f->contains(hp)) return;
      }
      candidates.push_back(r.id);
    });
  }
  for (PeerId peer : candidates) {
    ExhaustiveRequest req;
    {
      std::lock_guard<std::mutex> lock(rpc_mu_);
      req.request_id = next_request_id_++;
    }
    req.query = std::string(query);
    const auto resp = call(peer, req);
    if (resp) {
      if (const auto* r = std::get_if<ExhaustiveResponse>(&*resp)) {
        for (const RemoteDoc& d : r->docs) {
          hits.push_back(LiveHit{d.peer, d.local, 0.0, d.title});
        }
      }
    }
  }
  return hits;
}

std::optional<std::string> LiveNode::fetch_document(std::uint32_t peer, std::uint32_t local) {
  return fetch_document(peer, local, {});
}

std::optional<std::string> LiveNode::fetch_document(
    std::uint32_t peer, std::uint32_t local, const std::vector<gossip::PeerId>& alternates) {
  if (peer == id_) {
    std::lock_guard<std::mutex> lock(mu_);
    const index::Document* doc = store_.document(index::DocumentId{peer, local});
    if (doc == nullptr) return std::nullopt;
    return doc->xml_source;
  }

  // Owner first (with the configured retry budget), then each alternate
  // replica once: a broker holding the document's snippet can serve it when
  // the publisher is gone.
  std::vector<gossip::PeerId> targets{peer};
  for (const gossip::PeerId alt : alternates) {
    if (alt != id_ && std::find(targets.begin(), targets.end(), alt) == targets.end()) {
      targets.push_back(alt);
    }
  }
  Rng rng(0xfe7c4u ^ id_ ^ (static_cast<std::uint64_t>(peer) << 32 | local));
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const gossip::PeerId target = targets[t];
    const std::uint32_t attempts =
        t == 0 ? std::max<std::uint32_t>(1, config_.search_retry.max_attempts) : 1;
    for (std::uint32_t attempt = 1; attempt <= attempts; ++attempt) {
      FetchRequest req;
      {
        std::lock_guard<std::mutex> lock(rpc_mu_);
        req.request_id = next_request_id_++;
      }
      req.peer = peer;
      req.local = local;
      const auto resp = call(target, req);
      if (resp) {
        note_contact_outcome(target, true);
        if (const auto* r = std::get_if<FetchResponse>(&*resp); r != nullptr && r->found) {
          return r->xml;
        }
        break;  // the peer answered "not found" — retrying won't change that
      }
      note_contact_outcome(target, false);
      if (attempt < attempts) {
        const Duration backoff = config_.search_retry.backoff_before(attempt, rng);
        if (backoff > 0) std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t LiveNode::known_peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return protocol_.directory().size();
}

// ---------------------------------------------------------------------------
// Information brokerage over the live community
// ---------------------------------------------------------------------------

gossip::PeerId LiveNode::broker_for(const std::string& key) const {
  // Build the ring from the current membership view. Every online member is
  // a broker ("each active member chooses a unique broker ID", §4); all
  // peers derive ids the same way, so their rings agree once the directory
  // converges.
  broker::HashRing ring;
  protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
    if (r.online || r.id == id_) ring.add_by_hash(r.id);
  });
  const auto owner = ring.responsible_for(key);
  return owner.value_or(gossip::kInvalidPeer);
}

std::vector<gossip::PeerId> LiveNode::broker_replicas_for(const std::string& key) const {
  broker::HashRing ring;
  protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
    if (r.online || r.id == id_) ring.add_by_hash(r.id);
  });
  return ring.replicas_for(key, std::max<std::size_t>(1, config_.broker_replication));
}

void LiveNode::note_contact_outcome(PeerId peer, bool ok) {
  if (peer == id_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    protocol_.directory().record_query_success(peer);
  } else {
    protocol_.directory().record_query_failure(peer, steady_micros());
  }
}

std::uint64_t LiveNode::publish_snippet(std::string xml, std::vector<std::string> keys,
                                        Duration ttl) {
  WireSnippet snippet;
  snippet.publisher = id_;
  snippet.xml = std::move(xml);
  snippet.keys = std::move(keys);
  snippet.ttl_us = ttl;
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    snippet.snippet_id = next_snippet_id_++;
  }

  // Route each key to its full replica set (the owner plus the configured
  // number of ring successors); replicas that are this node store locally.
  std::vector<gossip::PeerId> remote_targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : snippet.keys) {
      auto replicas = broker_replicas_for(key);
      if (replicas.empty()) replicas.push_back(id_);  // empty directory: keep it ourselves
      for (const gossip::PeerId owner : replicas) {
        if (owner == id_) {
          broker::Snippet local;
          local.id = snippet.snippet_id;
          local.publisher = id_;
          local.xml = snippet.xml;
          local.keys = snippet.keys;
          local.discard_at = steady_micros() + ttl;
          broker_store_.put(key, local);
        } else if (std::find(remote_targets.begin(), remote_targets.end(), owner) ==
                   remote_targets.end()) {
          remote_targets.push_back(owner);
        }
      }
    }
  }
  // One StoreSnippetRequest per distinct remote replica: the receiver keeps
  // the keys it is responsible for and ignores the rest.
  for (const gossip::PeerId owner : remote_targets) {
    std::string addr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      addr = address_of(owner);
    }
    if (addr.empty()) continue;
    StoreSnippetRequest req;
    req.snippet = snippet;
    Frame frame;
    frame.sender = id_;
    frame.channel = Channel::kRpc;
    frame.payload = encode_rpc(req);
    reactor_.send(addr, std::move(frame), SendClass::kRpc);
  }
  return snippet.snippet_id;
}

std::vector<WireSnippet> LiveNode::lookup_snippets(const std::string& key) {
  // Walk the key's replica set in ring order: the owner first, failing over
  // to each successor replica when a broker is dead or answers empty.
  std::vector<gossip::PeerId> replicas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replicas = broker_replicas_for(key);
  }
  if (replicas.empty()) replicas.push_back(id_);
  for (const gossip::PeerId owner : replicas) {
    if (owner == id_) {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<WireSnippet> out;
      const TimePoint now = steady_micros();
      for (const broker::Snippet& s : broker_store_.get(key, now)) {
        out.push_back(WireSnippet{s.publisher, s.id, s.xml, s.keys, s.discard_at - now});
      }
      if (!out.empty()) return out;
      continue;
    }
    LookupSnippetRequest req;
    {
      std::lock_guard<std::mutex> lock(rpc_mu_);
      req.request_id = next_request_id_++;
    }
    req.key = key;
    const auto resp = call(owner, req);
    if (!resp) {
      note_contact_outcome(owner, false);
      continue;  // broker unreachable: fail over to the next replica
    }
    note_contact_outcome(owner, true);
    if (const auto* r = std::get_if<LookupSnippetResponse>(&*resp)) {
      if (!r->snippets.empty()) return r->snippets;
    }
  }
  return {};
}

std::size_t LiveNode::brokered_snippet_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broker_store_.snippet_count();
}

void LiveNode::sweep_broker_store() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    broker_store_.sweep(steady_micros());
  }
  if (started_) {
    reactor_.schedule(5 * kSecond, [this] { sweep_broker_store(); });
  }
}

std::vector<LiveNode::PeerInfo> LiveNode::directory_snapshot() const {
  std::vector<PeerInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  protocol_.directory().for_each([&](const gossip::PeerRecord& r) {
    out.push_back(PeerInfo{r.id, r.address, r.version, r.online, r.key_count});
  });
  std::sort(out.begin(), out.end(),
            [](const PeerInfo& a, const PeerInfo& b) { return a.id < b.id; });
  return out;
}

std::vector<std::uint8_t> LiveNode::serialize_store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index::serialize_data_store(store_);
}

bool LiveNode::wait_for_peers(std::size_t n, Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (known_peers() >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return known_peers() >= n;
}

bool LiveNode::wait_for_version(PeerId peer, std::uint64_t version, Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const gossip::PeerRecord* r = protocol_.directory().find(peer);
      if (r != nullptr && r->version >= version) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace planetp::net
