#include "gossip/directory.hpp"

#include <algorithm>

namespace planetp::gossip {

void Directory::put_self(PeerRecord record) {
  const PeerId id = record.id;
  record.online = true;  // we are definitionally online
  auto it = records_.find(id);
  if (it == records_.end()) {
    records_.emplace(id, std::move(record));
    add_id(id);
  } else {
    if (!it->second.online) --offline_count_;
    it->second = std::move(record);
  }
  bump_epoch();
}

bool Directory::apply(const PeerRecord& record) {
  if (auto t = tombstones_.find(record.id); t != tombstones_.end()) {
    if (record.version <= t->second) return false;  // expired stays expired
    tombstones_.erase(t);  // a genuinely newer version is a real rejoin
  }
  auto it = records_.find(record.id);
  if (it == records_.end()) {
    if (!record.online) ++offline_count_;
    records_.emplace(record.id, record);
    add_id(record.id);
    bump_epoch();
    return true;
  }
  if (record.version <= it->second.version) {
    return false;
  }
  // Preserve nothing local: a newer version means fresh presence knowledge,
  // so the peer is believed online again.
  if (!it->second.online) --offline_count_;
  PeerRecord updated = record;
  updated.online = true;
  updated.offline_since = 0;
  updated.suspicion = 0;  // fresh presence knowledge resets local suspicion
  it->second = std::move(updated);
  bump_epoch();
  return true;
}

const PeerRecord* Directory::find(PeerId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeerRecord* Directory::find_mutable(PeerId id) {
  // Callers hold a mutable record to bump its version (local filter changes,
  // rejoin jumps) or complete its filter — assume the summary may change.
  bump_epoch();
  return lookup(id);
}

PeerRecord* Directory::lookup(PeerId id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

void Directory::mark_offline(PeerId id, TimePoint now) {
  if (PeerRecord* r = lookup(id); r != nullptr && r->online) {
    r->online = false;
    r->offline_since = now;
    ++offline_count_;
  }
}

void Directory::mark_online(PeerId id) {
  if (PeerRecord* r = lookup(id); r != nullptr) {
    if (!r->online) --offline_count_;
    r->online = true;
    r->offline_since = 0;
    r->suspicion = 0;
  }
}

std::uint32_t Directory::record_query_failure(PeerId id, TimePoint now) {
  PeerRecord* r = lookup(id);
  if (r == nullptr || id == self_) return 0;
  ++r->suspicion;
  if (r->suspicion >= kSuspectThreshold) mark_offline(id, now);
  return r->suspicion;
}

void Directory::record_query_success(PeerId id) {
  if (PeerRecord* r = lookup(id); r != nullptr) r->suspicion = 0;
}

std::uint32_t Directory::suspicion(PeerId id) const {
  const PeerRecord* r = find(id);
  return r == nullptr ? 0 : r->suspicion;
}

std::vector<PeerId> Directory::expire_dead(TimePoint now, Duration t_dead) {
  std::vector<PeerId> dropped;
  // Every round calls this; with nobody believed offline (the common steady
  // state) there is nothing to scan.
  if (offline_count_ == 0) return dropped;
  for (auto it = records_.begin(); it != records_.end();) {
    const PeerRecord& r = it->second;
    if (!r.online && r.id != self_ && now - r.offline_since >= t_dead) {
      dropped.push_back(r.id);
      tombstones_[r.id] = r.version;
      remove_id(r.id);
      --offline_count_;
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  if (!dropped.empty()) bump_epoch();
  return dropped;
}

PeerId Directory::random_online(Rng& rng) const {
  if (ids_.empty()) return kInvalidPeer;
  // Rejection sampling over the flat list; bounded attempts keep worst-case
  // cost predictable even when most of the community is offline.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = ids_[rng.below(ids_.size())];
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) return id;
  }
  // Fall back to a linear scan so "some online peer exists" always succeeds.
  std::vector<PeerId> online;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_online_of_class(Rng& rng, LinkClass cls) const {
  if (ids_.empty()) return kInvalidPeer;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = ids_[rng.below(ids_.size())];
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) return id;
  }
  std::vector<PeerId> online;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_offline(Rng& rng) const {
  if (offline_count_ == 0) return kInvalidPeer;  // skip the scan, common case
  std::vector<PeerId> offline;
  for (PeerId id : ids_) {
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && !r->online) offline.push_back(id);
  }
  if (offline.empty()) return kInvalidPeer;
  return offline[rng.below(offline.size())];
}

SummarySnapshot Directory::summary() const {
  if (summary_caching_ && cached_summary_ != nullptr && cached_epoch_ == epoch_) {
    return cached_summary_;
  }
  auto out = std::make_shared<std::vector<PeerSummary>>();
  out->reserve(records_.size());
  for (const auto& [id, r] : records_) out->push_back(PeerSummary{id, r.version});
  std::sort(out->begin(), out->end(),
            [](const PeerSummary& a, const PeerSummary& b) { return a.id < b.id; });
  ++summary_builds_;
  cached_summary_ = std::move(out);
  cached_epoch_ = epoch_;
  return cached_summary_;
}

void Directory::set_summary_caching(bool enabled) {
  summary_caching_ = enabled;
  if (!enabled) cached_summary_.reset();
}

namespace {
/// Strictly increasing by id — what a snapshot-built summary always is.
/// Anything else (hand-built or hostile input) takes the probe fallback.
bool sorted_unique_by_id(const std::vector<PeerSummary>& v) {
  return std::adjacent_find(v.begin(), v.end(), [](const PeerSummary& a, const PeerSummary& b) {
           return a.id >= b.id;
         }) == v.end();
}
}  // namespace

std::vector<RumorId> Directory::newer_in(const std::vector<PeerSummary>& remote) const {
  // With caching disabled we also fall back to probing — together with the
  // per-call summary rebuild this reproduces the pre-cache cost model that
  // bench/gossip_throughput measures against.
  if (!summary_caching_ || !sorted_unique_by_id(remote)) return newer_in_probe(remote);
  const std::vector<PeerSummary>& local = *summary();
  std::vector<RumorId> out;
  std::size_t i = 0;
  // Merge-scan: both sides sorted by id, so each remote entry resolves
  // against the local record in O(1) amortized instead of a hash probe.
  // Tombstones stay a probe — expired peers are rare and scattered.
  const auto want = [&](const PeerSummary& s) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      return;  // we expired this record; don't pull it back
    }
    out.push_back(RumorId{s.id, s.version});
  };
  for (const PeerSummary& s : remote) {
    while (i < local.size() && local[i].id < s.id) ++i;
    if (i >= local.size() || local[i].id != s.id) {
      want(s);  // unknown peer
    } else if (local[i].version < s.version) {
      want(s);  // remote holds a newer version
    }
  }
  return out;
}

std::vector<RumorId> Directory::newer_in_probe(const std::vector<PeerSummary>& remote) const {
  std::vector<RumorId> out;
  for (const PeerSummary& s : remote) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      continue;  // we expired this record; don't pull it back
    }
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version < s.version) {
      out.push_back(RumorId{s.id, s.version});
    }
  }
  return out;
}

std::optional<std::uint64_t> Directory::tombstone_version(PeerId id) const {
  auto it = tombstones_.find(id);
  if (it == tombstones_.end()) return std::nullopt;
  return it->second;
}

bool Directory::same_as(const std::vector<PeerSummary>& remote) const {
  if (!summary_caching_ || !sorted_unique_by_id(remote)) return same_as_probe(remote);
  const std::vector<PeerSummary>& local = *summary();
  return local.size() == remote.size() && std::equal(local.begin(), local.end(), remote.begin());
}

bool Directory::same_as_probe(const std::vector<PeerSummary>& remote) const {
  if (remote.size() != records_.size()) return false;
  for (const PeerSummary& s : remote) {
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version != s.version) return false;
  }
  return true;
}

std::size_t Directory::online_count() const { return records_.size() - offline_count_; }

void Directory::for_each(const std::function<void(const PeerRecord&)>& fn) const {
  for (const auto& [id, r] : records_) fn(r);
}

void Directory::add_id(PeerId id) { ids_.push_back(id); }

void Directory::remove_id(PeerId id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it != ids_.end()) {
    *it = ids_.back();
    ids_.pop_back();
  }
}

}  // namespace planetp::gossip
