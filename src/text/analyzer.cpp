#include "text/analyzer.hpp"

#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"

namespace planetp::text {

std::vector<std::string> Analyzer::analyze(std::string_view input) const {
  std::vector<std::string> out;
  for_each_token(input, opts_.tokenizer, [&](const std::string& tok) {
    if (opts_.remove_stopwords && is_stopword(tok)) return;
    if (opts_.stem) {
      std::string stemmed = tok;
      porter_stem(stemmed);
      // A stem can collapse onto a stop word ("having" -> "have"); drop those
      // too so queries and documents agree.
      if (opts_.remove_stopwords && is_stopword(stemmed)) return;
      out.push_back(std::move(stemmed));
    } else {
      out.push_back(tok);
    }
  });
  return out;
}

std::unordered_map<std::string, std::uint32_t> Analyzer::term_frequencies(
    std::string_view input) const {
  std::unordered_map<std::string, std::uint32_t> freq;
  for (auto& term : analyze(input)) {
    ++freq[std::move(term)];
  }
  return freq;
}

std::string Analyzer::process_token(std::string_view token) const {
  std::string lowered;
  lowered.reserve(token.size());
  for (char c : token) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    lowered.push_back(c);
  }
  if (opts_.remove_stopwords && is_stopword(lowered)) return {};
  if (opts_.stem) porter_stem(lowered);
  if (opts_.remove_stopwords && is_stopword(lowered)) return {};
  return lowered;
}

}  // namespace planetp::text
