#include "index/xml.hpp"

#include <sstream>
#include <stdexcept>

namespace planetp::xml {

const Element* Element::child(std::string_view tag_name) const {
  for (const auto& c : children) {
    if (c->tag == tag_name) return c.get();
  }
  return nullptr;
}

std::string_view Element::attr(std::string_view name) const {
  auto it = attributes.find(std::string(name));
  return it == attributes.end() ? std::string_view{} : std::string_view(it->second);
}

std::string Element::all_text() const {
  std::string out = text;
  for (const auto& c : children) {
    const std::string child_text = c->all_text();
    if (!child_text.empty()) {
      if (!out.empty()) out.push_back(' ');
      out += child_text;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  std::unique_ptr<Element> parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_ws_and_misc();
    if (pos_ != in_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  std::string_view in_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "XML parse error at offset " << pos_ << ": " << msg;
    throw std::runtime_error(os.str());
  }

  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }

  bool starts_with(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  void skip_comment() {
    // Assumes starts_with("<!--").
    pos_ += 4;
    const std::size_t end = in_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?xml")) {
      const std::size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_ws_and_misc();
  }

  void skip_ws_and_misc() {
    while (true) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<!DOCTYPE")) {
        const std::size_t end = in_.find('>', pos_);
        if (end == std::string_view::npos) fail("unterminated DOCTYPE");
        pos_ = end + 1;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected name");
    return std::string(in_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out.push_back(raw[i++]);  // stray '&': pass through
        continue;
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out.push_back('&');
      else if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else if (!entity.empty() && entity[0] == '#') {
        // Numeric character reference; only ASCII range is supported.
        const int base = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X') ? 16 : 10;
        const std::string digits(entity.substr(base == 16 ? 2 : 1));
        const long code = std::strtol(digits.c_str(), nullptr, base);
        if (code > 0 && code < 128) out.push_back(static_cast<char>(code));
      } else {
        // Unknown entity: keep raw.
        out.push_back('&');
        out.append(entity);
        out.push_back(';');
      }
      i = semi + 1;
    }
    return out;
  }

  void parse_attributes(Element& el) {
    while (true) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (peek() == '>' || peek() == '/' || peek() == '?') return;
      std::string name = parse_name();
      skip_ws();
      if (eof() || peek() != '=') fail("expected '=' in attribute");
      ++pos_;
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) fail("expected quoted attribute value");
      const char quote = peek();
      ++pos_;
      const std::size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) fail("unterminated attribute value");
      el.attributes[std::move(name)] = decode_entities(in_.substr(start, pos_ - start));
      ++pos_;  // closing quote
    }
  }

  std::unique_ptr<Element> parse_element() {
    if (eof() || peek() != '<') fail("expected element");
    ++pos_;
    auto el = std::make_unique<Element>();
    el->tag = parse_name();
    parse_attributes(*el);
    if (starts_with("/>")) {
      pos_ += 2;
      return el;
    }
    if (eof() || peek() != '>') fail("expected '>'");
    ++pos_;
    parse_content(*el);
    return el;
  }

  void parse_content(Element& el) {
    std::string text;
    auto flush_text = [&] {
      if (!text.empty()) {
        if (!el.text.empty()) el.text.push_back(' ');
        el.text += decode_entities(text);
        text.clear();
      }
    };
    while (true) {
      if (eof()) fail("unterminated element <" + el.tag + ">");
      if (peek() == '<') {
        if (starts_with("</")) {
          flush_text();
          pos_ += 2;
          const std::string name = parse_name();
          if (name != el.tag) fail("mismatched close tag </" + name + "> for <" + el.tag + ">");
          skip_ws();
          if (eof() || peek() != '>') fail("expected '>' in close tag");
          ++pos_;
          return;
        }
        if (starts_with("<!--")) {
          skip_comment();
          continue;
        }
        if (starts_with("<![CDATA[")) {
          pos_ += 9;
          const std::size_t end = in_.find("]]>", pos_);
          if (end == std::string_view::npos) fail("unterminated CDATA");
          // CDATA is literal character data: it must bypass entity decoding,
          // so flush pending markup text first and append raw.
          flush_text();
          if (!el.text.empty()) el.text.push_back(' ');
          el.text.append(in_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        flush_text();
        el.children.push_back(parse_element());
      } else {
        text.push_back(peek());
        ++pos_;
      }
    }
  }
};

void serialize_into(const Element& el, std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out.push_back('<');
  out += el.tag;
  for (const auto& [k, v] : el.attributes) {
    out.push_back(' ');
    out += k;
    out += "=\"";
    out += escape(v);
    out.push_back('"');
  }
  if (el.text.empty() && el.children.empty()) {
    out += "/>\n";
    return;
  }
  out.push_back('>');
  out += escape(el.text);
  if (!el.children.empty()) {
    out.push_back('\n');
    for (const auto& c : el.children) serialize_into(*c, out, depth + 1);
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  }
  out += "</";
  out += el.tag;
  out += ">\n";
}

}  // namespace

std::unique_ptr<Element> parse(std::string_view input) {
  Parser p(input);
  return p.parse_document();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string serialize(const Element& root) {
  std::string out;
  serialize_into(root, out, 0);
  return out;
}

}  // namespace planetp::xml
