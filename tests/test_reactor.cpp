#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "net/cluster.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PLANETP_SANITIZED 1
#endif
#endif
#if !defined(PLANETP_SANITIZED) && (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define PLANETP_SANITIZED 1
#endif
#ifndef PLANETP_SANITIZED
#define PLANETP_SANITIZED 0
#endif

namespace planetp::net {
namespace {

/// Collects frames/failures with waitable accessors.
class Sink {
 public:
  void on_frame(const Frame& frame) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(frame);
    cv_.notify_all();
  }
  void on_failure(const std::string& address) {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back(address);
    cv_.notify_all();
  }

  bool wait_for_frames(std::size_t n, int seconds = 5) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [&] { return frames_.size() >= n; });
  }
  bool wait_for_failures(std::size_t n, int seconds = 5) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [&] { return failures_.size() >= n; });
  }

  std::vector<Frame> frames() {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }
  std::vector<std::string> failures() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
  std::vector<std::string> failures_;
};

TEST(Reactor, DeliversFramesBetweenEndpoints) {
  Reactor a, b;
  Sink sink_a, sink_b;
  a.listen(0);
  b.listen(0);
  a.start([&](const Frame& f) { sink_a.on_frame(f); },
          [&](const std::string& addr) { sink_a.on_failure(addr); });
  b.start([&](const Frame& f) { sink_b.on_frame(f); },
          [&](const std::string& addr) { sink_b.on_failure(addr); });

  Frame frame;
  frame.sender = 1;
  frame.channel = Channel::kGossip;
  frame.payload = {10, 20, 30};
  a.send(b.address(), frame);

  ASSERT_TRUE(sink_b.wait_for_frames(1));
  const auto frames = sink_b.frames();
  EXPECT_EQ(frames[0].sender, 1u);
  EXPECT_EQ(frames[0].payload, (std::vector<std::uint8_t>{10, 20, 30}));

  // And the reverse direction (separate connection).
  Frame reply;
  reply.sender = 2;
  b.send(a.address(), reply);
  ASSERT_TRUE(sink_a.wait_for_frames(1));
  EXPECT_EQ(sink_a.frames()[0].sender, 2u);

  a.stop();
  b.stop();
}

TEST(Reactor, ManyFramesArriveInOrder) {
  Reactor a, b;
  Sink sink_b;
  a.listen(0);
  b.listen(0);
  a.start(nullptr, nullptr);
  b.start([&](const Frame& f) { sink_b.on_frame(f); }, nullptr);

  constexpr std::size_t kFrames = 200;
  for (std::size_t i = 0; i < kFrames; ++i) {
    Frame frame;
    frame.sender = static_cast<std::uint32_t>(i);
    frame.payload.assign(i % 50 + 1, static_cast<std::uint8_t>(i));
    a.send(b.address(), frame);
  }
  ASSERT_TRUE(sink_b.wait_for_frames(kFrames, 10));
  const auto frames = sink_b.frames();
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(frames[i].sender, i) << i;  // single TCP stream preserves order
  }
  a.stop();
  b.stop();
}

TEST(Reactor, SendToDeadPortReportsFailure) {
  Reactor a;
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });

  // Nothing listens on this port (we grab one, then close it by scoping a
  // reactor that never starts).
  std::uint16_t dead_port;
  {
    Reactor ephemeral;
    dead_port = ephemeral.listen(0);
  }
  Frame frame;
  frame.sender = 9;
  a.send("127.0.0.1:" + std::to_string(dead_port), frame);
  ASSERT_TRUE(sink_a.wait_for_failures(1, 10));
  EXPECT_NE(sink_a.failures()[0].find(std::to_string(dead_port)), std::string::npos);
  a.stop();
}

TEST(Reactor, UnparseableAddressFailsImmediately) {
  Reactor a;
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });
  a.send("not-an-address", Frame{});
  ASSERT_TRUE(sink_a.wait_for_failures(1));
  EXPECT_EQ(sink_a.failures()[0], "not-an-address");
  a.stop();
}

TEST(Reactor, TimersFireInOrder) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  a.schedule(60 * kMillisecond, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
    cv.notify_all();
  });
  a.schedule(20 * kMillisecond, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
    cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return order.size() == 2; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  a.stop();
}

TEST(Reactor, CancelledTimerDoesNotFire) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);

  std::atomic<int> fired{0};
  const auto token = a.schedule(100 * kMillisecond, [&] { fired.fetch_add(1); });
  a.cancel_timer(token);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(fired.load(), 0);
  a.stop();
}

TEST(Reactor, PostRunsOnReactorThread) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);
  std::atomic<bool> ran{false};
  a.post([&] { ran.store(true); });
  for (int i = 0; i < 100 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(ran.load());
  a.stop();
}

TEST(Reactor, StopIsIdempotent) {
  Reactor a;
  a.listen(0);
  a.start(nullptr, nullptr);
  a.stop();
  a.stop();
  SUCCEED();
}

TEST(Reactor, LargeFrameRoundtrip) {
  Reactor a, b;
  Sink sink_b;
  a.listen(0);
  b.listen(0);
  a.start(nullptr, nullptr);
  b.start([&](const Frame& f) { sink_b.on_frame(f); }, nullptr);

  Frame frame;
  frame.sender = 3;
  frame.payload.assign(2 << 20, 0x5a);  // 2 MiB: exercises partial writes
  a.send(b.address(), frame);
  ASSERT_TRUE(sink_b.wait_for_frames(1, 15));
  EXPECT_EQ(sink_b.frames()[0].payload.size(), frame.payload.size());
  a.stop();
  b.stop();
}

// ---------------------------------------------------------------------------
// Backpressure, reconnect, reaping, fd hygiene (docs/NET.md)
// ---------------------------------------------------------------------------

/// A plain kernel listening socket that accepts but never reads until told
/// to, so a reactor's outbound queue actually backs up. Tiny SO_RCVBUF keeps
/// the kernel from absorbing the flood for us.
class RawListener {
 public:
  explicit RawListener(int rcvbuf = 4096) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (client_ >= 0) ::close(client_);
    if (fd_ >= 0) ::close(fd_);
  }

  std::uint16_t port() const { return port_; }
  std::string address() const { return "127.0.0.1:" + std::to_string(port_); }

  int accept_client() {
    client_ = ::accept(fd_, nullptr, nullptr);
    EXPECT_GE(client_, 0);
    return client_;
  }

  /// Drain everything currently deliverable on the accepted connection and
  /// decode it. Stops at EOF or after \p quiet_ms with no data.
  std::vector<Frame> drain_frames(int quiet_ms = 500) {
    std::vector<Frame> frames;
    FrameDecoder decoder;
    std::uint8_t buf[4096];
    int quiet = 0;
    while (quiet < quiet_ms) {
      const ssize_t n = ::recv(client_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        quiet = 0;
        decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
        while (auto f = decoder.next()) frames.push_back(std::move(*f));
        continue;
      }
      if (n == 0) break;  // EOF
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      quiet += 10;
    }
    return frames;
  }

 private:
  int fd_ = -1;
  int client_ = -1;
  std::uint16_t port_ = 0;
};

TEST(ReactorBackpressure, DropsOldestGossipPreservesRpc) {
  RawListener listener(4096);

  ReactorConfig cfg;
  cfg.per_connection_outbound_cap = 64 * 1024;
  cfg.global_outbound_cap = 1 << 20;
  cfg.socket_send_buffer = 4096;
  Reactor a(cfg);
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });

  // Flood far more gossip than the send buffer + receive window + queue cap
  // can hold: the queue must shed its oldest gossip frames.
  constexpr std::size_t kGossipFrames = 600;
  Frame gossip;
  gossip.channel = Channel::kGossip;
  gossip.payload.assign(1024, 0x5c);
  for (std::size_t i = 0; i < kGossipFrames; ++i) {
    gossip.sender = static_cast<std::uint32_t>(i);
    EXPECT_NE(a.send(listener.address(), gossip, SendClass::kGossip),
              SendResult::kRejectedOversize);
  }

  // An RPC enqueued behind the flood must survive the eviction policy.
  Frame rpc;
  rpc.sender = 777777;
  rpc.channel = Channel::kRpc;
  rpc.payload = {1, 2, 3};
  EXPECT_EQ(a.send(listener.address(), rpc, SendClass::kRpc), SendResult::kEnqueued);

  // Wait for drops to register, then let the receiver drain the stream.
  for (int i = 0; i < 500 && a.stats().drops_backpressure == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const NetStats mid = a.stats();
  EXPECT_GT(mid.drops_backpressure, 0u);
  EXPECT_LE(mid.queued_bytes, cfg.global_outbound_cap);
  EXPECT_LE(mid.peak_queued_bytes, cfg.global_outbound_cap);

  listener.accept_client();
  const auto frames = listener.drain_frames();
  EXPECT_LT(frames.size(), kGossipFrames + 1);  // something was really dropped
  bool saw_rpc = false;
  for (const Frame& f : frames) {
    if (f.channel == Channel::kRpc && f.sender == 777777) saw_rpc = true;
  }
  EXPECT_TRUE(saw_rpc);  // RPC frames are never evicted once queued
  a.stop();
}

TEST(ReactorBackpressure, RpcRejectedSynchronouslyWhenGlobalCapFull) {
  RawListener listener(4096);

  ReactorConfig cfg;
  cfg.per_connection_outbound_cap = 32 * 1024;
  cfg.global_outbound_cap = 32 * 1024;
  cfg.socket_send_buffer = 4096;
  Reactor a(cfg);
  a.listen(0);
  a.start(nullptr, nullptr);

  // Fill the whole global budget with un-evictable RPC frames; the receiver
  // never reads, so eventually an RPC cannot even be admitted and the caller
  // hears about it synchronously.
  Frame rpc;
  rpc.channel = Channel::kRpc;
  rpc.payload.assign(4096, 0x11);
  bool rejected = false;
  for (int i = 0; i < 2000 && !rejected; ++i) {
    rejected = a.send(listener.address(), rpc, SendClass::kRpc) == SendResult::kRejectedFull;
    if (!rejected) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(rejected);
  EXPECT_GT(a.stats().rpc_rejected_full, 0u);
  EXPECT_LE(a.stats().peak_queued_bytes, cfg.global_outbound_cap);
  a.stop();
}

TEST(ReactorBackpressure, OversizeSendRejectedWithoutConnecting) {
  ReactorConfig cfg;
  cfg.max_frame_bytes = 1024;
  Reactor a(cfg);
  a.listen(0);
  a.start(nullptr, nullptr);

  Frame big;
  big.payload.assign(4096, 0x22);
  EXPECT_EQ(a.send("127.0.0.1:1", big), SendResult::kRejectedOversize);
  EXPECT_EQ(a.stats().connects_ok + a.stats().connects_failed, 0u);
  a.stop();
}

TEST(ReactorBackpressure, OversizedInboundFrameClosesConnection) {
  ReactorConfig cfg;
  cfg.max_frame_bytes = 1024;  // decoder cap, was a hard-wired 64 MB
  Reactor a(cfg);
  Sink sink_a;
  a.listen(0);
  a.start([&](const Frame& f) { sink_a.on_frame(f); }, nullptr);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(a.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A length prefix far over the configured cap: stream treated as corrupt.
  const std::uint32_t body = 8u << 20;
  std::uint8_t header[4] = {
      static_cast<std::uint8_t>(body & 0xff),
      static_cast<std::uint8_t>((body >> 8) & 0xff),
      static_cast<std::uint8_t>((body >> 16) & 0xff),
      static_cast<std::uint8_t>((body >> 24) & 0xff),
  };
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 4);

  // The reactor must hang up on us.
  std::uint8_t buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  EXPECT_LE(n, 0);
  ::close(fd);

  for (int i = 0; i < 500 && a.stats().oversize_closes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(a.stats().oversize_closes, 1u);
  EXPECT_TRUE(sink_a.frames().empty());
  a.stop();
}

TEST(ReactorReconnect, BackoffThenRecovery) {
  ReactorConfig cfg;
  cfg.reconnect_backoff_base = 100 * kMillisecond;
  cfg.reconnect_backoff_max = 500 * kMillisecond;
  Reactor a(cfg);
  Sink sink_a;
  a.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });

  std::uint16_t port;
  {
    Reactor ephemeral;
    port = ephemeral.listen(0);  // released when ephemeral dies
  }
  const std::string target = "127.0.0.1:" + std::to_string(port);

  // First send: connect refused, failure reported, backoff armed.
  Frame frame;
  frame.sender = 1;
  a.send(target, frame);
  ASSERT_TRUE(sink_a.wait_for_failures(1, 10));
  EXPECT_GT(a.stats().connects_failed, 0u);
  EXPECT_GT(a.stats().backoffs_engaged, 0u);

  // While the address is in backoff, sends are refused on the spot.
  std::uint64_t backoff_drops = 0;
  for (int i = 0; i < 50 && backoff_drops == 0; ++i) {
    a.send(target, frame);
    backoff_drops = a.stats().drops_backoff;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(backoff_drops, 0u);

  // Someone starts listening on the dead port; once the backoff window
  // passes, delivery recovers without any reconfiguration.
  Reactor b;
  Sink sink_b;
  ASSERT_EQ(b.listen(port), port);
  b.start([&](const Frame& f) { sink_b.on_frame(f); }, nullptr);

  bool delivered = false;
  for (int i = 0; i < 100 && !delivered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    frame.sender = static_cast<std::uint32_t>(100 + i);
    a.send(target, frame);
    delivered = sink_b.wait_for_frames(1, 1);
  }
  EXPECT_TRUE(delivered);
  EXPECT_GT(a.stats().connects_ok, 0u);
  a.stop();
  b.stop();
}

TEST(ReactorMaintenance, IdleConnectionsAreReaped) {
  ReactorConfig cfg;
  cfg.idle_timeout = 100 * kMillisecond;
  cfg.maintenance_interval = 20 * kMillisecond;
  Reactor a(cfg);
  Reactor b;  // default config: no reaping on this side
  Sink sink_a, sink_b;
  a.listen(0);
  b.listen(0);
  a.start(nullptr, [&](const std::string& addr) { sink_a.on_failure(addr); });
  b.start([&](const Frame& f) { sink_b.on_frame(f); },
          [&](const std::string& addr) { sink_b.on_failure(addr); });

  Frame frame;
  frame.sender = 5;
  a.send(b.address(), frame);
  ASSERT_TRUE(sink_b.wait_for_frames(1));

  // Leave the connection idle well past the timeout.
  for (int i = 0; i < 300 && a.stats().idle_reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(a.stats().idle_reaped, 1u);
  EXPECT_EQ(a.stats().connections, 0u);
  // An idle reap is not a delivery failure on either side.
  EXPECT_TRUE(sink_a.failures().empty());
  EXPECT_TRUE(sink_b.failures().empty());

  // The link is still usable: the next send transparently reconnects.
  frame.sender = 6;
  a.send(b.address(), frame);
  ASSERT_TRUE(sink_b.wait_for_frames(2));
  a.stop();
  b.stop();
}

TEST(ReactorHygiene, NoFdLeakAcrossChurnSoak) {
  constexpr std::size_t kNodes = PLANETP_SANITIZED ? 16 : 64;

  LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip.base_interval = 100 * kMillisecond;
  cfg.gossip.max_interval = 100 * kMillisecond;
  cfg.gossip.slow_down = 0;
  cfg.reactor.idle_timeout = 500 * kMillisecond;
  cfg.reactor.maintenance_interval = 50 * kMillisecond;

  // Warm up lazily-created process state (sanitizer fds, locale, resolver)
  // so the before/after comparison sees only reactor descriptors.
  {
    LiveCluster warmup(2, cfg);
    warmup.start();
    warmup.stop();
  }

  const std::size_t fds_before = LiveCluster::open_fd_count();
  ASSERT_GT(fds_before, 0u);
  {
    LiveCluster cluster(kNodes, cfg);
    cluster.start();

    // Crash a quarter of the community and bring it back, twice.
    std::vector<sim::CrashEvent> events;
    for (std::size_t i = 0; i < kNodes / 4; ++i) {
      sim::CrashEvent ev;
      ev.peer = static_cast<gossip::PeerId>(2 * i + 1);
      ev.at = 200 * kMillisecond;
      ev.restart_at = 600 * kMillisecond;
      ev.lose_directory = (i % 2) == 0;
      events.push_back(ev);
      ev.at = 1000 * kMillisecond;
      ev.restart_at = 1400 * kMillisecond;
      events.push_back(ev);
    }
    cluster.run_churn(std::move(events));
    cluster.join_churn();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    EXPECT_EQ(cluster.up_count(), kNodes);
    const NetStats stats = cluster.total_net_stats();
    EXPECT_GT(stats.connects_failed, 0u);   // crashed peers refuse connects
    EXPECT_GT(stats.backoffs_engaged, 0u);  // which arms reconnect backoff
    cluster.stop();
  }
  const std::size_t fds_after = LiveCluster::open_fd_count();
  EXPECT_EQ(fds_before, fds_after);
}

}  // namespace
}  // namespace planetp::net
