/// \file quickstart.cpp
/// PlanetP in five minutes: create an in-process community, publish a few
/// documents from different peers, and run exhaustive, ranked and persistent
/// queries against the communal store.

#include <cstdio>

#include "core/community.hpp"

using namespace planetp;
using namespace planetp::core;

int main() {
  // An in-process community with instant directory propagation — ideal for
  // embedding PlanetP inside one application. (Use SyncMode::kGossipStep to
  // watch real gossip converge, or net::LiveNode for TCP deployments.)
  Community community;

  Node& alice = community.create_node();
  Node& bob = community.create_node();
  Node& carol = community.create_node();

  // Each peer publishes into its own local data store; only Bloom filter
  // summaries spread through the community.
  alice.publish_text("Epidemic Algorithms",
                     "Epidemic algorithms for replicated database maintenance: "
                     "anti-entropy and rumor mongering spread updates reliably.");
  alice.publish_text("Bloom Filters",
                     "Space time tradeoffs in hash coding with allowable errors: "
                     "compact set summaries with false positives.");
  bob.publish_text("Consistent Hashing",
                   "Consistent hashing and random trees for distributed caching "
                   "protocols relieving hot spots.");
  carol.publish_text("Vector Space Model",
                     "A vector space model for automatic indexing: ranking documents "
                     "by cosine similarity with TF-IDF term weights.");

  // --- Exhaustive search: conjunction of terms, Bloom-filter routed -------
  std::puts("== exhaustive: \"epidemic algorithms\" ==");
  for (const SearchHit& hit : bob.exhaustive_search("epidemic algorithms").hits) {
    std::printf("  [peer %u] %s\n", hit.doc.peer, hit.title.c_str());
  }

  // --- Ranked search: TFxIPF approximation of TFxIDF ----------------------
  std::puts("== ranked: \"distributed hashing protocols\" (top 3) ==");
  for (const SearchHit& hit : carol.ranked_search("distributed hashing protocols", 3)) {
    std::printf("  %.3f  [peer %u] %s\n", hit.score, hit.doc.peer, hit.title.c_str());
  }

  // --- Persistent query: upcall when matching content appears -------------
  std::puts("== persistent query: \"gossip membership\" ==");
  alice.add_persistent_query("gossip membership", [](const SearchHit& hit) {
    std::printf("  upcall: new match \"%s\" from peer %u\n", hit.title.c_str(),
                hit.doc.peer);
  });
  bob.publish_text("SWIM", "A gossip based membership protocol with failure detection.");

  // --- Offline peers are not forgotten -------------------------------------
  community.set_online(carol.id(), false);
  const auto result = alice.exhaustive_search("vector space indexing");
  std::printf("== offline handling: %zu hits, %zu offline candidate peer(s)\n",
              result.hits.size(), result.offline_candidates.size());
  return 0;
}
