#include "index/persistence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace planetp::index {
namespace {

bloom::BloomParams small_bloom() { return bloom::BloomParams{65536, 2}; }

DataStore make_store() {
  DataStore store(7, small_bloom());
  store.publish_text("First", "gossip protocols spread rumors epidemically");
  store.publish_text("Second", "bloom filters summarize sets compactly");
  store.publish_text("Third", "consistent hashing balances load");
  return store;
}

TEST(Persistence, RoundtripPreservesDocuments) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());

  EXPECT_EQ(restored.peer_id(), original.peer_id());
  EXPECT_EQ(restored.num_documents(), 3u);
  ASSERT_EQ(restored.documents(), original.documents());
  for (const DocumentId& id : original.documents()) {
    const Document* a = original.document(id);
    const Document* b = restored.document(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->title, b->title);
    EXPECT_EQ(a->xml_source, b->xml_source);
  }
}

TEST(Persistence, RestoredIndexAnswersQueries) {
  const auto bytes = serialize_data_store(make_store());
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.search_all_terms("gossip rumors").size(), 1u);
  EXPECT_EQ(restored.search_all_terms("bloom filters").size(), 1u);
  EXPECT_TRUE(restored.search_all_terms("nonexistent").empty());
}

TEST(Persistence, RestoredBloomFilterMatches) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
}

TEST(Persistence, IdGapsAreNotReused) {
  DataStore store(1, small_bloom());
  store.publish_text("keep", "alpha");
  const DocumentId doomed = store.publish_text("drop", "beta");
  store.publish_text("keep2", "gamma");
  store.unpublish(doomed);

  const auto bytes = serialize_data_store(store);
  DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.num_documents(), 2u);
  // New publishes continue after the highest ever-assigned id.
  const DocumentId fresh = restored.publish_text("new", "delta");
  EXPECT_GE(fresh.local, 3u);
}

TEST(Persistence, EmptyStoreRoundtrip) {
  DataStore empty(42, small_bloom());
  const auto bytes = serialize_data_store(empty);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.peer_id(), 42u);
  EXPECT_EQ(restored.num_documents(), 0u);
}

TEST(Persistence, CorruptMagicRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, UnsupportedVersionRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[4] = 99;  // version field
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, TruncatedSnapshotRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::exception);
}

TEST(Persistence, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "planetp_store_test.ppds").string();
  const DataStore original = make_store();
  ASSERT_TRUE(save_data_store(original, path));
  const DataStore restored = load_data_store(path, small_bloom());
  EXPECT_EQ(restored.num_documents(), original.num_documents());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
  std::remove(path.c_str());
}

TEST(Persistence, LoadMissingFileThrows) {
  EXPECT_THROW(load_data_store("/nonexistent/path/store.ppds", small_bloom()),
               std::runtime_error);
}

TEST(Persistence, TermIdsAreStoreLocalAndNotSerialized) {
  // TermIds must never cross the wire or disk: a snapshot round-trip that
  // interns terms in a different order has to produce a store that is
  // string-level identical even though the ids differ. Unpublishing the
  // first document shifts the restore's intern order (its terms were
  // interned first originally but are re-encountered later — or never —
  // after restore).
  DataStore store(3, small_bloom());
  const DocumentId first = store.publish_text("first", "zebra yak xylophone");
  store.publish_text("second", "apple banana cherry");
  store.unpublish(first);
  store.publish_text("third", "zebra walrus");

  const auto bytes = serialize_data_store(store);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());

  // String-level equality: same term set, same statistics, same postings,
  // same Bloom filter.
  std::vector<std::string> orig_terms, rest_terms;
  store.index().for_each_term([&](const std::string& t) { orig_terms.push_back(t); });
  restored.index().for_each_term([&](const std::string& t) { rest_terms.push_back(t); });
  std::sort(orig_terms.begin(), orig_terms.end());
  std::sort(rest_terms.begin(), rest_terms.end());
  ASSERT_EQ(orig_terms, rest_terms);
  for (const std::string& t : orig_terms) {
    EXPECT_EQ(restored.index().collection_frequency(t), store.index().collection_frequency(t)) << t;
    EXPECT_EQ(restored.index().document_frequency(t), store.index().document_frequency(t)) << t;
    auto a = store.index().postings(t);
    auto b = restored.index().postings(t);
    const auto by_doc = [](const Posting& x, const Posting& y) { return x.doc < y.doc; };
    std::sort(a.begin(), a.end(), by_doc);
    std::sort(b.begin(), b.end(), by_doc);
    EXPECT_EQ(a, b) << t;
  }
  EXPECT_EQ(restored.bloom_filter(), store.bloom_filter());

  // ...while the ids themselves genuinely differ: "zebra" was the very first
  // term interned originally, but the restore interns "second"'s terms
  // before re-encountering it. Ids are store-local bookkeeping only.
  const TermId before = store.index().term_id("zebra");
  const TermId after = restored.index().term_id("zebra");
  ASSERT_NE(before, kInvalidTermId);
  ASSERT_NE(after, kInvalidTermId);
  EXPECT_EQ(before, 0u);
  EXPECT_NE(before, after);
}

TEST(Persistence, PublishAsRejectsDuplicates) {
  DataStore store(1, small_bloom());
  store.publish_as(5, wrap_text_as_xml("five", "content"));
  EXPECT_THROW(store.publish_as(5, wrap_text_as_xml("again", "content")),
               std::invalid_argument);
  // And the counter advanced past the explicit id.
  const DocumentId next = store.publish_text("auto", "more");
  EXPECT_EQ(next.local, 6u);
}

}  // namespace
}  // namespace planetp::index
