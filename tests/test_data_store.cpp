#include "index/data_store.hpp"

#include <gtest/gtest.h>

namespace planetp::index {
namespace {

TEST(DataStore, PublishIndexesText) {
  DataStore store(1);
  const DocumentId id = store.publish_text("Doc One", "gossip protocols spread rumors");
  EXPECT_EQ(id.peer, 1u);
  EXPECT_EQ(store.num_documents(), 1u);

  const Document* doc = store.document(id);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->title, "Doc One");

  // Terms are analyzed (stemmed): "protocols" -> "protocol".
  EXPECT_TRUE(store.index().contains_term("gossip"));
  EXPECT_TRUE(store.index().contains_term("protocol"));
  EXPECT_FALSE(store.index().contains_term("the"));
}

TEST(DataStore, BloomFilterCoversTerms) {
  DataStore store(1);
  store.publish_text("t", "epidemic algorithms for replicated databases");
  const auto filter = store.bloom_filter();
  EXPECT_TRUE(filter.contains("epidem"));  // stem of "epidemic"
  EXPECT_TRUE(filter.contains("algorithm"));
  EXPECT_FALSE(filter.contains("unrelated_term_xyz"));
}

TEST(DataStore, SearchAllTermsIsConjunctive) {
  DataStore store(1);
  const auto d1 = store.publish_text("a", "distributed gossip search");
  const auto d2 = store.publish_text("b", "distributed hash tables");
  store.publish_text("c", "centralized search engines");

  const auto both = store.search_all_terms("distributed search");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0], d1);

  const auto one = store.search_all_terms("distributed");
  EXPECT_EQ(one.size(), 2u);
  EXPECT_NE(std::find(one.begin(), one.end(), d2), one.end());

  EXPECT_TRUE(store.search_all_terms("distributed nonexistent").empty());
  EXPECT_TRUE(store.search_all_terms("").empty());
}

TEST(DataStore, UnpublishRemovesEverywhere) {
  DataStore store(1);
  const auto id = store.publish_text("doomed", "unique zanzibar marker");
  EXPECT_TRUE(store.index().contains_term("zanzibar"));
  EXPECT_TRUE(store.bloom_filter().contains("zanzibar"));

  EXPECT_TRUE(store.unpublish(id));
  EXPECT_FALSE(store.unpublish(id));
  EXPECT_EQ(store.document(id), nullptr);
  EXPECT_FALSE(store.index().contains_term("zanzibar"));
  EXPECT_FALSE(store.bloom_filter().contains("zanzibar"));
}

TEST(DataStore, SharedTermsSurviveUnpublish) {
  DataStore store(1);
  const auto d1 = store.publish_text("a", "shared quokka term");
  store.publish_text("b", "shared quokka elsewhere");
  store.unpublish(d1);
  EXPECT_TRUE(store.bloom_filter().contains("quokka"));
  EXPECT_TRUE(store.index().contains_term("quokka"));
}

TEST(DataStore, FilterVersionIncrements) {
  DataStore store(1);
  const auto v0 = store.filter_version();
  const auto id = store.publish_text("x", "content");
  EXPECT_GT(store.filter_version(), v0);
  const auto v1 = store.filter_version();
  store.unpublish(id);
  EXPECT_GT(store.filter_version(), v1);
}

TEST(DataStore, PublishRawXmlWithLinks) {
  DataStore store(2);
  const auto id = store.publish(
      R"(<document title="Linked"><link href="notes.txt" type="text">searchable note body</link></document>)");
  const Document* doc = store.document(id);
  ASSERT_NE(doc, nullptr);
  ASSERT_EQ(doc->links.size(), 1u);
  // Linked text content is indexed.
  EXPECT_FALSE(store.search_all_terms("searchable note").empty());
}

TEST(DataStore, MalformedXmlRejected) {
  DataStore store(1);
  EXPECT_THROW(store.publish("<broken"), std::runtime_error);
  EXPECT_EQ(store.num_documents(), 0u);
}

TEST(DataStore, LocalIdsIncrease) {
  DataStore store(9);
  const auto a = store.publish_text("a", "one");
  const auto b = store.publish_text("b", "two");
  EXPECT_EQ(a.peer, 9u);
  EXPECT_LT(a.local, b.local);
}

TEST(DataStore, DocumentsListing) {
  DataStore store(1);
  store.publish_text("a", "alpha");
  store.publish_text("b", "beta");
  EXPECT_EQ(store.documents().size(), 2u);
}


TEST(DataStore, RepublishReplacesContent) {
  DataStore store(1);
  const auto id = store.publish_text("v1", "original ocelot content");
  ASSERT_TRUE(store.republish(id, wrap_text_as_xml("v2", "updated lynx content")));

  EXPECT_TRUE(store.search_all_terms("original ocelot").empty());
  ASSERT_EQ(store.search_all_terms("updated lynx").size(), 1u);
  EXPECT_EQ(store.document(id)->title, "v2");
  EXPECT_FALSE(store.bloom_filter().contains("ocelot"));
  EXPECT_TRUE(store.bloom_filter().contains("lynx"));
  EXPECT_EQ(store.num_documents(), 1u);
}

TEST(DataStore, RepublishUnknownIdFails) {
  DataStore store(1);
  EXPECT_FALSE(store.republish(DocumentId{1, 99}, wrap_text_as_xml("x", "y")));
}

TEST(DataStore, RepublishMalformedXmlLeavesOldVersion) {
  DataStore store(1);
  const auto id = store.publish_text("keep", "surviving capybara content");
  EXPECT_THROW(store.republish(id, "<broken"), std::runtime_error);
  EXPECT_EQ(store.search_all_terms("surviving capybara").size(), 1u);
  EXPECT_EQ(store.document(id)->title, "keep");
}

}  // namespace
}  // namespace planetp::index
