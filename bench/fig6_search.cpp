/// \file fig6_search.cpp
/// Figure 6: search and retrieval effectiveness on an AP89-shaped synthetic
/// collection distributed over a community (Weibull placement).
///  (a) average recall and precision vs k — TFxIDF (centralized oracle) vs
///      TFxIPF with the adaptive stopping heuristic (IPF Ad.W);
///  (b) PlanetP's recall vs community size at fixed k = 20;
///  (c) number of peers contacted vs k — IPF Ad.W vs Best (the minimum set
///      that could supply k relevant documents).
///
/// Expected shapes: IPF tracks IDF closely (slightly behind at small k,
/// caught up at large k); recall flat in community size; contacted peers
/// grow with k, above Best but far below the community size.

#include <cstdio>
#include <cstring>

#include "search/experiment.hpp"

using namespace planetp;
using namespace planetp::search;

namespace {

void part_a_c(const corpus::SynthCollection& collection, std::size_t peers) {
  const RetrievalSetup setup =
      distribute_collection(collection, peers, corpus::PlacementOptions{});

  RetrievalOptions opts;
  opts.ks = {10, 20, 50, 100, 150, 200, 300, 400, 500};
  const auto points = run_k_sweep(collection, setup, opts);

  std::printf("== Fig 6(a): recall/precision vs k (%zu peers, Weibull) ==\n", peers);
  std::printf("%-6s %9s %9s %9s %9s\n", "k", "IDF-R", "IDF-P", "IPF-R", "IPF-P");
  for (const auto& p : points) {
    std::printf("%-6zu %9.3f %9.3f %9.3f %9.3f\n", p.k, p.idf_recall, p.idf_precision,
                p.ipf_recall, p.ipf_precision);
  }
  std::puts("");

  std::puts("== Fig 6(c): peers contacted vs k ==");
  std::printf("%-6s %12s %12s %12s\n", "k", "IPF Ad.W", "IDF exact", "Best");
  for (const auto& p : points) {
    std::printf("%-6zu %12.1f %12.1f %12.1f\n", p.k, p.ipf_peers, p.idf_peers,
                p.best_peers);
  }
  std::puts("");
}

void placement_comparison(const corpus::SynthCollection& collection, std::size_t peers) {
  // §7.3 cites the companion TR: "we also study a uniform distribution and
  // show that PlanetP does equally well although it has to contact more
  // peers as documents are more spread out in the community."
  std::puts("== placement: Weibull vs uniform (k = 20) ==");
  std::printf("%-10s %9s %9s %12s %10s\n", "placement", "IPF-R", "IPF-P", "contacted",
              "best");
  RetrievalOptions opts;
  for (const auto kind : {corpus::PlacementKind::kWeibull, corpus::PlacementKind::kUniform}) {
    corpus::PlacementOptions placement;
    placement.kind = kind;
    const RetrievalSetup setup = distribute_collection(collection, peers, placement);
    const auto p = evaluate_at_k(collection, setup, 20, opts);
    std::printf("%-10s %9.3f %9.3f %12.1f %10.1f\n",
                kind == corpus::PlacementKind::kWeibull ? "weibull" : "uniform",
                p.ipf_recall, p.ipf_precision, p.ipf_peers, p.best_peers);
  }
  std::puts("");
}

void part_b(const corpus::SynthCollection& collection) {
  std::puts("== Fig 6(b): recall vs community size (k = 20) ==");
  RetrievalOptions opts;
  const auto points = run_community_sweep(collection, {100, 200, 400, 600, 800, 1000},
                                          20, corpus::PlacementOptions{}, opts);
  std::printf("%-8s %9s %9s %14s\n", "peers", "IPF-R", "IDF-R", "IPF contacted");
  for (const auto& p : points) {
    std::printf("%-8zu %9.3f %9.3f %14.1f\n", p.community_size, p.ipf_recall,
                p.idf_recall, p.ipf_peers);
  }
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* part = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--part=", 7) == 0) part = argv[i] + 7;
  }

  const auto spec = quick ? corpus::preset_cacm() : corpus::preset_ap89(8);
  const auto collection = corpus::generate(spec);
  std::printf("collection %s: %zu docs, %zu distinct terms, %zu queries\n\n",
              spec.name.c_str(), collection.docs.size(), collection.distinct_terms,
              collection.queries.size());

  if (std::strcmp(part, "a") == 0 || std::strcmp(part, "c") == 0 ||
      std::strcmp(part, "all") == 0) {
    part_a_c(collection, 400);
  }
  if (std::strcmp(part, "b") == 0 || std::strcmp(part, "all") == 0) {
    part_b(collection);
  }
  if (std::strcmp(part, "placement") == 0 || std::strcmp(part, "all") == 0) {
    placement_comparison(collection, 400);
  }
  return 0;
}
