#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/broker_network.hpp"
#include "core/node.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

/// \file community.hpp
/// In-process PlanetP community: hosts Nodes, routes their inter-peer calls,
/// runs the broker overlay and (optionally) drives real gossip rounds over a
/// virtual clock. Applications and examples use this; wide-area deployments
/// use src/net's TCP runtime, and scalability experiments use src/sim.

namespace planetp::core {

/// How directory changes move between nodes.
enum class SyncMode {
  /// Directory updates apply to every node immediately (a converged
  /// community at all times). Right for applications that want PlanetP
  /// semantics without simulating propagation delay.
  kInstant,
  /// Nodes exchange real gossip messages; call step() to advance the
  /// community's virtual clock and let rumors propagate.
  kGossipStep,
};

class Community {
 public:
  explicit Community(NodeConfig defaults = {}, SyncMode mode = SyncMode::kInstant,
                     std::uint64_t seed = 7);
  ~Community();

  Community(const Community&) = delete;
  Community& operator=(const Community&) = delete;

  /// Create a node and join it to the community (and the broker ring).
  Node& create_node();

  /// Create a node with its own configuration (e.g. a slow link class).
  Node& create_node(const NodeConfig& config);

  Node& node(PeerId id) { return *nodes_.at(id); }
  const Node& node(PeerId id) const { return *nodes_.at(id); }
  std::size_t size() const { return nodes_.size(); }

  SyncMode mode() const { return mode_; }
  TimePoint now() const { return clock_.now(); }

  /// Advance the virtual clock (kGossipStep): runs due gossip rounds and
  /// delivers messages synchronously. No-op in kInstant mode.
  void step(Duration dt);

  /// Run step() repeatedly until all directories agree or \p limit elapses.
  /// Returns true on convergence.
  bool step_until_converged(Duration limit, Duration stride = 5 * kSecond);

  /// Take a node offline / bring it back (affects routing and gossip).
  void set_online(PeerId id, bool online);
  bool is_online(PeerId id) const { return online_.at(id); }

  broker::BrokerNetwork& brokers() { return brokers_; }

  // ------------------------------------------------------------------
  // Node-to-node transport (in-process "RPC")
  // ------------------------------------------------------------------

  /// Ranked-query a peer; reports kUnreachable when the target is offline
  /// (and notifies the caller's gossip protocol, which marks the peer
  /// offline locally).
  search::PeerSearchResult contact_ranked(
      PeerId caller, PeerId target,
      const std::unordered_map<std::string, double>& term_weights);

  /// Exhaustive-query a peer; empty when the target is offline.
  std::vector<SearchHit> contact_exhaustive(PeerId caller, PeerId target,
                                            std::string_view query);

  /// Ask \p proxy to run a full ranked search on the caller's behalf
  /// (§7.2's proxy search for slow peers). Empty when the proxy is offline.
  std::vector<SearchHit> contact_proxy_search(PeerId caller, PeerId proxy,
                                              std::string_view query, std::size_t k);

  /// Fetch a document from its owner (nullptr when owner offline/unknown).
  const index::Document* fetch_document(const DocumentId& doc);

  // ------------------------------------------------------------------
  // Internal notifications from nodes
  // ------------------------------------------------------------------

  /// A node's own record changed (publish/unpublish). In kInstant mode the
  /// new record is applied at every other node right away.
  void record_changed(PeerId origin);

  /// A node published a broker snippet: store it and fan out persistent-
  /// query notifications.
  void snippet_published(const broker::Snippet& snippet);

  /// A node applied a remote record (gossip mode) — forward to persistent
  /// queries.
  void applied_update(PeerId at_node, PeerId origin);

 private:
  void run_due_rounds();
  void deliver_all(PeerId from, std::vector<gossip::Protocol::Outgoing> batch);

  NodeConfig defaults_;
  SyncMode mode_;
  Rng rng_;
  sim::EventQueue clock_;  ///< virtual clock for kGossipStep
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> online_;
  std::vector<TimePoint> next_round_;
  broker::BrokerNetwork brokers_;
};

}  // namespace planetp::core
