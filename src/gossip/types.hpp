#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/hash.hpp"
#include "util/time.hpp"

/// \file types.hpp
/// Core vocabulary of the gossiping layer (§3): peers, directory records,
/// rumors and the events that create them.

namespace planetp::gossip {

using PeerId = std::uint32_t;
inline constexpr PeerId kInvalidPeer = 0xffffffffu;

/// Connectivity class used by the bandwidth-aware gossiping variant (§7.2):
/// "Fast includes peers with 512 Kb/s connectivity or better. Slow includes
/// peers connected by modems."
enum class LinkClass : std::uint8_t { kFast = 0, kSlow = 1 };

/// What changed at the origin peer; drives metrics and the wire-size model.
enum class EventKind : std::uint8_t {
  kJoin = 0,          ///< a brand-new member joined the community
  kRejoin = 1,        ///< a previously offline member came back, nothing new to share
  kFilterChange = 2,  ///< the origin's Bloom filter changed (new/updated docs)
};

/// Identifies one directory change: the origin peer and the version its
/// record reached with this change. Rumors are deduplicated by this id.
struct RumorId {
  PeerId origin = kInvalidPeer;
  std::uint64_t version = 0;

  bool operator==(const RumorId&) const = default;
  auto operator<=>(const RumorId&) const = default;
};

/// Hash for RumorId-keyed tables. The obvious `(origin << 32) ^ version`
/// collides badly in practice: versions are small integers, so every origin's
/// first few rumors land in the same low-bit-poor region and unordered_map
/// degenerates at community scale. Mix through splitmix64 instead, which
/// avalanche-mixes every input bit into every output bit.
struct RumorIdHash {
  std::size_t operator()(const RumorId& id) const {
    return static_cast<std::size_t>(
        splitmix64((static_cast<std::uint64_t>(id.origin) << 32) ^ id.version));
  }
};

/// Bloom-filter update carried by a rumor. The origin encodes the change as
/// a diff against its previous filter version when possible (§7.2 "PlanetP
/// sends diffs of the Bloom filters to save bandwidth"); receivers that do
/// not hold the base version pull the full filter instead.
struct FilterUpdate {
  std::uint64_t base_version = 0;  ///< version the diff applies to; 0 = full filter
  std::vector<std::uint8_t> bits;  ///< encoded diff (or full filter when base_version == 0);
                                   ///< empty in simulation, where sizes are modeled
  std::uint32_t key_count = 0;     ///< total keys summarized after this update
  std::uint32_t new_keys = 0;      ///< keys added relative to the base (sizing model)
};

/// One peer's entry in the replicated global directory: "the names and
/// addresses of all current members, as well as a Bloom filter per member"
/// (§1). online/offline status is local belief and is never gossiped (§3).
struct PeerRecord {
  PeerId id = kInvalidPeer;
  std::string address;                     ///< opaque contact address
  LinkClass link_class = LinkClass::kFast;
  std::uint64_t version = 0;               ///< origin-incremented on every event
  std::uint32_t key_count = 0;             ///< #terms in the summarized index
  std::vector<std::uint8_t> filter_wire;   ///< compressed Bloom filter (live mode)

  // --- local-only state, never serialized ---
  bool online = true;
  TimePoint offline_since = 0;
  /// SUSPECT level: consecutive query-time failures (timeouts, garbage
  /// replies) observed against this peer. Demotes it in query-time peer
  /// ranking; at Directory::kSuspectThreshold the peer is marked offline so
  /// the next gossip round stops selecting it. Cleared by any successful
  /// contact or by a newer gossiped version.
  std::uint32_t suspicion = 0;

  RumorId rumor_id() const { return RumorId{id, version}; }
};

/// The unit of rumor mongering: enough of a peer record to update a remote
/// directory, plus the optional filter payload.
struct RumorPayload {
  PeerId origin = kInvalidPeer;
  std::uint64_t version = 0;
  std::string address;
  LinkClass link_class = LinkClass::kFast;
  EventKind kind = EventKind::kJoin;
  std::uint32_t key_count = 0;
  std::optional<FilterUpdate> filter;

  RumorId id() const { return RumorId{origin, version}; }
};

/// Compact per-peer entry of a directory summary, exchanged by anti-entropy.
/// Table 2 prices one of these at 48 bytes on the wire.
struct PeerSummary {
  PeerId id = kInvalidPeer;
  std::uint64_t version = 0;

  bool operator==(const PeerSummary&) const = default;
};

/// An immutable, id-sorted directory summary shared between the Directory's
/// epoch cache, every SummaryMsg built from it, and every in-flight simulated
/// delivery. Sharing is what makes per-exchange summaries O(1): the vector is
/// built once per directory mutation epoch, never copied per message.
using SummarySnapshot = std::shared_ptr<const std::vector<PeerSummary>>;

/// An immutable converged-community snapshot shared by many Directory
/// instances. At 100k peers a fully replicated directory costs ~2KB of
/// compressed filter per record; N copies of it would be N x that again, so
/// every simulated peer instead holds one shared base plus a small private
/// overlay of what changed since (see Directory::adopt_base). Records are
/// id-sorted for binary-search lookup, all online with no local beliefs.
struct DirectoryBase {
  std::vector<PeerRecord> records;  ///< id-sorted, normalized (online, no suspicion)
  SummarySnapshot summary;          ///< one (id, version) per record, id-sorted
  /// Content hash of `summary` (never 0). Two peers advertising the same
  /// token provably share the same base, so an anti-entropy reply can carry
  /// only the replier's delta instead of the full entry list
  /// (docs/PROTOCOL.md "Lazy dissemination", delta summaries).
  std::uint64_t token = 0;
};
using DirectoryBasePtr = std::shared_ptr<const DirectoryBase>;

/// Sort + normalize \p records and derive the shared summary snapshot.
DirectoryBasePtr make_directory_base(std::vector<PeerRecord> records);

/// A based Directory's changed-set relative to its base, rebuilt per mutation
/// epoch. Steady-state anti-entropy between peers sharing a base compares and
/// scans these instead of full summaries — O(changed records), not O(peers).
struct SummaryDelta {
  std::vector<PeerSummary> entries;  ///< id-sorted: new ids or version != base
  std::vector<PeerId> removed;       ///< id-sorted: base ids locally expired
};

/// Build the rumor payload describing \p record's latest state.
RumorPayload payload_from_record(const PeerRecord& record, EventKind kind,
                                 std::optional<FilterUpdate> filter = std::nullopt);

}  // namespace planetp::gossip
