#pragma once

#include <cmath>
#include <cstdint>

/// \file vector_model.hpp
/// The vector-space ranking primitives of §5.2, following Witten, Moffat &
/// Bell's instantiation of the TFxIDF rule:
///
///   IDF_t   = log(1 + N / f_t)
///   w_{D,t} = 1 + log(f_{D,t})
///   w_{Q,t} = IDF_t
///   Sim(Q,D) = sum_{t in Q} w_{D,t} * IDF_t / sqrt(|D|)
///
/// and the paper's IPF substitute computed from Bloom filters:
///
///   IPF_t = log(1 + N / N_t)
///
/// where N is the number of peers and N_t the number of peers whose filter
/// contains t.

namespace planetp::search {

/// IDF_t = log(1 + N/f_t); N = #documents, f_t = collection frequency.
inline double idf(std::uint64_t num_docs, std::uint64_t collection_freq) {
  if (collection_freq == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(num_docs) / static_cast<double>(collection_freq));
}

/// IPF_t = log(1 + N/N_t); N = #peers, N_t = #peers whose filter has t.
inline double ipf(std::uint64_t num_peers, std::uint64_t peers_with_term) {
  if (peers_with_term == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(num_peers) / static_cast<double>(peers_with_term));
}

/// Document term weight w_{D,t} = 1 + log(f_{D,t}).
inline double doc_weight(std::uint32_t term_freq) {
  if (term_freq == 0) return 0.0;
  return 1.0 + std::log(static_cast<double>(term_freq));
}

/// Length normalizer 1/sqrt(|D|); |D| = number of terms in the document.
inline double length_norm(std::uint32_t doc_length) {
  return doc_length == 0 ? 0.0 : 1.0 / std::sqrt(static_cast<double>(doc_length));
}

/// One posting's contribution to eq. 2: w_{D,t} * weight_t. Every scoring
/// path (live index, epoch snapshot, compressed snapshot) must accumulate
/// exactly this expression in lexicographic term order — that is what makes
/// their per-document sums bitwise identical.
inline double score_contribution(std::uint32_t term_freq, double weight) {
  return doc_weight(term_freq) * weight;
}

/// doc_weight with small frequencies memoized. Term frequencies are tiny
/// integers, and the log call dominates per-posting cost on the hot
/// accumulation loops; the table holds exactly doc_weight(f) for each entry
/// (built by calling it), so every value is bitwise identical to the
/// reference expression and substituting it preserves score identity.
inline double doc_weight_memo(std::uint32_t term_freq) {
  static constexpr std::uint32_t kMemo = 1024;
  static const double* table = [] {
    static double t[kMemo];
    for (std::uint32_t f = 0; f < kMemo; ++f) t[f] = doc_weight(f);
    return t;
  }();
  return term_freq < kMemo ? table[term_freq] : doc_weight(term_freq);
}

/// score_contribution through the memo table — identical bits, no log call
/// on the hot path.
inline double score_contribution_memo(std::uint32_t term_freq, double weight) {
  return doc_weight_memo(term_freq) * weight;
}

}  // namespace planetp::search
