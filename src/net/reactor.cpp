#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace planetp::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Parse "host:port"; only IPv4 dotted quads (or localhost) are supported —
/// the runtime targets LAN/loopback deployments and tests.
bool parse_address(const std::string& address, sockaddr_in& out) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = address.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

Reactor::Reactor() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw std::runtime_error("Reactor: pipe() failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

Reactor::~Reactor() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  ::close(wake_read_);
  ::close(wake_write_);
}

std::uint16_t Reactor::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Reactor: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("Reactor: bind() failed");
  }
  if (::listen(listen_fd_, 64) != 0) throw std::runtime_error("Reactor: listen() failed");

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  return port_;
}

void Reactor::start(FrameHandler on_frame, FailureHandler on_failure) {
  on_frame_ = std::move(on_frame);
  on_failure_ = std::move(on_failure);
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop() {
  if (!running_.exchange(false)) return;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  if (thread_.joinable()) thread_.join();
}

void Reactor::send(const std::string& address, Frame frame) {
  post([this, address, frame = std::move(frame)]() mutable {
    Connection* conn = connection_to(address);
    if (conn == nullptr) {
      if (on_failure_) on_failure_(address);
      return;
    }
    // Serialize straight into the connection's outbound queue: no per-frame
    // intermediate buffer on the send path.
    append_frame(conn->out, frame);
    if (!conn->connecting) flush(*conn);
  });
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(fn));
  }
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

std::uint64_t Reactor::schedule(Duration delay, std::function<void()> fn) {
  const std::uint64_t token = next_timer_token_.fetch_add(1);
  Timer t{steady_now() + delay, token, std::move(fn)};
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    pending_timers_.push_back(std::move(t));
  }
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  return token;
}

void Reactor::cancel_timer(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  cancelled_timers_.push_back(token);
}

TimePoint Reactor::steady_now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Reactor::Connection* Reactor::connection_to(const std::string& address) {
  auto it = outbound_.find(address);
  if (it != outbound_.end()) return &conns_[it->second];

  sockaddr_in addr{};
  if (!parse_address(address, addr)) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Connection conn;
  conn.fd = fd;
  conn.address = address;
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  conn.connecting = (rc != 0);
  conns_.emplace(fd, std::move(conn));
  outbound_.emplace(address, fd);
  return &conns_[fd];
}

void Reactor::flush(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      close_connection(conn.fd, /*notify_failure=*/true);
      return;
    }
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > 65536) {
    conn.out.erase(conn.out.begin(), conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
    conn.out_pos = 0;
  }
}

void Reactor::close_connection(int fd, bool notify_failure) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const bool had_pending = it->second.out_pos < it->second.out.size();
  const std::string address = it->second.address;
  if (!address.empty()) outbound_.erase(address);
  ::close(fd);
  conns_.erase(it);
  if (notify_failure && had_pending && !address.empty() && on_failure_) {
    on_failure_(address);
  }
}

void Reactor::handle_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  std::uint8_t buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      try {
        while (auto frame = conn.decoder.next()) {
          if (on_frame_) on_frame_(*frame);
        }
      } catch (const std::exception& e) {
        PLOG_WARN("net", "corrupt stream from fd ", fd, ": ", e.what());
        close_connection(fd, true);
        return;
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    } else {
      close_connection(fd, n < 0);
      return;
    }
  }
}

void Reactor::handle_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_connection(fd, true);
      return;
    }
    conn.connecting = false;
  }
  flush(conn);
}

void Reactor::drain_tasks() {
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) fn();
}

void Reactor::fire_timers() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    for (auto& t : pending_timers_) timers_.emplace(t.at, std::move(t));
    pending_timers_.clear();
    for (std::uint64_t token : cancelled_timers_) {
      for (auto it = timers_.begin(); it != timers_.end();) {
        it = it->second.token == token ? timers_.erase(it) : std::next(it);
      }
    }
    cancelled_timers_.clear();
  }
  const TimePoint now = steady_now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto node = timers_.extract(timers_.begin());
    node.mapped().fn();
  }
}

void Reactor::loop() {
  while (running_.load()) {
    drain_tasks();
    fire_timers();

    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_read_, POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn.connecting || conn.out_pos < conn.out.size()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
    }

    int timeout_ms = 200;
    if (!timers_.empty()) {
      const auto until = timers_.begin()->first - steady_now();
      timeout_ms = static_cast<int>(std::clamp<Duration>(until / kMillisecond, 0, 200));
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;

    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      if (p.fd == wake_read_) {
        char buf[256];
        while (::read(wake_read_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (p.fd == listen_fd_) {
        while (true) {
          const int client = ::accept(listen_fd_, nullptr, nullptr);
          if (client < 0) break;
          set_nonblocking(client);
          const int one = 1;
          ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          Connection conn;
          conn.fd = client;
          conns_.emplace(client, std::move(conn));
        }
        continue;
      }
      if (p.revents & (POLLERR | POLLHUP)) {
        // Flush any readable data first, then close.
        if (p.revents & POLLIN) handle_readable(p.fd);
        close_connection(p.fd, (p.revents & POLLERR) != 0);
        continue;
      }
      if (p.revents & POLLIN) handle_readable(p.fd);
      if (p.revents & POLLOUT) handle_writable(p.fd);
    }
  }
}

}  // namespace planetp::net
