#include "text/porter_stemmer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace planetp::text {
namespace {

using Pair = std::pair<const char*, const char*>;

class PorterVectors : public ::testing::TestWithParam<Pair> {};

TEST_P(PorterVectors, StemsCorrectly) {
  const auto [input, expected] = GetParam();
  EXPECT_EQ(porter_stem_copy(input), expected) << input;
}

// Examples from Porter's 1980 paper, step by step.
INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterVectors,
    ::testing::Values(Pair{"caresses", "caress"}, Pair{"ponies", "poni"},
                      Pair{"ties", "ti"}, Pair{"caress", "caress"}, Pair{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterVectors,
    ::testing::Values(Pair{"feed", "feed"}, Pair{"agreed", "agre"},
                      Pair{"plastered", "plaster"}, Pair{"bled", "bled"},
                      Pair{"motoring", "motor"}, Pair{"sing", "sing"}));

INSTANTIATE_TEST_SUITE_P(
    Step1bCleanup, PorterVectors,
    ::testing::Values(Pair{"conflated", "conflat"}, Pair{"troubled", "troubl"},
                      Pair{"sized", "size"}, Pair{"hopping", "hop"}, Pair{"tanned", "tan"},
                      Pair{"falling", "fall"}, Pair{"hissing", "hiss"},
                      Pair{"fizzed", "fizz"}, Pair{"failing", "fail"},
                      Pair{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(Step1c, PorterVectors,
                         ::testing::Values(Pair{"happy", "happi"}, Pair{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterVectors,
    ::testing::Values(Pair{"relational", "relat"}, Pair{"conditional", "condit"},
                      Pair{"rational", "ration"}, Pair{"valenci", "valenc"},
                      Pair{"hesitanci", "hesit"}, Pair{"digitizer", "digit"},
                      Pair{"operator", "oper"}, Pair{"feudalism", "feudal"},
                      Pair{"decisiveness", "decis"}, Pair{"hopefulness", "hope"},
                      Pair{"callousness", "callous"}, Pair{"formaliti", "formal"},
                      Pair{"sensitiviti", "sensit"}, Pair{"sensibiliti", "sensibl"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterVectors,
    ::testing::Values(Pair{"triplicate", "triplic"}, Pair{"formative", "form"},
                      // Step 3 maps -iciti/-ical to -ic; step 4 then strips
                      // the residual -ic (m > 1), so the full pipeline yields
                      // "electr" (matching Porter's reference output).
                      Pair{"formalize", "formal"}, Pair{"electriciti", "electr"},
                      Pair{"electrical", "electr"}, Pair{"hopeful", "hope"},
                      Pair{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterVectors,
    ::testing::Values(Pair{"revival", "reviv"}, Pair{"allowance", "allow"},
                      Pair{"inference", "infer"}, Pair{"airliner", "airlin"},
                      Pair{"gyroscopic", "gyroscop"}, Pair{"adjustable", "adjust"},
                      Pair{"defensible", "defens"}, Pair{"irritant", "irrit"},
                      Pair{"replacement", "replac"}, Pair{"adjustment", "adjust"},
                      Pair{"dependent", "depend"}, Pair{"adoption", "adopt"},
                      Pair{"communism", "commun"}, Pair{"activate", "activ"},
                      Pair{"angulariti", "angular"}, Pair{"homologous", "homolog"},
                      Pair{"effective", "effect"}, Pair{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(
    Step5, PorterVectors,
    ::testing::Values(Pair{"probate", "probat"}, Pair{"rate", "rate"},
                      Pair{"cease", "ceas"}, Pair{"controll", "control"},
                      Pair{"roll", "roll"}));

INSTANTIATE_TEST_SUITE_P(
    CommonEnglish, PorterVectors,
    ::testing::Values(Pair{"running", "run"}, Pair{"jumped", "jump"},
                      Pair{"flies", "fli"}, Pair{"dogs", "dog"},
                      Pair{"networks", "network"}, Pair{"searching", "search"},
                      Pair{"retrieval", "retriev"}, Pair{"gossiping", "gossip"},
                      Pair{"communities", "commun"}, Pair{"documents", "document"}));

TEST(Porter, ShortWordsUnchanged) {
  for (const char* w : {"a", "ab", "is", "be", "we"}) {
    EXPECT_EQ(porter_stem_copy(w), w);
  }
}

TEST(Porter, IdempotentOnItsOutput) {
  // Stemming a stem is common in pipelines; it must be stable for typical
  // vocabulary (Porter is not formally idempotent, but is for these).
  for (const char* w : {"running", "caresses", "relational", "hopefulness",
                        "adjustable", "motoring"}) {
    const std::string once = porter_stem_copy(w);
    const std::string twice = porter_stem_copy(once);
    EXPECT_EQ(once, twice) << w;
  }
}

TEST(Porter, InPlaceMatchesCopy) {
  std::string w = "generalizations";
  const std::string copy_result = porter_stem_copy(w);
  porter_stem(w);
  EXPECT_EQ(w, copy_result);
}

TEST(Porter, HandlesAllSameLetter) {
  // Degenerate inputs must not crash or loop.
  for (const char* w : {"aaa", "sss", "eee", "yyy", "lll"}) {
    const std::string out = porter_stem_copy(w);
    EXPECT_LE(out.size(), 3u);
  }
}

TEST(Porter, GeneralizationChain) {
  // The classic demonstration from the paper's introduction.
  EXPECT_EQ(porter_stem_copy("generalizations"), "gener");
  EXPECT_EQ(porter_stem_copy("generalization"), "gener");
  EXPECT_EQ(porter_stem_copy("generalize"), "gener");
  EXPECT_EQ(porter_stem_copy("general"), "gener");
}

}  // namespace
}  // namespace planetp::text
