#pragma once

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "util/byte_buffer.hpp"
#include "util/golomb.hpp"

/// \file wire.hpp
/// Wire encoding of Bloom filters and filter diffs. §7.1: filters are
/// compressed with Golomb-coded run lengths, "which outperforms gzip in our
/// specific context"; §7.2: updates are sent as diffs so the cost scales
/// with the number of new terms, not the filter size.

namespace planetp::bloom {

/// Serialize a full filter (geometry header + Golomb-compressed bits).
void encode_filter(ByteWriter& out, const BloomFilter& filter);

/// Inverse of encode_filter.
BloomFilter decode_filter(ByteReader& in);

/// Serialized byte size of a filter without materializing the message.
std::size_t encoded_filter_size(const BloomFilter& filter);

/// Serialize an XOR diff (bit-vector of changed positions, compressed).
void encode_diff(ByteWriter& out, const BitVector& diff);

/// Inverse of encode_diff.
BitVector decode_diff(ByteReader& in);

/// Serialized byte size of a diff.
std::size_t encoded_diff_size(const BitVector& diff);

}  // namespace planetp::bloom
