/// \file fig2_propagation.cpp
/// Figure 2: (a) time, (b) aggregated network volume, and (c) average
/// per-peer bandwidth required to propagate a single Bloom filter update of
/// 1000 keys through stable communities of increasing size.
///
/// Curves, as in the paper:
///   LAN     — 45 Mb/s links, PlanetP's full algorithm
///   LAN-AE  — 45 Mb/s links, pure (push) anti-entropy baseline
///   DSL-10/30/60 — 512 Kb/s links, gossip interval 10/30/60 s
///   MIX     — the Saroiu et al. bandwidth mixture (flat selection, as in
///             the paper's Fig 2, which predates the bandwidth-aware variant)
///
/// Expected shapes: time ~ log N; PlanetP volume ~ 11 MB at N=1000 and
/// near-linear in N; LAN-AE worse in both metrics; per-peer bandwidth tens
/// of B/s; the interval trades time for bandwidth.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/scenarios.hpp"

using namespace planetp;
using namespace planetp::sim;

namespace {

struct Curve {
  const char* name;
  BandwidthProfile profile;
  Duration interval;
  bool rumoring;
  std::size_t max_size;  ///< cap expensive baselines
};

void run_curve(const Curve& curve, const std::vector<std::size_t>& sizes, bool ignore_caps) {
  std::printf("# curve %s\n", curve.name);
  std::printf("%-8s %10s %12s %14s\n", "peers", "time(s)", "volume(MB)", "perpeer(B/s)");
  for (std::size_t n : sizes) {
    if (!ignore_caps && n > curve.max_size) continue;
    PropagationOptions opts;
    opts.community_size = n;
    opts.profile = curve.profile;
    opts.gossip_interval = curve.interval;
    opts.rumoring = curve.rumoring;
    opts.seed = 42 + n;
    const PropagationResult r = run_propagation(opts);
    std::printf("%-8zu %10.1f %12.2f %14.1f%s\n", n, r.propagation_seconds,
                static_cast<double>(r.event_bytes) / 1e6, r.per_peer_bandwidth_bps,
                r.converged ? "" : "  (timeout)");
  }
  std::puts("");
}

}  // namespace

void print_table2() {
  const gossip::SizeModel sizes;
  const NetworkParams net;
  const gossip::GossipConfig cfg;
  std::puts("Table 2 — constants used by the simulator");
  std::printf("  CPU gossiping time        %g ms\n", to_seconds(net.cpu_gossip_time) * 1e3);
  std::printf("  Base gossiping interval   %g s\n", to_seconds(cfg.base_interval));
  std::printf("  Max gossiping interval    %g s\n", to_seconds(cfg.max_interval));
  std::puts("  Network BW                56 Kb/s to 45 Mb/s (per-peer access links)");
  std::printf("  Message header size       %zu bytes\n", sizes.header_bytes);
  std::printf("  1000-key BF               %zu bytes\n", sizes.filter_bytes(1000));
  std::printf("  20000-key BF              %zu bytes\n", sizes.filter_bytes(20000));
  std::printf("  BF summary                %zu bytes\n", sizes.summary_entry_bytes);
  std::printf("  Peer summary              %zu bytes\n", sizes.record_base_bytes);
}

int main(int argc, char** argv) {
  bool quick = false;
  bool full = false;
  std::vector<std::size_t> explicit_sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--params") == 0) {
      print_table2();
      return 0;
    } else if (std::strcmp(argv[i], "--peers") == 0 && i + 1 < argc) {
      // Run one explicit community size (repeatable) instead of the sweep —
      // the shared-base bootstrap makes sizes well beyond the paper's plotted
      // range practical.
      explicit_sizes.push_back(static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10)));
    }
  }
  // Default covers the paper's plotted range; --full extends DSL-30's
  // "continued to 5000" data point (several extra minutes of wall time).
  std::vector<std::size_t> sizes = {100, 250, 500, 1000, 1500};
  if (quick) sizes = {100, 250, 500};
  if (full) sizes = {100, 250, 500, 1000, 1500, 2000, 3000, 5000};
  if (!explicit_sizes.empty()) sizes = explicit_sizes;

  std::puts("Figure 2 — propagating one 1000-key Bloom filter update");
  std::puts("(volume counts event traffic: rumors, acks and pulls; the pure");
  std::puts(" anti-entropy baseline propagates via summaries, so counts those)\n");

  const Curve curves[] = {
      {"LAN", BandwidthProfile::kLan, 30 * kSecond, true, 5000},
      {"LAN-AE", BandwidthProfile::kLan, 30 * kSecond, false, 1000},
      {"DSL-10", BandwidthProfile::kDsl, 10 * kSecond, true, 5000},
      {"DSL-30", BandwidthProfile::kDsl, 30 * kSecond, true, 5000},
      {"DSL-60", BandwidthProfile::kDsl, 60 * kSecond, true, 5000},
      {"MIX", BandwidthProfile::kMix, 30 * kSecond, true, 5000},
  };
  // Explicitly requested sizes override the per-curve caps that protect the
  // default sweep from its expensive baselines.
  for (const Curve& c : curves) run_curve(c, sizes, !explicit_sizes.empty());
  return 0;
}
