#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

/// \file placement.hpp
/// Document-to-peer placement for the retrieval experiments. §7.3: "The
/// distribution of documents on our simulation follows a Weibull function,
/// which is motivated by observing current P2P file-sharing communities";
/// the companion TR also studies a uniform placement.

namespace planetp::corpus {

enum class PlacementKind { kWeibull, kUniform };

struct PlacementOptions {
  PlacementKind kind = PlacementKind::kWeibull;
  double weibull_shape = 0.7;  ///< heavy-tailed sharing, few peers hold many docs
  double weibull_scale = 1.0;
  std::uint64_t seed = 99;
};

/// Assign each of \p num_docs documents to one of \p num_peers peers.
/// Returns owner_of[doc] = peer. Every peer receives at least one document
/// when num_docs >= num_peers (matching the experiments, where each peer
/// shares something).
std::vector<std::uint32_t> place_documents(std::size_t num_docs, std::size_t num_peers,
                                           const PlacementOptions& opts);

}  // namespace planetp::corpus
