#pragma once

#include "bloom/bloom_filter.hpp"
#include "gossip/config.hpp"
#include "gossip/types.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"
#include "text/analyzer.hpp"
#include "util/time.hpp"

/// \file config.hpp
/// Per-node configuration for the public PlanetP API.

namespace planetp::core {

struct NodeConfig {
  bloom::BloomParams bloom;            ///< 50 KB / 2 hashes by default (§7.1)
  text::AnalyzerOptions analyzer;      ///< tokenize + stop words + stemming
  gossip::GossipConfig gossip;

  /// Brokerage publication policy used by PFS (§6): publish each document's
  /// snippet under its most frequent terms so searchers find it before the
  /// new Bloom filter has diffused.
  double broker_top_fraction = 0.10;          ///< "the 10% most frequently appearing terms"
  Duration broker_discard_time = 10 * kMinute;  ///< "a discard time of 10 minutes"
  bool publish_to_brokers = true;

  search::StoppingHeuristic stopping;  ///< eq. 4 constants
  std::size_t search_group_size = 1;   ///< m peers contacted in parallel

  /// Failure-aware retrieval knobs (docs/SEARCH.md). Defaults keep ranked
  /// search behaviour identical to the failure-oblivious implementation when
  /// every contact succeeds.
  search::RetryPolicy search_retry;    ///< per-peer retry budget
  Duration search_deadline = 0;        ///< whole-query budget; 0 = unlimited
  Duration search_hedge_threshold = 0; ///< hedge slow contacts; 0 = off

  /// Query hot path (docs/SEARCH.md): the term→candidate-peers cache kept
  /// warm by gossiped filter diffs, plus the batched/parallel probe kernel.
  search::CandidateCacheConfig candidate_cache;

  /// Connectivity class advertised in the directory; slow (modem) peers are
  /// avoided by bandwidth-aware gossiping and prefer proxy search (§7.2).
  gossip::LinkClass link_class = gossip::LinkClass::kFast;
};

}  // namespace planetp::core
