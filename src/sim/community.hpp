#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gossip/protocol.hpp"
#include "search/candidate_cache.hpp"
#include "search/distributed.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

/// \file community.hpp
/// Simulated PlanetP community: wires one gossip::Protocol per peer to the
/// discrete-event engine and the link model, injects the experiment events
/// of §7.2 (filter changes, joins, churn), and measures convergence times
/// and traffic. This plays the role of the paper's custom simulator, but
/// runs the production protocol implementation unchanged.

namespace planetp::sim {

/// Tracks when a directory event (one RumorId) becomes known to every peer
/// that the predicate selects and that was online when the event occurred.
/// Peers that go offline mid-event stop counting (they are excused — they
/// will catch up via anti-entropy on rejoin); peers that arrive after the
/// event do not gate it. This is the paper's "known to everyone in the
/// community" as of the event's occurrence.
class ConvergenceTracker {
 public:
  using PeerPredicate = std::function<bool(gossip::PeerId)>;

  /// \p counts selects which peers must learn an event for it to converge;
  /// \p origin_filter (optional) selects which events are tracked at all,
  /// by their origin peer — e.g. Fig 5's MIX-F tracks only events that
  /// originate at fast peers.
  ConvergenceTracker(std::string name, PeerPredicate counts,
                     PeerPredicate origin_filter = nullptr)
      : name_(std::move(name)),
        counts_(std::move(counts)),
        origin_filter_(std::move(origin_filter)) {}

  void track(const gossip::RumorId& id, TimePoint start,
             const std::vector<gossip::PeerId>& online_peers, gossip::PeerId origin);
  void learned(const gossip::RumorId& id, gossip::PeerId peer, TimePoint now);
  void peer_offline(gossip::PeerId peer, TimePoint now);

  const std::string& name() const { return name_; }

  /// Convergence durations (seconds) of all completed events.
  const SampleSet& durations() const { return durations_; }

  std::size_t tracked_events() const { return total_events_; }
  std::size_t converged_events() const { return durations_.size(); }
  std::size_t pending_events() const { return active_.size(); }

 private:
  struct Active {
    TimePoint start = 0;
    std::unordered_set<gossip::PeerId> unknown_online;  ///< must still learn
    std::unordered_set<gossip::PeerId> known;
  };

  void maybe_converge(const gossip::RumorId& id, Active& a, TimePoint now);

  std::string name_;
  PeerPredicate counts_;
  PeerPredicate origin_filter_;
  std::unordered_map<gossip::RumorId, Active, gossip::RumorIdHash> active_;
  SampleSet durations_;
  std::size_t total_events_ = 0;
};

/// Per-peer simulation configuration.
struct SimPeerSpec {
  double bandwidth_bps = link_speed::kLan45M;
  std::uint32_t key_count = 1000;
};

struct SimConfig {
  gossip::GossipConfig gossip;
  gossip::SizeModel sizes;
  NetworkParams network;
  std::uint64_t seed = 42;
  /// Scheduled fault injection (drops, duplicates, delays, reordering,
  /// partitions, crash/restarts); see sim/faults.hpp. Everything the plan
  /// injects is reproducible from `seed`.
  FaultPlan faults;
  /// Legacy uniform-loss knob, kept as a compatibility shim: a non-zero
  /// value appends `FaultPlan::uniform_drop(p)` to `faults`.
  double message_drop_prob = 0.0;
  /// Configuration for per-searcher query hot-path caches (searcher_cache()).
  search::CandidateCacheConfig candidate_cache;

  /// Deterministic parallel round stepping. 0 (default) keeps the fully
  /// sequential event order — bit-identical to all prior releases. A positive
  /// tick quantizes gossip-round firing times up to multiples of the tick;
  /// all rounds landing on one tick step concurrently on a thread pool (each
  /// node only touches its own protocol state and forked RNG stream) and
  /// their outgoing messages commit in node-id order, so traces are
  /// identical across thread counts for a fixed seed.
  Duration parallel_round_tick = 0;
  /// Worker threads for parallel stepping (0 = hardware concurrency).
  std::size_t parallel_threads = 0;
};

class SimCommunity {
 public:
  explicit SimCommunity(SimConfig config);

  /// Create a peer (initially offline, not yet a member). Returns its id.
  gossip::PeerId add_peer(const SimPeerSpec& spec);

  /// Start every created peer as a member of an already-converged community:
  /// full directories everywhere, no join rumors, rounds scheduled with
  /// random phase. This is the "stable community" starting point of §7.2.
  void start_converged();

  /// Bring \p id online as a brand-new member that only knows \p introducer:
  /// publishes its join rumor and pulls the directory via anti-entropy.
  void join(gossip::PeerId id, gossip::PeerId introducer);

  /// Inject a Bloom filter change of \p new_keys keys at \p id (Fig 2).
  /// Returns the rumor id of the created event.
  gossip::RumorId inject_filter_change(gossip::PeerId id, std::uint32_t new_keys);

  /// Take a peer offline (silently, as peers do — §3).
  void go_offline(gossip::PeerId id);

  /// Crash a member: it goes offline and, with \p lose_directory, forgets
  /// all protocol state (directory, hot rumors, version counter) as a
  /// process crash without persistence would.
  void crash(gossip::PeerId id, bool lose_directory);

  /// Bring a crashed (or merely offline) member back. A peer that kept its
  /// directory rejoins in place; one that lost it re-enters through
  /// \p introducer (default: the lowest-id online member), re-learning the
  /// community and recovering its own version via gossip. Returns the rumor
  /// id of the restart event.
  gossip::RumorId restart(gossip::PeerId id, gossip::PeerId introducer = gossip::kInvalidPeer);

  /// Bring a previously joined peer back online; with \p new_keys > 0 the
  /// rejoin also shares that many new keys (Fig 4b's "Join" events).
  /// Returns the rumor id of the rejoin event.
  gossip::RumorId rejoin(gossip::PeerId id, std::uint32_t new_keys);

  bool is_online(gossip::PeerId id) const { return peers_[id].online; }
  double bandwidth(gossip::PeerId id) const { return peers_[id].bandwidth; }
  std::size_t num_peers() const { return peers_.size(); }
  std::size_t online_count() const;

  /// All currently online member ids.
  std::vector<gossip::PeerId> online_peers() const;

  /// True when every online member's directory contains every member at the
  /// newest version (the consistency condition of Fig 3).
  bool directories_consistent() const;

  /// Register a convergence tracker; every subsequent tracked event reports
  /// to it. Returns its index for later retrieval.
  std::size_t add_tracker(std::string name, ConvergenceTracker::PeerPredicate counts,
                          ConvergenceTracker::PeerPredicate origin_filter = nullptr);

  /// Gate event tracking: with tracking off, new events are not registered
  /// with the trackers (existing events keep updating). Used to freeze the
  /// measurement window while the simulation drains.
  void set_tracking(bool enabled) { tracking_enabled_ = enabled; }
  ConvergenceTracker& tracker(std::size_t idx) { return *trackers_[idx]; }
  std::size_t tracker_count() const { return trackers_.size(); }

  EventQueue& queue() { return queue_; }
  /// Traffic statistics. Each access refreshes the embedded GossipStats with
  /// the cumulative aggregate over every peer's Protocol, so callers always
  /// see current dissemination counters (relative to the last reset()).
  NetworkStats& stats();
  /// The effective fault injector (config.faults plus the message_drop_prob
  /// shim). Its plan and counters are introspectable for tests and benches.
  FaultInjector& faults() { return faults_; }
  gossip::Protocol& protocol(gossip::PeerId id) { return *peers_[id].protocol; }
  const SimConfig& config() const { return config_; }

  /// Run the simulation until \p limit.
  void run_until(TimePoint limit) { queue_.run_until(limit); }

  /// Gossip rounds executed so far (across all peers); the numerator of the
  /// gossip_throughput bench's rounds/sec.
  std::uint64_t rounds_executed() const { return rounds_executed_; }

  // ------------------------------------------------------------------
  // Query-time RPCs (failure-aware retrieval, docs/SEARCH.md)
  // ------------------------------------------------------------------

  /// Decide the fate of one query RPC from \p from to \p to at the current
  /// simulation time: both the request and the response leg pass through the
  /// fault injector, so a query sees exactly the loss/partition behaviour
  /// that gossip sees. Returns a result with no documents — kOk means the
  /// caller may evaluate the query at the target; any fault latency is
  /// reported in the result. Counts sent/failed RPCs into stats().
  search::PeerSearchResult query_rpc(gossip::PeerId from, gossip::PeerId to);

  /// Local query evaluation: score the weighted terms against a peer's data.
  using LocalEvalFn = std::function<std::vector<search::ScoredDoc>(
      gossip::PeerId, const std::unordered_map<std::string, double>&)>;

  /// Wrap \p local_eval into a PeerSearchFn whose contacts are routed
  /// through query_rpc (self-contacts bypass the network). Pass the result
  /// to search::tfipf_search, then report the search back via note_search.
  search::PeerSearchFn search_contact(gossip::PeerId searcher, LocalEvalFn local_eval);

  /// Mirror a finished search's retry/hedge totals into stats().
  void note_search(const search::DistributedSearchResult& result);

  /// Per-searcher query hot-path cache, created on first use. Simulated
  /// rumors carry no filter bits (sizes are modeled), so the harness primes
  /// filters itself (e.g. via RetrievalSetup::prime_cache with peer ids
  /// matching sim ids); the community honours the invalidation contract by
  /// dropping a peer from every searcher cache when a filter-change rumor
  /// for it is applied at that searcher, and on expiry.
  search::CandidateCache& searcher_cache(gossip::PeerId searcher);

 private:
  struct SimPeer {
    std::unique_ptr<gossip::Protocol> protocol;
    double bandwidth = 0.0;
    std::uint32_t key_count = 0;
    bool online = false;
    bool member = false;           ///< has ever joined
    std::uint64_t round_epoch = 0;  ///< invalidates stale round events
    TimePoint next_round_at = 0;
  };

  void schedule_round(gossip::PeerId id, Duration delay);
  void schedule_crash_events();
  void run_round(gossip::PeerId id, std::uint64_t epoch);
  void run_tick(TimePoint at);
  void maybe_pull_round_forward(gossip::PeerId id);
  void dispatch(gossip::PeerId from, const gossip::Protocol::Outgoing& out);
  void deliver(gossip::PeerId from, gossip::PeerId to, const gossip::Message& msg);
  void track_event(const gossip::RumorId& id, gossip::PeerId origin);
  void on_peer_applied(gossip::PeerId peer, const gossip::RumorPayload& payload, TimePoint now);
  gossip::PeerRecord record_of(gossip::PeerId id) const;

  SimConfig config_;
  EventQueue queue_;
  Rng rng_;
  FaultInjector faults_;
  std::vector<SimPeer> peers_;
  std::unique_ptr<LinkModel> links_;
  std::unique_ptr<NetworkStats> stats_;
  std::vector<std::unique_ptr<ConvergenceTracker>> trackers_;
  std::unordered_map<gossip::PeerId, std::unique_ptr<search::CandidateCache>> searcher_caches_;
  bool started_ = false;
  bool tracking_enabled_ = true;
  std::uint64_t rounds_executed_ = 0;

  // Parallel stepping state (active only with config.parallel_round_tick > 0):
  // rounds batched per quantized tick, one queue event per occupied tick.
  std::unordered_map<TimePoint, std::vector<std::pair<gossip::PeerId, std::uint64_t>>>
      pending_rounds_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace planetp::sim
