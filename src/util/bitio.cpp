#include "util/bitio.hpp"

#include <stdexcept>

namespace planetp {

void BitWriter::write_bits(std::uint64_t value, unsigned nbits) {
  for (unsigned i = 0; i < nbits; ++i) {
    const std::size_t byte = bit_count_ / 8;
    const unsigned offset = static_cast<unsigned>(bit_count_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1u) bytes_[byte] |= static_cast<std::uint8_t>(1u << offset);
    ++bit_count_;
  }
}

void BitWriter::write_unary(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) write_bit(true);
  write_bit(false);
}

std::vector<std::uint8_t> BitWriter::take() {
  bit_count_ = 0;
  return std::move(bytes_);
}

std::uint64_t BitReader::read_bits(unsigned nbits) {
  if (pos_ + nbits > size_bits_) throw std::out_of_range("BitReader: past end");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = static_cast<unsigned>(pos_ % 8);
    if ((data_[byte] >> offset) & 1u) v |= std::uint64_t{1} << i;
    ++pos_;
  }
  return v;
}

std::uint64_t BitReader::read_unary() {
  std::uint64_t n = 0;
  while (read_bit()) ++n;
  return n;
}

}  // namespace planetp
