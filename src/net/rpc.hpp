#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/byte_buffer.hpp"

/// \file rpc.hpp
/// Request/response messages carried on the RPC channel of the live
/// runtime: remote ranked-query evaluation (eq. 2 with shipped weights),
/// exhaustive term search, and document fetch.

namespace planetp::net {

struct WeightedTerm {
  std::string term;
  double weight = 0.0;
};

struct RemoteDoc {
  std::uint32_t peer = 0;
  std::uint32_t local = 0;
  double score = 0.0;
  std::string title;
};

struct RankedRequest {
  std::uint64_t request_id = 0;
  std::vector<WeightedTerm> weights;
};

struct RankedResponse {
  std::uint64_t request_id = 0;
  std::vector<RemoteDoc> docs;
};

struct ExhaustiveRequest {
  std::uint64_t request_id = 0;
  std::string query;
};

struct ExhaustiveResponse {
  std::uint64_t request_id = 0;
  std::vector<RemoteDoc> docs;
};

struct FetchRequest {
  std::uint64_t request_id = 0;
  std::uint32_t peer = 0;
  std::uint32_t local = 0;
};

struct FetchResponse {
  std::uint64_t request_id = 0;
  bool found = false;
  std::string title;
  std::string xml;
};

/// One brokered snippet on the wire (§4's information brokerage).
struct WireSnippet {
  std::uint32_t publisher = 0;
  std::uint64_t snippet_id = 0;
  std::string xml;
  std::vector<std::string> keys;
  std::int64_t ttl_us = 0;  ///< remaining lifetime (senders ship TTLs, not
                            ///< absolute times — peer clocks are unrelated)
};

/// Store a snippet at the receiving broker under its keys (fire-and-forget;
/// the brokerage is best-effort by design). request_id is 0.
struct StoreSnippetRequest {
  std::uint64_t request_id = 0;
  WireSnippet snippet;
};

struct LookupSnippetRequest {
  std::uint64_t request_id = 0;
  std::string key;
};

struct LookupSnippetResponse {
  std::uint64_t request_id = 0;
  std::vector<WireSnippet> snippets;
};

/// Why a peer could not serve a request (docs/SEARCH.md).
enum class RpcError : std::uint8_t {
  kInternal = 0,     ///< handler failed (decode error, bad state)
  kNotResponsible = 1,  ///< receiver is not a replica for the requested key
};

/// Explicit failure reply. A peer that cannot serve a request answers with
/// this instead of silence, letting the caller fail over immediately rather
/// than burn its full RPC timeout.
struct ErrorResponse {
  std::uint64_t request_id = 0;
  RpcError error = RpcError::kInternal;
};

using RpcMessage =
    std::variant<RankedRequest, RankedResponse, ExhaustiveRequest, ExhaustiveResponse,
                 FetchRequest, FetchResponse, StoreSnippetRequest, LookupSnippetRequest,
                 LookupSnippetResponse, ErrorResponse>;

std::vector<std::uint8_t> encode_rpc(const RpcMessage& msg);
RpcMessage decode_rpc(std::span<const std::uint8_t> data);

/// The request id of any RPC message (responses echo their request's id).
std::uint64_t rpc_request_id(const RpcMessage& msg);

}  // namespace planetp::net
