#include "util/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace planetp {

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void BitVector::clear() { std::fill(words_.begin(), words_.end(), Word{0}); }

void BitVector::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize((nbits + kWordBits - 1) / kWordBits, 0);
  // Clear any bits beyond the new logical size in the last word so that
  // equality and popcount stay exact.
  const std::size_t tail = nbits % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << tail) - 1;
  }
}

namespace {
void check_same_size(const BitVector& a, const BitVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("BitVector size mismatch");
  }
}
}  // namespace

BitVector& BitVector::operator|=(const BitVector& o) {
  check_same_size(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& o) {
  check_same_size(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& o) {
  check_same_size(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool BitVector::contains_all(const BitVector& o) const {
  check_same_size(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & o.words_[i]) != o.words_[i]) return false;
  }
  return true;
}

}  // namespace planetp
