#include "index/xml.hpp"

#include <gtest/gtest.h>

namespace planetp::xml {
namespace {

TEST(Xml, ParsesSimpleDocument) {
  const auto root = parse("<doc>hello world</doc>");
  EXPECT_EQ(root->tag, "doc");
  EXPECT_EQ(root->text, "hello world");
  EXPECT_TRUE(root->children.empty());
}

TEST(Xml, ParsesAttributes) {
  const auto root = parse(R"(<doc title="My Title" lang='en'>body</doc>)");
  EXPECT_EQ(root->attr("title"), "My Title");
  EXPECT_EQ(root->attr("lang"), "en");
  EXPECT_EQ(root->attr("missing"), "");
}

TEST(Xml, ParsesNestedElements) {
  const auto root = parse("<a><b>one</b><c><d>two</d></c></a>");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->tag, "b");
  EXPECT_EQ(root->children[0]->text, "one");
  EXPECT_EQ(root->children[1]->child("d")->text, "two");
  EXPECT_EQ(root->child("missing"), nullptr);
}

TEST(Xml, AllTextConcatenatesSubtree) {
  const auto root = parse("<a>x<b>y</b><c>z</c></a>");
  EXPECT_EQ(root->all_text(), "x y z");
}

TEST(Xml, SelfClosingTags) {
  const auto root = parse(R"(<doc><link href="file.ps" type="postscript"/>text</doc>)");
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->tag, "link");
  EXPECT_EQ(root->children[0]->attr("href"), "file.ps");
  EXPECT_EQ(root->text, "text");
}

TEST(Xml, DecodesEntities) {
  const auto root = parse("<d>&lt;tag&gt; &amp; &quot;quotes&quot; &apos;</d>");
  EXPECT_EQ(root->text, "<tag> & \"quotes\" '");
}

TEST(Xml, DecodesNumericReferences) {
  const auto root = parse("<d>&#65;&#x42;</d>");
  EXPECT_EQ(root->text, "AB");
}

TEST(Xml, UnknownEntityPassesThrough) {
  const auto root = parse("<d>&nbsp;</d>");
  EXPECT_EQ(root->text, "&nbsp;");
}

TEST(Xml, SkipsCommentsAndProlog) {
  const auto root = parse(
      "<?xml version=\"1.0\"?><!-- header --><doc><!-- inner -->ok</doc><!-- post -->");
  EXPECT_EQ(root->tag, "doc");
  EXPECT_EQ(root->text, "ok");
}

TEST(Xml, ParsesCdata) {
  const auto root = parse("<d><![CDATA[<not>parsed &amp;]]></d>");
  EXPECT_EQ(root->text, "<not>parsed &amp;");
}

TEST(Xml, AttributeEntities) {
  const auto root = parse(R"(<d name="a &amp; b"/>)");
  EXPECT_EQ(root->attr("name"), "a & b");
}

TEST(Xml, MismatchedTagsThrow) {
  EXPECT_THROW(parse("<a><b></a></b>"), std::runtime_error);
}

TEST(Xml, UnterminatedElementThrows) {
  EXPECT_THROW(parse("<a>unclosed"), std::runtime_error);
}

TEST(Xml, TrailingContentThrows) {
  EXPECT_THROW(parse("<a/>extra"), std::runtime_error);
}

TEST(Xml, UnquotedAttributeThrows) {
  EXPECT_THROW(parse("<a x=1/>"), std::runtime_error);
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(escape("<a & \"b\"'>"), "&lt;a &amp; &quot;b&quot;&apos;&gt;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, SerializeParseRoundtrip) {
  const auto root = parse(R"(<doc title="T &amp; U"><sec>alpha</sec><sec>beta</sec></doc>)");
  const std::string text = serialize(*root);
  const auto back = parse(text);
  EXPECT_EQ(back->tag, "doc");
  EXPECT_EQ(back->attr("title"), "T & U");
  ASSERT_EQ(back->children.size(), 2u);
  EXPECT_EQ(back->children[0]->text, "alpha");
  EXPECT_EQ(back->children[1]->text, "beta");
}

TEST(Xml, WhitespaceBetweenChildren) {
  const auto root = parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  EXPECT_EQ(root->children.size(), 2u);
}

}  // namespace
}  // namespace planetp::xml
