#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

/// \file distributions.hpp
/// Samplers for the stochastic processes the PlanetP evaluation relies on:
/// Zipf (term popularity), Weibull (documents per peer), Poisson processes
/// (peer arrival / online-offline churn) and exponential inter-arrivals.

namespace planetp {

/// Zipf(s, n) sampler over ranks {1..n} with P(rank k) proportional to
/// 1/k^s. Uses the rejection-inversion method of Hormann & Derflinger, which
/// is O(1) per sample and exact, so it stays fast for vocabulary-sized n.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::size_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double sval_;
};

/// Exponential inter-arrival sampler with mean \p mean (a Poisson process).
class ExponentialSampler {
 public:
  explicit ExponentialSampler(double mean) : mean_(mean) {}

  double sample(Rng& rng) const;

  /// Sample an inter-arrival duration given a mean duration.
  static Duration interval(Rng& rng, Duration mean);

 private:
  double mean_;
};

/// Weibull(shape k, scale lambda) sampler via inversion.
class WeibullSampler {
 public:
  WeibullSampler(double shape, double scale) : shape_(shape), scale_(scale) {}

  double sample(Rng& rng) const;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Draw a Poisson(lambda)-distributed count (Knuth for small lambda, normal
/// approximation for large lambda).
std::uint64_t poisson_sample(Rng& rng, double lambda);

/// Partition \p total items across \p bins proportionally to Weibull(shape,
/// scale) weights drawn per bin; every bin receives at least min_per_bin when
/// total allows. This reproduces the paper's Weibull document placement.
std::vector<std::size_t> weibull_partition(Rng& rng, std::size_t total, std::size_t bins,
                                           double shape, double scale,
                                           std::size_t min_per_bin = 0);

}  // namespace planetp
