#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "index/epoch_index.hpp"
#include "index/inverted_index.hpp"

/// \file ranker.hpp
/// Document scoring (eq. 2). The same accumulation serves the centralized
/// TFxIDF baseline (term weights = IDF over the global index) and PlanetP's
/// local evaluation of a remote query (term weights = IPF shipped by the
/// searcher).
///
/// Scoring follows Witten, Moffat & Bell's accumulator-array organization:
/// postings carry dense document slots, so per-query work is additions into
/// a flat double array (no string- or id-keyed hash map), and the top-k path
/// selects results with a bounded min-heap instead of sorting every matched
/// document. The heap's tie-break (equal scores -> ascending DocumentId) is
/// pinned to be byte-identical to the full-sort path.

namespace planetp::search {

struct ScoredDoc {
  index::DocumentId doc;
  double score = 0.0;
};

/// Strict ranking order: descending score, ties by ascending DocumentId.
inline bool ranks_before(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Score all documents of \p idx against the weighted query terms:
///   score(D) = sum_t w_{D,t} * weight_t / sqrt(|D|)
/// Documents matching no term are omitted. Results are sorted by descending
/// score (ties broken by DocumentId for determinism).
std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights);

/// Score all live documents of an immutable epoch snapshot — the lock-free
/// concurrent-reader path (DataStore::snapshot()). Byte-identical to
/// score_documents over a sequential store holding the same documents: both
/// accumulate score_contribution in lexicographic term order and tie-break
/// with ranks_before.
std::vector<ScoredDoc> score_snapshot(
    const index::EpochSnapshot& snap,
    const std::unordered_map<std::string, double>& term_weights);

/// The centralized TFxIDF baseline of §7.3: assumes full knowledge of the
/// community's merged index, scores with IDF weights and returns the top-k.
class TfIdfRanker {
 public:
  explicit TfIdfRanker(const index::InvertedIndex& global_index)
      : index_(&global_index) {}

  /// IDF weights for the query terms over the global collection.
  std::unordered_map<std::string, double> idf_weights(
      const std::vector<std::string>& terms) const;

  /// Top-k documents by eq. 2. Uses the dense accumulator plus a bounded
  /// min-heap; the result is identical to full scoring + truncate_top_k.
  std::vector<ScoredDoc> top_k(const std::vector<std::string>& terms, std::size_t k) const;

 private:
  const index::InvertedIndex* index_;
};

/// TFxIDF ranking over an immutable epoch snapshot: the concurrent-reader
/// analogue of TfIdfRanker. IDF inputs come from the snapshot's exact live
/// statistics, so results are byte-identical (scores, documents, tie-breaks)
/// to TfIdfRanker over a sequential store with the same documents.
class SnapshotRanker {
 public:
  explicit SnapshotRanker(const index::EpochSnapshot& snap) : snap_(&snap) {}

  /// IDF weights for the query terms over the snapshot's live collection.
  std::unordered_map<std::string, double> idf_weights(
      const std::vector<std::string>& terms) const;

  /// Top-k documents by eq. 2; bounded min-heap, identical result to full
  /// scoring + truncate_top_k.
  std::vector<ScoredDoc> top_k(const std::vector<std::string>& terms, std::size_t k) const;

 private:
  const index::EpochSnapshot* snap_;
};

/// Keep the top-k of a scored list (already sorted descending).
void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k);

}  // namespace planetp::search
