#include <gtest/gtest.h>

#include "sim/community.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace planetp::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] { ++fired; });
  q.schedule(100, [&] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(10, chain);
  };
  q.schedule(10, chain);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue q;
  q.schedule(100, [&] {
    q.schedule(-50, [] {});
  });
  q.run();
  EXPECT_EQ(q.now(), 100);
}

TEST(LinkModel, TransferTimeMatchesBandwidth) {
  NetworkParams params;
  params.base_latency = 0;
  LinkModel links({1'000'000.0, 1'000'000.0}, params);  // 1 Mb/s each
  // 12500 bytes = 100,000 bits -> 0.1 s on each of the two links.
  const TimePoint arrival = links.transfer(0, 1, 12500, 0);
  EXPECT_NEAR(to_seconds(arrival), 0.2, 0.001);
}

TEST(LinkModel, SlowReceiverDominates) {
  NetworkParams params;
  params.base_latency = 0;
  LinkModel links({45'000'000.0, 56'000.0}, params);  // LAN -> modem
  const TimePoint arrival = links.transfer(0, 1, 7000, 0);  // 56,000 bits
  EXPECT_NEAR(to_seconds(arrival), 1.0, 0.01);  // bound by the modem
}

TEST(LinkModel, BackToBackTransfersQueue) {
  NetworkParams params;
  params.base_latency = 0;
  LinkModel links({1'000'000.0, 1'000'000.0, 1'000'000.0}, params);
  const TimePoint first = links.transfer(0, 1, 12500, 0);
  // Second message from the same sender must wait for the uplink.
  const TimePoint second = links.transfer(0, 2, 12500, 0);
  EXPECT_GT(second, first);
}

TEST(LinkModel, MixSamplerMatchesSaroiuFractions) {
  Rng rng(42);
  std::size_t slow = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!is_fast_link(sample_mix_bandwidth(rng))) ++slow;
  }
  // 9% of the mixture is modem-speed (below 512 kb/s).
  EXPECT_NEAR(static_cast<double>(slow) / n, 0.09, 0.01);
}

TEST(NetworkStats, TracksBytesAndClasses) {
  NetworkStats stats(4);
  stats.record(0, 100, 0, TrafficKind::kRumor);
  stats.record(1, 50, kSecond, TrafficKind::kAntiEntropy);
  EXPECT_EQ(stats.total_bytes(), 150u);
  EXPECT_EQ(stats.rumor_bytes(), 100u);
  EXPECT_EQ(stats.anti_entropy_bytes(), 50u);
  EXPECT_EQ(stats.total_messages(), 2u);
  EXPECT_EQ(stats.per_peer_bytes()[0], 100u);
  EXPECT_EQ(stats.per_peer_bytes()[1], 50u);
}

TEST(NetworkStats, TimeSeriesBuckets) {
  NetworkStats stats(1, 10 * kSecond);
  stats.record(0, 10, 0);
  stats.record(0, 20, 5 * kSecond);
  stats.record(0, 30, 15 * kSecond);
  const auto series = stats.bytes_over_time();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].second, 30u);
  EXPECT_EQ(series[1].second, 30u);
}

TEST(SimCommunity, PropagatesFilterChangeToEveryone) {
  SimConfig cfg;
  cfg.seed = 5;
  SimCommunity community(cfg);
  for (int i = 0; i < 30; ++i) community.add_peer({link_speed::kLan45M, 1000});
  const auto tracker_idx = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  community.run_until(2 * kMinute);

  community.inject_filter_change(0, 500);
  community.run_until(30 * kMinute);
  EXPECT_EQ(community.tracker(tracker_idx).converged_events(), 1u);
  EXPECT_EQ(community.tracker(tracker_idx).pending_events(), 0u);

  // Every peer's directory holds the new version.
  for (gossip::PeerId id = 0; id < 30; ++id) {
    const auto* r = community.protocol(id).directory().find(0);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->version, 2u) << id;
    EXPECT_EQ(r->key_count, 1500u) << id;
  }
}

TEST(SimCommunity, DeterministicForSeed) {
  auto run = [] {
    SimConfig cfg;
    cfg.seed = 99;
    SimCommunity community(cfg);
    for (int i = 0; i < 20; ++i) community.add_peer({link_speed::kDsl512k, 1000});
    const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
    community.start_converged();
    community.run_until(kMinute);
    community.inject_filter_change(3, 100);
    community.run_until(20 * kMinute);
    return std::make_pair(community.tracker(t).durations().max(),
                          community.stats().total_bytes());
  };
  EXPECT_EQ(run(), run());
}

/// Full observable signature of a parallel-stepping run: convergence samples,
/// traffic, rounds, and every peer's final summary snapshot.
struct ParallelRunSignature {
  std::vector<double> durations;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t rounds = 0;
  std::vector<std::vector<gossip::PeerSummary>> directories;
  bool consistent = false;

  bool operator==(const ParallelRunSignature&) const = default;
};

ParallelRunSignature parallel_run(std::size_t threads, Duration tick) {
  SimConfig cfg;
  cfg.seed = 99;
  cfg.parallel_round_tick = tick;
  cfg.parallel_threads = threads;
  SimCommunity community(cfg);
  for (int i = 0; i < 40; ++i) community.add_peer({link_speed::kDsl512k, 1000});
  const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  community.run_until(kMinute);
  community.inject_filter_change(3, 100);
  community.inject_filter_change(17, 200);
  community.run_until(10 * kMinute);
  community.inject_filter_change(31, 50);
  community.run_until(40 * kMinute);

  ParallelRunSignature sig;
  sig.durations = community.tracker(t).durations().samples();
  sig.total_bytes = community.stats().total_bytes();
  sig.total_messages = community.stats().total_messages();
  sig.rounds = community.rounds_executed();
  for (gossip::PeerId id = 0; id < 40; ++id) {
    sig.directories.push_back(*community.protocol(id).directory().summary());
  }
  sig.consistent = community.directories_consistent();
  return sig;
}

TEST(SimCommunity, ParallelSteppingIdenticalAcrossThreadCounts) {
  // The determinism contract of SimConfig::parallel_round_tick: for a fixed
  // seed and tick, every observable — convergence samples, bytes, messages,
  // rounds, final directories — is identical whether same-tick rounds step
  // on 1 worker or many. (This test is also the TSan target for the
  // concurrent on_round path; see scripts/check.sh.)
  const ParallelRunSignature one = parallel_run(1, kSecond);
  const ParallelRunSignature four = parallel_run(4, kSecond);
  EXPECT_EQ(one, four);
  EXPECT_TRUE(one.consistent);
  EXPECT_EQ(one.durations.size(), 3u) << "all injected events must converge";
  EXPECT_GT(one.rounds, 0u);
}

TEST(SimCommunity, ParallelSteppingConvergesLikeSequential) {
  // Tick quantization may shift individual round times (by < tick), so exact
  // traces differ from the sequential engine — but the community still
  // converges, and rounds execute at the same overall rate.
  const ParallelRunSignature par = parallel_run(2, kSecond);
  EXPECT_TRUE(par.consistent);
  ASSERT_EQ(par.durations.size(), 3u);
  for (double d : par.durations) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 30.0 * 60.0) << "convergence within the run window";
  }
}

TEST(SimCommunity, JoinerDownloadsDirectory) {
  SimConfig cfg;
  cfg.seed = 6;
  SimCommunity community(cfg);
  for (int i = 0; i < 10; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();
  community.run_until(kMinute);

  const auto newbie = community.add_peer({link_speed::kLan45M, 2000});
  community.join(newbie, 0);
  community.run_until(30 * kMinute);

  EXPECT_EQ(community.protocol(newbie).directory().size(), 11u);
  // And everyone learned about the newbie.
  for (gossip::PeerId id = 0; id < 10; ++id) {
    EXPECT_NE(community.protocol(id).directory().find(newbie), nullptr) << id;
  }
  EXPECT_TRUE(community.directories_consistent());
}

TEST(SimCommunity, OfflinePeerMissesRumorsUntilRejoin) {
  SimConfig cfg;
  cfg.seed = 7;
  SimCommunity community(cfg);
  for (int i = 0; i < 10; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();
  community.run_until(kMinute);

  community.go_offline(9);
  community.inject_filter_change(0, 100);
  community.run_until(20 * kMinute);
  EXPECT_EQ(community.protocol(9).directory().find(0)->version, 1u);

  community.rejoin(9, 0);
  community.run_until(60 * kMinute);
  EXPECT_EQ(community.protocol(9).directory().find(0)->version, 2u);
}

TEST(SimCommunity, MessageLossStillConverges) {
  SimConfig cfg;
  cfg.seed = 8;
  cfg.message_drop_prob = 0.10;  // failure injection
  SimCommunity community(cfg);
  for (int i = 0; i < 20; ++i) community.add_peer({link_speed::kLan45M, 1000});
  const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();
  community.run_until(kMinute);
  community.inject_filter_change(0, 100);
  community.run_until(2 * kHour);
  EXPECT_EQ(community.tracker(t).pending_events(), 0u);
}

TEST(ConvergenceTracker, OfflinePeersDoNotGate) {
  ConvergenceTracker tracker("t", [](gossip::PeerId) { return true; });
  tracker.track({0, 1}, 0, {0, 1, 2}, 0);
  tracker.learned({0, 1}, 1, 10 * kSecond);
  EXPECT_EQ(tracker.pending_events(), 1u);
  tracker.peer_offline(2, 20 * kSecond);
  EXPECT_EQ(tracker.pending_events(), 0u);
  EXPECT_EQ(tracker.converged_events(), 1u);
  EXPECT_NEAR(tracker.durations().max(), 20.0, 1e-9);
}

TEST(ConvergenceTracker, DepartedPeersAreExcusedPermanently) {
  // Peers offline mid-event are excused and do not gate again on rejoin:
  // "known to everyone" is judged against the community as of the event.
  ConvergenceTracker tracker("t", [](gossip::PeerId) { return true; });
  tracker.track({0, 1}, 0, {0, 1, 2}, 0);
  tracker.peer_offline(2, 0);
  EXPECT_EQ(tracker.pending_events(), 1u);  // peer 1 still must learn
  tracker.learned({0, 1}, 1, kSecond);
  EXPECT_EQ(tracker.converged_events(), 1u);
  EXPECT_NEAR(tracker.durations().max(), 1.0, 1e-9);
}

TEST(ConvergenceTracker, OriginFilterSkipsEvents) {
  ConvergenceTracker tracker("fast-only", [](gossip::PeerId) { return true; },
                             [](gossip::PeerId origin) { return origin == 0; });
  tracker.track({0, 1}, 0, {0, 1}, 0);
  tracker.track({5, 1}, 0, {0, 1}, 5);  // filtered out
  EXPECT_EQ(tracker.tracked_events(), 1u);
}

}  // namespace
}  // namespace planetp::sim
