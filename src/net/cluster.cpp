#include "net/cluster.hpp"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace planetp::net {

namespace {

TimePoint steady_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveCluster::LiveCluster(std::size_t n, LiveNodeConfig config) : config_(std::move(config)) {
  slots_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].node = std::make_unique<LiveNode>(static_cast<gossip::PeerId>(i + 1), config_);
    slots_[i].port = port_of(slots_[i].node->address());
  }
}

LiveCluster::~LiveCluster() { stop(); }

std::uint16_t LiveCluster::port_of(const std::string& address) {
  const auto colon = address.rfind(':');
  return static_cast<std::uint16_t>(std::stoul(address.substr(colon + 1)));
}

LiveNode& LiveCluster::node(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_[index].node == nullptr) throw std::runtime_error("LiveCluster: node is down");
  return *slots_[index].node;
}

bool LiveCluster::is_up(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[index].node != nullptr;
}

std::size_t LiveCluster::up_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Slot& slot : slots_) n += slot.node != nullptr;
  return n;
}

void LiveCluster::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  initial_records_.clear();
  initial_records_.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    initial_records_.push_back(slot.node->bootstrap_record());
  }
  for (Slot& slot : slots_) {
    slot.node->bootstrap_converged(initial_records_);
    slot.node->start();
  }
}

void LiveCluster::retire_locked(Slot& slot) {
  retired_ += slot.node->net_stats();
  retired_rounds_ += slot.node->gossip_rounds();
  const auto jitter = slot.node->round_jitter_samples();
  retired_jitter_.insert(retired_jitter_.end(), jitter.begin(), jitter.end());
}

void LiveCluster::crash(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[index];
  if (slot.node == nullptr) return;
  slot.crash_version = 1;
  const auto id = static_cast<gossip::PeerId>(index + 1);
  for (const auto& info : slot.node->directory_snapshot()) {
    if (info.id == id) slot.crash_version = info.version;
  }
  retire_locked(slot);
  slot.node.reset();  // reactor stops, every fd closes — a real process death
}

void LiveCluster::restart(std::size_t index, bool lose_directory) {
  std::unique_lock<std::mutex> lock(mu_);
  Slot& slot = slots_[index];
  if (slot.node != nullptr) return;
  const auto id = static_cast<gossip::PeerId>(index + 1);
  slot.node = std::make_unique<LiveNode>(id, config_, slot.port);

  if (!lose_directory) {
    // Restart keeping the directory: the initial membership plus our own
    // pre-crash version, then a rejoin rumor bumping past it so everyone
    // learns we are back (and our catch-up pull syncs what we missed).
    std::vector<gossip::PeerRecord> records = initial_records_;
    for (gossip::PeerRecord& r : records) {
      if (r.id == id) r.version = slot.crash_version;
    }
    slot.node->bootstrap_converged(std::move(records));
    slot.node->start();
    slot.node->announce_rejoin();
    return;
  }

  // Cold rejoin: empty directory, introduce through the lowest live node.
  gossip::PeerId introducer = gossip::kInvalidPeer;
  std::string introducer_address;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i != index && slots_[i].node != nullptr) {
      introducer = static_cast<gossip::PeerId>(i + 1);
      introducer_address = slots_[i].node->address();
      break;
    }
  }
  slot.node->start();
  lock.unlock();
  if (introducer != gossip::kInvalidPeer) {
    slots_[index].node->join(introducer, introducer_address);
  }
}

void LiveCluster::run_churn(std::vector<sim::CrashEvent> events) {
  join_churn();
  struct Action {
    TimePoint at;
    std::size_t index;
    bool is_restart;
    bool lose_directory;
  };
  std::vector<Action> actions;
  for (const sim::CrashEvent& ev : events) {
    if (ev.peer == gossip::kInvalidPeer || ev.peer == 0) continue;
    const std::size_t index = static_cast<std::size_t>(ev.peer) - 1;
    if (index >= slots_.size()) continue;
    actions.push_back(Action{ev.at, index, false, false});
    if (ev.restart_at > ev.at) {
      actions.push_back(Action{ev.restart_at, index, true, ev.lose_directory});
    }
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const Action& a, const Action& b) { return a.at < b.at; });

  churn_ = std::thread([this, actions = std::move(actions)] {
    const TimePoint origin = steady_micros();
    for (const Action& action : actions) {
      const TimePoint due = origin + action.at;
      for (;;) {
        const TimePoint now = steady_micros();
        if (now >= due) break;
        std::this_thread::sleep_for(std::chrono::microseconds(due - now));
      }
      if (action.is_restart) {
        restart(action.index, action.lose_directory);
      } else {
        crash(action.index);
      }
    }
  });
}

void LiveCluster::join_churn() {
  if (churn_.joinable()) churn_.join();
}

void LiveCluster::stop() {
  join_churn();
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.node != nullptr) {
      retire_locked(slot);
      slot.node.reset();
    }
  }
  started_ = false;
}

NetStats LiveCluster::total_net_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  NetStats total = retired_;
  for (const Slot& slot : slots_) {
    if (slot.node != nullptr) total += slot.node->net_stats();
  }
  return total;
}

std::uint64_t LiveCluster::total_rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = retired_rounds_;
  for (const Slot& slot : slots_) {
    if (slot.node != nullptr) total += slot.node->gossip_rounds();
  }
  return total;
}

std::vector<Duration> LiveCluster::merged_round_jitter() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Duration> merged = retired_jitter_;
  for (const Slot& slot : slots_) {
    if (slot.node == nullptr) continue;
    const auto samples = slot.node->round_jitter_samples();
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  return merged;
}

bool LiveCluster::wait_for_version_all(gossip::PeerId peer, std::uint64_t version,
                                       Duration timeout) {
  const TimePoint deadline = steady_micros() + timeout;
  for (;;) {
    bool all = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Slot& slot : slots_) {
        if (slot.node == nullptr) continue;
        bool seen = false;
        for (const auto& info : slot.node->directory_snapshot()) {
          if (info.id == peer && info.version >= version) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          all = false;
          break;
        }
      }
    }
    if (all) return true;
    if (steady_micros() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::size_t LiveCluster::open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  return count - 1;  // exclude the directory stream's own fd
}

}  // namespace planetp::net
