#include "index/persistence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <unordered_map>

#include "index/compressed_postings.hpp"

namespace planetp::index {
namespace {

bloom::BloomParams small_bloom() { return bloom::BloomParams{65536, 2}; }

DataStore make_store() {
  DataStore store(7, small_bloom());
  store.publish_text("First", "gossip protocols spread rumors epidemically");
  store.publish_text("Second", "bloom filters summarize sets compactly");
  store.publish_text("Third", "consistent hashing balances load");
  return store;
}

TEST(Persistence, RoundtripPreservesDocuments) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());

  EXPECT_EQ(restored.peer_id(), original.peer_id());
  EXPECT_EQ(restored.num_documents(), 3u);
  ASSERT_EQ(restored.documents(), original.documents());
  for (const DocumentId& id : original.documents()) {
    const Document* a = original.document(id);
    const Document* b = restored.document(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->title, b->title);
    EXPECT_EQ(a->xml_source, b->xml_source);
  }
}

TEST(Persistence, RestoredIndexAnswersQueries) {
  const auto bytes = serialize_data_store(make_store());
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.search_all_terms("gossip rumors").size(), 1u);
  EXPECT_EQ(restored.search_all_terms("bloom filters").size(), 1u);
  EXPECT_TRUE(restored.search_all_terms("nonexistent").empty());
}

TEST(Persistence, RestoredBloomFilterMatches) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
}

TEST(Persistence, IdGapsAreNotReused) {
  DataStore store(1, small_bloom());
  store.publish_text("keep", "alpha");
  const DocumentId doomed = store.publish_text("drop", "beta");
  store.publish_text("keep2", "gamma");
  store.unpublish(doomed);

  const auto bytes = serialize_data_store(store);
  DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.num_documents(), 2u);
  // New publishes continue after the highest ever-assigned id.
  const DocumentId fresh = restored.publish_text("new", "delta");
  EXPECT_GE(fresh.local, 3u);
}

TEST(Persistence, EmptyStoreRoundtrip) {
  DataStore empty(42, small_bloom());
  const auto bytes = serialize_data_store(empty);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.peer_id(), 42u);
  EXPECT_EQ(restored.num_documents(), 0u);
}

TEST(Persistence, CorruptMagicRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, UnsupportedVersionRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[4] = 99;  // version field
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, TruncatedSnapshotRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::exception);
}

TEST(Persistence, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "planetp_store_test.ppds").string();
  const DataStore original = make_store();
  ASSERT_TRUE(save_data_store(original, path));
  const DataStore restored = load_data_store(path, small_bloom());
  EXPECT_EQ(restored.num_documents(), original.num_documents());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
  std::remove(path.c_str());
}

TEST(Persistence, LoadMissingFileThrows) {
  EXPECT_THROW(load_data_store("/nonexistent/path/store.ppds", small_bloom()),
               std::runtime_error);
}

TEST(Persistence, TermIdsAreStoreLocalAndNotSerialized) {
  // TermIds must never cross the wire or disk: a snapshot round-trip that
  // interns terms in a different order has to produce a store that is
  // string-level identical even though the ids differ. Unpublishing the
  // first document shifts the restore's intern order (its terms were
  // interned first originally but are re-encountered later — or never —
  // after restore).
  DataStore store(3, small_bloom());
  const DocumentId first = store.publish_text("first", "zebra yak xylophone");
  store.publish_text("second", "apple banana cherry");
  store.unpublish(first);
  store.publish_text("third", "zebra walrus");

  const auto bytes = serialize_data_store(store);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());

  // String-level equality: same term set, same statistics, same postings,
  // same Bloom filter.
  std::vector<std::string> orig_terms, rest_terms;
  store.index().for_each_term([&](const std::string& t) { orig_terms.push_back(t); });
  restored.index().for_each_term([&](const std::string& t) { rest_terms.push_back(t); });
  std::sort(orig_terms.begin(), orig_terms.end());
  std::sort(rest_terms.begin(), rest_terms.end());
  ASSERT_EQ(orig_terms, rest_terms);
  for (const std::string& t : orig_terms) {
    EXPECT_EQ(restored.index().collection_frequency(t), store.index().collection_frequency(t)) << t;
    EXPECT_EQ(restored.index().document_frequency(t), store.index().document_frequency(t)) << t;
    auto a = store.index().postings(t);
    auto b = restored.index().postings(t);
    const auto by_doc = [](const Posting& x, const Posting& y) { return x.doc < y.doc; };
    std::sort(a.begin(), a.end(), by_doc);
    std::sort(b.begin(), b.end(), by_doc);
    EXPECT_EQ(a, b) << t;
  }
  EXPECT_EQ(restored.bloom_filter(), store.bloom_filter());

  // ...while the ids themselves genuinely differ: "zebra" was the very first
  // term interned originally, but the restore interns "second"'s terms
  // before re-encountering it. Ids are store-local bookkeeping only.
  const TermId before = store.index().term_id("zebra");
  const TermId after = restored.index().term_id("zebra");
  ASSERT_NE(before, kInvalidTermId);
  ASSERT_NE(after, kInvalidTermId);
  EXPECT_EQ(before, 0u);
  EXPECT_NE(before, after);
}

TEST(Persistence, PublishAsRejectsDuplicates) {
  DataStore store(1, small_bloom());
  store.publish_as(5, wrap_text_as_xml("five", "content"));
  EXPECT_THROW(store.publish_as(5, wrap_text_as_xml("again", "content")),
               std::invalid_argument);
  // And the counter advanced past the explicit id.
  const DocumentId next = store.publish_text("auto", "more");
  EXPECT_EQ(next.local, 6u);
}

// ---------------------------------------------------------------------------
// Compressed-index snapshots ("PPCI"): canonical round-trip + hostile blobs
// ---------------------------------------------------------------------------

/// A corpus big enough that the hot terms span multiple skip blocks, so the
/// round-trip actually exercises block metadata (not just the trivial
/// single-block case).
CompressedIndex blocky_compressed() {
  InvertedIndex idx;
  for (std::uint32_t d = 0; d < 700; ++d) {
    std::unordered_map<std::string, std::uint32_t> freqs;
    freqs["common"] = 1 + d % 7;
    freqs["w" + std::to_string(d % 40)] = 1 + d % 3;
    if (d % 2 == 0) freqs["even"] = 2;
    idx.add_document({d % 3, d}, freqs);
  }
  return CompressedIndex::build(idx);
}

TEST(Persistence, CompressedIndexRoundtripIsIdentical) {
  const CompressedIndex original = blocky_compressed();
  const auto bytes = serialize_compressed_index(original);
  const CompressedIndex restored = deserialize_compressed_index(bytes);

  EXPECT_EQ(restored.num_documents(), original.num_documents());
  EXPECT_EQ(restored.num_terms(), original.num_terms());
  ASSERT_EQ(restored.documents(), original.documents());

  // Serialization is canonical: re-serializing the restore must reproduce
  // the input bit for bit (this is also what the deserializer's self-check
  // relies on).
  EXPECT_EQ(serialize_compressed_index(restored), bytes);

  // And the block metadata the pruned driver depends on survived exactly.
  original.for_each_term([&](std::string_view term) {
    auto a = original.postings(term);
    auto b = restored.postings(term);
    ASSERT_EQ(b.size(), a.size()) << term;
    ASSERT_EQ(b.num_blocks(), a.num_blocks()) << term;
    ASSERT_EQ(b.collection_freq(), a.collection_freq()) << term;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(b.list_max()),
              std::bit_cast<std::uint64_t>(a.list_max()))
        << term;
    for (std::uint32_t blk = 0; blk < a.num_blocks(); ++blk) {
      EXPECT_EQ(b.block_last(blk), a.block_last(blk)) << term << " block " << blk;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(b.block_max(blk)),
                std::bit_cast<std::uint64_t>(a.block_max(blk)))
          << term << " block " << blk;
    }
    for (; !a.done(); a.next(), b.next()) {
      ASSERT_FALSE(b.done()) << term;
      EXPECT_EQ(b.doc(), a.doc()) << term;
      EXPECT_EQ(b.term_freq(), a.term_freq()) << term;
    }
    EXPECT_TRUE(b.done()) << term;
  });
}

TEST(Persistence, CompressedIndexEmptyRoundtrip) {
  const CompressedIndex empty = CompressedIndex::build(InvertedIndex{});
  const auto bytes = serialize_compressed_index(empty);
  const CompressedIndex restored = deserialize_compressed_index(bytes);
  EXPECT_EQ(restored.num_documents(), 0u);
  EXPECT_EQ(restored.num_terms(), 0u);
}

TEST(Persistence, CompressedIndexCorruptBlobsRejected) {
  const auto bytes = serialize_compressed_index(blocky_compressed());

  {  // bad magic
    auto b = bytes;
    b[0] = 'Q';
    EXPECT_THROW(deserialize_compressed_index(b), std::runtime_error);
  }
  {  // unsupported version
    auto b = bytes;
    b[4] = 0x7f;
    EXPECT_THROW(deserialize_compressed_index(b), std::runtime_error);
  }
  {  // truncation at every prefix length must throw, never crash or accept
    for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{8}, bytes.size() / 4,
                            bytes.size() / 2, bytes.size() - 1}) {
      auto b = bytes;
      b.resize(len);
      EXPECT_THROW(deserialize_compressed_index(b), std::runtime_error) << "len " << len;
    }
  }
  {  // hostile count: claim ~2^60 documents in a tiny buffer
    auto b = bytes;
    // doc count varint starts right after magic + version (offset 8).
    // 10-byte hostile varint would shift everything; instead set the
    // first count byte to a large single-byte value inconsistent with the
    // remaining bytes only if the real count is single-byte — safer and
    // simpler: flip the continuation bit pattern to 0xff 0xff ... by
    // rewriting the prefix.
    std::vector<std::uint8_t> hostile(b.begin(), b.begin() + 8);
    for (int i = 0; i < 9; ++i) hostile.push_back(0xff);  // huge varint
    hostile.push_back(0x0f);
    EXPECT_THROW(deserialize_compressed_index(hostile), std::runtime_error);
  }
  {  // trailing garbage
    auto b = bytes;
    b.push_back(0x00);
    EXPECT_THROW(deserialize_compressed_index(b), std::runtime_error);
  }
}

TEST(Persistence, CompressedIndexTamperedBytesNeverAccepted) {
  // Flip bits across the whole blob — skip offsets, dense ids, score
  // bounds, counts. Every single-byte tamper must either throw or (for
  // bytes the canonical re-encode proves untouched, e.g. none here beyond
  // the magic tail) produce an index identical to the original. Accepting
  // corrupted block metadata is the one forbidden outcome.
  const CompressedIndex original = blocky_compressed();
  const auto bytes = serialize_compressed_index(original);
  const auto reference = serialize_compressed_index(original);

  std::size_t rejected = 0;
  for (std::size_t i = 0; i < bytes.size(); i += 13) {  // stride keeps runtime sane
    auto b = bytes;
    b[i] ^= 0x55;
    try {
      const CompressedIndex restored = deserialize_compressed_index(b);
      // Extremely rare legit case: the tamper produced a different but
      // well-formed canonical blob. Then it must round-trip to ITSELF (the
      // self-check guarantees this) — never silently to the original's
      // logical content with broken metadata.
      EXPECT_EQ(serialize_compressed_index(restored), b) << "offset " << i;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(reference, bytes);  // serialization itself is deterministic
}

}  // namespace
}  // namespace planetp::index
