#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file tokenizer.hpp
/// Splits raw text into lower-cased alphanumeric tokens. This is the first
/// stage of PlanetP's indexing pipeline (tokenize -> stop-word removal ->
/// stemming), matching the pre-processing described in §7.3.

namespace planetp::text {

/// Tokenization options.
struct TokenizerOptions {
  std::size_t min_length = 2;   ///< drop tokens shorter than this
  std::size_t max_length = 40;  ///< drop pathological tokens longer than this
  bool keep_numbers = true;     ///< whether pure-digit tokens survive
};

/// Invoke \p fn(token) for every token in \p input, building tokens in the
/// caller-supplied \p buf so a hot loop reuses one buffer's capacity across
/// calls (zero steady-state allocations). The string_view handed to \p fn
/// aliases \p buf and is only valid during the callback. Token boundaries
/// are maximal runs of [A-Za-z0-9]; letters are lower-cased. Apostrophes
/// inside words are dropped ("don't" -> "dont").
template <typename Fn>
void for_each_token(std::string_view input, const TokenizerOptions& opts, std::string& buf,
                    Fn&& fn) {
  buf.clear();
  auto flush = [&] {
    if (buf.size() >= opts.min_length && buf.size() <= opts.max_length) {
      if (opts.keep_numbers ||
          buf.find_first_not_of("0123456789") != std::string::npos) {
        fn(std::string_view(buf));
      }
    }
    buf.clear();
  };
  for (char c : input) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      buf.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      buf.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (c == '\'') {
      // skip: merges contractions
    } else {
      flush();
    }
  }
  flush();
}

/// Convenience overload with a local buffer (one allocation per call for
/// tokens that outgrow the small-string optimization).
template <typename Fn>
void for_each_token(std::string_view input, const TokenizerOptions& opts, Fn&& fn) {
  std::string buf;
  buf.reserve(16);
  for_each_token(input, opts, buf, std::forward<Fn>(fn));
}

/// Tokenize \p input into a vector with default options.
std::vector<std::string> tokenize(std::string_view input,
                                  const TokenizerOptions& opts = {});

}  // namespace planetp::text
