#include "search/experiment.hpp"

#include <algorithm>
#include <unordered_set>

#include "search/candidate_cache.hpp"

namespace planetp::search {

using corpus::SynthCollection;
using corpus::SynthDoc;
using corpus::SynthQuery;
using index::DocumentId;

std::vector<PeerFilter> RetrievalSetup::filter_views() const {
  std::vector<PeerFilter> views;
  views.reserve(peer_filters.size());
  for (std::size_t i = 0; i < peer_filters.size(); ++i) {
    views.push_back(PeerFilter{static_cast<std::uint32_t>(i), &peer_filters[i]});
  }
  return views;
}

void RetrievalSetup::prime_cache(CandidateCache& cache) const {
  for (std::size_t i = 0; i < peer_filters.size(); ++i) {
    // Aliasing shared_ptr with no control block: the setup owns the filters
    // and outlives the cache in the experiment harness.
    cache.update_peer(static_cast<std::uint32_t>(i),
                      std::shared_ptr<const bloom::BloomFilter>(std::shared_ptr<void>(),
                                                                &peer_filters[i]),
                      /*version=*/1);
  }
}

PeerSearchFn RetrievalSetup::local_contact() const {
  return [this](std::uint32_t peer,
                const std::unordered_map<std::string, double>& weights) {
    return score_documents(peer_indexes[peer], weights);
  };
}

RetrievalSetup distribute_collection(const SynthCollection& collection,
                                     std::size_t num_peers,
                                     const corpus::PlacementOptions& placement,
                                     const bloom::BloomParams& bloom_params) {
  RetrievalSetup setup;
  setup.num_peers = num_peers;
  setup.peer_indexes.resize(num_peers);
  setup.peer_filters.assign(num_peers, bloom::BloomFilter(bloom_params));

  const std::vector<std::uint32_t> owners =
      corpus::place_documents(collection.docs.size(), num_peers, placement);

  for (const SynthDoc& doc : collection.docs) {
    const std::uint32_t peer = owners[doc.id];
    const DocumentId id{0, doc.id};
    setup.owner_of.emplace(id, peer);

    std::unordered_map<std::string, std::uint32_t> freqs;
    freqs.reserve(doc.terms.size());
    for (const auto& [term, freq] : doc.terms) {
      freqs.emplace(SynthCollection::term_string(term), freq);
    }
    setup.peer_indexes[peer].add_document(id, freqs);
    setup.global_index.add_document(id, freqs);
    for (const auto& [term, freq] : freqs) setup.peer_filters[peer].insert(term);
  }
  return setup;
}

std::vector<std::string> query_term_strings(const SynthQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.terms.size());
  for (corpus::TermId t : query.terms) out.push_back(SynthCollection::term_string(t));
  return out;
}

RelevantSet judgment_set(const SynthQuery& query) {
  RelevantSet rel;
  for (std::uint32_t doc : query.relevant_docs) rel.insert(DocumentId{0, doc});
  return rel;
}

RetrievalPoint evaluate_at_k(const SynthCollection& collection, const RetrievalSetup& setup,
                             std::size_t k, const RetrievalOptions& opts) {
  RetrievalPoint point;
  point.k = k;
  if (collection.queries.empty()) return point;

  TfIdfRanker baseline(setup.global_index);
  const auto views = setup.filter_views();
  const auto contact = setup.local_contact();

  for (const SynthQuery& query : collection.queries) {
    const auto terms = query_term_strings(query);
    const RelevantSet relevant = judgment_set(query);

    // --- centralized TFxIDF baseline ---
    const auto idf_docs = baseline.top_k(terms, k);
    point.idf_recall += recall(idf_docs, relevant);
    point.idf_precision += precision(idf_docs, relevant);
    std::unordered_set<std::uint32_t> idf_owners;
    for (const ScoredDoc& d : idf_docs) idf_owners.insert(setup.owner_of.at(d.doc));
    point.idf_peers += static_cast<double>(idf_owners.size());

    // --- PlanetP TFxIPF with adaptive stopping ---
    DistributedSearchOptions dopts;
    dopts.k = k;
    dopts.group_size = opts.group_size;
    dopts.stopping = opts.stopping;
    dopts.cache = opts.cache;
    const auto result = tfipf_search(terms, views, contact, dopts);
    point.ipf_recall += recall(result.docs, relevant);
    point.ipf_precision += precision(result.docs, relevant);
    point.ipf_peers += static_cast<double>(result.contacted.size());

    // --- oracle lower bound ---
    point.best_peers +=
        static_cast<double>(best_peers_for_k(relevant, k, setup.owner_of));
  }

  const double nq = static_cast<double>(collection.queries.size());
  point.idf_recall /= nq;
  point.idf_precision /= nq;
  point.idf_peers /= nq;
  point.ipf_recall /= nq;
  point.ipf_precision /= nq;
  point.ipf_peers /= nq;
  point.best_peers /= nq;
  return point;
}

std::vector<RetrievalPoint> run_k_sweep(const SynthCollection& collection,
                                        const RetrievalSetup& setup,
                                        const RetrievalOptions& opts) {
  std::vector<RetrievalPoint> points;
  points.reserve(opts.ks.size());
  for (std::size_t k : opts.ks) points.push_back(evaluate_at_k(collection, setup, k, opts));
  return points;
}

std::vector<CommunityPoint> run_community_sweep(const SynthCollection& collection,
                                                const std::vector<std::size_t>& sizes,
                                                std::size_t k,
                                                const corpus::PlacementOptions& placement,
                                                const RetrievalOptions& opts) {
  std::vector<CommunityPoint> points;
  for (std::size_t n : sizes) {
    const RetrievalSetup setup = distribute_collection(collection, n, placement);
    const RetrievalPoint p = evaluate_at_k(collection, setup, k, opts);
    points.push_back(CommunityPoint{n, p.ipf_recall, p.idf_recall, p.ipf_peers});
  }
  return points;
}

}  // namespace planetp::search
