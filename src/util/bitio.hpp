#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file bitio.hpp
/// Bit-granular writer/reader over a byte buffer. Used by the Golomb-coded
/// run-length compressor that PlanetP applies to Bloom filters on the wire.

namespace planetp {

class BitWriter {
 public:
  /// Append the low \p nbits bits of \p value (LSB first).
  void write_bits(std::uint64_t value, unsigned nbits);

  /// Append a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1 : 0, 1); }

  /// Append \p n one-bits followed by a zero bit (unary code for n).
  void write_unary(std::uint64_t n);

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// Finish and return the packed bytes (padded with zero bits).
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}

  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  /// Read \p nbits bits (LSB first). Throws std::out_of_range past the end.
  std::uint64_t read_bits(unsigned nbits);

  bool read_bit() { return read_bits(1) != 0; }

  /// Read a unary code: count of one-bits before the terminating zero.
  std::uint64_t read_unary();

  std::size_t bits_remaining() const { return size_bits_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_bits_;
  std::size_t pos_ = 0;
};

}  // namespace planetp
