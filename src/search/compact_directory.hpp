#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"

/// \file compact_directory.hpp
/// §2, advantage (3): "Peers can independently trade-off accuracy for
/// storage. For example, a peer may choose to combine the filters of several
/// peers to save space; the trade-off is that it must now contact this set
/// of peers whenever a query hits on this combined filter. This ability ...
/// is particularly useful for peers running on memory-constrained devices."
///
/// CompactDirectory keeps one merged Bloom filter per group of `group_size`
/// peers. Queries resolve to *groups*: every peer of a hit group becomes a
/// candidate (a superset of the true candidate set — never a miss).

namespace planetp::search {

class CompactDirectory {
 public:
  /// \p group_size peers share one merged filter; 1 = no compaction.
  explicit CompactDirectory(std::size_t group_size = 4)
      : group_size_(group_size == 0 ? 1 : group_size) {}

  /// Merge \p filter into the current group. Peers are grouped in insertion
  /// order; all filters must share one geometry.
  void add_peer(std::uint32_t peer, const bloom::BloomFilter& filter);

  /// Peers whose *group* filter contains every term — a superset of the
  /// peers whose own filters would hit (no false negatives, §2).
  std::vector<std::uint32_t> candidates(const std::vector<std::string>& terms) const;

  /// Peers whose group filter contains at least one term.
  std::vector<std::uint32_t> candidates_any(const std::vector<std::string>& terms) const;

  /// Approximate storage: one filter per group (plus the member lists).
  std::size_t memory_bytes() const;

  std::size_t group_count() const { return groups_.size(); }
  std::size_t peer_count() const { return peer_count_; }
  std::size_t group_size() const { return group_size_; }

 private:
  struct Group {
    bloom::BloomFilter filter;
    std::vector<std::uint32_t> members;
  };

  std::size_t group_size_;
  std::size_t peer_count_ = 0;
  std::vector<Group> groups_;
};

}  // namespace planetp::search
