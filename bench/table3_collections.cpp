/// \file table3_collections.cpp
/// Table 3: characteristics of the collections used to evaluate search and
/// retrieval. The originals (Smart's CACM/MED/CRAN/CISI and TREC AP89) are
/// licensed, so this prints the shapes of our synthetic stand-ins next to
/// the paper's numbers. AP89 is scaled down by 8x in document count to keep
/// the default bench run fast (pass --full for the original size).

#include <cstdio>
#include <cstring>

#include "corpus/synthetic.hpp"

using namespace planetp::corpus;

namespace {

struct PaperRow {
  const char* name;
  std::size_t queries;
  std::size_t docs;
  std::size_t words;
  double mb;
};

constexpr PaperRow kPaper[] = {
    {"CACM", 52, 3204, 75'493, 2.1},  {"MED", 30, 1033, 83'451, 1.0},
    {"CRAN", 152, 1400, 117'718, 1.6}, {"CISI", 76, 1460, 84'957, 2.4},
    {"AP89", 97, 84'678, 129'603, 266.0},
};

void report(const CollectionSpec& spec, const PaperRow& paper) {
  const SynthCollection col = generate(spec);
  std::printf("%-5s | paper: q=%4zu d=%6zu w=%7zu %6.1fMB | synthetic: q=%4zu d=%6zu "
              "w=%7zu %6.1fMB\n",
              spec.name.c_str(), paper.queries, paper.docs, paper.words, paper.mb,
              col.queries.size(), col.docs.size(), col.distinct_terms,
              static_cast<double>(col.approx_bytes()) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  std::puts("Table 3 — collection characteristics (paper vs synthetic stand-in)");
  std::puts("  (w = distinct words; synthetic vocab is the *used* vocabulary, which is");
  std::puts("   smaller than the configured Zipf universe for small collections)");
  report(preset_cacm(), kPaper[0]);
  report(preset_med(), kPaper[1]);
  report(preset_cran(), kPaper[2]);
  report(preset_cisi(), kPaper[3]);
  report(preset_ap89(full ? 1 : 8), kPaper[4]);
  if (!full) {
    std::puts("  (AP89 scaled 8x down by default; run with --full for 84678 docs)");
  }
  return 0;
}
