#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gossip/config.hpp"
#include "gossip/directory.hpp"
#include "gossip/messages.hpp"
#include "gossip/stats.hpp"
#include "gossip/types.hpp"
#include "util/rng.hpp"

/// \file protocol.hpp
/// The PlanetP gossiping protocol (§3) as a runtime-agnostic state machine:
/// push rumor mongering, every-n-th-round pull anti-entropy, a partial
/// anti-entropy piggyback on every rumor exchange, an adaptive gossiping
/// interval, and optional bandwidth-aware fast/slow target selection.
///
/// The protocol never talks to a network: `on_round` / `on_message` return
/// the messages to transmit, and the embedding runtime — the discrete-event
/// simulator (src/sim) or the live TCP runtime (src/net) — delivers them and
/// reports failures via `on_send_failed`. The same protocol object therefore
/// backs both the paper's simulation results and its prototype behaviour.

namespace planetp::gossip {

class Protocol {
 public:
  /// A message the runtime must transmit.
  struct Outgoing {
    PeerId to = kInvalidPeer;
    Message msg;
  };

  /// Metric/integration hooks (all optional).
  struct Hooks {
    /// Called when a strictly newer record version is applied locally —
    /// i.e. this peer "learned" the event. Convergence metrics key off it.
    std::function<void(const RumorPayload&, TimePoint)> on_apply;

    /// Called when a peer is dropped after T_dead.
    std::function<void(PeerId)> on_expire;
  };

  Protocol(PeerId self, GossipConfig config, Rng rng);

  // ------------------------------------------------------------------
  // Local events (the origin side of rumors)
  // ------------------------------------------------------------------

  /// Install our own record (version 1) and start rumoring our arrival.
  /// \p key_count / \p filter_wire describe the local index summary.
  void local_join(std::string address, LinkClass link_class, std::uint32_t key_count,
                  std::vector<std::uint8_t> filter_wire, TimePoint now);

  /// Install our own record without rumoring it — for setting up members of
  /// an already-converged community (experiments) where arrival is old news.
  void quiet_start(std::string address, LinkClass link_class, std::uint32_t key_count,
                   std::vector<std::uint8_t> filter_wire);

  /// The local Bloom filter changed: bump our version and rumor the diff.
  /// \p diff_bits may be empty in simulation; \p new_keys drives the wire
  /// size model either way.
  void local_filter_change(std::uint32_t key_count, std::uint32_t new_keys,
                           std::vector<std::uint8_t> diff_bits,
                           std::vector<std::uint8_t> full_filter_wire, TimePoint now);

  /// We went offline and came back with nothing new to share: bump our
  /// version so presence re-propagates (§3).
  void local_rejoin(TimePoint now);

  /// First contact of a brand-new (or returning) member: ask \p introducer
  /// for its full directory. The reply path downloads every record we lack.
  /// The pull is tracked: if the reply never arrives (lossy link, partition)
  /// it is retried with backoff on subsequent rounds, bounded by
  /// config.max_ae_retries.
  Outgoing join_via(PeerId introducer, TimePoint now = 0);

  /// Install initial directory state without generating rumors (used to
  /// set up pre-converged communities in experiments).
  void bootstrap(const std::vector<PeerRecord>& records);

  /// Converged bootstrap at scale: adopt \p base (which must include our own
  /// record) as the shared directory snapshot instead of copying N records
  /// into a private map. Replaces quiet_start + bootstrap for simulated
  /// communities; peers sharing a base exchange O(changed) summaries.
  void bootstrap_converged(DirectoryBasePtr base);

  // ------------------------------------------------------------------
  // Runtime driver interface
  // ------------------------------------------------------------------

  /// One gossip round; the runtime calls this every current_interval().
  std::vector<Outgoing> on_round(TimePoint now);

  /// Handle a received message; returns any replies/pulls to transmit.
  std::vector<Outgoing> on_message(TimePoint now, PeerId from, const Message& msg);

  /// The runtime failed to deliver to \p to: mark it offline (§3 — offline
  /// discovery is by failed communication, never gossiped).
  void on_send_failed(PeerId to, TimePoint now);

  /// Current adaptive gossiping interval.
  Duration current_interval() const { return interval_; }

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  Directory& directory() { return directory_; }
  const Directory& directory() const { return directory_; }
  const GossipConfig& config() const { return config_; }
  PeerId self() const { return directory_.self(); }
  std::size_t hot_rumor_count() const { return hot_.size(); }
  std::uint64_t own_version() const;
  Hooks& hooks() { return hooks_; }

  /// Dissemination traffic counters: blind payload pushes vs. duplicates at
  /// the receiver, digests and wants (docs/PROTOCOL.md "Lazy dissemination").
  const GossipStats& stats() const { return stats_; }

 private:
  struct HotRumor {
    RumorPtr rumor;  ///< interned: every send shares one payload + encoding
    int consecutive_known = 0;
    int pushes = 0;  ///< payload transmissions so far (hybrid eager→lazy cutover)
    /// Join/rejoin announcements carry the origin's address — the one fact a
    /// receiver needs before it can answer a digest with a want at all. They
    /// stay eager for their first eager_fanout transmissions in every mode.
    bool introduce = false;
  };

  // Apply one payload; returns true if it was new. When a diff cannot be
  // applied (missing base), the record is still accepted and the origin id
  // is queued for a full-filter pull from \p from.
  bool apply_payload(const RumorPayload& p, TimePoint now, PeerId from,
                     std::vector<Outgoing>& out);

  void make_hot(RumorPtr p);
  void retire_rumor(const RumorId& id);
  void note_recent(const RumorId& id);
  void reset_interval();
  void register_gossipless_contact();

  PeerId pick_rumor_target();
  PeerId pick_ae_target();
  bool has_local_origin_rumor() const;
  Outgoing issue_summary_request(PeerId target, TimePoint now);
  /// The community holds a newer version of *our own* record than we do —
  /// we crashed and lost state. Adopt that version (jump past it) and
  /// re-rumor so our presence wins everywhere. Returns true if adopted.
  bool adopt_own_version(std::uint64_t seen_version, TimePoint now);
  /// Set our own version to \p past + 1 and re-rumor our record (kRejoin).
  void jump_own_version(std::uint64_t past);

  /// Interned full-filter payload answering a pull for \p record. Cached per
  /// origin so concurrent pulls for the same record (common right after a
  /// filter change floods the piggybacks) reuse one payload and encoding;
  /// invalidated by version/key-count/filter changes and on expiry.
  RumorPtr pull_rumor_for(const PeerRecord& record);

  GossipConfig config_;
  Directory directory_;
  Rng rng_;
  Hooks hooks_;
  GossipStats stats_;

  std::unordered_map<RumorId, HotRumor, RumorIdHash> hot_;
  std::vector<RumorId> hot_order_;             ///< stable iteration order
  std::deque<RumorId> recent_;                 ///< retired ids for piggybacking
  std::unordered_set<RumorId, RumorIdHash> recent_set_;
  std::unordered_map<PeerId, RumorPtr> pull_cache_;  ///< per-origin pull payloads
  /// Hot rumors originated by us, maintained on insert/erase so the
  /// bandwidth-aware target pick does not scan the hot set every round.
  std::size_t self_hot_count_ = 0;

  std::uint64_t round_counter_ = 0;
  int gossipless_count_ = 0;
  Duration interval_;
  LinkClass self_class_ = LinkClass::kFast;
  /// Set on join/rejoin: we slept through events and must anti-entropy
  /// before resuming normal rumoring priorities; cleared by the first
  /// summary reply, by send failure to the chosen target (retry next round)
  /// or after max_ae_retries unanswered attempts.
  bool catch_up_pending_ = false;

  /// The most recent summary request still awaiting its reply; drives the
  /// bounded backed-off retry of unanswered anti-entropy pulls.
  struct PendingPull {
    PeerId target = kInvalidPeer;
    std::uint64_t retry_round = 0;  ///< round from which an unanswered pull may be reissued
    int attempts = 0;
  };
  std::optional<PendingPull> pending_pull_;
};

}  // namespace planetp::gossip
