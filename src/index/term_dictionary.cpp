#include "index/term_dictionary.hpp"

#include <algorithm>

namespace planetp::index {

TermId TermDictionary::intern(std::string_view term) {
  if (table_.empty()) grow_table();
  const HashPair hp = hash_pair(term);
  std::size_t slot = static_cast<std::size_t>(hp.h1) & table_mask_;
  while (table_[slot] != 0) {
    const TermId id = table_[slot] - 1;
    if (hashes_[id].h1 == hp.h1 && this->term(id) == term) return id;
    slot = (slot + 1) & table_mask_;
  }

  // New term: append the bytes to the arena. Blocks never grow past their
  // reserved capacity, so existing term() views stay valid.
  if (blocks_.empty() || blocks_.back().size() + term.size() > blocks_.back().capacity()) {
    std::string block;
    block.reserve(std::max(kBlockBytes, term.size()));
    blocks_.push_back(std::move(block));
  }
  std::string& block = blocks_.back();
  Ref ref;
  ref.block = static_cast<std::uint32_t>(blocks_.size() - 1);
  ref.offset = static_cast<std::uint32_t>(block.size());
  ref.length = static_cast<std::uint32_t>(term.size());
  block.append(term);

  const TermId id = static_cast<TermId>(refs_.size());
  refs_.push_back(ref);
  hashes_.push_back(hp);
  table_[slot] = id + 1;

  // Keep the table under ~70% load.
  if ((refs_.size() + 1) * 10 > table_.size() * 7) grow_table();
  return id;
}

TermId TermDictionary::find(std::string_view term) const {
  if (table_.empty()) return kInvalidTermId;
  const std::uint64_t h1 = fnv1a64(term);  // == hash_pair(term).h1, without the murmur half
  std::size_t slot = static_cast<std::size_t>(h1) & table_mask_;
  while (table_[slot] != 0) {
    const TermId id = table_[slot] - 1;
    if (hashes_[id].h1 == h1 && this->term(id) == term) return id;
    slot = (slot + 1) & table_mask_;
  }
  return kInvalidTermId;
}

void TermDictionary::grow_table() {
  const std::size_t new_size = table_.empty() ? 1024 : table_.size() * 2;
  table_.assign(new_size, 0);
  table_mask_ = new_size - 1;
  for (TermId id = 0; id < refs_.size(); ++id) {
    std::size_t slot = static_cast<std::size_t>(hashes_[id].h1) & table_mask_;
    while (table_[slot] != 0) slot = (slot + 1) & table_mask_;
    table_[slot] = id + 1;
  }
}

std::size_t TermDictionary::memory_bytes() const {
  std::size_t bytes = table_.size() * sizeof(std::uint32_t);
  bytes += refs_.size() * (sizeof(Ref) + sizeof(HashPair));
  for (const std::string& block : blocks_) bytes += block.capacity();
  return bytes;
}

}  // namespace planetp::index
