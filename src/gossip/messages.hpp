#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "gossip/types.hpp"
#include "util/byte_buffer.hpp"

/// \file messages.hpp
/// Gossip wire messages. One encode/decode path serves the live TCP runtime;
/// the simulator prices the same messages with the Table 2 size model (3-byte
/// header, 48-byte peer summaries, 6-byte rumor-id/BF summaries, and a
/// linear-in-keys Bloom filter cost anchored at 1000 keys = 3000 B and
/// 20000 keys = 16000 B).

namespace planetp::gossip {

/// Push rumoring: the sender's currently-hot rumors, plus the partial
/// anti-entropy piggyback — ids of the most recent rumors the sender learned
/// but is no longer actively spreading (§3).
struct RumorMsg {
  std::vector<RumorPayload> rumors;
  std::vector<RumorId> recent_ids;
};

/// Reply to RumorMsg: which of the pushed rumors the receiver already knew
/// (drives the sender's stop-counter), the receiver's own piggyback, and the
/// ids the receiver wants pulled (it was missing them from the sender's
/// piggyback).
struct RumorAckMsg {
  std::vector<RumorId> already_knew;
  std::vector<RumorId> recent_ids;
  std::vector<RumorId> pull_ids;
};

/// Pull anti-entropy step 1: ask the target for its directory summary.
struct SummaryRequestMsg {};

/// Directory summary: one PeerSummary per known record. Sent as the reply in
/// pull anti-entropy, or unsolicited in push-anti-entropy-only mode (the
/// paper's LAN-AE baseline). `push` distinguishes the two on receipt.
struct SummaryMsg {
  std::vector<PeerSummary> entries;
  bool push = false;
  /// Non-zero when the replier holds a T_dead tombstone for the *asker*: the
  /// version the asker's record was expired at. The asker restarted below it
  /// (lost its version counter in a crash), so every update it gossips at or
  /// below this version will be refused as stale — it must jump past it.
  std::uint64_t rejoin_floor = 0;
};

/// Ask the target for full records of these rumor ids (anti-entropy pull, or
/// partial-anti-entropy pull after a piggyback hit).
struct PullRequestMsg {
  std::vector<RumorId> ids;
};

/// Full records answering a PullRequestMsg. Filters are sent whole here
/// (base_version == 0), since the requester may hold no usable base.
struct PullResponseMsg {
  std::vector<RumorPayload> rumors;
};

using Message = std::variant<RumorMsg, RumorAckMsg, SummaryRequestMsg, SummaryMsg,
                             PullRequestMsg, PullResponseMsg>;

/// Table 2 wire-cost model. Changing these constants re-prices every
/// simulated experiment without touching protocol logic.
struct SizeModel {
  std::size_t header_bytes = 3;
  std::size_t summary_entry_bytes = 6;  ///< Table 2 "BF summary": (id, version) digest
  std::size_t rumor_id_bytes = 6;
  std::size_t record_base_bytes = 48;  ///< Table 2 "peer summary": full record sans filter
  // Linear Bloom-filter cost through Table 2's anchors
  // (1000, 3000) and (20000, 16000).
  double filter_fixed_bytes = 2315.8;
  double filter_per_key_bytes = 0.6842;

  /// Modeled compressed size of a filter payload covering \p keys keys.
  std::size_t filter_bytes(std::uint64_t keys) const;
};

/// Modeled wire size of \p msg under \p model. When a payload carries real
/// filter bytes (live mode) those dominate the model's estimate.
std::size_t wire_size(const Message& msg, const SizeModel& model);

/// Modeled wire size of one rumor payload (record base + filter cost).
std::size_t payload_wire_size(const RumorPayload& payload, const SizeModel& model);

/// Binary encoding (live runtime). The first byte is the variant tag.
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Inverse of encode_message; throws on malformed input.
Message decode_message(std::span<const std::uint8_t> data);

/// Human-readable tag for logs.
const char* message_name(const Message& msg);

}  // namespace planetp::gossip
