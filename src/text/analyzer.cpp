#include "text/analyzer.hpp"

namespace planetp::text {

namespace {
/// Scratch for the compatibility wrappers. thread_local so concurrent
/// callers (e.g. hedged searches analyzing queries on worker threads) never
/// share buffers; the memo it accumulates is option-independent (see
/// AnalyzerScratch), so different Analyzer instances may share it.
AnalyzerScratch& wrapper_scratch() {
  thread_local AnalyzerScratch scratch;
  return scratch;
}
}  // namespace

std::vector<std::string> Analyzer::analyze(std::string_view input) const {
  std::vector<std::string> out;
  for_each_term(input, wrapper_scratch(), [&](std::string_view term) { out.emplace_back(term); });
  return out;
}

std::unordered_map<std::string, std::uint32_t> Analyzer::term_frequencies(
    std::string_view input) const {
  std::unordered_map<std::string, std::uint32_t> freq;
  for_each_term(input, wrapper_scratch(), [&](std::string_view term) {
    // SSO keeps the key temporary heap-free for realistic term lengths.
    ++freq[std::string(term)];
  });
  return freq;
}

std::string Analyzer::process_token(std::string_view token) const {
  std::string lowered;
  lowered.reserve(token.size());
  for (char c : token) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    lowered.push_back(c);
  }
  if (opts_.remove_stopwords && is_stopword(lowered)) return {};
  if (opts_.stem) porter_stem(lowered);
  if (opts_.remove_stopwords && is_stopword(lowered)) return {};
  return lowered;
}

}  // namespace planetp::text
