#pragma once

#include <vector>

#include "bloom/bloom_filter.hpp"
#include "corpus/placement.hpp"
#include "corpus/synthetic.hpp"
#include "index/inverted_index.hpp"
#include "search/distributed.hpp"
#include "search/evaluation.hpp"

/// \file experiment.hpp
/// The §7.3 retrieval experiments (Fig 6a-c): distribute a collection over a
/// simulated community, then compare the centralized TFxIDF baseline with
/// PlanetP's TFxIPF + adaptive stopping, measuring recall, precision and
/// peers contacted against the collection's relevance judgments.

namespace planetp::search {

/// A collection distributed over a community: per-peer indexes and Bloom
/// filters plus the merged global index the TFxIDF baseline assumes.
/// Documents keep their global ids (DocumentId{0, doc}); owner_of maps each
/// to its hosting peer.
struct RetrievalSetup {
  std::size_t num_peers = 0;
  std::vector<index::InvertedIndex> peer_indexes;
  std::vector<bloom::BloomFilter> peer_filters;
  index::InvertedIndex global_index;
  std::unordered_map<index::DocumentId, std::uint32_t, index::DocumentIdHash> owner_of;

  /// Directory view handed to the distributed search.
  std::vector<PeerFilter> filter_views() const;

  /// Contact function evaluating queries directly against peer indexes.
  PeerSearchFn local_contact() const;

  /// Register every peer filter with \p cache (non-owning: the setup must
  /// outlive the cache), so filter_views() rows resolve through warm
  /// term→candidate entries instead of per-query probes.
  void prime_cache(CandidateCache& cache) const;
};

/// Build the setup: place documents, index them per peer, build filters.
RetrievalSetup distribute_collection(const corpus::SynthCollection& collection,
                                     std::size_t num_peers,
                                     const corpus::PlacementOptions& placement,
                                     const bloom::BloomParams& bloom_params = {});

/// Per-query-averaged metrics at one value of k.
struct RetrievalPoint {
  std::size_t k = 0;
  double idf_recall = 0.0;
  double idf_precision = 0.0;
  double idf_peers = 0.0;   ///< exact owners of the baseline's top-k
  double ipf_recall = 0.0;
  double ipf_precision = 0.0;
  double ipf_peers = 0.0;   ///< peers contacted by the adaptive heuristic
  double best_peers = 0.0;  ///< Fig 6c's oracle lower bound
};

struct RetrievalOptions {
  std::vector<std::size_t> ks = {10, 20, 50, 100, 150, 200, 300, 400, 500};
  std::size_t group_size = 1;
  StoppingHeuristic stopping;
  /// Optional query hot-path cache (prime it with RetrievalSetup::prime_cache
  /// first); results are byte-identical with or without it.
  CandidateCache* cache = nullptr;
};

/// Evaluate one k across all queries of the collection.
RetrievalPoint evaluate_at_k(const corpus::SynthCollection& collection,
                             const RetrievalSetup& setup, std::size_t k,
                             const RetrievalOptions& opts);

/// Fig 6a / 6c: sweep k.
std::vector<RetrievalPoint> run_k_sweep(const corpus::SynthCollection& collection,
                                        const RetrievalSetup& setup,
                                        const RetrievalOptions& opts);

/// Fig 6b: recall at fixed k across community sizes. Rebuilds the placement
/// for each size (same collection, same seed policy).
struct CommunityPoint {
  std::size_t community_size = 0;
  double ipf_recall = 0.0;
  double idf_recall = 0.0;
  double ipf_peers = 0.0;
};
std::vector<CommunityPoint> run_community_sweep(const corpus::SynthCollection& collection,
                                                const std::vector<std::size_t>& sizes,
                                                std::size_t k,
                                                const corpus::PlacementOptions& placement,
                                                const RetrievalOptions& opts);

/// Query terms as analyzable strings.
std::vector<std::string> query_term_strings(const corpus::SynthQuery& query);

/// Relevance judgments as DocumentId sets.
RelevantSet judgment_set(const corpus::SynthQuery& query);

}  // namespace planetp::search
