#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/community.hpp"
#include "pfs/file_server.hpp"

/// \file pfs.hpp
/// PFS, the personal semantic file system of §6, built on PlanetP. Users
/// publish files; directories are named by queries, populated by persistent
/// exhaustive queries, refined by subdirectories, and refreshed when stale.
/// Each namespace is private to one user (node).

namespace planetp::pfs {

/// A link in a query directory: where to fetch the file and what it is.
struct DirEntry {
  std::string url;
  std::string title;
  core::DocumentId doc;
};

class Pfs {
 public:
  /// Attach a PFS namespace to \p node. \p stale_threshold is how old a
  /// directory's last update may be before opening it re-runs the query.
  Pfs(core::Node& node, Duration stale_threshold = 5 * kMinute);

  // ------------------------------------------------------------------
  // Files
  // ------------------------------------------------------------------

  /// Publish a file: registers it with the File Server, wraps URL + content
  /// in an XML snippet, and publishes it to PlanetP (which indexes it and
  /// pushes a broker snippet per the node's config).
  std::string publish_file(const std::string& path, std::string content);

  /// Stop sharing a file.
  bool unpublish_file(const std::string& path);

  /// Replace a shared file's content (§6: "If a file is ... modified such
  /// that it matches some query, PFS will update the directory"; the flip
  /// side — no longer matching — is handled by the stale-refresh check).
  bool update_file(const std::string& path, std::string content);

  FileServer& file_server() { return files_; }

  // ------------------------------------------------------------------
  // Semantic namespace
  // ------------------------------------------------------------------

  /// Create a directory whose name is its query ("gossip protocols").
  /// Matching files appear as entries, kept current via persistent-query
  /// upcalls. Returns the directory's full path ("/gossip protocols").
  std::string create_directory(const std::string& query);

  /// Create a subdirectory under \p parent_path; its effective query is the
  /// conjunction of every query on the path (§6: "Building a query-based
  /// subdirectory is equivalent to refining the query of the containing
  /// directory").
  std::string create_subdirectory(const std::string& parent_path, const std::string& query);

  /// Open a directory: refreshes it when stale (dropping entries whose
  /// files no longer match or whose owners removed them), then lists it.
  std::vector<DirEntry> open(const std::string& path);

  /// Directory paths in the namespace.
  std::vector<std::string> directories() const;

  bool remove_directory(const std::string& path);

  /// The wall-clock source (community virtual time).
  TimePoint now() const;

 private:
  struct Directory {
    std::string path;
    std::string full_query;
    std::uint64_t query_handle = 0;
    TimePoint last_update = 0;
    std::map<std::string, DirEntry> entries;  ///< keyed by URL for stable listing
  };

  void install_query(Directory& dir);
  void refresh(Directory& dir);
  static std::optional<std::string> extract_url(const std::string& xml);

  core::Node& node_;
  FileServer files_;
  Duration stale_threshold_;
  std::map<std::string, Directory> dirs_;  ///< path -> directory
  std::unordered_map<std::string, core::DocumentId> published_;  ///< path -> doc id
};

}  // namespace planetp::pfs
