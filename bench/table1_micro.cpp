/// \file table1_micro.cpp
/// Table 1: costs of PlanetP's basic operations — Bloom filter insertion,
/// search, compression and decompression, plus inverted-index insertion and
/// search — as "fixed overhead plus marginal per-key cost" models.
///
/// Two outputs:
///  1. a Table-1-style fit (a + b*n, least squares over a key-count sweep),
///     printed before the benchmarks;
///  2. google-benchmark timings for the same operations at several sizes.
///
/// Absolute numbers are far below the paper's (800 MHz P-III + JVM vs modern
/// hardware + C++); the *linear shape* is the reproduced result and is what
/// parameterizes the simulator.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/wire.hpp"
#include "index/inverted_index.hpp"
#include "util/stats.hpp"

using namespace planetp;

namespace {

std::vector<std::string> make_terms(std::size_t n, unsigned tag) {
  std::vector<std::string> terms;
  terms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    terms.push_back("term" + std::to_string(tag) + "_" + std::to_string(i));
  }
  return terms;
}

double now_ms() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e6;
}

/// Fit cost(n) = a + b*n over the sweep and print one Table 1 row.
void fit_and_print(const char* label, const std::vector<double>& keys,
                   const std::vector<double>& ms) {
  const LinearFit fit = fit_linear(keys, ms);
  std::printf("  %-28s %8.4f ms + %.6f ms/key   (r^2=%.3f)\n", label, fit.intercept,
              fit.slope, fit.r2);
}

void print_cost_models() {
  std::puts("Table 1 — cost models on this machine (cost = a + b * no. keys):");
  const std::vector<double> sweep = {1000, 5000, 10000, 20000, 35000, 50000};

  {  // Bloom filter insertion
    std::vector<double> ms;
    for (double n : sweep) {
      const auto terms = make_terms(static_cast<std::size_t>(n), 1);
      bloom::BloomFilter filter;
      const double t0 = now_ms();
      for (const auto& t : terms) filter.insert(t);
      ms.push_back(now_ms() - t0);
    }
    fit_and_print("Bloom filter insertion", sweep, ms);
  }
  {  // Bloom filter search
    bloom::BloomFilter filter;
    for (const auto& t : make_terms(50000, 2)) filter.insert(t);
    std::vector<double> ms;
    for (double n : sweep) {
      const auto probes = make_terms(static_cast<std::size_t>(n), 3);
      const double t0 = now_ms();
      std::size_t hits = 0;
      for (const auto& t : probes) hits += filter.contains(t) ? 1 : 0;
      benchmark::DoNotOptimize(hits);
      ms.push_back(now_ms() - t0);
    }
    fit_and_print("Bloom filter search", sweep, ms);
  }
  {  // Bloom filter compress / decompress
    std::vector<double> compress_ms, decompress_ms;
    for (double n : sweep) {
      bloom::BloomFilter filter;
      for (const auto& t : make_terms(static_cast<std::size_t>(n), 4)) filter.insert(t);
      const double t0 = now_ms();
      const CompressedBits c = compress_bits(filter.bits());
      compress_ms.push_back(now_ms() - t0);
      const double t1 = now_ms();
      const BitVector back = decompress_bits(c);
      decompress_ms.push_back(now_ms() - t1);
      benchmark::DoNotOptimize(back.size());
    }
    fit_and_print("Bloom filter compress", sweep, compress_ms);
    fit_and_print("Bloom filter decompress", sweep, decompress_ms);
  }
  {  // Inverted index insertion: one document of n distinct terms
    std::vector<double> ms;
    for (double n : sweep) {
      const auto terms = make_terms(static_cast<std::size_t>(n), 5);
      std::unordered_map<std::string, std::uint32_t> freqs;
      for (const auto& t : terms) freqs.emplace(t, 1);
      index::InvertedIndex idx;
      const double t0 = now_ms();
      idx.add_document({0, 0}, freqs);
      ms.push_back(now_ms() - t0);
    }
    fit_and_print("Inverted index insertion", sweep, ms);
  }
  {  // Inverted index search: n single-term lookups
    index::InvertedIndex idx;
    std::unordered_map<std::string, std::uint32_t> freqs;
    for (const auto& t : make_terms(50000, 6)) freqs.emplace(t, 1);
    idx.add_document({0, 0}, freqs);
    std::vector<double> ms;
    for (double n : sweep) {
      const auto probes = make_terms(static_cast<std::size_t>(n), 6);
      const double t0 = now_ms();
      std::size_t found = 0;
      for (const auto& t : probes) found += idx.postings(t).size();
      benchmark::DoNotOptimize(found);
      ms.push_back(now_ms() - t0);
    }
    fit_and_print("Inverted index search", sweep, ms);
  }
  std::puts("");
}

// ---------------------------------------------------------------------------
// google-benchmark detail timings
// ---------------------------------------------------------------------------

void BM_BloomInsert(benchmark::State& state) {
  const auto terms = make_terms(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    bloom::BloomFilter filter;
    for (const auto& t : terms) filter.insert(t);
    benchmark::DoNotOptimize(filter.popcount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomInsert)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BloomSearch(benchmark::State& state) {
  bloom::BloomFilter filter;
  for (const auto& t : make_terms(50000, 11)) filter.insert(t);
  const auto probes = make_terms(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& t : probes) hits += filter.contains(t) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BloomSearch)->Arg(1000)->Arg(10000);

void BM_BloomCompress(benchmark::State& state) {
  bloom::BloomFilter filter;
  for (const auto& t : make_terms(static_cast<std::size_t>(state.range(0)), 13)) {
    filter.insert(t);
  }
  for (auto _ : state) {
    const CompressedBits c = compress_bits(filter.bits());
    benchmark::DoNotOptimize(c.payload.size());
  }
}
BENCHMARK(BM_BloomCompress)->Arg(1000)->Arg(20000)->Arg(50000);

void BM_BloomDecompress(benchmark::State& state) {
  bloom::BloomFilter filter;
  for (const auto& t : make_terms(static_cast<std::size_t>(state.range(0)), 14)) {
    filter.insert(t);
  }
  const CompressedBits c = compress_bits(filter.bits());
  for (auto _ : state) {
    const BitVector bits = decompress_bits(c);
    benchmark::DoNotOptimize(bits.size());
  }
}
BENCHMARK(BM_BloomDecompress)->Arg(1000)->Arg(20000)->Arg(50000);

void BM_IndexInsert(benchmark::State& state) {
  std::unordered_map<std::string, std::uint32_t> freqs;
  for (const auto& t : make_terms(static_cast<std::size_t>(state.range(0)), 15)) {
    freqs.emplace(t, 1);
  }
  for (auto _ : state) {
    index::InvertedIndex idx;
    idx.add_document({0, 0}, freqs);
    benchmark::DoNotOptimize(idx.num_terms());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexInsert)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IndexSearch(benchmark::State& state) {
  index::InvertedIndex idx;
  std::unordered_map<std::string, std::uint32_t> freqs;
  for (const auto& t : make_terms(50000, 16)) freqs.emplace(t, 1);
  idx.add_document({0, 0}, freqs);
  const auto probes = make_terms(static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    std::size_t found = 0;
    for (const auto& t : probes) found += idx.postings(t).size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexSearch)->Arg(1000)->Arg(10000);

/// §7.1's headline spot-checks: create a 50k-term filter (paper: ~1/2 s) and
/// search a 5-term query against 1000 filters (paper: ~50 ms).
void BM_QueryAgainst1000Filters(benchmark::State& state) {
  std::vector<bloom::BloomFilter> filters(1000, bloom::BloomFilter{});
  for (std::size_t i = 0; i < filters.size(); ++i) {
    for (const auto& t : make_terms(200, static_cast<unsigned>(100 + i % 7))) {
      filters[i].insert(t);
    }
  }
  const auto query = make_terms(5, 104);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& f : filters) {
      for (const auto& t : query) hits += f.contains(t) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_QueryAgainst1000Filters);

}  // namespace

int main(int argc, char** argv) {
  print_cost_models();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
