#include "gossip/types.hpp"

#include <algorithm>

namespace planetp::gossip {

DirectoryBasePtr make_directory_base(std::vector<PeerRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const PeerRecord& a, const PeerRecord& b) { return a.id < b.id; });
  for (PeerRecord& r : records) {
    r.online = true;
    r.offline_since = 0;
    r.suspicion = 0;
  }
  auto summary = std::make_shared<std::vector<PeerSummary>>();
  summary->reserve(records.size());
  for (const PeerRecord& r : records) summary->push_back(PeerSummary{r.id, r.version});
  auto base = std::make_shared<DirectoryBase>();
  base->records = std::move(records);
  // Deterministic content hash over the (id, version) pairs: equal summaries
  // always hash equal, so a token match certifies a shared base across peers
  // (and across separately constructed bases with identical content).
  std::uint64_t token = 0x9e3779b97f4a7c15ull;
  for (const PeerSummary& s : *summary) {
    token = splitmix64(token ^ ((static_cast<std::uint64_t>(s.id) << 32) | (s.version & 0xffffffffull)));
    token = splitmix64(token ^ s.version);
  }
  base->token = token != 0 ? token : 1;  // 0 is reserved for "no base"
  base->summary = std::move(summary);
  return base;
}

RumorPayload payload_from_record(const PeerRecord& record, EventKind kind,
                                 std::optional<FilterUpdate> filter) {
  RumorPayload p;
  p.origin = record.id;
  p.version = record.version;
  p.address = record.address;
  p.link_class = record.link_class;
  p.kind = kind;
  p.key_count = record.key_count;
  p.filter = std::move(filter);
  return p;
}

}  // namespace planetp::gossip
