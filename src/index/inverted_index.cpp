#include "index/inverted_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace planetp::index {

namespace {
const std::vector<Posting> kEmptyPostings;

/// Heterogeneous lookup shim: unordered_map<string, V> with string_view key.
template <typename Map>
auto find_sv(Map& map, std::string_view key) {
  // std::unordered_map does not support heterogeneous lookup pre-C++20 tags;
  // materialize only on miss-prone path. Term strings are short (SSO), so
  // this stays cheap.
  return map.find(std::string(key));
}
}  // namespace

void InvertedIndex::add_document(
    DocumentId doc, const std::unordered_map<std::string, std::uint32_t>& term_freqs) {
  if (doc_lengths_.contains(doc)) {
    throw std::invalid_argument("InvertedIndex::add_document: document already indexed");
  }
  std::uint32_t length = 0;
  for (const auto& [term, freq] : term_freqs) {
    auto& entry = postings_[term];
    entry.postings.push_back(Posting{doc, freq});
    entry.collection_freq += freq;
    length += freq;
  }
  doc_lengths_[doc] = length;
}

bool InvertedIndex::remove_document(DocumentId doc) {
  auto it = doc_lengths_.find(doc);
  if (it == doc_lengths_.end()) return false;
  doc_lengths_.erase(it);

  for (auto entry_it = postings_.begin(); entry_it != postings_.end();) {
    auto& entry = entry_it->second;
    auto posting_it = std::find_if(entry.postings.begin(), entry.postings.end(),
                                   [&](const Posting& p) { return p.doc == doc; });
    if (posting_it != entry.postings.end()) {
      entry.collection_freq -= posting_it->term_freq;
      entry.postings.erase(posting_it);
    }
    if (entry.postings.empty()) {
      entry_it = postings_.erase(entry_it);
    } else {
      ++entry_it;
    }
  }
  return true;
}

const std::vector<Posting>& InvertedIndex::postings(std::string_view term) const {
  auto it = find_sv(postings_, term);
  return it == postings_.end() ? kEmptyPostings : it->second.postings;
}

bool InvertedIndex::contains_term(std::string_view term) const {
  return find_sv(postings_, term) != postings_.end();
}

std::uint32_t InvertedIndex::term_frequency(std::string_view term, DocumentId doc) const {
  for (const Posting& p : postings(term)) {
    if (p.doc == doc) return p.term_freq;
  }
  return 0;
}

std::uint32_t InvertedIndex::document_length(DocumentId doc) const {
  auto it = doc_lengths_.find(doc);
  return it == doc_lengths_.end() ? 0 : it->second;
}

std::uint64_t InvertedIndex::collection_frequency(std::string_view term) const {
  auto it = find_sv(postings_, term);
  return it == postings_.end() ? 0 : it->second.collection_freq;
}

std::uint32_t InvertedIndex::document_frequency(std::string_view term) const {
  return static_cast<std::uint32_t>(postings(term).size());
}

void InvertedIndex::for_each_term(const std::function<void(const std::string&)>& fn) const {
  for (const auto& [term, entry] : postings_) fn(term);
}

std::vector<DocumentId> InvertedIndex::documents() const {
  std::vector<DocumentId> out;
  out.reserve(doc_lengths_.size());
  for (const auto& [doc, len] : doc_lengths_) out.push_back(doc);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace planetp::index
