#include "search/ipf.hpp"

#include <algorithm>

namespace planetp::search {

namespace {
const std::vector<std::uint32_t> kNoPeers;
}

HashedTerms HashedTerms::from(const std::vector<std::string>& raw) {
  HashedTerms out;
  out.terms = raw;
  // Eq. 3 sums over the *set* of query terms: repeated words in a query
  // must not multiply a peer's rank.
  std::sort(out.terms.begin(), out.terms.end());
  out.terms.erase(std::unique(out.terms.begin(), out.terms.end()), out.terms.end());
  out.hashes.reserve(out.terms.size());
  for (const std::string& term : out.terms) out.hashes.push_back(hash_pair(term));
  return out;
}

IpfTable::IpfTable(const std::vector<std::string>& terms,
                   const std::vector<PeerFilter>& filters)
    : IpfTable(HashedTerms::from(terms), filters) {}

IpfTable::IpfTable(const HashedTerms& terms, const std::vector<PeerFilter>& filters)
    : terms_(terms.terms), num_peers_(filters.size()) {
  for (const PeerFilter& pf : filters) {
    if (pf.suspicion != 0) suspicion_[pf.peer] = pf.suspicion;
  }
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    Entry entry;
    const HashPair& hp = terms.hashes[i];
    for (const PeerFilter& pf : filters) {
      if (pf.filter != nullptr && pf.filter->contains(hp)) entry.peers.push_back(pf.peer);
    }
    entry.ipf = ipf(num_peers_, entry.peers.size());
    entries_.emplace(terms_[i], std::move(entry));
  }
}

double IpfTable::weight(std::string_view term) const {
  auto it = entries_.find(term);
  return it == entries_.end() ? 0.0 : it->second.ipf;
}

const std::vector<std::uint32_t>& IpfTable::peers_with(std::string_view term) const {
  auto it = entries_.find(term);
  return it == entries_.end() ? kNoPeers : it->second.peers;
}

std::uint32_t IpfTable::suspicion_of(std::uint32_t peer) const {
  auto it = suspicion_.find(peer);
  return it == suspicion_.end() ? 0 : it->second;
}

std::unordered_map<std::string, double> IpfTable::weights() const {
  std::unordered_map<std::string, double> out;
  for (const auto& [term, entry] : entries_) out.emplace(term, entry.ipf);
  return out;
}

}  // namespace planetp::search
