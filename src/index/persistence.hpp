#pragma once

#include <span>
#include <string>
#include <vector>

#include "index/data_store.hpp"

/// \file persistence.hpp
/// Durable storage for a peer's local data store. A PlanetP peer that goes
/// offline keeps its published documents; on restart it reloads them,
/// rebuilds its inverted index and Bloom filter, and rejoins the community
/// with the same content (its rejoin rumor re-advertises the filter).
///
/// Format (versioned, little-endian, ByteWriter framing):
///   magic "PPDS" | u32 format version | u32 peer id | u32 next local id |
///   varint doc count | per doc: u32 local id, length-prefixed XML source
///
/// Only the XML sources are stored; the index, filter and extracted text are
/// derived state and are rebuilt on load (publish() is the single code path
/// that constructs them, so stored and freshly published documents can never
/// disagree).

namespace planetp::index {

/// Current snapshot format version.
inline constexpr std::uint32_t kDataStoreFormatVersion = 1;

/// Serialize \p store into a byte buffer.
std::vector<std::uint8_t> serialize_data_store(const DataStore& store);

/// Reconstruct a data store from serialize_data_store output. Documents keep
/// their original local ids. Throws std::runtime_error on a bad snapshot.
DataStore deserialize_data_store(std::span<const std::uint8_t> bytes,
                                 bloom::BloomParams bloom_params = {},
                                 text::AnalyzerOptions analyzer_opts = {});

/// Write a snapshot to \p path (atomically: temp file + rename).
/// Returns false on I/O failure.
bool save_data_store(const DataStore& store, const std::string& path);

/// Load a snapshot from \p path. Throws std::runtime_error when the file is
/// missing or corrupt.
DataStore load_data_store(const std::string& path, bloom::BloomParams bloom_params = {},
                          text::AnalyzerOptions analyzer_opts = {});

}  // namespace planetp::index
