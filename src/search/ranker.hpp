#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.hpp"

/// \file ranker.hpp
/// Document scoring (eq. 2). The same accumulation serves the centralized
/// TFxIDF baseline (term weights = IDF over the global index) and PlanetP's
/// local evaluation of a remote query (term weights = IPF shipped by the
/// searcher).

namespace planetp::search {

struct ScoredDoc {
  index::DocumentId doc;
  double score = 0.0;
};

/// Score all documents of \p idx against the weighted query terms:
///   score(D) = sum_t w_{D,t} * weight_t / sqrt(|D|)
/// Documents matching no term are omitted. Results are sorted by descending
/// score (ties broken by DocumentId for determinism).
std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights);

/// The centralized TFxIDF baseline of §7.3: assumes full knowledge of the
/// community's merged index, scores with IDF weights and returns the top-k.
class TfIdfRanker {
 public:
  explicit TfIdfRanker(const index::InvertedIndex& global_index)
      : index_(&global_index) {}

  /// IDF weights for the query terms over the global collection.
  std::unordered_map<std::string, double> idf_weights(
      const std::vector<std::string>& terms) const;

  /// Top-k documents by eq. 2.
  std::vector<ScoredDoc> top_k(const std::vector<std::string>& terms, std::size_t k) const;

 private:
  const index::InvertedIndex* index_;
};

/// Keep the top-k of a scored list (already sorted descending).
void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k);

}  // namespace planetp::search
