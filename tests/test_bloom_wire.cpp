#include "bloom/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace planetp::bloom {
namespace {

BloomFilter filter_with_terms(std::size_t n, std::uint64_t seed) {
  BloomFilter f;
  for (std::size_t i = 0; i < n; ++i) {
    f.insert("w" + std::to_string(seed) + "_" + std::to_string(i));
  }
  return f;
}

TEST(BloomWire, FilterRoundtrip) {
  const BloomFilter original = filter_with_terms(5000, 1);
  ByteWriter w;
  encode_filter(w, original);
  const auto buf = w.take();
  ByteReader r(buf);
  const BloomFilter decoded = decode_filter(r);
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(r.done());
}

TEST(BloomWire, EmptyFilterRoundtrip) {
  const BloomFilter original;
  ByteWriter w;
  encode_filter(w, original);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(decode_filter(r), original);
}

class WireSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireSizeSweep, CompressedSizeTracksTable2) {
  // Table 2 prices a 1000-key filter at 3000 bytes and a 20000-key filter at
  // 16000 bytes on the wire. Our Golomb coder should land within 2x of
  // those anchors for the same 50 KB filter geometry.
  const std::size_t keys = GetParam();
  const BloomFilter f = filter_with_terms(keys, 2);
  const std::size_t size = encoded_filter_size(f);
  const double expected = 2315.8 + 0.6842 * static_cast<double>(keys);
  EXPECT_LT(static_cast<double>(size), expected * 2.0) << keys;
  EXPECT_GT(static_cast<double>(size), expected * 0.4) << keys;
}

INSTANTIATE_TEST_SUITE_P(Keys, WireSizeSweep, ::testing::Values(1000, 5000, 20000));

TEST(BloomWire, EncodedSizeMatchesActualEncoding) {
  const BloomFilter f = filter_with_terms(3000, 3);
  ByteWriter w;
  encode_filter(w, f);
  EXPECT_EQ(encoded_filter_size(f), w.size());
}

TEST(BloomWire, DiffRoundtrip) {
  const BloomFilter base = filter_with_terms(2000, 4);
  BloomFilter updated = base;
  for (int i = 0; i < 100; ++i) updated.insert("new_" + std::to_string(i));

  const BitVector diff = updated.diff_from(base);
  ByteWriter w;
  encode_diff(w, diff);
  const auto buf = w.take();
  ByteReader r(buf);
  const BitVector decoded = decode_diff(r);
  EXPECT_EQ(decoded, diff);

  BloomFilter restored = base;
  restored.apply_diff(decoded);
  EXPECT_EQ(restored, updated);
}

TEST(BloomWire, DiffIsMuchSmallerThanFullFilter) {
  // §7.2: "PlanetP sends diffs of the Bloom filters to save bandwidth."
  const BloomFilter base = filter_with_terms(20000, 5);
  BloomFilter updated = base;
  for (int i = 0; i < 50; ++i) updated.insert("delta_" + std::to_string(i));
  const std::size_t diff_size = encoded_diff_size(updated.diff_from(base));
  const std::size_t full_size = encoded_filter_size(updated);
  EXPECT_LT(diff_size * 5, full_size);
}

TEST(BloomWire, MergeDiffWireByteIdenticalToDecodedPath) {
  // The directory keeps filters as their wire bytes; gossiped diffs are
  // folded in with merge_diff_wire. The result must be byte-for-byte what
  // the decoded path (decode_filter -> apply_diff -> encode_filter) yields.
  Rng rng(31);
  BloomFilter base = filter_with_terms(2000, 7);
  ByteWriter bw;
  encode_filter(bw, base);
  std::vector<std::uint8_t> wire = bw.take();

  for (int round = 0; round < 5; ++round) {
    BloomFilter updated = base;
    const int adds = 1 + static_cast<int>(rng.below(200));
    for (int i = 0; i < adds; ++i) {
      updated.insert("r" + std::to_string(round) + "_" + std::to_string(i));
    }
    ByteWriter dw;
    encode_diff(dw, updated.diff_from(base));
    const auto diff_wire = dw.take();

    wire = merge_diff_wire(wire, diff_wire);

    ByteWriter expect;
    encode_filter(expect, updated);
    EXPECT_EQ(wire, expect.data()) << "round " << round;
    EXPECT_EQ(decode_filter_bytes(wire), updated);
    base = updated;
  }
}

TEST(BloomWire, MergeDiffWireGeometryMismatchThrows) {
  const BloomFilter f = filter_with_terms(100, 8);
  ByteWriter fw;
  encode_filter(fw, f);
  ByteWriter dw;
  encode_diff(dw, BitVector(64));  // wrong nbits
  EXPECT_THROW(merge_diff_wire(fw.data(), dw.data()), std::invalid_argument);
}

TEST(BloomWire, TruncatedInputThrows) {
  const BloomFilter f = filter_with_terms(1000, 6);
  ByteWriter w;
  encode_filter(w, f);
  auto buf = w.take();
  buf.resize(buf.size() / 2);
  ByteReader r(buf);
  EXPECT_THROW(decode_filter(r), std::exception);
}

}  // namespace
}  // namespace planetp::bloom
