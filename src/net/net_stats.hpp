#pragma once

#include <atomic>
#include <cstdint>

#include "gossip/stats.hpp"

/// \file net_stats.hpp
/// Observability surface of the live TCP runtime (docs/NET.md "NetStats").
/// `NetStats` is a plain copyable snapshot; `NetCounters` is the internally
/// shared atomic holder that the reactor (and LiveNode, for its own fields)
/// increments with relaxed ordering — counters are monotonic telemetry, not
/// synchronization.

namespace planetp::net {

/// Point-in-time snapshot of a reactor's counters. Counters are cumulative
/// since construction; `connections` and `queued_bytes` are gauges.
struct NetStats {
  // Wire traffic.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;

  // Connection lifecycle.
  std::uint64_t accepts = 0;          ///< inbound connections accepted
  std::uint64_t connects_ok = 0;      ///< outbound connects completed
  std::uint64_t connects_failed = 0;  ///< refused / reset / timed out connects
  std::uint64_t closes = 0;           ///< every connection teardown (any cause)
  std::uint64_t idle_reaped = 0;      ///< subset of closes: idle-timeout reaps
  std::uint64_t backoffs_engaged = 0; ///< times a failure armed reconnect backoff

  // Backpressure / drop accounting (frames, not bytes).
  std::uint64_t drops_backpressure = 0;  ///< gossip frames evicted or refused by byte caps
  std::uint64_t drops_backoff = 0;       ///< frames refused while an address is in backoff
  std::uint64_t drops_unroutable = 0;    ///< unparseable address / socket creation failure
  std::uint64_t rpc_rejected_full = 0;   ///< RPC sends rejected synchronously by the global cap
  std::uint64_t oversize_closes = 0;     ///< connections closed for an over-cap frame

  // Gauges.
  std::uint64_t connections = 0;       ///< open connections right now
  std::uint64_t queued_bytes = 0;      ///< outbound bytes queued right now (all connections)
  std::uint64_t peak_queued_bytes = 0; ///< high-water mark of queued_bytes

  /// Dissemination counters from this node's gossip::Protocol (payload
  /// pushes vs. duplicates, digests, served wants). LiveNode::net_stats()
  /// merges them into the reactor snapshot under the node lock.
  gossip::GossipStats gossip;

  NetStats& operator+=(const NetStats& o) {
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    frames_in += o.frames_in;
    frames_out += o.frames_out;
    accepts += o.accepts;
    connects_ok += o.connects_ok;
    connects_failed += o.connects_failed;
    closes += o.closes;
    idle_reaped += o.idle_reaped;
    backoffs_engaged += o.backoffs_engaged;
    drops_backpressure += o.drops_backpressure;
    drops_backoff += o.drops_backoff;
    drops_unroutable += o.drops_unroutable;
    rpc_rejected_full += o.rpc_rejected_full;
    oversize_closes += o.oversize_closes;
    connections += o.connections;
    queued_bytes += o.queued_bytes;
    if (o.peak_queued_bytes > peak_queued_bytes) peak_queued_bytes = o.peak_queued_bytes;
    gossip += o.gossip;
    return *this;
  }
};

/// Atomic counter holder behind NetStats. All increments use relaxed order.
class NetCounters {
 public:
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> connects_ok{0};
  std::atomic<std::uint64_t> connects_failed{0};
  std::atomic<std::uint64_t> closes{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> backoffs_engaged{0};
  std::atomic<std::uint64_t> drops_backpressure{0};
  std::atomic<std::uint64_t> drops_backoff{0};
  std::atomic<std::uint64_t> drops_unroutable{0};
  std::atomic<std::uint64_t> rpc_rejected_full{0};
  std::atomic<std::uint64_t> oversize_closes{0};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> queued_bytes{0};
  std::atomic<std::uint64_t> peak_queued_bytes{0};

  void note_queued_peak() {
    const std::uint64_t q = queued_bytes.load(std::memory_order_relaxed);
    std::uint64_t peak = peak_queued_bytes.load(std::memory_order_relaxed);
    while (q > peak &&
           !peak_queued_bytes.compare_exchange_weak(peak, q, std::memory_order_relaxed)) {
    }
  }

  NetStats snapshot() const {
    NetStats s;
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.frames_in = frames_in.load(std::memory_order_relaxed);
    s.frames_out = frames_out.load(std::memory_order_relaxed);
    s.accepts = accepts.load(std::memory_order_relaxed);
    s.connects_ok = connects_ok.load(std::memory_order_relaxed);
    s.connects_failed = connects_failed.load(std::memory_order_relaxed);
    s.closes = closes.load(std::memory_order_relaxed);
    s.idle_reaped = idle_reaped.load(std::memory_order_relaxed);
    s.backoffs_engaged = backoffs_engaged.load(std::memory_order_relaxed);
    s.drops_backpressure = drops_backpressure.load(std::memory_order_relaxed);
    s.drops_backoff = drops_backoff.load(std::memory_order_relaxed);
    s.drops_unroutable = drops_unroutable.load(std::memory_order_relaxed);
    s.rpc_rejected_full = rpc_rejected_full.load(std::memory_order_relaxed);
    s.oversize_closes = oversize_closes.load(std::memory_order_relaxed);
    s.connections = connections.load(std::memory_order_relaxed);
    s.queued_bytes = queued_bytes.load(std::memory_order_relaxed);
    s.peak_queued_bytes = peak_queued_bytes.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace planetp::net
